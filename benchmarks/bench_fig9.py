"""Figure 9: specialization w.r.t. the set of lists that may contain
modified elements (length-5 lists).

Benchmarks the extreme points: 1 of 5 lists modifiable at 25% (paper
speedup ~9 with 1 int) against the all-lists 100% case (paper ~2).
"""

import pytest

from conftest import (
    build_workload,
    checkpoint_incremental,
    checkpoint_specialized,
    run_benchmark,
    simulated_speedups,
)
from repro.spec.specclass import SpecClass, SpecializedCheckpointer


def _pattern_fn(workload, name):
    return SpecializedCheckpointer(
        SpecClass(workload.shape, workload.pattern, name=name)
    )


@pytest.fixture(scope="module")
def one_list():
    return build_workload(
        num_lists=5,
        list_length=5,
        ints_per_element=1,
        percent_modified=0.25,
        modified_lists=1,
    )


@pytest.fixture(scope="module")
def all_lists():
    return build_workload(
        num_lists=5,
        list_length=5,
        ints_per_element=1,
        percent_modified=1.0,
        modified_lists=5,
    )


def test_fig9_incremental_one_list(benchmark, one_list):
    benchmark.extra_info["paper"] = "Figure 9 baseline"
    run_benchmark(benchmark, one_list, checkpoint_incremental)


def test_fig9_spec_one_list(benchmark, one_list):
    fn = _pattern_fn(one_list, "fig9_one")
    benchmark.extra_info["paper"] = "Figure 9: paper speedup ~9 (1 list, 25%, 1 int)"
    benchmark.extra_info["simulated_speedup_vs_incremental"] = simulated_speedups(
        one_list, "incremental", "spec_struct_mod"
    )
    run_benchmark(benchmark, one_list, lambda w: checkpoint_specialized(w, fn))


def test_fig9_incremental_all_lists(benchmark, all_lists):
    benchmark.extra_info["paper"] = "Figure 9 baseline"
    run_benchmark(benchmark, all_lists, checkpoint_incremental)


def test_fig9_spec_all_lists(benchmark, all_lists):
    fn = _pattern_fn(all_lists, "fig9_all")
    benchmark.extra_info["paper"] = "Figure 9: paper speedup ~2 (5 lists, 100%)"
    benchmark.extra_info["simulated_speedup_vs_incremental"] = simulated_speedups(
        all_lists, "incremental", "spec_struct_mod"
    )
    run_benchmark(benchmark, all_lists, lambda w: checkpoint_specialized(w, fn))
