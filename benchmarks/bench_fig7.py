"""Figure 7: incremental vs full checkpointing on the synthetic workload.

The paper's configuration where incremental wins the most: 25% of objects
modified, 10 integers recorded per modified object — plus the break-even
100% configuration. Simulated per-VM speedups are attached as extra_info.
"""

import pytest

from conftest import (
    build_workload,
    checkpoint_full,
    checkpoint_incremental,
    run_benchmark,
    simulated_speedups,
)


@pytest.fixture(scope="module")
def quarter_modified():
    return build_workload(
        num_lists=5, list_length=5, ints_per_element=10, percent_modified=0.25
    )


@pytest.fixture(scope="module")
def all_modified():
    return build_workload(
        num_lists=5, list_length=5, ints_per_element=10, percent_modified=1.0
    )


def test_fig7_full_25pct(benchmark, quarter_modified):
    benchmark.extra_info["paper"] = "Figure 7 baseline (full, 25% modified)"
    run_benchmark(benchmark, quarter_modified, checkpoint_full)


def test_fig7_incremental_25pct(benchmark, quarter_modified):
    benchmark.extra_info["paper"] = "Figure 7: paper speedup >3 at 25%, 10 ints"
    benchmark.extra_info["simulated_speedup_vs_full"] = simulated_speedups(
        quarter_modified, "full", "incremental"
    )
    run_benchmark(benchmark, quarter_modified, checkpoint_incremental)


def test_fig7_full_100pct(benchmark, all_modified):
    benchmark.extra_info["paper"] = "Figure 7 baseline (full, 100% modified)"
    run_benchmark(benchmark, all_modified, checkpoint_full)


def test_fig7_incremental_100pct(benchmark, all_modified):
    benchmark.extra_info["paper"] = (
        "Figure 7: at 100% modified the flag overhead is negligible (~1x)"
    )
    benchmark.extra_info["simulated_speedup_vs_full"] = simulated_speedups(
        all_modified, "full", "incremental"
    )
    run_benchmark(benchmark, all_modified, checkpoint_incremental)
