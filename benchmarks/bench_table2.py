"""Table 2: absolute checkpoint times, unspecialized vs specialized per VM.

Benchmarks the Table 2 workload (10 integers per element, last-element
positions, 1 or 5 possibly-modified lists) in CPython, and attaches the
epoch-scaled simulated seconds for the paper's three VMs (paper
magnitudes at 100%: JDK 1.2 ~8-11 s, HotSpot ~1-3 s, Harissa ~2-4 s for
20,000 structures).
"""

import pytest

from conftest import (
    BENCH_STRUCTURES,
    build_workload,
    checkpoint_incremental,
    checkpoint_specialized,
    run_benchmark,
)
from repro.spec.specclass import SpecClass, SpecializedCheckpointer
from repro.synthetic.runner import run_variant
from repro.vm.backends import EPOCH_SCALE, HARISSA, HOTSPOT, JDK12_JIT

PAPER_POPULATION = 20000


def _simulated_seconds(workload, variant):
    result = run_variant(workload, variant, meter=True, meter_sample=150)
    scale = (PAPER_POPULATION / BENCH_STRUCTURES) * EPOCH_SCALE
    return {
        profile.name: round(profile.seconds(result.counts) * scale, 2)
        for profile in (JDK12_JIT, HOTSPOT, HARISSA)
    }


@pytest.fixture(scope="module", params=[1, 5], ids=["lists1", "lists5"])
def table2_workload(request):
    return build_workload(
        num_lists=5,
        list_length=5,
        ints_per_element=10,
        percent_modified=1.0,
        modified_lists=request.param,
        last_only=True,
    )


def test_table2_unspecialized(benchmark, table2_workload):
    benchmark.extra_info["paper"] = "Table 2, unspecialized rows"
    benchmark.extra_info["simulated_seconds_paper_epoch"] = _simulated_seconds(
        table2_workload, "incremental"
    )
    run_benchmark(benchmark, table2_workload, checkpoint_incremental)


def test_table2_specialized(benchmark, table2_workload):
    fn = SpecializedCheckpointer(
        SpecClass(
            table2_workload.shape,
            table2_workload.pattern,
            name=f"table2_{table2_workload.config.modified_lists}",
        )
    )
    simulated = _simulated_seconds(table2_workload, "spec_struct_mod")
    benchmark.extra_info["paper"] = "Table 2, specialized rows"
    benchmark.extra_info["simulated_seconds_paper_epoch"] = simulated
    run_benchmark(
        benchmark, table2_workload, lambda w: checkpoint_specialized(w, fn)
    )
    unspec = _simulated_seconds(table2_workload, "incremental")
    for vm in simulated:
        assert simulated[vm] < unspec[vm]
