"""Ablation benchmarks for the reproduction's design choices.

Not part of the paper's evaluation — these isolate the contribution of
individual mechanisms:

- *dispatch tiers*: reflective (schema interpretation) vs generated
  per-class methods (the paper's baseline) vs specialized — quantifies
  what each of the two code-generation steps buys;
- *run-time guards*: the price of compiling pattern/class checks into the
  specialized routine (the safety knob the paper leaves to the
  programmer's declaration);
- *dead-binding elimination*: the residual-cleanup pass of the partial
  evaluator, measured by running the unoptimized residual program;
- *asynchronous stable storage*: blocking file appends vs the
  BackgroundWriter hand-off.
"""

import pytest

from conftest import (
    build_workload,
    checkpoint_incremental,
    checkpoint_specialized,
    run_benchmark,
)
from repro.core.checkpoint import ReflectiveCheckpoint
from repro.core.storage import FULL, BackgroundWriter, FileStore
from repro.core.streams import DataOutputStream
from repro.spec import codegen
from repro.spec.pe import Specializer
from repro.spec.specclass import SpecClass, SpecializedCheckpointer


@pytest.fixture(scope="module")
def workload():
    return build_workload(
        num_lists=5,
        list_length=5,
        ints_per_element=1,
        percent_modified=0.25,
        modified_lists=1,
        last_only=True,
    )


# -- dispatch tiers -----------------------------------------------------------


def test_ablation_tier_reflective(benchmark, workload):
    benchmark.extra_info["ablation"] = "run-time schema interpretation tier"

    def target(w):
        driver = ReflectiveCheckpoint(DataOutputStream())
        for root in w.structures:
            driver.checkpoint(root)
        return driver.size

    run_benchmark(benchmark, workload, target)


def test_ablation_tier_generated(benchmark, workload):
    benchmark.extra_info["ablation"] = "per-class generated methods (paper baseline)"
    run_benchmark(benchmark, workload, checkpoint_incremental)


def test_ablation_tier_specialized(benchmark, workload):
    fn = SpecializedCheckpointer(
        SpecClass(workload.shape, workload.pattern, name="abl_spec")
    )
    benchmark.extra_info["ablation"] = "monolithic specialized routine"
    run_benchmark(benchmark, workload, lambda w: checkpoint_specialized(w, fn))


# -- guards ---------------------------------------------------------------------


def test_ablation_guards_off(benchmark, workload):
    fn = SpecializedCheckpointer(
        SpecClass(workload.shape, workload.pattern, name="abl_unguarded")
    )
    benchmark.extra_info["ablation"] = "specialized, no runtime guards"
    run_benchmark(benchmark, workload, lambda w: checkpoint_specialized(w, fn))


def test_ablation_guards_on(benchmark, workload):
    fn = SpecializedCheckpointer(
        SpecClass(workload.shape, workload.pattern, name="abl_guarded", guards=True)
    )
    benchmark.extra_info["ablation"] = "specialized + class/pattern guards"
    run_benchmark(benchmark, workload, lambda w: checkpoint_specialized(w, fn))


# -- residual cleanup -------------------------------------------------------------


def _emit_without_cleanup(workload):
    specializer = Specializer(workload.shape, workload.pattern, cleanup=False)
    _, fn = codegen.emit(specializer.specialize(), "abl_nocleanup")
    return fn


def test_ablation_cleanup_on(benchmark, workload):
    fn = SpecializedCheckpointer(
        SpecClass(workload.shape, workload.pattern, name="abl_cleanup")
    )
    benchmark.extra_info["ablation"] = "dead-binding elimination ON"
    run_benchmark(benchmark, workload, lambda w: checkpoint_specialized(w, fn))


def test_ablation_cleanup_off(benchmark, workload):
    raw_fn = _emit_without_cleanup(workload)

    def target(w):
        out = DataOutputStream()
        for root in w.structures:
            raw_fn(root, out)
        return out.size

    benchmark.extra_info["ablation"] = "dead-binding elimination OFF"
    run_benchmark(benchmark, workload, target)


# -- asynchronous storage ------------------------------------------------------------


@pytest.fixture(scope="module")
def epoch_bytes(workload):
    workload.snapshot.restore()
    out = DataOutputStream()
    from repro.core.checkpoint import FullCheckpoint

    driver = FullCheckpoint(out)
    for root in workload.structures:
        driver.checkpoint(root)
    return out.getvalue()


def test_ablation_storage_blocking(benchmark, tmp_path_factory, epoch_bytes):
    store = FileStore(str(tmp_path_factory.mktemp("blocking")))
    benchmark.extra_info["ablation"] = "blocking fsync append"
    benchmark.pedantic(
        lambda: store.append(FULL, epoch_bytes), rounds=5, iterations=1
    )


def test_ablation_storage_background(benchmark, tmp_path_factory, epoch_bytes):
    store = FileStore(str(tmp_path_factory.mktemp("background")))
    writer = BackgroundWriter(store, max_queued=256)
    benchmark.extra_info["ablation"] = "asynchronous hand-off (paper's model)"
    benchmark.pedantic(
        lambda: writer.append(FULL, epoch_bytes), rounds=5, iterations=1
    )
    writer.close()
