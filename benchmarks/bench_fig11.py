"""Figure 11: the Figure 10 experiment on the Sun VMs.

Wall-clock cannot distinguish 1999 VMs, so the CPython implementations
are benchmarked once and the calibrated per-VM simulated speedups —
JDK 1.2 JIT (Figure 11a, paper: up to ~6) and JDK 1.2 + HotSpot
(Figure 11b, paper: up to ~12) — are attached as extra_info, computed
from exact op counts of the metered abstract machine.
"""

import pytest

from conftest import (
    build_workload,
    checkpoint_incremental,
    checkpoint_specialized,
    run_benchmark,
)
from repro.spec.specclass import SpecClass, SpecializedCheckpointer
from repro.synthetic.runner import run_variant
from repro.vm.backends import HOTSPOT, JDK12_JIT


@pytest.fixture(scope="module")
def fig11_workload():
    return build_workload(
        num_lists=5,
        list_length=5,
        ints_per_element=1,
        percent_modified=0.25,
        modified_lists=1,
        last_only=True,
    )


@pytest.fixture(scope="module")
def sun_vm_speedups(fig11_workload):
    results = {
        variant: run_variant(fig11_workload, variant, meter=True, meter_sample=150)
        for variant in ("incremental", "spec_struct_mod")
    }
    base, cand = results["incremental"].counts, results["spec_struct_mod"].counts
    return {
        "JDK 1.2 JIT (fig 11a, paper up to ~6)": round(
            JDK12_JIT.seconds(base) / JDK12_JIT.seconds(cand), 2
        ),
        "JDK 1.2 + HotSpot (fig 11b, paper up to ~12)": round(
            HOTSPOT.seconds(base) / HOTSPOT.seconds(cand), 2
        ),
    }


def test_fig11_unspecialized(benchmark, fig11_workload, sun_vm_speedups):
    benchmark.extra_info["paper"] = "Figure 11 baseline (unspecialized)"
    benchmark.extra_info["sun_vm_speedups"] = sun_vm_speedups
    run_benchmark(benchmark, fig11_workload, checkpoint_incremental)


def test_fig11_specialized(benchmark, fig11_workload, sun_vm_speedups):
    fn = SpecializedCheckpointer(
        SpecClass(fig11_workload.shape, fig11_workload.pattern, name="fig11")
    )
    benchmark.extra_info["paper"] = "Figure 11 specialized"
    benchmark.extra_info["sun_vm_speedups"] = sun_vm_speedups
    run_benchmark(
        benchmark, fig11_workload, lambda w: checkpoint_specialized(w, fn)
    )
    assert sun_vm_speedups[
        "JDK 1.2 + HotSpot (fig 11b, paper up to ~12)"
    ] > sun_vm_speedups["JDK 1.2 JIT (fig 11a, paper up to ~6)"]
