"""Shared fixtures for the pytest-benchmark suite.

Each ``bench_*.py`` file corresponds to one table or figure of the paper
(see DESIGN.md's per-experiment index). The benchmarks measure the *real*
CPython implementations; the calibrated per-VM simulated speedups for the
same configurations are attached to each benchmark's ``extra_info`` so a
single ``pytest benchmarks/ --benchmark-only`` run reports both.

Populations are kept small so the suite runs in seconds; speedups are
population-size-invariant (verified by the unit tests), and
``python -m repro.bench --paper-scale`` runs the full 20,000-structure
configurations.
"""

from __future__ import annotations

import pytest

from repro.core.checkpoint import Checkpoint, FullCheckpoint
from repro.core.streams import DataOutputStream
from repro.synthetic.runner import SyntheticConfig, SyntheticWorkload, run_variant
from repro.vm.backends import HARISSA, HOTSPOT, JDK12_JIT

BENCH_STRUCTURES = 300


def build_workload(**overrides) -> SyntheticWorkload:
    config = SyntheticConfig(num_structures=BENCH_STRUCTURES, **overrides)
    return SyntheticWorkload(config)


def checkpoint_full(workload) -> int:
    driver = FullCheckpoint(DataOutputStream())
    for root in workload.structures:
        driver.checkpoint(root)
    return driver.size


def checkpoint_incremental(workload) -> int:
    driver = Checkpoint(DataOutputStream())
    for root in workload.structures:
        driver.checkpoint(root)
    return driver.size


def checkpoint_specialized(workload, fn) -> int:
    out = DataOutputStream()
    fn.checkpoint_all(workload.structures, out)
    return out.size


def simulated_speedups(workload, base: str, cand: str) -> dict:
    """Per-VM simulated speedups for a workload, for extra_info."""
    results = {
        variant: run_variant(workload, variant, meter=True, meter_sample=150)
        for variant in (base, cand)
    }
    speedups = {}
    for profile in (HARISSA, HOTSPOT, JDK12_JIT):
        speedups[profile.name] = round(
            profile.seconds(results[base].counts)
            / profile.seconds(results[cand].counts),
            2,
        )
    return speedups


def run_benchmark(benchmark, workload, target, rounds: int = 10):
    """Measure ``target(workload)`` with the flag state restored per round."""
    return benchmark.pedantic(
        target,
        args=(workload,),
        setup=lambda: (workload.snapshot.restore(), None)[1],
        rounds=rounds,
        iterations=1,
        warmup_rounds=1,
    )


@pytest.fixture(scope="module")
def spec_compiler():
    from repro.spec.specclass import SpecCompiler

    return SpecCompiler()
