"""Figure 8: structure-specialized vs generic incremental checkpointing.

The two ends of the paper's reported range: 100% modified with 10 ints
per element (paper speedup 1.5) and 25% modified with 1 int and length-5
lists (paper speedup ~3.5).
"""

import pytest

from conftest import (
    build_workload,
    checkpoint_incremental,
    checkpoint_specialized,
    run_benchmark,
    simulated_speedups,
)
from repro.spec.specclass import SpecClass, SpecializedCheckpointer


def _struct_fn(workload, name):
    return SpecializedCheckpointer(SpecClass(workload.shape, name=name))


@pytest.fixture(scope="module")
def heavy_writes():
    return build_workload(
        num_lists=5, list_length=5, ints_per_element=10, percent_modified=1.0
    )


@pytest.fixture(scope="module")
def light_writes():
    return build_workload(
        num_lists=5, list_length=5, ints_per_element=1, percent_modified=0.25
    )


def test_fig8_incremental_100pct_10int(benchmark, heavy_writes):
    benchmark.extra_info["paper"] = "Figure 8 baseline"
    run_benchmark(benchmark, heavy_writes, checkpoint_incremental)


def test_fig8_spec_struct_100pct_10int(benchmark, heavy_writes):
    fn = _struct_fn(heavy_writes, "fig8_heavy")
    benchmark.extra_info["paper"] = "Figure 8: paper speedup 1.5 (100%, 10 ints)"
    benchmark.extra_info["simulated_speedup_vs_incremental"] = simulated_speedups(
        heavy_writes, "incremental", "spec_struct"
    )
    run_benchmark(benchmark, heavy_writes, lambda w: checkpoint_specialized(w, fn))


def test_fig8_incremental_25pct_1int(benchmark, light_writes):
    benchmark.extra_info["paper"] = "Figure 8 baseline"
    run_benchmark(benchmark, light_writes, checkpoint_incremental)


def test_fig8_spec_struct_25pct_1int(benchmark, light_writes):
    fn = _struct_fn(light_writes, "fig8_light")
    benchmark.extra_info["paper"] = "Figure 8: paper speedup ~3.5 (25%, 1 int, len 5)"
    benchmark.extra_info["simulated_speedup_vs_incremental"] = simulated_speedups(
        light_writes, "incremental", "spec_struct"
    )
    run_benchmark(benchmark, light_writes, lambda w: checkpoint_specialized(w, fn))
