"""Figure 10: specialization w.r.t. last-element-only positions.

The paper's strongest pattern: a modified object may only be the last
element of each (restricted set of) lists, so specialized code chases the
spine without testing and ignores everything else. Paper speedups: 5-15
with 1 int recorded, 2-11 with 10.
"""

import pytest

from conftest import (
    build_workload,
    checkpoint_incremental,
    checkpoint_specialized,
    run_benchmark,
    simulated_speedups,
)
from repro.spec.specclass import SpecClass, SpecializedCheckpointer


def _pattern_fn(workload, name):
    return SpecializedCheckpointer(
        SpecClass(workload.shape, workload.pattern, name=name)
    )


@pytest.fixture(scope="module")
def best_case():
    return build_workload(
        num_lists=5,
        list_length=5,
        ints_per_element=1,
        percent_modified=0.25,
        modified_lists=1,
        last_only=True,
    )


@pytest.fixture(scope="module")
def heavy_case():
    return build_workload(
        num_lists=5,
        list_length=5,
        ints_per_element=10,
        percent_modified=1.0,
        modified_lists=5,
        last_only=True,
    )


def test_fig10_incremental_best(benchmark, best_case):
    benchmark.extra_info["paper"] = "Figure 10 baseline"
    run_benchmark(benchmark, best_case, checkpoint_incremental)


def test_fig10_spec_best(benchmark, best_case):
    fn = _pattern_fn(best_case, "fig10_best")
    benchmark.extra_info["paper"] = "Figure 10: paper speedup up to 15 (1 int)"
    benchmark.extra_info["simulated_speedup_vs_incremental"] = simulated_speedups(
        best_case, "incremental", "spec_struct_mod"
    )
    run_benchmark(benchmark, best_case, lambda w: checkpoint_specialized(w, fn))


def test_fig10_incremental_heavy(benchmark, heavy_case):
    benchmark.extra_info["paper"] = "Figure 10 baseline"
    run_benchmark(benchmark, heavy_case, checkpoint_incremental)


def test_fig10_spec_heavy(benchmark, heavy_case):
    fn = _pattern_fn(heavy_case, "fig10_heavy")
    benchmark.extra_info["paper"] = "Figure 10: paper speedup ~2 (10 ints, 100%)"
    benchmark.extra_info["simulated_speedup_vs_incremental"] = simulated_speedups(
        heavy_case, "incremental", "spec_struct_mod"
    )
    run_benchmark(benchmark, heavy_case, lambda w: checkpoint_specialized(w, fn))
