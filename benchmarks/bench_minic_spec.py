"""Benchmarks for the mini-C program specializer (beyond the paper).

The analyses exist to drive specialization; this file measures that
payoff directly: the residual convolution (kernel folded, inner loops
unrolled, helpers specialized) executes measurably faster under the
reference interpreter than the original program, and the specialization
itself is cheap relative to one execution.
"""

import random

import pytest

from repro.analysis.bta import Division
from repro.analysis.engine import AnalysisEngine
from repro.analysis.interp import Interpreter
from repro.analysis.lang.parser import parse
from repro.analysis.specializer import specialize_program
from repro.analysis.symbols import resolve

SOURCE = """
int width = 8;
int height = 8;
int img[64];
int out[64];
int kernel[9];
int kdiv = 1;

void init_kernel() {
    kernel[0] = 1; kernel[1] = 2; kernel[2] = 1;
    kernel[3] = 2; kernel[4] = 4; kernel[5] = 2;
    kernel[6] = 1; kernel[7] = 2; kernel[8] = 1;
    kdiv = 16;
}

int clamp(int v, int lo, int hi) {
    if (v < lo) { return lo; }
    if (v > hi) { return hi; }
    return v;
}

int get(int x, int y) {
    return img[clamp(y, 0, height - 1) * width + clamp(x, 0, width - 1)];
}

void convolve() {
    int x;
    int y;
    for (y = 0; y < height; y = y + 1) {
        for (x = 0; x < width; x = x + 1) {
            int acc = 0;
            int dx;
            int dy;
            for (dy = 0; dy < 3; dy = dy + 1) {
                for (dx = 0; dx < 3; dx = dx + 1) {
                    acc = acc + kernel[dy * 3 + dx] * get(x + dx - 1, y + dy - 1);
                }
            }
            out[y * width + x] = acc / kdiv;
        }
    }
}

void main() {
    init_kernel();
    convolve();
}
"""

DIVISION = Division(
    static_globals={"kernel", "kdiv"},
    dynamic_globals={"width", "height", "img", "out"},
)


@pytest.fixture(scope="module")
def residual_source():
    engine = AnalysisEngine(SOURCE, division=DIVISION, strategy="none")
    engine.run()
    return specialize_program(engine).source


@pytest.fixture(scope="module")
def image():
    rng = random.Random(1)
    return [rng.randrange(256) for _ in range(64)]


def _execute(source, image):
    program = parse(source)
    interp = Interpreter(program, resolve(program), fuel=50_000_000)
    return interp.run({"img": image})


def test_minic_original_execution(benchmark, image):
    benchmark.extra_info["role"] = "original convolution under the interpreter"
    state = benchmark(lambda: _execute(SOURCE, image))
    assert any(state["out"])


def test_minic_residual_execution(benchmark, residual_source, image):
    benchmark.extra_info["role"] = (
        "residual convolution (kernel folded, loops unrolled)"
    )
    state = benchmark(lambda: _execute(residual_source, image))
    assert state["out"] == _execute(SOURCE, image)["out"]


def test_minic_specialization_cost(benchmark):
    benchmark.extra_info["role"] = "analyses + partial evaluation, end to end"

    def specialize():
        engine = AnalysisEngine(SOURCE, division=DIVISION, strategy="none")
        engine.run()
        return specialize_program(engine)

    residual = benchmark(specialize)
    assert "void main()" in residual.source
