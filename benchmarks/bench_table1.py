"""Table 1: checkpointing the program analysis engine, per strategy.

Benchmarks one end-of-iteration checkpoint of the engine's Attributes
population in the state the binding-time-analysis phase leaves it in
(only ``bt_entry`` subtrees dirty), for the full, incremental, reflective
and specialized strategies — the rows of the paper's Table 1.
"""

import pytest

from repro.analysis.engine import AnalysisEngine
from repro.analysis.programs import image_division, paper_scale_source
from repro.core.checkpoint import Checkpoint, FullCheckpoint, ReflectiveCheckpoint
from repro.core.streams import DataOutputStream


@pytest.fixture(scope="module")
def engine():
    built = AnalysisEngine(
        paper_scale_source(), division=image_division(), strategy="specialized"
    )
    built.run()
    return built


@pytest.fixture(scope="module")
def bta_state(engine):
    """Flag state equivalent to mid-BTA-phase: bt annotations dirty."""

    def make_dirty():
        for attrs in engine.attributes.entries:
            attrs.bt_entry.bt._ckpt_info.modified = attrs.node_id % 3 == 0

    return make_dirty


def _run(benchmark, engine, bta_state, target):
    return benchmark.pedantic(
        target,
        setup=lambda: (bta_state(), None)[1],
        rounds=10,
        iterations=1,
        warmup_rounds=1,
    )


def bench_full(engine):
    driver = FullCheckpoint(DataOutputStream())
    for attrs in engine.attributes.entries:
        driver.checkpoint(attrs)
    return driver.size


def bench_incremental(engine):
    driver = Checkpoint(DataOutputStream())
    for attrs in engine.attributes.entries:
        driver.checkpoint(attrs)
    return driver.size


def bench_reflective(engine):
    driver = ReflectiveCheckpoint(DataOutputStream())
    for attrs in engine.attributes.entries:
        driver.checkpoint(attrs)
    return driver.size


def test_table1_full(benchmark, engine, bta_state):
    benchmark.extra_info["paper"] = "Table 1, full checkpointing row"
    size = _run(benchmark, engine, bta_state, lambda: bench_full(engine))
    assert size > 0


def test_table1_incremental(benchmark, engine, bta_state):
    benchmark.extra_info["paper"] = "Table 1, incremental checkpointing row"
    size = _run(benchmark, engine, bta_state, lambda: bench_incremental(engine))
    assert 0 < size < bench_full(engine)


def test_table1_reflective(benchmark, engine, bta_state):
    benchmark.extra_info["paper"] = "Table 1 (related-work reflection tier)"
    _run(benchmark, engine, bta_state, lambda: bench_reflective(engine))


def test_table1_specialized(benchmark, engine, bta_state):
    fn = engine.specialized_for("BTA")
    benchmark.extra_info["paper"] = (
        "Table 1, specialized incremental row (paper speedup: 1.8x BTA)"
    )

    def bench_spec():
        out = DataOutputStream()
        fn.checkpoint_all(engine.attributes.entries._items, out)
        return out.size

    size = _run(benchmark, engine, bta_state, bench_spec)
    bta_state()
    assert size == bench_incremental(engine)
