"""Run the program analysis engine with per-iteration checkpointing.

Run with::

    python examples/analysis_engine.py

The realistic application of the paper (section 4): side-effect,
binding-time and evaluation-time analyses over a generated ~750-line
image-manipulation program in simplified C. A checkpoint is taken after
every analysis iteration; this example compares the full, incremental and
phase-specialized strategies and prints the specialized routine generated
for the binding-time phase.
"""

from repro.analysis.attributes import DYNAMIC, STATIC
from repro.analysis.engine import AnalysisEngine
from repro.analysis.lang import astnodes as ast
from repro.analysis.programs import image_division, paper_scale_source


def describe_analysis(engine: AnalysisEngine) -> None:
    program = engine.program
    static_nodes = dynamic_nodes = 0
    for node in program.walk():
        if isinstance(node, ast.Expr):
            value = engine.attributes.of(node).bt_entry.bt.value
            if value == STATIC:
                static_nodes += 1
            elif value == DYNAMIC:
                dynamic_nodes += 1
    print(
        f"  program: {program.source_lines} lines, {program.node_count} AST nodes, "
        f"{len(program.functions)} functions"
    )
    print(
        f"  binding times: {static_nodes} static / {dynamic_nodes} dynamic "
        "expressions (geometry static, pixel data dynamic)"
    )


def main() -> None:
    source = paper_scale_source()
    division = image_division()

    print("Running the analysis engine under three checkpointing strategies...\n")
    reports = {}
    engines = {}
    for strategy in ("full", "incremental", "specialized"):
        engine = AnalysisEngine(
            source, division=division, strategy=strategy, measure_traversal=True
        )
        reports[strategy] = engine.run()
        engines[strategy] = engine

    report = reports["incremental"]
    print(f"analysis iterations per phase: {report.phase_iterations}")
    describe_analysis(engines["incremental"])
    print()

    print(f"{'strategy':14s} {'base (KB)':>10s} {'per-phase checkpoint time (s)':>42s}")
    for strategy, rep in reports.items():
        per_phase = "  ".join(
            f"{phase}={rep.total_checkpoint_seconds(phase):.4f}"
            for phase in ("SE", "BTA", "ETA")
        )
        print(f"{strategy:14s} {rep.base_bytes / 1000:10.1f} {per_phase:>42s}")

    incremental = reports["incremental"]
    specialized = reports["specialized"]
    for phase in ("BTA", "ETA"):
        gain = incremental.total_checkpoint_seconds(
            phase
        ) / specialized.total_checkpoint_seconds(phase)
        print(f"specialization speedup for {phase} phase: {gain:.2f}x")

    print("\nSpecialized checkpoint routine generated for the BTA phase")
    print("(only the bt_entry subtree of each Attributes may be modified):\n")
    print(engines["specialized"].specialized_for("BTA").source)


if __name__ == "__main__":
    main()
