"""End-to-end Tempo story: analyze, checkpoint, then specialize a program.

Run with::

    python examples/specialize_convolution.py

The paper's analysis engine exists to drive program specialization (it is
"a Java implementation of the analyses performed by the program
specializer Tempo"). This example closes that loop on the mini-C side:

1. the engine runs side-effect, binding-time and evaluation-time analysis
   over a convolution program, taking an incremental checkpoint after
   every iteration (the paper's workload);
2. the computed annotations then drive the mini-C partial evaluator,
   producing the classic specialized convolution: kernel coefficients
   folded into the code, inner loops unrolled, helper functions
   specialized per static argument;
3. the reference interpreter certifies that original and residual
   programs compute identical images.
"""

import random

from repro.analysis.bta import Division
from repro.analysis.engine import AnalysisEngine
from repro.analysis.interp import run_program
from repro.analysis.specializer import specialize_program

SOURCE = """
int width = 16;
int height = 16;
int img[256];
int out[256];
int kernel[9];
int kdiv = 1;

void init_kernel() {
    kernel[0] = 1; kernel[1] = 2; kernel[2] = 1;
    kernel[3] = 2; kernel[4] = 4; kernel[5] = 2;
    kernel[6] = 1; kernel[7] = 2; kernel[8] = 1;
    kdiv = 16;
}

int clamp(int v, int lo, int hi) {
    if (v < lo) { return lo; }
    if (v > hi) { return hi; }
    return v;
}

int get(int x, int y) {
    return img[clamp(y, 0, height - 1) * width + clamp(x, 0, width - 1)];
}

void convolve() {
    int x;
    int y;
    for (y = 0; y < height; y = y + 1) {
        for (x = 0; x < width; x = x + 1) {
            int acc = 0;
            int dx;
            int dy;
            for (dy = 0; dy < 3; dy = dy + 1) {
                for (dx = 0; dx < 3; dx = dx + 1) {
                    acc = acc + kernel[dy * 3 + dx] * get(x + dx - 1, y + dy - 1);
                }
            }
            out[y * width + x] = acc / kdiv;
        }
    }
}

void main() {
    init_kernel();
    convolve();
}
"""


def main() -> None:
    division = Division(
        static_globals={"kernel", "kdiv"},
        dynamic_globals={"width", "height", "img", "out"},
    )

    # 1. analyze with per-iteration incremental checkpoints
    engine = AnalysisEngine(SOURCE, division=division, strategy="incremental")
    report = engine.run()
    print(
        f"analysis done: iterations {report.phase_iterations}, "
        f"{len(report.records)} incremental checkpoints "
        f"({report.total_checkpoint_bytes()} bytes total, "
        f"base {report.base_bytes} bytes)"
    )

    # 2. specialize the analyzed program
    residual = specialize_program(engine)
    print("\n===== residual program (kernel folded, 3x3 loops unrolled) =====\n")
    print(residual.source)

    # 3. certify equivalence on random images
    rng = random.Random(7)
    for trial in range(3):
        img = [rng.randrange(256) for _ in range(256)]
        original = run_program(SOURCE, {"img": img}, fuel=50_000_000)
        specialized = run_program(residual.source, {"img": img}, fuel=50_000_000)
        assert original["out"] == specialized["out"], "residual diverged!"
    print("verified: residual == original on 3 random 16x16 images")

    original_lines = SOURCE.count("\n") + 1
    residual_lines = residual.source.count("\n") + 1
    print(
        f"\noriginal: {original_lines} lines with interpreted kernel; "
        f"residual: {residual_lines} lines of straight-line inner code"
    )


if __name__ == "__main__":
    main()
