"""Statically-derived specialization: prove the pattern, drop the guards.

Run with::

    python examples/static_autospec.py

Lint this file (it declares its own ``LINT_TARGETS``)::

    python -m repro.lint examples/static_autospec.py

The paper's future work (section 7) proposes constructing specialization
classes "based on an analysis of the data modification pattern of the
program". ``examples/adaptive_autospec.py`` shows the *dynamic* variant:
observe dirty flags at run time, compile **guarded** because observation
under-approximates. This example shows the *static* one: a may-modify
effect analysis of the phase's source computes an over-approximation of
every position the phase can write, so the derived pattern is sound by
construction and the specialization compiles **unguarded** — the run-time
checks verify nothing that can fail, and the checkpoints are
byte-identical to the generic driver's.
"""

from __future__ import annotations

import time

from repro.core.checkpoint import Checkpoint, reset_flags
from repro.core.streams import DataOutputStream
from repro.lint import LintTarget
from repro.spec import (
    AutoSpecializer,
    ModificationPattern,
    PatternObserver,
    Shape,
    SpecClass,
    SpecCompiler,
    analyze_effects,
)
from repro.synthetic.structures import build_structure, structure_objects

NUM_LISTS = 4
LIST_LENGTH = 8
INTS_PER_ELEMENT = 2

STRUCTURE = build_structure(NUM_LISTS, LIST_LENGTH, INTS_PER_ELEMENT)
SHAPE = Shape.of(STRUCTURE)


def hot_phase(structure) -> None:
    """The program phase running between checkpoints.

    Only two of the four lists are ever touched: the head of ``list0``
    and the third element of ``list1``. ``list2`` and ``list3`` are
    read-only for the whole phase — the analysis proves it, so the
    specialized routine never visits them at all (paper Figure 6).
    """
    structure.list0.v0 += 1
    structure.list1.next.next.v0 += 5


#: the promise a programmer would have written by hand; the linter checks
#: it against the analysis (sound and exact here)
DECLARED = ModificationPattern.only(
    SHAPE, [("list0",), ("list1", "next", "next")]
)

LINT_TARGETS = [
    LintTarget(
        "hot-phase",
        shape=SHAPE,
        phases=[hot_phase],
        pattern=DECLARED,
        roots=["structure"],
    ),
]


def snapshot_flags(structure):
    return [
        (obj._ckpt_info, obj._ckpt_info.modified)
        for obj in structure_objects(structure)
    ]


def restore_flags(snapshot) -> None:
    for info, modified in snapshot:
        if modified:
            info.set_modified()
        else:
            info.reset_modified()


def generic_checkpoint(structure) -> bytes:
    driver = Checkpoint()
    driver.checkpoint(structure)
    return driver.getvalue()


def specialized_checkpoint(fn, structure) -> bytes:
    out = DataOutputStream()
    fn(structure, out)
    return out.getvalue()


def main() -> None:
    print("=== 1. Static may-modify effect analysis of hot_phase ===")
    report = analyze_effects(SHAPE, [hot_phase], roots=["structure"])
    print(f"shape positions: {SHAPE.node_count()}")
    print(f"may be written:  {len(report.may_write)} "
          f"(analysis exact: {report.is_exact()})")
    for path in sorted(report.may_write, key=repr):
        site = report.evidence(path)[0]
        print(f"  {path!r:34} written at {site.location()}")

    print()
    print("=== 2. Statically proven pattern -> UNGUARDED specialization ===")
    static_spec = SpecClass.from_static_analysis(
        SHAPE,
        [hot_phase],
        name="static_hot_ckpt",
        declared=DECLARED,  # checked for soundness; unsound would raise
        roots=["structure"],
    )
    compiler = SpecCompiler()
    static_fn = compiler.compile(static_spec)
    print(f"compiled {len(static_fn.source_lines())} lines, no guards:")
    print("  untouched lists eliminated:",
          all(f"_f_list{i}" not in static_fn.source for i in (2, 3)))
    print("  runtime checks compiled in:",
          "PatternViolationError" in static_fn.source)

    print()
    print("=== 3. Dynamic contrast: observed pattern -> GUARDED routine ===")
    reset_flags(STRUCTURE)
    observer = PatternObserver(SHAPE)
    hot_phase(STRUCTURE)          # one representative warm-up run
    observer.observe(STRUCTURE)
    auto = AutoSpecializer(SHAPE, observer, name="dynamic_hot_ckpt")
    guarded_fn = auto.compiled()
    print(f"observed dirty positions: {sorted(observer.seen_dirty(), key=repr)}")
    print("  runtime checks compiled in:",
          "PatternViolationError" in guarded_fn.source)

    print()
    print("=== 4. All three record byte-identical checkpoints ===")
    # STRUCTURE is dirty from the warm-up run; replay the identical flag
    # state into each variant.
    snapshot = snapshot_flags(STRUCTURE)
    expected = generic_checkpoint(STRUCTURE)
    restore_flags(snapshot)
    guarded_bytes = specialized_checkpoint(guarded_fn, STRUCTURE)
    restore_flags(snapshot)
    static_bytes = specialized_checkpoint(static_fn, STRUCTURE)
    print(f"generic driver:        {len(expected)} bytes")
    print(f"guarded (dynamic):     identical: {guarded_bytes == expected}")
    print(f"unguarded (static):    identical: {static_bytes == expected}")
    assert guarded_bytes == expected and static_bytes == expected

    print()
    print("=== 5. What dropping the guards buys ===")
    rounds = 3000
    timings = {}
    for label, fn in (("guarded", guarded_fn), ("static", static_fn)):
        restore_flags(snapshot)
        start = time.perf_counter()
        for _ in range(rounds):
            restore_flags(snapshot)
            specialized_checkpoint(fn, STRUCTURE)
        timings[label] = time.perf_counter() - start
    ratio = timings["guarded"] / timings["static"]
    print(f"guarded: {timings['guarded']:.3f}s   "
          f"static unguarded: {timings['static']:.3f}s   "
          f"({ratio:.2f}x)")
    print()
    print("The static route needs no warm-up runs, cannot be surprised by")
    print("an unobserved write (the analysis over-approximates), and pays")
    print("zero run-time checking. Its price: opaque calls in the phase")
    print("would widen the pattern toward all-dynamic.")


if __name__ == "__main__":
    main()
