"""Adaptive checkpointing: derive specialization classes automatically.

Run with::

    python examples/adaptive_autospec.py

The paper's future work (section 7) proposes constructing specialization
classes automatically from the program's observed modification pattern.
This example runs a workload whose behaviour the programmer never
declares: a ring of sensor aggregators where, for long stretches, only
one "hot" region is updated. A :class:`PatternObserver` watches a few
warm-up rounds, the derived guarded specialized routine then checkpoints
at specialized speed — and when the workload shifts to a new region, the
guard fires once and the specializer refines itself.
"""

import time

from repro.core.checkpoint import Checkpoint, FullCheckpoint, reset_flags
from repro.core.checkpointable import Checkpointable
from repro.core.errors import PatternViolationError
from repro.core.fields import child, child_list, scalar
from repro.core.streams import DataOutputStream
from repro.spec.autospec import AutoSpecializer, PatternObserver
from repro.spec.shape import Shape

REGIONS = 8
SENSORS_PER_REGION = 6
ROUNDS_PER_PHASE = 40


class Sensor(Checkpointable):
    reading = scalar("int")
    samples = scalar("int")


class Region(Checkpointable):
    name = scalar("str")
    sensors = child_list(Sensor)
    total = scalar("int")


class Plant(Checkpointable):
    regions = child_list(Region)
    alarm = child(Sensor)


def build_plant() -> Plant:
    plant = Plant()
    for index in range(REGIONS):
        region = Region(name=f"region-{index}")
        for _ in range(SENSORS_PER_REGION):
            region.sensors.append(Sensor())
        plant.regions.append(region)
    plant.alarm = Sensor()
    return plant


def update_region(plant: Plant, region_index: int, round_index: int) -> None:
    region = plant.regions[region_index]
    sensor = region.sensors[round_index % SENSORS_PER_REGION]
    sensor.reading = round_index * 3 + region_index
    sensor.samples = sensor.samples + 1
    region.total = region.total + sensor.reading


def main() -> None:
    plant = build_plant()
    base = FullCheckpoint()
    base.checkpoint(plant)
    shape = Shape.of(plant)

    # -- warm up: observe which positions the workload actually touches ----
    observer = PatternObserver(shape)
    for round_index in range(5):
        update_region(plant, region_index=2, round_index=round_index)
        observer.observe(plant)
        driver = Checkpoint()  # still checkpointing generically
        driver.checkpoint(plant)
    print(
        f"observed {len(observer.seen_dirty())} dirty positions out of "
        f"{shape.node_count()} ({observer.coverage():.0%} of the structure)"
    )

    auto = AutoSpecializer(shape, observer, name="plant_ckpt")
    fast = auto.compiled()
    print(f"derived routine: {len(fast.source_lines())} lines "
          f"(vs a {shape.node_count()}-node structure)\n")

    def run_phase(region_index: int, label: str) -> None:
        nonlocal fast
        refinements = 0
        start = time.perf_counter()
        produced = 0
        for round_index in range(ROUNDS_PER_PHASE):
            update_region(plant, region_index, round_index)
            out = DataOutputStream()
            try:
                fast(plant, out)
            except PatternViolationError:
                # The workload shifted: widen the pattern and recompile.
                fast = auto.refine(plant)
                refinements += 1
                out = DataOutputStream()
                fast(plant, out)
            produced += out.size
        elapsed = (time.perf_counter() - start) * 1000
        print(
            f"{label}: {ROUNDS_PER_PHASE} checkpoints, {produced} bytes, "
            f"{elapsed:.2f} ms, {refinements} refinement(s), "
            f"routine now covers {len(auto.observer.seen_dirty())} positions"
        )

    run_phase(2, "phase 1 (hot region 2, as observed)")
    run_phase(5, "phase 2 (workload shifts to region 5)")
    run_phase(5, "phase 3 (region 5 again, no further refinement)")

    # Sanity: the adaptive checkpoints replay to the live state.
    from repro.core.restore import structurally_equal
    reset_flags(plant)
    check = FullCheckpoint()
    check.checkpoint(plant)
    from repro.core.restore import restore_full
    recovered = restore_full(check.getvalue())[plant._ckpt_info.object_id]
    assert structurally_equal(plant, recovered, compare_ids=True)
    print("\nfinal state verified against a fresh full checkpoint")


if __name__ == "__main__":
    main()
