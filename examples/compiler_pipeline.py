"""A compiler pipeline that time-travels past its own bugs.

Run with::

    python examples/compiler_pipeline.py

Four phases — parse, flatten, typecheck, lint — run over a program from
:mod:`repro.analysis`, committing a **named checkpoint** after each
phase. A deliberately buggy typecheck pass then corrupts half the IR
before dying; instead of rerunning the pipeline from scratch, the
session **restores the last good phase** (``restore("flatten")`` rolls
the heap back byte-identically) and retries with the fixed pass.
Finally the session **forks** a branch at the typecheck pin to run a
stricter lint configuration side by side — both branches stay
addressable in the same store.
"""

import os
import shutil
import tempfile

from repro.analysis.lang import astnodes as ast
from repro.analysis.lang.parser import parse
from repro.analysis.programs import image_pipeline_source
from repro.core.checkpointable import Checkpointable
from repro.core.fields import child_list, scalar, scalar_list
from repro.core.restore import state_digest
from repro.runtime.session import CheckpointSession

#: type codes the checker assigns to IR operations
UNTYPED, INT, FLOAT = -1, 0, 1


class IROp(Checkpointable):
    """One flattened IR operation (a linearized AST expression)."""

    opcode = scalar("str")
    operands = scalar("int")
    type_code = scalar("int")


class PipelineState(Checkpointable):
    """The pipeline's whole mutable state, as a single checkpoint root."""

    phase = scalar("str")
    nodes = scalar("int")
    ops = child_list(IROp)
    warnings = scalar_list("int")  # node ids the linter flagged


# -- the phases --------------------------------------------------------------


def parse_phase(state, source):
    program = parse(source)
    state.phase = "parse"
    state.nodes = program.node_count
    return program


def flatten_phase(state, program):
    """Linearize every expression into the checkpointable IR list."""
    ops = []
    for node in program.walk():
        if isinstance(node, ast.Expr):
            ops.append(
                IROp(
                    opcode=type(node).__name__,
                    operands=len(node.children()),
                    type_code=UNTYPED,
                )
            )
    state.ops = ops
    state.phase = "flatten"


def typecheck_phase(state, broken=False):
    """Assign a type code to every IR op.

    With ``broken=True`` the pass mis-types the first half of the IR and
    then dies — the injected compiler bug this example recovers from.
    """
    ops = state.ops.as_list() if hasattr(state.ops, "as_list") else state.ops
    for index, op in enumerate(ops):
        if broken and index >= len(ops) // 2:
            raise RuntimeError(
                "injected bug: typecheck died with half the IR corrupted"
            )
        if broken:
            op.type_code = 999  # garbage annotation
        else:
            op.type_code = FLOAT if op.opcode == "FloatLit" else INT
    state.phase = "typecheck"


def lint_phase(state, strict=False):
    """Flag suspicious ops; ``strict`` also flags every call boundary."""
    ops = state.ops.as_list() if hasattr(state.ops, "as_list") else state.ops
    flagged = []
    for index, op in enumerate(ops):
        if op.type_code == FLOAT:
            flagged.append(index)  # float arithmetic: precision warning
        elif strict and op.opcode == "Call":
            flagged.append(index)
    state.warnings = flagged
    state.phase = "lint-strict" if strict else "lint"


# -- the pipeline ------------------------------------------------------------


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="repro-pipeline-")
    try:
        source = image_pipeline_source(kernels=3)
        state = PipelineState(phase="init", nodes=0)
        session = CheckpointSession(
            roots=state, sink=os.path.join(workdir, "checkpoints")
        )

        program = parse_phase(state, source)
        session.base(name="parse")
        print(f"parse:     {state.nodes} AST nodes  -> checkpoint 'parse'")

        flatten_phase(state, program)
        session.checkpoint("flatten")
        flatten_digest = state_digest(state)
        print(
            f"flatten:   {len(state.ops)} IR ops     -> checkpoint 'flatten'"
        )

        # -- the injected failure ----------------------------------------
        try:
            typecheck_phase(state, broken=True)
        except RuntimeError as exc:
            corrupted = sum(
                1 for op in state.ops if op.type_code == 999
            )
            print(f"typecheck: FAILED ({exc}); {corrupted} ops corrupted")
            session.restore("flatten")
            # restore() rebinds the session's roots: pick up the restored
            # object — the local variable still points at the corrupt heap
            state = session.roots()[0]
            assert state_digest(state) == flatten_digest
            print(
                "rollback:  restore('flatten') — state byte-identical to "
                "the last good phase"
            )

        typecheck_phase(state)
        session.checkpoint("typecheck")
        typed = sum(1 for op in state.ops if op.type_code != UNTYPED)
        print(f"typecheck: {typed} ops typed   -> checkpoint 'typecheck'")

        lint_phase(state)
        session.checkpoint("lint")
        print(
            f"lint:      {len(state.warnings)} warnings   -> checkpoint 'lint'"
        )

        # -- fork: a stricter lint on its own branch ----------------------
        session.fork(at="typecheck", branch="strict-lint")
        state = session.roots()[0]
        lint_phase(state, strict=True)
        session.commit()
        strict_warnings = len(state.warnings)
        print(
            f"fork:      branch 'strict-lint' relinted with "
            f"{strict_warnings} warnings"
        )

        # Both outcomes stay addressable in one store.
        branches = session.branches()
        lineage = session.lineage()
        print("\nlineage:")
        for branch, head in sorted(branches.items()):
            chain = lineage.chain_indices(head)
            print(
                f"  {branch:12s} head=epoch {head}  "
                f"(chain of {len(chain)} epochs)"
            )
        print(f"  named pins: {session.named_checkpoints()}")

        relaxed = session.sink.materialize("lint")[
            state._ckpt_info.object_id
        ]
        assert len(relaxed.warnings) <= strict_warnings
        print(
            f"\nboth lint configurations recoverable: relaxed="
            f"{len(relaxed.warnings)} strict={strict_warnings} warnings"
        )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    main()
