"""Specialize checkpointing for a compound structure and inspect the result.

Run with::

    python examples/synthetic_sweep.py

Reproduces, in miniature, the paper's synthetic experiment (section 5):
builds compound structures of linked lists, declares structural and
modification-pattern facts, and shows

- the generated monolithic checkpoint routine (the paper's Figure 5/6
  output) for each level of specialization,
- the measured speedups over generic incremental checkpointing, both on
  the calibrated Harissa backend model and in CPython wall clock.
"""

from repro import ModificationPattern, SpecClass, SpecCompiler, Shape
from repro.synthetic.runner import SyntheticConfig, SyntheticWorkload, run_variant, speedup
from repro.synthetic.structures import build_structure
from repro.vm.backends import HARISSA


def show_specialized_code() -> None:
    print("=" * 72)
    print("Specialized code for one structure: 2 lists of length 2, 1 int/elt")
    print("=" * 72)
    prototype = build_structure(num_lists=2, list_length=2, ints_per_element=1)
    shape = Shape.of(prototype)
    compiler = SpecCompiler()

    struct_only = compiler.compile(SpecClass(shape, name="ckpt_struct"))
    print("\n-- structure only (all objects may be modified; Figure 5 style) --")
    print(struct_only.source)

    pattern = ModificationPattern.last_element_of_lists(shape, ["list0"])
    with_pattern = compiler.compile(
        SpecClass(shape, pattern, name="ckpt_struct_mod")
    )
    print("-- structure + pattern (only list0's last element may change;")
    print("--  Figure 6 style: tests and whole traversals eliminated) --")
    print(with_pattern.source)


def sweep() -> None:
    print("=" * 72)
    print("Speedup sweep over generic incremental checkpointing")
    print("=" * 72)
    print(
        f"{'configuration':44s} {'struct':>8s} {'struct+mod':>11s} {'wall s+m':>9s}"
    )
    for percent in (1.0, 0.5, 0.25):
        for lists in (5, 1):
            config = SyntheticConfig(
                num_structures=1000,
                num_lists=5,
                list_length=5,
                ints_per_element=1,
                percent_modified=percent,
                modified_lists=lists,
                last_only=True,
            )
            workload = SyntheticWorkload(config)
            results = {
                variant: run_variant(workload, variant, meter_sample=200)
                for variant in ("incremental", "spec_struct", "spec_struct_mod")
            }
            base = results["incremental"]
            print(
                f"{config.describe():44s} "
                f"{speedup(base, results['spec_struct'], HARISSA):8.2f} "
                f"{speedup(base, results['spec_struct_mod'], HARISSA):11.2f} "
                f"{speedup(base, results['spec_struct_mod']):9.2f}"
            )


def main() -> None:
    show_specialized_code()
    sweep()


if __name__ == "__main__":
    main()
