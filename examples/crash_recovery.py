"""Crash-tolerant analysis: persist checkpoints, crash, recover, resume.

Run with::

    python examples/crash_recovery.py

Demonstrates the durable substrate beneath the paper's scheme, driven
entirely through the checkpoint runtime: the engine's
:class:`~repro.runtime.session.CheckpointSession` drains every epoch (one
base full checkpoint, then one incremental delta per analysis iteration)
into a file-backed sink; we simulate a crash that tears the final epoch
mid-write, then recover in a "fresh process" and resume the analysis.
Recovery discards the torn tail, restores the exact surviving state, and
the resumed run converges from the restored intermediate results.
"""

import os
import shutil
import tempfile

from repro import FileStore
from repro.analysis.engine import AnalysisEngine
from repro.analysis.programs import image_division, image_pipeline_source
from repro.core.restore import state_digest


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="repro-ckpt-")
    try:
        source = image_pipeline_source(kernels=3)
        division = image_division()

        # -- first run: analyse with persistent checkpoints ------------------
        # The store becomes the session's sink; every epoch the engine
        # commits flows through it.
        store = FileStore(os.path.join(workdir, "checkpoints"))
        engine = AnalysisEngine(
            source, division=division, strategy="incremental", store=store
        )
        engine.run()
        digest_before = state_digest(engine.attributes, include_ids=True)
        epochs = engine.session.sink.epochs()
        print(f"first run: {len(epochs)} epochs persisted "
              f"({sum(len(e.data) for e in epochs)} bytes, "
              f"{engine.session.deltas_since_full} deltas on the chain)")

        # -- simulate a crash mid-write of one more epoch ---------------------
        torn_path = os.path.join(store.directory, f"epoch-{len(epochs):06d}.ckpt")
        with open(torn_path, "wb") as handle:
            handle.write(b"RCKP\x01\x00\xff\xff")  # header cut off mid-frame
        print(f"simulated crash: torn epoch written to {os.path.basename(torn_path)}")

        # -- recover in a fresh engine ("new process") -------------------------
        store2 = FileStore(os.path.join(workdir, "checkpoints"))
        assert len(store2.epochs()) == len(epochs), "torn tail must be discarded"
        recovered = AnalysisEngine.recover(
            source, store2, division=division, strategy="incremental"
        )
        digest_after = state_digest(recovered.attributes, include_ids=True)
        assert digest_before == digest_after, "recovered state differs!"
        print("recovered state matches the pre-crash state exactly")

        # -- resume: the analyses converge from the restored results -----------
        report = recovered.run()
        resumed_bytes = report.total_checkpoint_bytes()
        print(
            f"resumed run: iterations {report.phase_iterations}, "
            f"{resumed_bytes} bytes of new incremental checkpoints"
        )
        print(
            "(the resumed deltas are small: the restored fixpoint state was "
            "already mostly converged)"
        )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    main()
