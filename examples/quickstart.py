"""Quickstart: make classes checkpointable, checkpoint incrementally, recover.

Run with::

    python examples/quickstart.py

Walks through the whole core API on a small order-book-like structure:

1. declare checkpointable classes with field descriptors,
2. open a :class:`~repro.runtime.session.CheckpointSession` over the root
   and take a base (full) checkpoint,
3. mutate a few objects — the framework tracks modification flags
   automatically — and commit incremental delta epochs,
4. "crash", and rebuild the exact state from base + deltas via the
   session's recovery line.

Everything flows through the session: the strategy (here the generic
incremental driver) produces each epoch's bytes, and the sink — an
in-process :class:`~repro.runtime.sink.BufferSink` — collects them the way
a durable store would (swap in a directory path to persist across
processes).
"""

from repro import (
    BufferSink,
    CheckpointSession,
    Checkpointable,
    child,
    child_list,
    scalar,
    scalar_list,
)
from repro.core.restore import structurally_equal


# -- 1. declare the checkpointable state ------------------------------------
# Every assignment through a declared field marks its object modified; the
# framework generates record/fold/restore methods per class.


class Position(Checkpointable):
    symbol = scalar("str")
    quantity = scalar("int")
    price = scalar("float")


class Account(Checkpointable):
    owner = scalar("str")
    cash = scalar("float")
    positions = child_list(Position)
    audit = scalar_list("int")


class Exchange(Checkpointable):
    name = scalar("str")
    accounts = child_list(Account)
    best_account = child(Account)


def build_exchange() -> Exchange:
    exchange = Exchange(name="DSN-2000")
    for owner in ("julia", "gilles", "compose"):
        account = Account(owner=owner, cash=1000.0)
        account.positions.append(Position(symbol="JVM", quantity=10, price=99.5))
        account.positions.append(Position(symbol="SPEC", quantity=5, price=42.0))
        exchange.accounts.append(account)
    # alias-ok: best_account points into accounts under the same root
    exchange.best_account = exchange.accounts[0]
    return exchange


def main() -> None:
    exchange = build_exchange()
    root_id = exchange.get_checkpoint_info().object_id

    # -- 2. open a session; the base records every reachable object ----------
    session = CheckpointSession(roots=exchange, sink=BufferSink())
    base = session.base()
    print(f"base checkpoint: {base.size} bytes")

    # -- 3. mutate and commit incremental delta epochs -----------------------
    exchange.accounts[1].cash = 1250.0  # one scalar write -> one dirty object
    exchange.accounts[1].audit.append(1)
    delta1 = session.commit()
    print(f"delta 1 (one account touched): {delta1.size} bytes")

    exchange.accounts[2].positions[0].quantity = 11
    # alias-ok: the pointer retargets within the same recorded root
    exchange.best_account = exchange.accounts[2]  # child pointer change
    delta2 = session.commit()
    print(f"delta 2 (position + root pointer): {delta2.size} bytes")

    # An incremental commit with nothing modified is (almost) free.
    empty = session.commit()
    print(f"delta with no modifications: {empty.size} bytes")

    # -- 4. crash and recover -------------------------------------------------
    # The sink holds the recovery line: the base plus every delta after it.
    table = session.recover()
    recovered = table[root_id]

    assert isinstance(recovered, Exchange)
    assert recovered.accounts[1].cash == 1250.0
    assert recovered.accounts[2].positions[0].quantity == 11
    assert recovered.best_account is recovered.accounts[2]
    assert structurally_equal(exchange, recovered, compare_ids=True)
    print("recovered state is identical to the live state")


if __name__ == "__main__":
    main()
