"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import itertools
import os

import pytest

from repro.core.checkpointable import Checkpointable
from repro.core.fields import child, child_list, scalar, scalar_list

_unique = itertools.count()

_FIELD_FACTORIES = {
    "scalar": scalar,
    "scalar_list": scalar_list,
    "child": child,
    "child_list": child_list,
}


def make_class(name: str, bases=(Checkpointable,), **fields):
    """A throwaway checkpointable class with a collision-free name.

    ``fields`` maps field name -> descriptor (build them with
    ``scalar``/``child``/...). Class names are uniquified because the
    registry intentionally rejects two distinct classes under one name.
    """
    unique_name = f"{name}_{next(_unique)}"
    namespace = dict(fields)
    namespace["__module__"] = "tests.generated"
    namespace["__qualname__"] = unique_name
    return type(unique_name, bases, namespace)


# ---------------------------------------------------------------------------
# A small stable class family, shared by many tests (defined once).
# ---------------------------------------------------------------------------


class Leaf(Checkpointable):
    """A value-carrying leaf object."""

    value = scalar("int")
    weight = scalar("float")
    label = scalar("str")
    flag = scalar("bool")


class Mid(Checkpointable):
    """Holds one leaf plus bookkeeping lists."""

    leaf = child(Leaf)
    notes = scalar_list("int")


class Root(Checkpointable):
    """A two-level compound structure with an optional side child."""

    name = scalar("str")
    mid = child(Mid)
    extra = child(Leaf)
    kids = child_list(Leaf)


def build_root(with_extra: bool = True, kid_count: int = 2) -> Root:
    root = Root(name="root")
    root.mid = Mid(leaf=Leaf(value=7, weight=1.5, label="seven", flag=True))
    root.mid.notes = [1, 2, 3]
    if with_extra:
        root.extra = Leaf(value=-1, weight=0.25, label="extra", flag=False)
    for index in range(kid_count):
        root.kids.append(Leaf(value=index, weight=float(index), label=f"k{index}"))
    return root


@pytest.fixture(scope="session", autouse=True)
def _sanitizer_gate():
    """Weave the dynamic lockset sanitizer when ``REPRO_SANITIZE=1``.

    CI runs the threading/stress tests a second time with this set: the
    whole run then executes with the runtime classes woven, and any
    race the sanitizer observes fails the session at teardown.  Without
    the variable this fixture does nothing, preserving the zero-cost
    default.
    """
    if os.environ.get("REPRO_SANITIZE") != "1":
        yield
        return
    from repro.sanitize import get_sanitizer, unweave_all, weave_runtime

    sanitizer = get_sanitizer()
    sanitizer.reset()
    weave_runtime(sanitizer)
    try:
        yield
    finally:
        unweave_all()
    violations = [v.as_dict() for v in sanitizer.violations]
    assert violations == [], (
        "dynamic lockset sanitizer observed data races during the run: "
        f"{violations}"
    )


@pytest.fixture
def root() -> Root:
    return build_root()


@pytest.fixture
def clean_root() -> Root:
    """A root structure whose flags are all clear (as if just checkpointed)."""
    from repro.core.checkpoint import reset_flags

    built = build_root()
    reset_flags(built)
    return built
