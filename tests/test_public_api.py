"""Coverage of the public API surface and assorted small behaviours."""

import pytest

import repro
from repro.analysis.engine import EngineReport, IterationRecord
from repro.core.errors import SpecializationError
from repro.spec.shape import Shape
from repro.spec.specclass import SpecClass, SpecCompiler
from tests.conftest import build_root


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_docstring_mentions_paper(self):
        assert "Lawall" in repro.__doc__ and "DSN 2000" in repro.__doc__


class TestSpecClassFrontend:
    def test_for_prototype_convenience(self):
        root = build_root()
        spec = SpecClass.for_prototype(root, name="proto_spec")
        assert spec.shape.root.cls.__name__ == "Root"
        fn = SpecCompiler().compile(spec)
        assert fn.spec is spec

    def test_cache_distinguishes_guards(self):
        shape = Shape.of(build_root())
        compiler = SpecCompiler()
        plain = compiler.compile(SpecClass(shape, name="k"))
        guarded = compiler.compile(SpecClass(shape, name="k", guards=True))
        assert plain is not guarded
        assert len(compiler) == 2

    def test_cache_distinguishes_patterns(self):
        shape = Shape.of(build_root())
        compiler = SpecCompiler()
        all_dynamic = compiler.compile(SpecClass(shape, name="k2"))
        narrowed = compiler.compile(
            SpecClass(
                shape,
                repro.ModificationPattern.only(shape, [("mid",)]),
                name="k2",
            )
        )
        assert all_dynamic is not narrowed

    def test_cache_distinguishes_names(self):
        shape = Shape.of(build_root())
        compiler = SpecCompiler()
        first = compiler.compile(SpecClass(shape, name="name_a"))
        second = compiler.compile(SpecClass(shape, name="name_b"))
        assert first is not second
        assert first.source_lines()[0] != second.source_lines()[0]

    def test_pattern_shape_mismatch_rejected(self):
        shape_a = Shape.of(build_root())
        shape_b = Shape.of(build_root())
        pattern = repro.ModificationPattern.all_dynamic(shape_b)
        with pytest.raises(SpecializationError):
            SpecClass(shape_a, pattern)


class TestEngineReport:
    def _record(self, phase, size, seconds=0.5):
        return IterationRecord(
            phase=phase, iteration=1, wall_seconds=seconds, checkpoint_bytes=size
        )

    def test_empty_phase_min_max(self):
        report = EngineReport(strategy="incremental")
        assert report.min_max_bytes("BTA") == (0, 0)
        assert report.total_checkpoint_seconds("BTA") == 0
        assert report.total_checkpoint_bytes() == 0

    def test_aggregations(self):
        report = EngineReport(strategy="incremental")
        report.records = [
            self._record("SE", 100, 1.0),
            self._record("BTA", 50, 0.25),
            self._record("BTA", 10, 0.25),
        ]
        assert report.min_max_bytes("BTA") == (10, 50)
        assert report.total_checkpoint_bytes("BTA") == 60
        assert report.total_checkpoint_bytes() == 160
        assert report.total_checkpoint_seconds() == pytest.approx(1.5)
        assert len(report.phase_records("SE")) == 1


class TestIrPretty:
    def test_pretty_covers_structures(self):
        from repro.spec import ir

        tree = ir.Seq(
            [
                ir.Assign("n0", ir.FieldGet(ir.Var("root"), "_f_mid")),
                ir.If(
                    ir.FieldGet(ir.Var("i0"), "modified"),
                    ir.Seq([ir.Write("int", ir.Const(1))]),
                    ir.Seq([]),
                ),
            ]
        )
        text = ir.pretty(tree)
        assert "n0 = " in text
        assert "if " in text
        assert "else:" in text
        assert ir.pretty(ir.Seq([])) == "pass"


class TestSyntheticDescribe:
    def test_describe_mentions_all_knobs(self):
        from repro.synthetic.runner import SyntheticConfig

        config = SyntheticConfig(
            7, 5, 3, 10, 0.5, modified_lists=2, last_only=True
        )
        text = config.describe()
        for fragment in ("7 structures", "5 lists x 3", "10 ints/elt",
                         "50% modified", "2 modifiable", "last element"):
            assert fragment in text

    def test_invalid_percent_rejected(self):
        from repro.synthetic.runner import SyntheticConfig, SyntheticWorkload

        with pytest.raises(ValueError):
            SyntheticWorkload(SyntheticConfig(5, 2, 2, 1, 1.5))


class TestShapeRepr:
    def test_reprs_do_not_crash(self):
        root = build_root()
        shape = Shape.of(root)
        assert "Root" in repr(shape)
        assert repr(shape.root)
        assert repr(shape.root.edges[0])
        pattern = repro.ModificationPattern.all_dynamic(shape)
        assert "positions" in repr(pattern)
