"""RecoveryManager scan/repair behaviour on damaged checkpoint dirs."""

import json
import os

from repro.core.storage import FULL, INCREMENTAL, FileStore
from repro.fsck.manager import (
    CORRUPT,
    FOREIGN,
    INTACT,
    ORPHAN_TMP,
    TORN,
    UNREACHABLE,
    RecoveryManager,
)

PAYLOAD = b"x" * 40


def make_dir(tmp_path, epochs=4):
    """A healthy store: full, delta, delta, ... at tmp_path/ckpts."""
    directory = str(tmp_path / "ckpts")
    store = FileStore(directory)
    for index in range(epochs):
        store.append(FULL if index == 0 else INCREMENTAL, PAYLOAD)
    return directory, store


def damage(directory, index, mutate):
    path = os.path.join(directory, f"epoch-{index:06d}.ckpt")
    data = bytearray(open(path, "rb").read())
    mutate(path, data)


def truncate_to(path, data, keep):
    with open(path, "wb") as handle:
        handle.write(bytes(data[:keep]))


class TestScanHealthy:
    def test_clean_store_is_consistent(self, tmp_path):
        directory, _ = make_dir(tmp_path)
        report = RecoveryManager(directory).scan()
        assert report.consistent
        assert report.recoverable
        assert report.manifest_ok
        assert report.durable_epochs == [0, 1, 2, 3]
        assert len(report.by_status(INTACT)) == 4

    def test_empty_directory_is_consistent_but_unrecoverable(self, tmp_path):
        directory = str(tmp_path / "empty")
        os.makedirs(directory)
        report = RecoveryManager(directory).scan()
        assert report.consistent
        assert not report.recoverable
        assert report.durable_epochs == []


class TestScanDamage:
    def test_torn_tail_detected(self, tmp_path):
        directory, _ = make_dir(tmp_path)
        damage(directory, 3, lambda path, data: truncate_to(path, data, 20))
        report = RecoveryManager(directory).scan()
        assert not report.consistent
        assert report.durable_epochs == [0, 1, 2]
        assert [e.index for e in report.by_status(TORN)] == [3]

    def test_truncated_header_is_torn(self, tmp_path):
        directory, _ = make_dir(tmp_path)
        damage(directory, 2, lambda path, data: truncate_to(path, data, 5))
        report = RecoveryManager(directory).scan()
        assert [e.index for e in report.by_status(TORN)] == [2]

    def test_bad_magic_is_corrupt(self, tmp_path):
        directory, _ = make_dir(tmp_path)

        def clobber(path, data):
            data[0:4] = b"NOPE"
            open(path, "wb").write(bytes(data))

        damage(directory, 1, clobber)
        report = RecoveryManager(directory).scan()
        assert [e.index for e in report.by_status(CORRUPT)] == [1]
        assert report.durable_epochs == [0]

    def test_crc_mismatch_is_corrupt(self, tmp_path):
        directory, _ = make_dir(tmp_path)

        def flip(path, data):
            data[-1] ^= 0xFF
            open(path, "wb").write(bytes(data))

        damage(directory, 2, flip)
        report = RecoveryManager(directory).scan()
        corrupt = report.by_status(CORRUPT)
        assert [e.index for e in corrupt] == [2]
        assert "CRC" in corrupt[0].detail

    def test_hole_strands_later_epochs(self, tmp_path):
        directory, _ = make_dir(tmp_path)
        os.remove(os.path.join(directory, "epoch-000001.ckpt"))
        report = RecoveryManager(directory).scan()
        assert report.durable_epochs == [0]
        assert sorted(
            e.index for e in report.by_status(UNREACHABLE)
        ) == [2, 3]

    def test_damage_strands_everything_after_it(self, tmp_path):
        directory, _ = make_dir(tmp_path)
        damage(directory, 1, lambda path, data: truncate_to(path, data, 8))
        report = RecoveryManager(directory).scan()
        assert report.durable_epochs == [0]
        assert sorted(
            e.index for e in report.by_status(UNREACHABLE)
        ) == [2, 3]

    def test_orphan_tmp_detected(self, tmp_path):
        directory, _ = make_dir(tmp_path)
        open(os.path.join(directory, "epoch-000009.ckpt.tmp"), "wb").write(
            b"partial"
        )
        report = RecoveryManager(directory).scan()
        assert len(report.by_status(ORPHAN_TMP)) == 1
        assert not report.consistent

    def test_foreign_files_noted_but_harmless(self, tmp_path):
        directory, _ = make_dir(tmp_path)
        open(os.path.join(directory, "notes.txt"), "w").write("hi")
        report = RecoveryManager(directory).scan()
        assert len(report.by_status(FOREIGN)) == 1
        assert report.consistent

    def test_delta_only_store_is_not_recoverable(self, tmp_path):
        directory = str(tmp_path / "ckpts")
        store = FileStore(directory)
        store.append(INCREMENTAL, PAYLOAD)
        report = RecoveryManager(directory).scan()
        assert report.durable_epochs == [0]
        assert not report.recoverable

    def test_bad_manifest_reported(self, tmp_path):
        directory, _ = make_dir(tmp_path)
        open(os.path.join(directory, "manifest.json"), "w").write("{not json")
        report = RecoveryManager(directory).scan()
        assert not report.manifest_ok


class TestRepair:
    def damage_everything(self, tmp_path):
        directory, _ = make_dir(tmp_path)
        damage(directory, 2, lambda path, data: truncate_to(path, data, 20))
        open(os.path.join(directory, "epoch-000009.ckpt.tmp"), "wb").write(
            b"partial"
        )
        return directory

    def test_repair_quarantines_and_restores_consistency(self, tmp_path):
        directory = self.damage_everything(tmp_path)
        report = RecoveryManager(directory).repair()
        assert report.repaired
        assert report.consistent
        assert report.durable_epochs == [0, 1]
        quarantined = [e for e in report.files if e.action == "quarantined"]
        # torn epoch 2, stranded epoch 3, the orphan tmp
        assert len(quarantined) == 3

    def test_repaired_store_recovers_cleanly(self, tmp_path):
        directory = self.damage_everything(tmp_path)
        RecoveryManager(directory).repair()
        store = FileStore(directory)
        assert [epoch.index for epoch in store.epochs()] == [0, 1]

    def test_quarantine_preserves_file_bytes(self, tmp_path):
        directory = self.damage_everything(tmp_path)
        RecoveryManager(directory).repair()
        qdir = os.path.join(directory, "quarantine")
        names = sorted(os.listdir(qdir))
        assert "epoch-000002.ckpt" in names
        assert "epoch-000009.ckpt.tmp" in names
        data = open(os.path.join(qdir, "epoch-000002.ckpt"), "rb").read()
        assert len(data) == 20  # the torn bytes, moved not deleted

    def test_custom_quarantine_dir(self, tmp_path):
        directory = self.damage_everything(tmp_path)
        qdir = str(tmp_path / "elsewhere")
        RecoveryManager(directory, quarantine_dir=qdir).repair()
        assert "epoch-000002.ckpt" in os.listdir(qdir)

    def test_repair_on_clean_store_is_a_noop(self, tmp_path):
        directory, _ = make_dir(tmp_path)
        report = RecoveryManager(directory).repair()
        assert report.consistent
        assert all(e.action == "kept" for e in report.files)
        assert not os.path.exists(os.path.join(directory, "quarantine"))


class TestReportShape:
    def test_json_round_trip(self, tmp_path):
        directory, _ = make_dir(tmp_path)
        damage(directory, 3, lambda path, data: truncate_to(path, data, 6))
        report = RecoveryManager(directory).scan()
        payload = json.loads(report.to_json())
        assert payload["consistent"] is False
        assert payload["counts"][TORN] == 1
        assert payload["durable_epochs"] == [0, 1, 2]

    def test_summary_mentions_state(self, tmp_path):
        directory, _ = make_dir(tmp_path)
        text = RecoveryManager(directory).scan().summary()
        assert "consistent" in text
        assert "4 durable epoch(s)" in text
