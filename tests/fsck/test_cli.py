"""Exit codes and output of ``python -m repro.fsck``."""

import io
import json
import os

from repro.core.storage import FULL, INCREMENTAL, FileStore
from repro.fsck.cli import main

PAYLOAD = b"y" * 32


def make_dir(tmp_path, epochs=3):
    directory = str(tmp_path / "ckpts")
    store = FileStore(directory)
    for index in range(epochs):
        store.append(FULL if index == 0 else INCREMENTAL, PAYLOAD)
    return directory


def tear(directory, index, keep):
    path = os.path.join(directory, f"epoch-{index:06d}.ckpt")
    data = open(path, "rb").read()
    open(path, "wb").write(data[:keep])


class TestExitCodes:
    def test_clean_scan_exits_zero(self, tmp_path):
        assert main([make_dir(tmp_path)], out=io.StringIO()) == 0

    def test_damaged_scan_exits_one(self, tmp_path):
        directory = make_dir(tmp_path)
        tear(directory, 2, 10)
        assert main([directory], out=io.StringIO()) == 1

    def test_repair_restores_zero(self, tmp_path):
        directory = make_dir(tmp_path)
        tear(directory, 2, 10)
        assert main([directory, "--repair"], out=io.StringIO()) == 0
        # And a subsequent plain scan agrees.
        assert main([directory], out=io.StringIO()) == 0


class TestOutput:
    def test_json_output_parses(self, tmp_path):
        directory = make_dir(tmp_path)
        tear(directory, 1, 5)
        out = io.StringIO()
        code = main([directory, "--json"], out=out)
        payload = json.loads(out.getvalue())
        assert code == 1
        assert payload["consistent"] is False
        assert payload["counts"]["torn"] == 1

    def test_human_output_lists_files(self, tmp_path):
        directory = make_dir(tmp_path)
        out = io.StringIO()
        main([directory], out=out)
        text = out.getvalue()
        assert "epoch-000000.ckpt: intact" in text
        assert "consistent" in text

    def test_repair_notes_quarantine_actions(self, tmp_path):
        directory = make_dir(tmp_path)
        tear(directory, 2, 10)
        out = io.StringIO()
        main([directory, "--repair"], out=out)
        assert "quarantined" in out.getvalue()


class TestQuarantineFlag:
    def test_custom_quarantine_directory(self, tmp_path):
        directory = make_dir(tmp_path)
        tear(directory, 2, 10)
        qdir = str(tmp_path / "jail")
        assert (
            main(
                [directory, "--repair", "--quarantine", qdir],
                out=io.StringIO(),
            )
            == 0
        )
        assert "epoch-000002.ckpt" in os.listdir(qdir)
