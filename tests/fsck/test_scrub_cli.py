"""Replica-aware fsck: multi-directory scans, --scrub, the damage fixture."""

import importlib.util
import io
import json
import os
from pathlib import Path

import pytest

from repro.core.replica import ReplicatedStore
from repro.core.storage import FULL, INCREMENTAL, FileStore
from repro.fsck.cli import main

REPO = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def fixture_tool():
    spec = importlib.util.spec_from_file_location(
        "make_corrupt_fixture", REPO / "tools" / "make_corrupt_fixture.py"
    )
    tool = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(tool)
    return tool


def make_replica_set(tmp_path, epochs=4):
    dirs = [str(tmp_path / f"r{i}") for i in range(3)]
    store = ReplicatedStore([FileStore(d) for d in dirs])
    for index in range(epochs):
        store.append(FULL if index == 0 else INCREMENTAL, b"z" * 64)
    return dirs


def diverge(directory, index):
    """Rewrite one record through the child's framing (CRC stays valid)."""
    store = FileStore(directory)
    epoch = store.epoch_map()[index]
    data = bytearray(epoch.data)
    data[len(data) // 2] ^= 0xFF
    store.put_epoch(epoch._replace(data=bytes(data)), overwrite=True)


class TestMultiDirectory:
    def test_clean_replicas_exit_zero(self, tmp_path):
        dirs = make_replica_set(tmp_path)
        assert main(dirs, out=io.StringIO()) == 0

    def test_json_shape(self, tmp_path):
        dirs = make_replica_set(tmp_path)
        out = io.StringIO()
        assert main(dirs + ["--json"], out=out) == 0
        payload = json.loads(out.getvalue())
        assert set(payload["replicas"]) == set(dirs)
        assert payload["scrub"] is None
        assert payload["consistent"] is True

    def test_quarantine_flag_rejected_for_replicas(self, tmp_path):
        dirs = make_replica_set(tmp_path)
        code = main(
            dirs + ["--quarantine", str(tmp_path / "q")], out=io.StringIO()
        )
        assert code == 2

    def test_single_directory_output_unchanged(self, tmp_path):
        dirs = make_replica_set(tmp_path)
        out = io.StringIO()
        assert main([dirs[0], "--json"], out=out) == 0
        payload = json.loads(out.getvalue())
        # the legacy shape: one report at the top level, no wrapper
        assert "replicas" not in payload
        assert payload["consistent"] is True


class TestScrub:
    def test_scrub_heals_divergence_and_exits_zero(self, tmp_path):
        dirs = make_replica_set(tmp_path)
        diverge(dirs[1], 2)
        out = io.StringIO()
        code = main(dirs + ["--scrub", "--json"], out=out)
        payload = json.loads(out.getvalue())
        assert code == 0
        assert payload["scrub"]["repaired"] == [
            {"replica": dirs[1], "index": 2, "action": "replaced"}
        ]
        assert payload["scrub"]["healed"] is True
        # quarantined, never deleted
        assert os.listdir(os.path.join(dirs[1], "quarantine"))

    def test_scrub_human_output(self, tmp_path):
        dirs = make_replica_set(tmp_path)
        diverge(dirs[2], 1)
        out = io.StringIO()
        assert main(dirs + ["--scrub"], out=out) == 0
        text = out.getvalue()
        assert "scrub:" in text
        assert "1 repaired" in text
        assert "quarantined" in text

    def test_unrepairable_exits_one(self, tmp_path):
        dirs = make_replica_set(tmp_path)
        for directory in dirs:
            diverge(directory, 2)  # no valid copy anywhere
        out = io.StringIO()
        code = main(dirs + ["--scrub", "--json"], out=out)
        payload = json.loads(out.getvalue())
        assert code == 1
        assert payload["scrub"]["unrepairable"] == [2]

    def test_scrub_runs_before_scans(self, tmp_path):
        dirs = make_replica_set(tmp_path)
        # tear a file so a plain scan would flag it; the scrub rewrites
        # it from the quorum first, so the per-replica report is clean
        path = os.path.join(dirs[0], "epoch-000002.ckpt")
        data = open(path, "rb").read()
        open(path, "wb").write(data[: len(data) // 2])
        out = io.StringIO()
        code = main(dirs + ["--scrub", "--json"], out=out)
        payload = json.loads(out.getvalue())
        assert code == 0
        assert payload["replicas"][dirs[0]]["consistent"] is True


class TestReplicaFixtureTool:
    def test_fixture_damage_manifest(self, fixture_tool, tmp_path):
        out_dir = str(tmp_path / "fixture")
        damage = fixture_tool.build_replica_fixture(out_dir, epochs=8)
        assert damage["replicas"] == ["r0", "r1", "r2"]
        modes = {entry["mode"] for entry in damage["seeded"]}
        assert modes == {"diverged-record", "missing-epoch", "stale-manifest"}
        on_disk = json.load(open(os.path.join(out_dir, "damage.json")))
        assert on_disk == damage

    def test_scrub_repairs_exactly_the_seeded_damage(
        self, fixture_tool, tmp_path
    ):
        out_dir = str(tmp_path / "fixture")
        damage = fixture_tool.build_replica_fixture(out_dir, epochs=8)
        dirs = [os.path.join(out_dir, r) for r in damage["replicas"]]
        out = io.StringIO()
        code = main(dirs + ["--scrub", "--json"], out=out)
        payload = json.loads(out.getvalue())
        assert code == 0
        repaired = {
            (os.path.basename(entry["replica"]), entry["index"])
            for entry in payload["scrub"]["repaired"]
        }
        seeded = {
            (entry["replica"], entry["epoch"]) for entry in damage["seeded"]
        }
        assert repaired == seeded
        assert payload["scrub"]["unrepairable"] == []

    def test_fixture_tool_cli_rejects_tiny_quorum(self, fixture_tool, tmp_path):
        with pytest.raises(SystemExit):
            fixture_tool.main(
                [str(tmp_path / "nope"), "--replicas", "2"]
            )
