"""Lineage-aware fsck: branched fixtures, orphan quarantine, version skew."""

import importlib.util
import io
import json
import os
from pathlib import Path

import pytest

from repro.core.storage import FULL, FileStore, MemoryStore
from repro.fsck.cli import main
from repro.fsck.manager import RecoveryManager

REPO = Path(__file__).resolve().parents[2]


def load_fixture_tool():
    spec = importlib.util.spec_from_file_location(
        "make_lineage_fixture", REPO / "tools" / "make_lineage_fixture.py"
    )
    tool = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(tool)
    return tool


@pytest.fixture(scope="module")
def fixture_tool():
    return load_fixture_tool()


def build(fixture_tool, tmp_path, damage):
    directory = str(tmp_path / damage)
    summary = fixture_tool.build_fixture(directory, damage=damage)
    return directory, summary


class TestIntactBranchedStore:
    def test_scan_reports_branches_and_names(self, fixture_tool, tmp_path):
        directory, summary = build(fixture_tool, tmp_path, "none")
        report = RecoveryManager(directory).scan()
        assert report.consistent
        assert report.recoverable
        assert report.durable_epochs == summary["expected_durable"]
        assert report.branches == {"main": 3, "side": 5}
        assert report.named == {"pin": 2}
        assert report.orphan_branches == []

    def test_cli_exits_zero(self, fixture_tool, tmp_path):
        directory, _ = build(fixture_tool, tmp_path, "none")
        assert main([directory], out=io.StringIO()) == 0


class TestOrphanBranch:
    def test_orphans_classified_not_lost(self, fixture_tool, tmp_path):
        directory, summary = build(fixture_tool, tmp_path, "orphan-branch")
        report = RecoveryManager(directory).scan()
        assert not report.consistent
        assert report.recoverable  # main's chain is untouched
        assert report.durable_epochs == summary["expected_durable"]
        assert report.orphan_branches == ["side"]
        unreachable = [
            f.name for f in report.files if f.status == "unreachable"
        ]
        assert unreachable == ["epoch-000005.ckpt"]

    def test_repair_quarantines_orphans_without_data_loss(
        self, fixture_tool, tmp_path
    ):
        directory, summary = build(fixture_tool, tmp_path, "orphan-branch")
        manager = RecoveryManager(directory)
        report = manager.repair()
        assert report.repaired
        # quarantined, not deleted: the bytes still exist
        quarantined = os.listdir(manager.quarantine_dir)
        assert "epoch-000005.ckpt" in quarantined
        # the surviving store is clean and every durable epoch replays
        after = RecoveryManager(directory).scan()
        assert after.consistent
        store = FileStore(directory)
        for index in summary["expected_durable"]:
            table = store.materialize(index)
            assert len(table.ids()) > 0

    def test_cli_exits_one(self, fixture_tool, tmp_path):
        directory, _ = build(fixture_tool, tmp_path, "orphan-branch")
        assert main([directory], out=io.StringIO()) == 1


class TestUnknownFormatVersion:
    def test_scan_fails_gracefully(self, fixture_tool, tmp_path):
        directory, _ = build(fixture_tool, tmp_path, "unknown-version")
        report = RecoveryManager(directory).scan()
        assert not report.consistent
        assert not report.manifest_supported
        assert not report.manifest_ok
        assert any(
            "format_version" in action for action in report.actions
        )

    def test_cli_exit_nonzero_no_traceback(self, fixture_tool, tmp_path):
        directory, _ = build(fixture_tool, tmp_path, "unknown-version")
        out = io.StringIO()
        code = main([directory, "--json"], out=out)
        payload = json.loads(out.getvalue())
        assert code == 1
        assert payload["manifest_supported"] is False

    def test_repair_refuses_to_move_files(self, fixture_tool, tmp_path):
        directory, _ = build(fixture_tool, tmp_path, "unknown-version")
        before = sorted(os.listdir(directory))
        manager = RecoveryManager(directory)
        report = manager.repair()
        assert sorted(os.listdir(directory)) == before
        assert not os.path.isdir(manager.quarantine_dir) or not os.listdir(
            manager.quarantine_dir
        )
        assert any("repair refused" in action for action in report.actions)


class TestTornHead:
    def test_torn_head_drops_one_epoch_keeps_both_branches(
        self, fixture_tool, tmp_path
    ):
        directory, summary = build(fixture_tool, tmp_path, "torn-head")
        report = RecoveryManager(directory).scan()
        assert not report.consistent
        assert report.durable_epochs == summary["expected_durable"]
        # the side branch is unaffected by main's torn head
        assert report.branches["side"] == 5
        assert "side" not in report.orphan_branches

    def test_repair_then_rescan_clean(self, fixture_tool, tmp_path):
        directory, _ = build(fixture_tool, tmp_path, "torn-head")
        RecoveryManager(directory).repair()
        after = RecoveryManager(directory).scan()
        assert after.consistent
        assert after.recoverable


class TestReportRoundTrip:
    def test_lineage_fields_survive_json(self, fixture_tool, tmp_path):
        directory, _ = build(fixture_tool, tmp_path, "orphan-branch")
        report = RecoveryManager(directory).scan()
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["orphan_branches"] == ["side"]
        assert payload["branches"] == {"main": 3}
        assert payload["named"] == {"pin": 2}
        assert payload["manifest_supported"] is True
