"""Unit tests for the simplified-C reference interpreter."""

import pytest

from repro.analysis.interp import Interpreter, InterpreterError, run_program
from repro.analysis.lang.parser import parse
from repro.analysis.symbols import resolve


class TestArithmetic:
    def test_integer_division_truncates_toward_zero(self):
        state = run_program(
            "int a = 0;\nint b = 0;\nint c = 0;\nint d = 0;\n"
            "void main() { a = 7 / 2; b = -7 / 2; c = 7 / -2; d = -7 / -2; }"
        )
        assert (state["a"], state["b"], state["c"], state["d"]) == (3, -3, -3, 3)

    def test_modulo_sign_follows_dividend(self):
        state = run_program(
            "int a = 0;\nint b = 0;\n"
            "void main() { a = 7 % 3; b = -7 % 3; }"
        )
        assert (state["a"], state["b"]) == (1, -1)

    def test_division_by_zero(self):
        with pytest.raises(InterpreterError, match="division by zero"):
            run_program("int a = 0;\nvoid main() { a = 1 / (a * 2); }")

    def test_float_arithmetic(self):
        state = run_program(
            "float x = 1.5;\nfloat y = 0.0;\nvoid main() { y = x * 2.0 + 1.0; }"
        )
        assert state["y"] == pytest.approx(4.0)

    def test_comparisons_yield_ints(self):
        state = run_program(
            "int a = 0;\nint b = 0;\n"
            "void main() { a = 3 < 5; b = 3 >= 5; }"
        )
        assert (state["a"], state["b"]) == (1, 0)

    def test_unary_operators(self):
        state = run_program(
            "int a = 0;\nint b = 0;\nint c = 0;\n"
            "void main() { a = -5; b = !0; c = !7; }"
        )
        assert (state["a"], state["b"], state["c"]) == (-5, 1, 0)


class TestShortCircuit:
    def test_and_skips_right_on_false(self):
        # The right operand would divide by zero if evaluated.
        state = run_program(
            "int z = 0;\nint r = 5;\nvoid main() { r = (1 < 0) && (1 / z); }"
        )
        assert state["r"] == 0

    def test_or_skips_right_on_true(self):
        state = run_program(
            "int z = 0;\nint r = 5;\nvoid main() { r = (0 < 1) || (1 / z); }"
        )
        assert state["r"] == 1

    def test_logical_results_normalized(self):
        state = run_program(
            "int a = 0;\nvoid main() { a = 7 && 9; }"
        )
        assert state["a"] == 1


class TestControlAndState:
    def test_globals_zero_initialized(self):
        state = run_program("int x;\nint a[3];\nvoid main() { }")
        assert state["x"] == 0
        assert state["a"] == [0, 0, 0]

    def test_inputs_override_globals(self):
        state = run_program(
            "int x = 1;\nint a[3];\nvoid main() { x = x + a[1]; }",
            inputs={"x": 10, "a": [5, 6, 7]},
        )
        assert state["x"] == 16

    def test_bad_input_names_and_sizes(self):
        with pytest.raises(InterpreterError, match="no global"):
            run_program("int x;\nvoid main() { }", inputs={"y": 1})
        with pytest.raises(InterpreterError, match="exceeds"):
            run_program("int a[2];\nvoid main() { }", inputs={"a": [1, 2, 3]})

    def test_array_bounds_checked(self):
        with pytest.raises(InterpreterError, match="out of bounds"):
            run_program("int a[2];\nint i = 5;\nvoid main() { a[i] = 1; }")

    def test_while_and_for(self):
        state = run_program(
            "int total = 0;\n"
            "void main() { int i = 0; while (i < 5) { total = total + i; "
            "i = i + 1; } for (i = 0; i < 3; i = i + 1) { total = total + 10; } }"
        )
        assert state["total"] == 10 + 30

    def test_recursion(self):
        state = run_program(
            "int r = 0;\n"
            "int fact(int n) { if (n <= 1) { return 1; } "
            "return n * fact(n - 1); }\n"
            "void main() { r = fact(6); }"
        )
        assert state["r"] == 720

    def test_return_unwinds_loops(self):
        state = run_program(
            "int r = 0;\n"
            "int find() { int i; for (i = 0; i < 100; i = i + 1) "
            "{ if (i == 7) { return i; } } return 0 - 1; }\n"
            "void main() { r = find(); }"
        )
        assert state["r"] == 7

    def test_fuel_exhaustion(self):
        with pytest.raises(InterpreterError, match="fuel"):
            run_program(
                "int x = 1;\nvoid main() { while (x) { x = 1; } }", fuel=1000
            )

    def test_call_api(self):
        program = parse("int twice(int x) { return x * 2; }\nvoid main() { }")
        interp = Interpreter(program, resolve(program))
        interp._init_globals()
        assert interp.call("twice", [21]) == 42
        with pytest.raises(InterpreterError, match="expects 1"):
            interp.call("twice", [])
        with pytest.raises(InterpreterError, match="no function"):
            interp.call("missing", [])
