"""Unit tests for the analysis engine and its checkpointing strategies."""

import pytest

from repro.analysis.attributes import AttributesTable
from repro.analysis.engine import PHASE_WRITES, AnalysisEngine
from repro.analysis.programs import image_division, image_pipeline_source, tiny_source
from repro.core.errors import CheckpointError, RestoreError
from repro.core.restore import state_digest
from repro.core.storage import MemoryStore


@pytest.fixture(scope="module")
def tiny():
    return tiny_source()


class TestBasicRun:
    def test_phases_run_and_report(self, tiny):
        engine = AnalysisEngine(tiny, division=image_division())
        report = engine.run()
        assert set(report.phase_iterations) == {"SE", "BTA", "ETA"}
        assert all(v >= 2 for v in report.phase_iterations.values())
        assert report.base_bytes > 0
        assert len(report.records) == sum(report.phase_iterations.values())
        assert report.analysis_seconds > 0

    def test_unknown_strategy_rejected(self, tiny):
        with pytest.raises(CheckpointError, match="unknown strategy"):
            AnalysisEngine(tiny, strategy="bogus")

    def test_strategy_none_takes_no_checkpoints(self, tiny):
        engine = AnalysisEngine(tiny, strategy="none")
        report = engine.run()
        assert report.records == []
        assert report.base_bytes == 0

    def test_attributes_one_per_ast_node(self, tiny):
        engine = AnalysisEngine(tiny)
        assert len(engine.attributes.entries) == engine.program.node_count
        assert engine.attributes.of(engine.program).node_id == 0


class TestCheckpointShrinkage:
    def test_incremental_sizes_decrease_to_zero(self, tiny):
        engine = AnalysisEngine(tiny, division=image_division())
        report = engine.run()
        for phase in ("SE", "BTA", "ETA"):
            sizes = [r.checkpoint_bytes for r in report.phase_records(phase)]
            assert sizes[-1] == 0  # the verification pass changes nothing
            assert sizes[0] >= sizes[-1]

    def test_full_sizes_constant(self, tiny):
        engine = AnalysisEngine(tiny, division=image_division(), strategy="full")
        report = engine.run()
        sizes = {r.checkpoint_bytes for r in report.records}
        assert len(sizes) == 1

    def test_incremental_much_smaller_than_full(self, tiny):
        incremental = AnalysisEngine(tiny, division=image_division()).run()
        full = AnalysisEngine(tiny, division=image_division(), strategy="full").run()
        assert (
            incremental.total_checkpoint_bytes()
            < full.total_checkpoint_bytes() / 2
        )


class TestStrategyEquivalence:
    def test_all_strategies_write_identical_incremental_bytes(self, tiny):
        """incremental / reflective / specialized record the same data."""
        data = {}
        for strategy in ("incremental", "reflective", "specialized"):
            engine = AnalysisEngine(
                tiny, division=image_division(), strategy=strategy
            )
            engine.run()
            data[strategy] = [
                r.checkpoint_bytes for r in engine.report.records
            ]
        assert data["incremental"] == data["reflective"] == data["specialized"]

    def test_final_states_identical_across_strategies(self, tiny):
        digests = set()
        for strategy in ("none", "full", "incremental", "specialized"):
            engine = AnalysisEngine(tiny, division=image_division(), strategy=strategy)
            engine.run()
            digests.add(state_digest(engine.attributes))
        assert len(digests) == 1

    def test_specialized_patterns_conform(self, tiny):
        """No phase ever dirties a subtree outside its declared pattern."""
        from repro.spec.modpattern import ModificationPattern

        engine = AnalysisEngine(tiny, division=image_division(), strategy="specialized")
        shape = engine.attributes_shape()
        violations = []

        original = engine._iteration_checkpoint

        def checked(phase, iteration):
            pattern = ModificationPattern.subtrees(shape, [PHASE_WRITES[phase]])
            for attrs in engine.attributes.entries:
                violations.extend(pattern.validate_against(attrs))
            original(phase, iteration)

        engine._iteration_checkpoint = checked
        engine.run()
        assert violations == []

    def test_guarded_specialized_run_passes(self, tiny):
        engine = AnalysisEngine(
            tiny, division=image_division(), strategy="specialized", guards=True
        )
        engine.run()  # guards verify the phase declarations at run time

    def test_metered_run_counts_and_bytes(self, tiny):
        engine = AnalysisEngine(
            tiny, division=image_division(), strategy="incremental", meter=True
        )
        report = engine.run()
        assert all(r.counts is not None for r in report.records)
        plain = AnalysisEngine(tiny, division=image_division()).run()
        assert [r.checkpoint_bytes for r in report.records] == [
            r.checkpoint_bytes for r in plain.records
        ]

    def test_traversal_measurement(self, tiny):
        engine = AnalysisEngine(
            tiny, division=image_division(), measure_traversal=True
        )
        report = engine.run()
        assert all(r.traversal_seconds > 0 for r in report.records)


class TestPersistenceAndRecovery:
    def test_store_receives_base_plus_deltas(self, tiny):
        store = MemoryStore()
        engine = AnalysisEngine(tiny, division=image_division(), store=store)
        report = engine.run()
        epochs = store.epochs()
        assert epochs[0].kind == "full"
        assert len(epochs) == 1 + len(report.records)

    def test_recover_restores_exact_state(self, tiny):
        store = MemoryStore()
        engine = AnalysisEngine(tiny, division=image_division(), store=store)
        engine.run()
        before = state_digest(engine.attributes, include_ids=True)
        recovered = AnalysisEngine.recover(tiny, store, division=image_division())
        assert state_digest(recovered.attributes, include_ids=True) == before

    def test_recover_rejects_different_program(self, tiny):
        store = MemoryStore()
        AnalysisEngine(tiny, division=image_division(), store=store).run()
        other = image_pipeline_source(kernels=1)
        with pytest.raises(RestoreError, match="different program"):
            AnalysisEngine.recover(other, store, division=image_division())

    def test_resumed_run_converges_with_small_deltas(self, tiny):
        store = MemoryStore()
        first = AnalysisEngine(tiny, division=image_division(), store=store)
        first_report = first.run()
        resumed = AnalysisEngine.recover(tiny, store, division=image_division())
        resumed_report = resumed.run()
        assert (
            resumed_report.total_checkpoint_bytes()
            < first_report.total_checkpoint_bytes() / 2
        )


class TestSpecializedRoutineCache:
    def test_per_phase_routines_cached(self, tiny):
        engine = AnalysisEngine(tiny, strategy="specialized")
        first = engine.specialized_for("BTA")
        assert engine.specialized_for("BTA") is first
        assert engine.specialized_for("ETA") is not first

    def test_phase_routine_touches_only_its_entry(self, tiny):
        engine = AnalysisEngine(tiny, strategy="specialized")
        bta_source = engine.specialized_for("BTA").source
        assert "_f_bt_entry" in bta_source
        assert "_f_se_entry" not in bta_source
        assert "_f_et_entry" not in bta_source


class TestAutospecStrategy:
    def test_bytes_identical_to_incremental(self, tiny):
        auto = AnalysisEngine(tiny, division=image_division(), strategy="autospec")
        auto.run()
        plain = AnalysisEngine(
            tiny, division=image_division(), strategy="incremental"
        )
        plain.run()
        assert [r.checkpoint_bytes for r in auto.report.records] == [
            r.checkpoint_bytes for r in plain.report.records
        ]

    def test_final_state_matches(self, tiny):
        auto = AnalysisEngine(tiny, division=image_division(), strategy="autospec")
        auto.run()
        reference = AnalysisEngine(
            tiny, division=image_division(), strategy="none"
        )
        reference.run()
        assert state_digest(auto.attributes) == state_digest(reference.attributes)

    def test_derived_patterns_within_declared(self, tiny):
        from repro.spec.modpattern import ModificationPattern

        engine = AnalysisEngine(tiny, division=image_division(), strategy="autospec")
        engine.run()
        shape = engine.attributes_shape()
        for phase, auto in engine._auto.items():
            declared = ModificationPattern.subtrees(shape, [PHASE_WRITES[phase]])
            assert auto.observer.seen_dirty() <= declared.may_modify_paths()
            assert auto.recompilations >= 1

    def test_store_recovery_from_autospec_run(self, tiny):
        store = MemoryStore()
        engine = AnalysisEngine(
            tiny, division=image_division(), strategy="autospec", store=store
        )
        engine.run()
        recovered = AnalysisEngine.recover(
            tiny, store, division=image_division()
        )
        assert state_digest(recovered.attributes, include_ids=True) == state_digest(
            engine.attributes, include_ids=True
        )

    def test_meter_rejected(self, tiny):
        with pytest.raises(CheckpointError, match="metering"):
            AnalysisEngine(tiny, strategy="autospec", meter=True)
