"""Unit tests for the simplified-C pretty printer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.interp import run_program
from repro.analysis.lang.parser import parse
from repro.analysis.lang.printer import print_expr, print_program
from repro.analysis.programs import (
    image_pipeline_source,
    paper_scale_source,
    tiny_source,
)
from repro.analysis.symbols import resolve


def _roundtrip_equivalent(source, inputs=None, fuel=20_000_000):
    printed = print_program(parse(source))
    reparsed = parse(printed)
    resolve(reparsed)
    original_state = run_program(source, inputs, fuel=fuel)
    printed_state = run_program(printed, inputs, fuel=fuel)
    assert original_state == printed_state
    return printed


class TestRoundtrip:
    def test_tiny_program(self):
        _roundtrip_equivalent(tiny_source())

    def test_image_pipeline(self):
        _roundtrip_equivalent(image_pipeline_source(kernels=2))

    def test_paper_scale_parses_back(self):
        printed = print_program(parse(paper_scale_source()))
        reparsed = parse(printed)
        resolve(reparsed)

    def test_print_is_stable(self):
        once = print_program(parse(tiny_source()))
        twice = print_program(parse(once))
        assert once == twice


class TestPrecedence:
    @pytest.mark.parametrize(
        "expr_src,expected_value",
        [
            ("1 + 2 * 3", 7),
            ("(1 + 2) * 3", 9),
            ("10 - 3 - 2", 5),
            ("10 - (3 - 2)", 9),
            ("20 / 2 / 5", 2),
            ("20 / (2 / 5 + 1)", 20),
            ("1 + 2 == 3 && 4 < 5", 1),
            ("-(1 + 2) * 3", -9),
            ("!(1 < 2) || 1", 1),
            ("2 * (3 % 2)", 2),
        ],
    )
    def test_value_preserved_through_print(self, expr_src, expected_value):
        source = f"int r = 0;\nvoid main() {{ r = {expr_src}; }}"
        printed = _roundtrip_equivalent(source)
        assert run_program(printed)["r"] == expected_value

    def test_negative_literals_reparse(self):
        program = parse("int r = 0;\nvoid main() { r = 1; }")
        stmt = program.function("main").body.body[0]
        stmt.expr.value = -42  # as constant folding would produce
        printed = print_program(program)
        assert run_program(printed)["r"] == -42

    def test_print_expr_helper(self):
        program = parse("int r = 0;\nvoid main() { r = (1 + 2) * 3; }")
        expr = program.function("main").body.body[0].expr
        assert print_expr(expr) == "(1 + 2) * 3"


_LEAF = st.sampled_from(["1", "2", "3", "x", "y"])
_OPS = st.sampled_from(["+", "-", "*", "&&", "||", "<", "==", "%"])


@st.composite
def _expr_text(draw, depth=0):
    if depth > 3 or draw(st.booleans()):
        return draw(_LEAF)
    op = draw(_OPS)
    left = draw(_expr_text(depth=depth + 1))
    right = draw(_expr_text(depth=depth + 1))
    if draw(st.booleans()):
        return f"({left} {op} {right})"
    return f"{left} {op} {right}"


class TestRoundtripProperty:
    @settings(max_examples=80, deadline=None)
    @given(_expr_text(), st.integers(-5, 5), st.integers(-5, 5))
    def test_random_expressions_survive_printing(self, expr, x, y):
        source = (
            f"int x = {x};\nint y = {y};\nint r = 0;\n"
            f"void main() {{ r = {expr}; }}"
        )
        try:
            expected = run_program(source)["r"]
        except Exception:
            return  # division/modulo by zero etc.: not this test's concern
        printed = print_program(parse(source))
        assert run_program(printed)["r"] == expected


class TestDeclPrinting:
    def test_local_array_decl_roundtrips(self):
        source = (
            "int r = 0;\n"
            "void main() { int buf[4]; int i; "
            "for (i = 0; i < 4; i = i + 1) { buf[i] = i * i; } r = buf[3]; }"
        )
        printed = _roundtrip_equivalent(source)
        assert "int buf[4];" in printed
        assert run_program(printed)["r"] == 9

    def test_global_forms(self):
        source = "int plain;\nint init = 5;\nfloat f = 1.5;\nint arr[3];\nvoid main() { }"
        printed = print_program(parse(source))
        assert "int plain;" in printed
        assert "int init = 5;" in printed
        assert "float f = 1.5;" in printed
        assert "int arr[3];" in printed

    def test_return_void_and_value(self):
        source = (
            "int g() { return 4; }\n"
            "void h() { return; }\n"
            "int r = 0;\nvoid main() { h(); r = g(); }"
        )
        printed = _roundtrip_equivalent(source)
        assert "return;" in printed
        assert run_program(printed)["r"] == 4
