"""Unit tests for the side-effect analysis."""

import pytest

from repro.analysis.attributes import AttributesTable
from repro.analysis.lang.parser import parse
from repro.analysis.sideeffect import SideEffectAnalysis
from repro.analysis.symbols import resolve


def _analyse(source):
    program = parse(source)
    symbols = resolve(program)
    attributes = AttributesTable.for_program(program.node_count)
    analysis = SideEffectAnalysis(program, symbols, attributes)
    analysis.run()
    return program, symbols, attributes, analysis


def _names(symbols, ids):
    return {symbols.symbol(i).name for i in ids}


def _effects(attributes, symbols, node):
    entry = attributes.of(node).se_entry
    return _names(symbols, entry.reads), _names(symbols, entry.writes)


class TestIntraprocedural:
    def test_assignment_reads_and_writes(self):
        program, symbols, attrs, _ = _analyse(
            "int a = 0;\nint b = 0;\nvoid f() { a = b + 1; }"
        )
        stmt = program.function("f").body.body[0]
        reads, writes = _effects(attrs, symbols, stmt)
        assert reads == {"b"}
        assert writes == {"a"}

    def test_array_index_reads(self):
        program, symbols, attrs, _ = _analyse(
            "int a[4];\nint i = 0;\nvoid f() { a[i] = a[i + 1]; }"
        )
        stmt = program.function("f").body.body[0]
        reads, writes = _effects(attrs, symbols, stmt)
        assert reads == {"a", "i"}
        assert writes == {"a"}

    def test_control_flow_aggregates(self):
        program, symbols, attrs, _ = _analyse(
            "int a = 0;\nint b = 0;\nint c = 0;\n"
            "void f() { if (a > 0) { b = 1; } else { c = 1; } }"
        )
        stmt = program.function("f").body.body[0]
        reads, writes = _effects(attrs, symbols, stmt)
        assert reads == {"a"}
        assert writes == {"b", "c"}

    def test_loop_effects(self):
        program, symbols, attrs, _ = _analyse(
            "int n = 4;\nint total = 0;\n"
            "void f() { int i; for (i = 0; i < n; i = i + 1) "
            "{ total = total + i; } }"
        )
        stmt = program.function("f").body.body[1]
        reads, writes = _effects(attrs, symbols, stmt)
        assert "n" in reads and "total" in reads and "i" in reads
        assert writes == {"i", "total"}


class TestInterprocedural:
    def test_call_imports_callee_global_effects(self):
        program, symbols, attrs, analysis = _analyse(
            "int g = 0;\nint h = 0;\n"
            "void callee() { g = h + 1; }\n"
            "void caller() { callee(); }"
        )
        stmt = program.function("caller").body.body[0]
        reads, writes = _effects(attrs, symbols, stmt)
        assert reads == {"h"}
        assert writes == {"g"}

    def test_callee_locals_do_not_leak(self):
        program, symbols, attrs, _ = _analyse(
            "int g = 0;\nvoid callee() { int l; l = 1; g = l; }\n"
            "void caller() { callee(); }"
        )
        stmt = program.function("caller").body.body[0]
        reads, writes = _effects(attrs, symbols, stmt)
        assert writes == {"g"}
        assert "l" not in reads

    def test_recursion_converges(self):
        program, symbols, attrs, analysis = _analyse(
            "int depth = 0;\n"
            "void rec(int n) { if (n > 0) { depth = depth + 1; rec(n - 1); } }"
        )
        summary = analysis.summaries["rec"]
        assert _names(symbols, summary.reads) == {"depth"}
        assert _names(symbols, summary.writes) == {"depth"}

    def test_mutual_recursion_converges(self):
        program, symbols, attrs, analysis = _analyse(
            "int a = 0;\nint b = 0;\n"
            "void even(int n) { if (n > 0) { a = 1; odd(n - 1); } }\n"
            "void odd(int n) { if (n > 0) { b = 1; even(n - 1); } }"
        )
        even = analysis.summaries["even"]
        assert _names(symbols, even.writes) == {"a", "b"}

    def test_call_chain_effects_propagate(self):
        program, symbols, attrs, analysis = _analyse(
            "int g = 0;\n"
            "void low() { g = 1; }\n"
            "void mid() { low(); }\n"
            "void top() { mid(); }"
        )
        assert _names(symbols, analysis.summaries["top"].writes) == {"g"}


class TestFixpointBehaviour:
    def test_iteration_count_at_least_two(self):
        _, _, _, analysis = _analyse("int g = 0;\nvoid f() { g = 1; }")
        assert analysis.iterations >= 2  # converge + verify

    def test_deep_chain_needs_more_iterations(self):
        # Summaries propagate one call edge per pass when callees are
        # defined after their callers.
        source = ["int g = 0;"]
        source.append("void f0() { g = 1; }")
        for i in range(1, 5):
            source.insert(1, f"void f{i}() {{ f{i - 1}(); }}")
        _, _, _, analysis = _analyse("\n".join(source))
        assert analysis.iterations >= 3

    def test_results_written_only_on_change(self):
        program, symbols, attrs, analysis = _analyse(
            "int g = 0;\nvoid f() { g = 1; }"
        )
        # After convergence every flag should be settable to False and a
        # re-run must not dirty anything.
        for entry in attrs.entries:
            entry._ckpt_info.modified = False
            entry.se_entry._ckpt_info.modified = False
        analysis._pass()
        dirty = [
            e.node_id
            for e in attrs.entries
            if e.se_entry._ckpt_info.modified
        ]
        assert dirty == []

    def test_on_iteration_callback(self):
        program = parse("int g = 0;\nvoid f() { g = 1; }")
        symbols = resolve(program)
        attributes = AttributesTable.for_program(program.node_count)
        analysis = SideEffectAnalysis(program, symbols, attributes)
        seen = []
        analysis.run(on_iteration=seen.append)
        assert seen == list(range(1, analysis.iterations + 1))
