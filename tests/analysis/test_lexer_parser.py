"""Unit tests for the simplified-C lexer and parser."""

import pytest

from repro.analysis.lang import astnodes as ast
from repro.analysis.lang.lexer import LexError, tokenize
from repro.analysis.lang.parser import ParseError, parse


class TestLexer:
    def test_keywords_and_idents(self):
        kinds = [t.kind for t in tokenize("int x while whilex")]
        assert kinds == ["int", "ident", "while", "ident", "eof"]

    def test_numbers(self):
        tokens = tokenize("42 3.25 0")
        assert [(t.kind, t.value) for t in tokens[:-1]] == [
            ("intlit", "42"),
            ("floatlit", "3.25"),
            ("intlit", "0"),
        ]

    def test_multichar_punct_priority(self):
        kinds = [t.kind for t in tokenize("<= == != >= && || < =")]
        assert kinds[:-1] == ["<=", "==", "!=", ">=", "&&", "||", "<", "="]

    def test_line_comments(self):
        tokens = tokenize("a // comment\nb")
        assert [t.value for t in tokens[:-1]] == ["a", "b"]
        assert tokens[1].line == 2

    def test_block_comments(self):
        tokens = tokenize("a /* x\ny */ b")
        assert [t.value for t in tokens[:-1]] == ["a", "b"]
        assert tokens[1].line == 2

    def test_unterminated_comment(self):
        with pytest.raises(LexError, match="unterminated"):
            tokenize("/* never ends")

    def test_unexpected_character(self):
        with pytest.raises(LexError, match="unexpected character"):
            tokenize("int $x;")

    def test_line_tracking(self):
        tokens = tokenize("a\nb\n\nc")
        assert [t.line for t in tokens[:-1]] == [1, 2, 4]


class TestParserStructure:
    def test_globals_and_functions(self):
        program = parse("int g = 1;\nint f(int x) { return x; }\n")
        assert len(program.globals) == 1
        assert program.globals[0].name == "g"
        assert len(program.functions) == 1
        assert program.function("f").params[0].name == "x"

    def test_array_global(self):
        program = parse("int a[10];\nvoid f() { a[0] = 1; }")
        assert program.globals[0].size == 10

    def test_node_ids_unique_and_dense(self):
        program = parse("int f(int x) { return x + 1; }")
        ids = [node.node_id for node in program.walk()]
        assert sorted(ids) == list(range(program.node_count))

    def test_precedence(self):
        program = parse("int f() { return 1 + 2 * 3 < 4 && 5 == 6; }")
        expr = program.function("f").body.body[0].value
        assert isinstance(expr, ast.Binary) and expr.op == "&&"
        left = expr.left
        assert left.op == "<"
        assert left.left.op == "+"
        assert left.left.right.op == "*"

    def test_unary_and_parens(self):
        program = parse("int f(int x) { return -(x + 1) * !x; }")
        expr = program.function("f").body.body[0].value
        assert expr.op == "*"
        assert isinstance(expr.left, ast.Unary) and expr.left.op == "-"
        assert isinstance(expr.right, ast.Unary) and expr.right.op == "!"

    def test_if_else_while_for(self):
        source = """
        void f(int n) {
            int i;
            if (n > 0) { n = 0; } else { n = 1; }
            while (n < 10) { n = n + 1; }
            for (i = 0; i < n; i = i + 1) { n = n - 1; }
        }
        """
        body = parse(source).function("f").body.body
        assert isinstance(body[1], ast.If)
        assert body[1].orelse is not None
        assert isinstance(body[2], ast.While)
        assert isinstance(body[3], ast.For)

    def test_for_with_empty_slots(self):
        program = parse("void f() { int i; for (;;) { i = 1; } }")
        loop = program.function("f").body.body[1]
        assert loop.init is None and loop.cond is None and loop.step is None

    def test_call_statement_and_args(self):
        program = parse("void g(int a, float b) {}\nvoid f() { g(1, 2.5); }")
        stmt = program.function("f").body.body[0]
        assert isinstance(stmt, ast.ExprStmt)
        assert isinstance(stmt.expr, ast.Call)
        assert len(stmt.expr.args) == 2

    def test_array_element_assignment(self):
        program = parse("int a[4];\nvoid f(int i) { a[i + 1] = 2; }")
        stmt = program.function("f").body.body[0]
        assert isinstance(stmt.target, ast.IndexRef)

    def test_source_lines_counted(self):
        program = parse("int x = 1;\nint y = 2;\n")
        assert program.source_lines == 3


class TestParserErrors:
    @pytest.mark.parametrize(
        "source,match",
        [
            ("void x = 1;", "void"),
            ("int f(void v) {}", "void"),
            ("int a[0];", "positive"),
            ("int f() { 1 + 2; }", "assignment or a call"),
            ("int f() { (x) }", "unknown|expected"),
            ("int f() { if (1) { } else }", "expected"),
            ("int f() { for (x; 1; x = 1) {} }", "expected"),
            ("int f() { 1 = 2; }", "assignment target|expected"),
            ("int f() { return 1 }", "expected"),
            ("int f() {", "unterminated"),
        ],
    )
    def test_syntax_errors(self, source, match):
        with pytest.raises(ParseError, match=match):
            parse(source)

    def test_error_reports_line(self):
        with pytest.raises(ParseError) as exc:
            parse("int x = 1;\nint f() { return }\n")
        assert exc.value.line == 2
