"""Unit tests for symbol resolution."""

import pytest

from repro.analysis.lang.parser import parse
from repro.analysis.symbols import SemanticError, Symbol, resolve


def _resolved(source):
    program = parse(source)
    return program, resolve(program)


class TestResolution:
    def test_globals_params_locals(self):
        program, table = _resolved(
            "int g = 0;\nint f(int p) { int l = p + g; return l; }"
        )
        func = program.function("f")
        assert func.params[0].symbol.kind == Symbol.PARAM
        decl = func.body.body[0]
        assert decl.symbol.kind == Symbol.LOCAL
        assert table.globals["g"].kind == Symbol.GLOBAL
        assert len({s.symbol_id for s in table.symbols}) == 3

    def test_var_refs_linked(self):
        program, _ = _resolved("int g = 0;\nvoid f() { g = g + 1; }")
        stmt = program.function("f").body.body[0]
        assert stmt.target.symbol.name == "g"
        assert stmt.expr.left.symbol is stmt.target.symbol

    def test_locals_shadow_globals(self):
        program, _ = _resolved("int x = 1;\nvoid f() { int x; x = 2; }")
        stmt = program.function("f").body.body[1]
        assert stmt.target.symbol.kind == Symbol.LOCAL

    def test_calls_linked_to_definitions(self):
        program, _ = _resolved("int g(int a) { return a; }\nvoid f() { g(1); }")
        call = program.function("f").body.body[0].expr
        assert call.func is program.function("g")

    def test_array_symbols(self):
        program, table = _resolved("int a[8];\nvoid f(int i) { a[i] = i; }")
        assert table.globals["a"].is_array

    def test_function_scope_lookup(self):
        _, table = _resolved("void f(int p) { int q; q = p; }")
        scope = table.function_scope("f")
        assert set(scope) == {"p", "q"}

    def test_global_ids(self):
        _, table = _resolved("int a = 1;\nint b = 2;\nvoid f() { a = b; }")
        assert len(table.global_ids()) == 2


class TestSemanticErrors:
    @pytest.mark.parametrize(
        "source,match",
        [
            ("int x = 1;\nint x = 2;", "duplicate global"),
            ("void f() {}\nvoid f() {}", "duplicate function"),
            ("int f = 1;\nvoid f() {}", "both a global and a function"),
            ("void f(int a, int a) {}", "duplicate parameter"),
            ("void f() { int a; int a; }", "duplicate local"),
            ("void f() { x = 1; }", "unknown variable"),
            ("void f() { g(); }", "undefined function"),
            ("void g(int a) {}\nvoid f() { g(); }", "expects 1 arguments"),
            ("int x = 1;\nvoid f(int i) { x[i] = 1; }", "not an array"),
            ("int a[4];\nvoid f() { a = 3; }", "whole array"),
            ("int f() { return 1; }\nvoid g() { }\nint h() { return 2; }\n"
             "int bad = y;", "unknown variable"),
        ],
    )
    def test_errors(self, source, match):
        program = parse(source)
        with pytest.raises(SemanticError, match=match):
            resolve(program)

    def test_void_return_with_value_rejected(self):
        program = parse("void f() { return 1; }")
        with pytest.raises(SemanticError, match="returns void"):
            resolve(program)
