"""Tests for the ``python -m repro.analysis`` command line."""

import pytest

from repro.analysis.__main__ import main

CONV = """
int n = 4;
int data[8];
int out[8];
int k = 3;
void main() {
    int i;
    for (i = 0; i < 8; i = i + 1) { out[i] = data[i] * k; }
}
"""


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "prog.c"
    path.write_text(CONV)
    return str(path)


class TestAnalyzeCommand:
    def test_reports_iterations_and_binding_times(self, capsys, program_file):
        assert main(["analyze", program_file, "--dynamic", "data,out"]) == 0
        out = capsys.readouterr().out
        assert "iterations:" in out
        assert "binding times:" in out
        assert "base checkpoint:" in out

    def test_strategy_none_skips_checkpoint_stats(self, capsys, program_file):
        main(["analyze", program_file, "--strategy", "none"])
        out = capsys.readouterr().out
        assert "base checkpoint" not in out


class TestSpecializeCommand:
    def test_prints_residual_program(self, capsys, program_file):
        assert main(["specialize", program_file, "--dynamic", "data,out"]) == 0
        out = capsys.readouterr().out
        # k folds; the loop over a static bound unrolls.
        assert "* 3" in out
        assert "for" not in out
        assert "void main()" in out

    def test_budget_flag(self, program_file):
        from repro.analysis.specializer import SpecializationBudgetError

        with pytest.raises(SpecializationBudgetError):
            main(
                [
                    "specialize",
                    program_file,
                    "--dynamic",
                    "data,out",
                    "--budget",
                    "3",
                ]
            )


class TestRunCommand:
    def test_executes_and_prints_state(self, capsys, program_file):
        assert (
            main(["run", program_file, "--set", "data=1,2,3,4,5,6,7,8"]) == 0
        )
        out = capsys.readouterr().out
        assert "out = [3, 6, 9, 12, 15, 18, 21, 24]" in out
        assert "k = 3" in out

    def test_scalar_and_float_inputs(self, capsys, tmp_path):
        path = tmp_path / "s.c"
        path.write_text("int x = 1;\nfloat y = 0.0;\nvoid main() { y = y * 2.0; }")
        main(["run", str(path), "--set", "x=9", "--set", "y=1.5"])
        out = capsys.readouterr().out
        assert "x = 9" in out
        assert "y = 3.0" in out

    def test_bad_set_syntax(self, capsys, program_file):
        assert main(["run", program_file, "--set", "oops"]) == 2
        assert "name=value" in capsys.readouterr().err

    def test_long_arrays_abbreviated(self, capsys, tmp_path):
        path = tmp_path / "big.c"
        path.write_text("int a[64];\nvoid main() { a[0] = 1; }")
        main(["run", str(path)])
        assert "... 64 total" in capsys.readouterr().out
