"""Unit tests for the generated benchmark programs."""

from repro.analysis.attributes import DYNAMIC, STATIC
from repro.analysis.engine import AnalysisEngine
from repro.analysis.lang.parser import parse
from repro.analysis.programs import (
    image_division,
    image_pipeline_source,
    paper_scale_source,
    tiny_source,
)
from repro.analysis.symbols import resolve


class TestGeneratedSources:
    def test_tiny_parses_and_resolves(self):
        program = parse(tiny_source())
        resolve(program)
        assert program.function("main")

    def test_image_pipeline_parses_at_all_sizes(self):
        for kernels in (1, 4, 11):
            program = parse(image_pipeline_source(kernels=kernels))
            resolve(program)
            assert len(program.functions) >= 8 + 2 * kernels

    def test_paper_scale_line_count(self):
        lines = paper_scale_source().count("\n") + 1
        assert 700 <= lines <= 800  # the paper's "750-line" program

    def test_generation_deterministic(self):
        assert paper_scale_source() == paper_scale_source()


class TestAnalysisOfGeneratedPrograms:
    def test_division_yields_mixed_binding_times(self):
        engine = AnalysisEngine(
            image_pipeline_source(kernels=2), division=image_division()
        )
        engine.run()
        values = {
            engine.attributes.of(node).bt_entry.bt.value
            for node in engine.program.walk()
        }
        assert STATIC in values and DYNAMIC in values

    def test_geometry_static_pixels_dynamic(self):
        engine = AnalysisEngine(
            image_pipeline_source(kernels=1), division=image_division()
        )
        engine.run()
        table = engine.symbols
        width = next(s for s in table.symbols if s.name == "width")
        img = next(s for s in table.symbols if s.name == "img")
        assert engine.bta.bt[width.symbol_id] == STATIC
        assert engine.bta.bt[img.symbol_id] == DYNAMIC

    def test_bta_needs_multiple_iterations(self):
        engine = AnalysisEngine(
            image_pipeline_source(kernels=3), division=image_division()
        )
        report = engine.run()
        assert report.phase_iterations["BTA"] >= 3
        assert report.phase_iterations["ETA"] >= 2
