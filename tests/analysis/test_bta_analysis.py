"""Unit tests for the binding-time analysis."""

import pytest

from repro.analysis.attributes import DYNAMIC, STATIC, AttributesTable
from repro.analysis.bta import BindingTimeAnalysis, Division
from repro.analysis.lang.parser import parse
from repro.analysis.sideeffect import SideEffectAnalysis
from repro.analysis.symbols import resolve


def _analyse(source, division=None):
    program = parse(source)
    symbols = resolve(program)
    attributes = AttributesTable.for_program(program.node_count)
    side_effects = SideEffectAnalysis(program, symbols, attributes)
    side_effects.run()
    bta = BindingTimeAnalysis(program, symbols, attributes, side_effects, division)
    bta.run()
    return program, symbols, attributes, bta


def _bt(attributes, node):
    return attributes.of(node).bt_entry.bt.value


class TestDivision:
    def test_initialized_globals_default_static(self):
        program, _, attrs, bta = _analyse("int n = 4;\nvoid f() { n = n + 1; }")
        assert bta.bt[program.globals[0].symbol.symbol_id] == STATIC

    def test_uninitialized_arrays_default_dynamic(self):
        program, _, _, bta = _analyse("int a[4];\nvoid f(int i) { a[i] = 0; }")
        assert bta.bt[program.globals[0].symbol.symbol_id] == DYNAMIC

    def test_explicit_overrides(self):
        division = Division(dynamic_globals={"n"}, static_globals={"a"})
        program, _, _, bta = _analyse(
            "int n = 4;\nint a[4];\nvoid f() { n = n + 1; }", division
        )
        assert bta.bt[program.globals[0].symbol.symbol_id] == DYNAMIC
        assert bta.bt[program.globals[1].symbol.symbol_id] == STATIC


class TestPropagation:
    def test_static_arithmetic_stays_static(self):
        program, _, attrs, _ = _analyse(
            "int n = 4;\nint m = 0;\nvoid f() { m = n * 2 + 1; }"
        )
        stmt = program.function("f").body.body[0]
        assert _bt(attrs, stmt) == STATIC
        assert _bt(attrs, stmt.expr) == STATIC

    def test_dynamic_taints_assignment_target(self):
        program, _, attrs, bta = _analyse(
            "int a[4];\nint x = 0;\nvoid f(int i) { x = a[i]; }"
        )
        stmt = program.function("f").body.body[0]
        assert _bt(attrs, stmt.expr) == DYNAMIC
        assert bta.bt[stmt.target.symbol.symbol_id] == DYNAMIC

    def test_dynamic_control_taints_assignments(self):
        program, _, _, bta = _analyse(
            "int a[4];\nint flag = 0;\n"
            "void f(int i) { if (a[i] > 0) { flag = 1; } }"
        )
        function = program.function("f")
        if_stmt = function.body.body[0]
        flag_assign = if_stmt.then.body[0]
        assert bta.bt[flag_assign.target.symbol.symbol_id] == DYNAMIC

    def test_static_control_keeps_static(self):
        program, _, _, bta = _analyse(
            "int n = 4;\nint flag = 0;\nvoid f() { if (n > 0) { flag = 1; } }"
        )
        if_stmt = program.function("f").body.body[0]
        assert bta.bt[if_stmt.then.body[0].target.symbol.symbol_id] == STATIC

    def test_loop_feedback_reaches_fixpoint(self):
        # x starts static, but inside a loop it absorbs a dynamic value one
        # iteration later — the pass-based analysis must catch it.
        program, _, attrs, bta = _analyse(
            "int a[4];\nint x = 0;\nint y = 0;\n"
            "void f(int i) { while (i < 4) { y = x; x = a[i]; i = i + 1; } }"
        )
        scope_y = program.globals[2].symbol.symbol_id
        assert bta.bt[scope_y] == DYNAMIC
        assert bta.iterations >= 2

    def test_call_arguments_taint_params(self):
        program, _, _, bta = _analyse(
            "int a[4];\nint g(int p) { return p + 1; }\n"
            "void f(int i) { i = g(a[i]); }"
        )
        param = program.function("g").params[0]
        assert bta.bt[param.symbol.symbol_id] == DYNAMIC
        assert bta.returns["g"] == DYNAMIC

    def test_static_call_stays_static(self):
        program, _, attrs, bta = _analyse(
            "int n = 4;\nint g(int p) { return p + 1; }\n"
            "int h = 0;\nvoid f() { h = g(n); }"
        )
        assert bta.returns["g"] == STATIC
        stmt = program.function("f").body.body[0]
        assert _bt(attrs, stmt) == STATIC

    def test_callee_reading_dynamic_global_is_dynamic(self):
        program, _, attrs, bta = _analyse(
            "int a[4];\nint peek() { return a[0]; }\n"
            "int x = 0;\nvoid f() { x = peek(); }"
        )
        stmt = program.function("f").body.body[0]
        assert _bt(attrs, stmt.expr) == DYNAMIC

    def test_annotations_cover_subexpressions(self):
        program, _, attrs, _ = _analyse(
            "int n = 2;\nint a[4];\nint x = 0;\nvoid f(int i) { x = n + a[i]; }"
        )
        stmt = program.function("f").body.body[0]
        add = stmt.expr
        assert _bt(attrs, add) == DYNAMIC
        assert _bt(attrs, add.left) == STATIC  # n alone is static
        assert _bt(attrs, add.right) == DYNAMIC


class TestConvergence:
    def test_iterations_at_least_two(self):
        _, _, _, bta = _analyse("int n = 1;\nvoid f() { n = n + 1; }")
        assert bta.iterations >= 2

    def test_monotone_no_oscillation(self):
        # Re-running a converged analysis changes nothing.
        program, _, attrs, bta = _analyse(
            "int a[4];\nint x = 0;\nvoid f(int i) { x = a[i]; }"
        )
        for entry in attrs.entries:
            entry.bt_entry.bt._ckpt_info.modified = False
        assert bta._pass() is False


class TestDynamicCallingContext:
    """A function reachable from dynamic control must not be treated as
    specialization-time executable (found by the differential fuzzer)."""

    def test_impure_callee_under_dynamic_control_dynamizes_its_writes(self):
        program, _, _, bta = _analyse(
            "int a[4];\nint s = 1;\n"
            "void bump() { s = s + 1; }\n"
            "void f(int i) { if (a[i] > 0) { bump(); } }"
        )
        assert "bump" in bta.dynamic_callers
        s_symbol = program.globals[1].symbol
        assert bta.bt[s_symbol.symbol_id] == DYNAMIC

    def test_transitive_marking(self):
        program, _, _, bta = _analyse(
            "int a[4];\nint s = 1;\n"
            "void inner() { s = s + 1; }\n"
            "void outer() { inner(); }\n"
            "void f(int i) { if (a[i] > 0) { outer(); } }"
        )
        assert {"outer", "inner"} <= bta.dynamic_callers

    def test_static_context_calls_not_marked(self):
        program, _, _, bta = _analyse(
            "int s = 1;\nvoid bump() { s = s + 1; }\nvoid f() { bump(); }"
        )
        assert "bump" not in bta.dynamic_callers
        assert bta.bt[program.globals[0].symbol.symbol_id] == STATIC

    def test_call_in_dynamic_loop_marked(self):
        program, _, _, bta = _analyse(
            "int a[4];\nint s = 0;\n"
            "void tick() { s = s + 1; }\n"
            "void f(int n) { int i; n = a[0]; "
            "for (i = 0; i < n; i = i + 1) { tick(); } }"
        )
        assert "tick" in bta.dynamic_callers
        assert bta.bt[program.globals[1].symbol.symbol_id] == DYNAMIC

    def test_pure_callee_marked_but_globals_unaffected(self):
        program, _, _, bta = _analyse(
            "int a[4];\nint s = 5;\nint r = 0;\n"
            "int twice(int x) { return x * 2; }\n"
            "void f(int i) { if (a[i] > 0) { r = twice(s); } }"
        )
        assert "twice" in bta.dynamic_callers
        assert bta.bt[program.globals[1].symbol.symbol_id] == STATIC


class TestSelfStaticFor:
    def test_inner_static_loop_survives_dynamic_outer(self):
        program, _, _, bta = _analyse(
            "int a[16];\nint total = 0;\n"
            "void f(int n) { int i; int j; n = a[0]; "
            "for (i = 0; i < n; i = i + 1) { "
            "for (j = 0; j < 3; j = j + 1) { total = total + a[j]; } } }"
        )
        function = program.function("f")
        outer = function.body.body[3]
        inner = outer.body
        while not isinstance(inner, __import__("repro.analysis.lang.astnodes", fromlist=["For"]).For):
            inner = inner.body[0] if hasattr(inner, "body") else inner
        j_symbol = inner.init.target.symbol
        i_symbol = outer.init.target.symbol
        assert bta.bt[j_symbol.symbol_id] == STATIC  # unrollable
        assert bta.bt[i_symbol.symbol_id] == DYNAMIC  # genuinely dynamic

    def test_induction_var_escaping_dynamically_disables_exemption(self):
        program, _, _, bta = _analyse(
            "int a[4];\nint j = 0;\n"
            "void f(int i) { i = a[0]; "
            "while (i > 0) { j = a[i % 4]; i = i - 1; } "
            "for (j = 0; j < 3; j = j + 1) { a[0] = j; } }"
        )
        # j received a dynamic value: the later loop cannot be self-static.
        function = program.function("f")
        loop = function.body.body[2]
        assert not bta.self_static_for(loop)
