"""Tests for the mini-C program specializer.

The decisive property: for every dynamic input, the residual program's
observable state equals the original program's. This certifies the whole
stack — side-effect analysis, binding-time analysis, evaluation-time
analysis, and the partial evaluator itself.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.bta import Division
from repro.analysis.engine import AnalysisEngine
from repro.analysis.interp import run_program
from repro.analysis.lang.parser import parse
from repro.analysis.specializer import (
    SpecializationBudgetError,
    specialize_program,
)
from repro.core.errors import SpecializationError

CONV_SRC = """
int width = 8;
int height = 8;
int img[64];
int out[64];
int kernel[9];
int kdiv = 1;

void init_kernel() {
    kernel[0] = 1; kernel[1] = 2; kernel[2] = 1;
    kernel[3] = 2; kernel[4] = 4; kernel[5] = 2;
    kernel[6] = 1; kernel[7] = 2; kernel[8] = 1;
    kdiv = 16;
}

int clamp(int v, int lo, int hi) {
    if (v < lo) { return lo; }
    if (v > hi) { return hi; }
    return v;
}

int get(int x, int y) {
    return img[clamp(y, 0, height - 1) * width + clamp(x, 0, width - 1)];
}

void convolve() {
    int x;
    int y;
    for (y = 0; y < height; y = y + 1) {
        for (x = 0; x < width; x = x + 1) {
            int acc = 0;
            int dx;
            int dy;
            for (dy = 0; dy < 3; dy = dy + 1) {
                for (dx = 0; dx < 3; dx = dx + 1) {
                    acc = acc + kernel[dy * 3 + dx] * get(x + dx - 1, y + dy - 1);
                }
            }
            out[y * width + x] = acc / kdiv;
        }
    }
}

void main() {
    init_kernel();
    convolve();
}
"""

CONV_DIVISION = Division(
    static_globals={"kernel", "kdiv"},
    dynamic_globals={"width", "height", "img", "out"},
)


def _specialize(source, division, **kwargs):
    engine = AnalysisEngine(source, division=division, strategy="none")
    engine.run()
    return specialize_program(engine, **kwargs)


@pytest.fixture(scope="module")
def conv_residual():
    return _specialize(CONV_SRC, CONV_DIVISION)


class TestConvolutionSpecialization:
    def test_equivalent_on_random_images(self, conv_residual):
        rng = random.Random(42)
        for _ in range(3):
            img = [rng.randrange(256) for _ in range(64)]
            original = run_program(CONV_SRC, {"img": img})
            residual = run_program(conv_residual.source, {"img": img})
            assert original["out"] == residual["out"]
            assert original["img"] == residual["img"]

    def test_kernel_folded_away(self, conv_residual):
        assert "kernel" not in conv_residual.source
        assert "kdiv" not in conv_residual.source
        assert "init_kernel" not in conv_residual.source

    def test_inner_loops_unrolled(self, conv_residual):
        # Nine accumulation statements, no dy/dx loops left.
        assert conv_residual.source.count("acc = acc +") == 9
        assert "dy" not in conv_residual.source
        # The dynamic pixel loops survive.
        assert "for (y = 0; y < height" in conv_residual.source

    def test_coefficients_inlined(self, conv_residual):
        assert "4 * get__" in conv_residual.source  # kernel center
        assert "acc / 16" in conv_residual.source  # folded kdiv

    def test_clamp_lo_bound_specialized(self, conv_residual):
        # clamp's static lo=0 argument is folded into the version.
        assert "clamp__" in conv_residual.source
        assert "v < 0" in conv_residual.source

    def test_residual_reparses_and_reanalyzes(self, conv_residual):
        engine = AnalysisEngine(conv_residual.source, strategy="none")
        engine.run()  # all three analyses accept the residual program


class TestPolyvariance:
    def test_versions_cached_per_static_signature(self):
        source = """
        int a[16];
        int scale(int x, int k) { return x * k; }
        void main() {
            int i;
            for (i = 0; i < 16; i = i + 1) { a[i] = scale(a[i], 3); }
            for (i = 0; i < 16; i = i + 1) { a[i] = scale(a[i], 3); }
            for (i = 0; i < 16; i = i + 1) { a[i] = scale(a[i], 5); }
        }
        """
        division = Division(dynamic_globals={"a"}, static_globals=set())
        residual = _specialize(source, division)
        # Two versions: k=3 (shared) and k=5.
        assert residual.source.count("int scale__") == 2
        assert "x * 3" in residual.source
        assert "x * 5" in residual.source
        rng = random.Random(1)
        data = [rng.randrange(50) for _ in range(16)]
        assert (
            run_program(source, {"a": data})["a"]
            == run_program(residual.source, {"a": data})["a"]
        )

    def test_recursive_residual_function(self):
        source = """
        int data[8];
        int walk(int i) {
            if (i >= 8) { return 0; }
            return data[i] + walk(i + 1);
        }
        int total = 0;
        void main() { total = walk(0); }
        """
        division = Division(dynamic_globals={"data", "total"}, static_globals=set())
        residual = _specialize(source, division)
        values = [3, 1, 4, 1, 5, 9, 2, 6]
        assert (
            run_program(source, {"data": values})["total"]
            == run_program(residual.source, {"data": values})["total"]
            == sum(values)
        )


class TestStaticExecution:
    def test_fully_static_program_collapses(self):
        source = """
        int n = 10;
        int total = 0;
        int result = 0;
        void main() {
            int i;
            for (i = 0; i < n; i = i + 1) { total = total + i; }
            result = total * 2;
        }
        """
        division = Division(dynamic_globals={"result"}, static_globals={"total"})
        residual = _specialize(source, division)
        assert "result = 90" in residual.source
        assert "for" not in residual.source
        assert run_program(residual.source)["result"] == 90

    def test_static_branches_decided(self):
        source = """
        int mode = 2;
        int r = 0;
        int input = 0;
        void main() {
            if (mode == 1) { r = input; }
            else { if (mode == 2) { r = input * 2; } else { r = 0 - input; } }
        }
        """
        division = Division(dynamic_globals={"r", "input"}, static_globals=set())
        residual = _specialize(source, division)
        assert "if" not in residual.source
        assert "input * 2" in residual.source
        assert run_program(residual.source, {"input": 21})["r"] == 42

    def test_dynamic_branch_both_sides_kept(self):
        source = """
        int t = 3;
        int r = 0;
        int input = 0;
        void main() {
            if (input > t) { r = input - t; } else { r = t - input; }
        }
        """
        division = Division(dynamic_globals={"r", "input"}, static_globals=set())
        residual = _specialize(source, division)
        assert "if (input > 3)" in residual.source
        assert "else" in residual.source
        for value in (0, 3, 10):
            assert (
                run_program(source, {"input": value})["r"]
                == run_program(residual.source, {"input": value})["r"]
            )


class TestLimitsAndErrors:
    def test_unroll_budget_enforced(self):
        source = """
        int n = 100000;
        int out[1];
        void main() {
            int i;
            int acc = 0;
            for (i = 0; i < n; i = i + 1) { acc = acc + out[0]; out[0] = acc; }
        }
        """
        division = Division(dynamic_globals={"out"}, static_globals=set())
        engine = AnalysisEngine(source, division=division, strategy="none")
        engine.run()
        with pytest.raises(SpecializationBudgetError):
            specialize_program(engine, max_residual_statements=500)

    def test_static_array_dynamic_index_reported(self):
        source = """
        int table[4];
        int r = 0;
        int input = 0;
        void fill() { table[0] = 5; table[1] = 6; table[2] = 7; table[3] = 8; }
        void main() { fill(); r = table[input % 4]; }
        """
        division = Division(
            dynamic_globals={"r", "input"}, static_globals={"table"}
        )
        engine = AnalysisEngine(source, division=division, strategy="none")
        engine.run()
        with pytest.raises(SpecializationError, match="indexed dynamically"):
            specialize_program(engine)

    def test_unknown_entry_rejected(self):
        engine = AnalysisEngine("void main() { }", strategy="none")
        engine.run()
        with pytest.raises(SpecializationError, match="no function"):
            specialize_program(engine, entry="launch")


class TestEquivalenceProperty:
    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(0, 255), min_size=64, max_size=64))
    def test_convolution_equivalence(self, img):
        residual = _CONV_CACHE.source
        assert (
            run_program(CONV_SRC, {"img": img})["out"]
            == run_program(residual, {"img": img})["out"]
        )


_CONV_CACHE = _specialize(CONV_SRC, CONV_DIVISION)


class TestPureCallFolding:
    def test_pure_static_call_under_dynamic_control_folds(self):
        source = """
        int d0 = 0;
        int mix(int a, int b) { return a * 2 + b; }
        void main() { if (0 < d0) { d0 = mix(3, 4); } }
        """
        division = Division(dynamic_globals={"d0"}, static_globals=set())
        residual = _specialize(source, division)
        # mix(3, 4) is pure with static arguments: folded to 10, and no
        # residual version of mix is emitted at all.
        assert "d0 = 10" in residual.source
        assert "mix" not in residual.source

    def test_impure_call_under_dynamic_control_stays(self):
        source = """
        int d0 = 0;
        int count = 0;
        int tick() { count = count + 1; return count; }
        void main() { if (0 < d0) { d0 = tick(); } }
        """
        division = Division(
            dynamic_globals={"d0"}, static_globals={"count"}
        )
        residual = _specialize(source, division)
        # tick writes state: it must run exactly as often as the original
        # would, so a residual version is kept (and count, reclassified
        # dynamic by the dynamic-context rule, survives as a global).
        assert "tick__s" in residual.source
        for value in (0, 5):
            assert (
                run_program(source, {"d0": value})["d0"]
                == run_program(residual.source, {"d0": value})["d0"]
            )

    def test_literal_condition_decides_residual_if(self):
        source = """
        int d0 = 0;
        int pick(int a, int b) { if (a < b) { return a; } return b; }
        void main() { if (0 < d0) { if (pick(1, 2) == 1) { d0 = 7; } } }
        """
        division = Division(dynamic_globals={"d0"}, static_globals=set())
        residual = _specialize(source, division)
        # The inner condition folds via the pure call: only one branch
        # remains, guarded by the genuinely dynamic outer condition.
        assert "pick" not in residual.source
        assert "d0 = 7" in residual.source
        assert run_program(residual.source, {"d0": 1})["d0"] == 7
