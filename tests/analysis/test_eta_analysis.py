"""Unit tests for the evaluation-time analysis."""

import pytest

from repro.analysis.attributes import EVAL, RESIDUAL, AttributesTable
from repro.analysis.bta import BindingTimeAnalysis, Division
from repro.analysis.eta import EvaluationTimeAnalysis
from repro.analysis.lang.parser import parse
from repro.analysis.sideeffect import SideEffectAnalysis
from repro.analysis.symbols import resolve


def _analyse(source, division=None):
    program = parse(source)
    symbols = resolve(program)
    attributes = AttributesTable.for_program(program.node_count)
    side_effects = SideEffectAnalysis(program, symbols, attributes)
    side_effects.run()
    bta = BindingTimeAnalysis(program, symbols, attributes, side_effects, division)
    bta.run()
    eta = EvaluationTimeAnalysis(program, symbols, attributes, bta)
    eta.run()
    return program, attributes, eta


def _et(attributes, node):
    return attributes.of(node).et_entry.et.value


class TestInitialization:
    def test_initialized_static_global_evaluable(self):
        program, attrs, _ = _analyse("int n = 4;\nint m = 0;\nvoid f() { m = n + 1; }")
        stmt = program.function("f").body.body[0]
        assert _et(attrs, stmt.expr) == EVAL

    def test_uninitialized_static_local_residual_until_assigned(self):
        program, attrs, _ = _analyse(
            "int n = 1;\nvoid f() { int x; int y = x + 1; x = n; int z = x + 1; }"
        )
        body = program.function("f").body.body
        first_use = body[1].init  # x used before any assignment
        later_use = body[3].init  # x used after x = n
        assert _et(attrs, first_use) == RESIDUAL
        assert _et(attrs, later_use) == EVAL

    def test_dynamic_expression_always_residual(self):
        program, attrs, _ = _analyse(
            "int a[4];\nint x = 0;\nvoid f(int i) { x = a[i]; }"
        )
        stmt = program.function("f").body.body[0]
        assert _et(attrs, stmt.expr) == RESIDUAL


class TestPaths:
    def test_branch_intersection(self):
        # x is static-initialized on only one branch of a static if: after
        # the if, its value at specialization time is not definite.
        program, attrs, _ = _analyse(
            "int n = 1;\nint r = 0;\n"
            "void f() { int x; if (n > 0) { x = 1; } else { r = 2; } r = x; }"
        )
        last = program.function("f").body.body[2]
        assert _et(attrs, last.expr) == RESIDUAL

    def test_both_branches_initialize(self):
        program, attrs, _ = _analyse(
            "int n = 1;\nint r = 0;\n"
            "void f() { int x; if (n > 0) { x = 1; } else { x = 2; } r = x; }"
        )
        last = program.function("f").body.body[2]
        assert _et(attrs, last.expr) == EVAL

    def test_assignment_under_dynamic_control_kills_definiteness(self):
        program, attrs, _ = _analyse(
            "int a[4];\nint n = 1;\nint r = 0;\n"
            "void f(int i) { int x = 1; if (a[i] > 0) { x = 2; } r = x; }"
        )
        last = program.function("f").body.body[2]
        # x's spec-time value depends on a dynamic branch: residual.
        assert _et(attrs, last.expr) == RESIDUAL

    def test_loop_body_feedback(self):
        # x is reset to a static value before the loop but residualized
        # inside it; uses after the loop must be residual.
        program, attrs, _ = _analyse(
            "int a[4];\nint r = 0;\n"
            "void f(int i) { int x = 0; while (i < 3) { x = a[i]; i = i + 1; } r = x; }"
        )
        last = program.function("f").body.body[2]
        assert _et(attrs, last.expr) == RESIDUAL


class TestCalls:
    def test_fully_static_function_evaluable(self):
        program, attrs, eta = _analyse(
            "int n = 2;\nint g(int p) { return p * 2; }\n"
            "int r = 0;\nvoid f() { r = g(n); }"
        )
        assert eta.callable_summaries["g"] is True
        stmt = program.function("f").body.body[0]
        assert _et(attrs, stmt.expr) == EVAL

    def test_function_with_residual_body_not_callable(self):
        program, attrs, eta = _analyse(
            "int a[4];\nint g(int p) { return p + a[0]; }\n"
            "int n = 1;\nint r = 0;\nvoid f() { r = g(n); }"
        )
        assert eta.callable_summaries["g"] is False
        stmt = program.function("f").body.body[0]
        assert _et(attrs, stmt.expr) == RESIDUAL


class TestConvergence:
    def test_paper_iteration_shape(self):
        # The paper reports far fewer ETA than BTA iterations; ours also
        # converges in a small number of passes.
        _, _, eta = _analyse(
            "int n = 4;\nint a[16];\n"
            "void f() { int i; for (i = 0; i < n; i = i + 1) { a[i] = i; } }"
        )
        assert 2 <= eta.iterations <= 5

    def test_rerun_converged_changes_nothing(self):
        program, attrs, eta = _analyse("int n = 1;\nvoid f() { n = n + 2; }")
        for entry in attrs.entries:
            entry.et_entry.et._ckpt_info.modified = False
        assert eta._pass() is False


class TestDynamicCallingContext:
    def test_callee_under_dynamic_control_not_callable_at_spec_time(self):
        _, _, eta = _analyse(
            "int a[4];\nint s = 1;\n"
            "void bump() { s = s + 1; }\n"
            "void f(int i) { if (a[i] > 0) { bump(); } }"
        )
        assert eta.callable_summaries["bump"] is False

    def test_static_context_callee_still_callable(self):
        _, _, eta = _analyse(
            "int s = 1;\nvoid bump() { s = s + 1; }\nvoid f() { bump(); }"
        )
        assert eta.callable_summaries["bump"] is True


class TestSelfStaticForCertification:
    def test_inner_loop_control_certified_under_dynamic_outer(self):
        from repro.analysis.lang import astnodes as ast

        program, attrs, eta = _analyse(
            "int a[16];\nint total = 0;\n"
            "void f(int n) { int i; int j; n = a[0]; "
            "for (i = 0; i < n; i = i + 1) { "
            "for (j = 0; j < 3; j = j + 1) { total = total + a[j]; } } }"
        )
        function = program.function("f")
        outer = function.body.body[3]
        inner = outer.body.body[0]
        assert isinstance(inner, ast.For)
        # Inner loop control is evaluable at specialization time even
        # though the outer loop is dynamic (the unrolling exemption) ...
        assert attrs.of(inner.cond).et_entry.et.value == EVAL
        assert attrs.of(inner.init).et_entry.et.value == EVAL
        assert attrs.of(inner.step).et_entry.et.value == EVAL
        # ... while the outer loop's control is not.
        assert attrs.of(outer.cond).et_entry.et.value == RESIDUAL
