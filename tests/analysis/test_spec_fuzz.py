"""Differential fuzzing of the mini-C specializer.

Generates random (always-terminating) programs over a mix of static and
dynamic globals — nested bounded loops, conditionals with static or
dynamic conditions, helper calls — specializes them, and checks that the
residual program computes exactly the same dynamic state as the original
for random inputs. Any unsoundness in the side-effect, binding-time or
evaluation-time analyses, or in the partial evaluator, shows up as a
divergence here.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.bta import Division
from repro.analysis.engine import AnalysisEngine
from repro.analysis.interp import run_program
from repro.analysis.specializer import specialize_program

_STATIC_VARS = ("s0", "s1")
_DYNAMIC_VARS = ("d0", "d1", "d2")
_OPS = ("+", "-", "*")
_CMP = ("<", ">", "==", "!=", "<=", ">=")

_HEADER = (
    "int s0 = 3;\n"
    "int s1 = 7;\n"
    "int d0 = 0;\n"
    "int d1 = 0;\n"
    "int d2 = 0;\n"
    "int mix(int a, int b) { return a * 2 + b; }\n"
    "int pick(int a, int b) { if (a < b) { return a; } return b; }\n"
)


@st.composite
def _expr(draw, depth: int = 0, scope=()):
    choices = ["literal", "var"]
    if depth < 2:
        choices += ["binop", "call"]
    kind = draw(st.sampled_from(choices))
    if kind == "literal":
        return str(draw(st.integers(-3, 3))).replace("-", "0 - ")
    if kind == "var":
        pool = _STATIC_VARS + _DYNAMIC_VARS + tuple(scope)
        return draw(st.sampled_from(pool))
    if kind == "binop":
        op = draw(st.sampled_from(_OPS))
        left = draw(_expr(depth=depth + 1, scope=scope))
        right = draw(_expr(depth=depth + 1, scope=scope))
        return f"({left} {op} {right})"
    callee = draw(st.sampled_from(("mix", "pick")))
    left = draw(_expr(depth=depth + 1, scope=scope))
    right = draw(_expr(depth=depth + 1, scope=scope))
    return f"{callee}({left}, {right})"


@st.composite
def _condition(draw, scope=()):
    op = draw(st.sampled_from(_CMP))
    left = draw(_expr(depth=1, scope=scope))
    right = draw(_expr(depth=1, scope=scope))
    return f"{left} {op} {right}"


@st.composite
def _stmts(draw, counter, depth: int = 0, scope=()):
    out = []
    for _ in range(draw(st.integers(1, 3))):
        kind = draw(
            st.sampled_from(
                ["assign", "assign", "if", "loop"] if depth < 2 else ["assign"]
            )
        )
        if kind == "assign":
            target = draw(st.sampled_from(_STATIC_VARS + _DYNAMIC_VARS))
            value = draw(_expr(scope=scope))
            out.append(f"{target} = {value};")
        elif kind == "if":
            cond = draw(_condition(scope=scope))
            then = draw(_stmts(counter, depth + 1, scope))
            body = " ".join(then)
            if draw(st.booleans()):
                orelse = " ".join(draw(_stmts(counter, depth + 1, scope)))
                out.append(f"if ({cond}) {{ {body} }} else {{ {orelse} }}")
            else:
                out.append(f"if ({cond}) {{ {body} }}")
        else:  # bounded loop with a fresh induction variable
            index = next(counter)
            var = f"i{index}"
            bound = draw(st.integers(1, 3))
            body = " ".join(draw(_stmts(counter, depth + 1, scope + (var,))))
            out.append(
                f"int {var}; for ({var} = 0; {var} < {bound}; "
                f"{var} = {var} + 1) {{ {body} }}"
            )
    return out


@st.composite
def random_program(draw):
    counter = itertools.count()
    body = " ".join(draw(_stmts(counter, 0, ())))
    return _HEADER + "void main() { " + body + " }"


_DIVISION = Division(
    static_globals=set(_STATIC_VARS), dynamic_globals=set(_DYNAMIC_VARS)
)


class TestDifferentialEquivalence:
    @settings(max_examples=120, deadline=None)
    @given(
        random_program(),
        st.integers(-50, 50),
        st.integers(-50, 50),
        st.integers(-50, 50),
    )
    def test_residual_matches_original(self, source, d0, d1, d2):
        inputs = {"d0": d0, "d1": d1, "d2": d2}
        engine = AnalysisEngine(source, division=_DIVISION, strategy="none")
        engine.run()
        residual = specialize_program(engine)

        original = run_program(source, inputs)
        specialized = run_program(residual.source, inputs)
        for name in _DYNAMIC_VARS:
            assert specialized[name] == original[name], (
                f"divergence on {name}:\n--- original ---\n{source}\n"
                f"--- residual ---\n{residual.source}"
            )

    @settings(max_examples=40, deadline=None)
    @given(random_program())
    def test_residual_reanalyzes_cleanly(self, source):
        engine = AnalysisEngine(source, division=_DIVISION, strategy="none")
        engine.run()
        residual = specialize_program(engine)
        # The residual program is a valid program of the same language.
        check = AnalysisEngine(residual.source, division=_DIVISION, strategy="none")
        check.run()

    @settings(max_examples=40, deadline=None)
    @given(random_program())
    def test_static_scalars_fully_folded(self, source):
        engine = AnalysisEngine(source, division=_DIVISION, strategy="none")
        engine.run()
        residual = specialize_program(engine)
        # A global the binding-time analysis *kept* static never survives
        # into the residual program: every read folds to a literal, every
        # write executes at specialization time. (Globals declared static
        # but tainted by dynamic data are correctly reclassified and may
        # remain — e.g. `s0 = d0;`.)
        import re

        from repro.analysis.attributes import STATIC

        for name in _STATIC_VARS:
            symbol = engine.symbols.globals[name]
            if engine.bta.bt[symbol.symbol_id] == STATIC:
                # Word-boundary match: version names like mix__s1 are fine.
                assert not re.search(rf"\b{name}\b", residual.source)
