"""Unit tests for the partial evaluator and the code generator.

The headline invariant — specialized output is byte-identical to the
generic incremental driver under any conforming modification state — is
checked here on hand-picked states and in test_spec_properties.py with
hypothesis on random ones.
"""

import pytest

from repro.core.checkpoint import Checkpoint, collect_objects, reset_flags, set_all_flags
from repro.core.errors import PatternViolationError
from repro.core.streams import DataOutputStream
from repro.spec.modpattern import ModificationPattern
from repro.spec.pe import Specializer
from repro.spec.shape import Shape
from repro.spec.specclass import SpecClass, SpecCompiler, SpecializedCheckpointer
from repro.synthetic.structures import build_structure, element_at
from tests.conftest import build_root


def generic_bytes(root):
    driver = Checkpoint()
    driver.checkpoint(root)
    return driver.getvalue()


def specialized_bytes(fn, root):
    out = DataOutputStream()
    fn(root, out)
    return out.getvalue()


def snapshot_flags(root):
    return [(o._ckpt_info, o._ckpt_info.modified) for o in collect_objects(root)]


def restore_flags(snapshot):
    for info, modified in snapshot:
        info.modified = modified


@pytest.fixture
def compiled():
    root = build_root()
    shape = Shape.of(root)
    return root, shape, SpecCompiler()


class TestStructureSpecialization:
    def test_byte_identity_all_modified(self, compiled):
        root, shape, compiler = compiled
        fn = compiler.compile(SpecClass(shape))
        set_all_flags(root)
        snapshot = snapshot_flags(root)
        expected = generic_bytes(root)
        restore_flags(snapshot)
        assert specialized_bytes(fn, root) == expected

    def test_byte_identity_partial_modification(self, compiled):
        root, shape, compiler = compiled
        fn = compiler.compile(SpecClass(shape))
        reset_flags(root)
        root.mid.leaf.value = 5
        root.kids[1].weight = 2.5
        snapshot = snapshot_flags(root)
        expected = generic_bytes(root)
        restore_flags(snapshot)
        assert specialized_bytes(fn, root) == expected

    def test_flags_reset_identically(self, compiled):
        root, shape, compiler = compiled
        fn = compiler.compile(SpecClass(shape))
        reset_flags(root)
        root.extra.value = 1
        specialized_bytes(fn, root)
        assert all(not o._ckpt_info.modified for o in collect_objects(root))

    def test_no_virtual_calls_in_source(self, compiled):
        root, shape, compiler = compiled
        fn = compiler.compile(SpecClass(shape))
        source = fn.source
        assert ".record(" not in source
        assert ".fold(" not in source
        assert ".checkpoint(" not in source
        assert "get_checkpoint_info" not in source

    def test_nothing_modified_writes_nothing(self, compiled):
        root, shape, compiler = compiled
        fn = compiler.compile(SpecClass(shape))
        reset_flags(root)
        assert specialized_bytes(fn, root) == b""


class TestPatternSpecialization:
    def test_quiescent_subtree_absent_from_source(self, compiled):
        root, shape, compiler = compiled
        pattern = ModificationPattern.only(shape, [("mid", "leaf")])
        fn = compiler.compile(SpecClass(shape, pattern, name="leaf_only"))
        # The extra/kids subtrees may not be modified: no access to them.
        assert "_f_extra" not in fn.source
        assert "_f_kids" not in fn.source
        assert "_f_mid" in fn.source

    def test_spine_traversed_but_untested(self):
        compound = build_structure(num_lists=1, list_length=3, ints_per_element=1)
        shape = Shape.of(compound)
        pattern = ModificationPattern.last_element_of_lists(shape, ["list0"])
        fn = SpecializedCheckpointer(SpecClass(shape, pattern, name="tail_only"))
        # Exactly one modified-test survives (the tail element's).
        assert fn.source.count(".modified:") == 1
        # The spine is still chased (3 'next' hops... 2 hops + head access).
        assert fn.source.count("_f_next") == 2

    def test_byte_identity_under_pattern(self):
        compound = build_structure(num_lists=2, list_length=3, ints_per_element=2)
        shape = Shape.of(compound)
        pattern = ModificationPattern.restricted_to_lists(shape, ["list0"])
        fn = SpecializedCheckpointer(SpecClass(shape, pattern, name="l0_only"))
        reset_flags(compound)
        element_at(compound, 0, 1).v0 = 42
        snapshot = snapshot_flags(compound)
        expected = generic_bytes(compound)
        restore_flags(snapshot)
        assert specialized_bytes(fn, compound) == expected

    def test_fully_quiescent_pattern_empty_function(self, compiled):
        root, shape, compiler = compiled
        pattern = ModificationPattern.none_modified(shape)
        fn = compiler.compile(SpecClass(shape, pattern, name="noop"))
        set_all_flags(root)  # even a wildly dirty structure...
        assert specialized_bytes(fn, root) == b""  # ...is skipped wholesale
        assert "pass" in fn.source

    def test_violating_state_diverges_without_guards(self, compiled):
        # Without guards, the specializer trusts the declaration: a dirty
        # quiescent object is silently skipped (the paper's contract).
        root, shape, compiler = compiled
        pattern = ModificationPattern.only(shape, [("mid", "leaf")])
        fn = compiler.compile(SpecClass(shape, pattern, name="trusting"))
        reset_flags(root)
        root.extra.value = 3  # violates the declaration
        assert specialized_bytes(fn, root) == b""


class TestGuards:
    def test_guard_detects_pattern_violation(self, compiled):
        root, shape, compiler = compiled
        pattern = ModificationPattern.only(shape, [("mid", "leaf")])
        fn = compiler.compile(SpecClass(shape, pattern, name="guarded", guards=True))
        reset_flags(root)
        # mid is on the traversal path (spine to the live leaf) but was
        # declared quiescent; dirtying it violates the declaration.
        root.mid.notes.append(9)
        with pytest.raises(PatternViolationError, match="quiescent"):
            specialized_bytes(fn, root)

    def test_guard_detects_class_mismatch(self, compiled):
        root, shape, compiler = compiled
        fn = compiler.compile(SpecClass(shape, guards=True, name="guarded_cls"))
        root.mid = None  # structure no longer matches the shape
        root.mid = build_root().mid  # a Mid again: fine
        reset_flags(root)
        root.extra = build_root()  # a Root where a Leaf was declared
        with pytest.raises(PatternViolationError, match="is not a"):
            specialized_bytes(fn, root)

    def test_guards_pass_on_conforming_state(self, compiled):
        root, shape, compiler = compiled
        fn = compiler.compile(SpecClass(shape, guards=True, name="guarded_ok"))
        reset_flags(root)
        root.kids[0].value = 4
        snapshot = snapshot_flags(root)
        expected = generic_bytes(root)
        restore_flags(snapshot)
        assert specialized_bytes(fn, root) == expected


class TestResidualQuality:
    def test_dead_info_bindings_eliminated(self):
        compound = build_structure(num_lists=1, list_length=2, ints_per_element=1)
        shape = Shape.of(compound)
        pattern = ModificationPattern.last_element_of_lists(shape, ["list0"])
        specializer = Specializer(shape, pattern)
        residual = specializer.specialize()
        from repro.spec import ir

        # Exactly one info binding should remain (the tail's); the spine
        # nodes' info reads were dead after their tests were folded away.
        assigns = [
            s
            for s in residual.stmts
            if isinstance(s, ir.Assign) and s.name.startswith("i")
        ]
        assert len(assigns) == 1

    def test_source_compiles_and_is_idempotent(self, compiled):
        root, shape, compiler = compiled
        first = compiler.compile(SpecClass(shape, name="cached"))
        second = compiler.compile(SpecClass(shape, name="cached"))
        assert first is second  # cache hit
        assert len(compiler) == 1

    def test_source_has_prebound_writers(self, compiled):
        root, shape, compiler = compiled
        fn = compiler.compile(SpecClass(shape, name="writers"))
        assert "_w_i = out.write_int32" in fn.source
        assert "_w_f = out.write_float64" in fn.source

    def test_scalar_list_residual_loop(self, compiled):
        root, shape, compiler = compiled
        fn = compiler.compile(SpecClass(shape, name="lists"))
        assert "for _e" in fn.source  # notes list content loop survives

    def test_repr_and_source_lines(self, compiled):
        root, shape, compiler = compiled
        fn = compiler.compile(SpecClass(shape, name="meta"))
        assert fn.source_lines()[0].startswith("def meta")
