"""Rule-engine tests for the static lockset analysis.

The load-bearing guarantees pinned here:

- every seeded racy fixture is detected (no false negatives — the
  acceptance bar for the rule family);
- the shipped runtime (``src/repro``) is clean (no false positives on
  real code);
- held locksets propagate interprocedurally through self-calls;
- lock-order inversions are found as cycles in the global order graph.
"""

import importlib.util
import json
from pathlib import Path

import pytest

from repro.spec.effects.concurrency import analyze_paths, analyze_source

REPO = Path(__file__).resolve().parents[2]


def codes_of(source, filename="<test>"):
    import textwrap

    report = analyze_source(filename, textwrap.dedent(source))
    return {f.code for f in report.findings}, report


class TestRuleFamily:
    def test_unguarded_shared_write(self):
        codes, report = codes_of(
            """
            import threading

            class Tally:
                def __init__(self):
                    self.lock = threading.Lock()
                    self.count = 0

                def bump(self):
                    self.count += 1
            """
        )
        assert codes == {"unguarded-shared-write"}
        assert ("Tally", "count") in report.unguarded_fields()

    def test_inconsistent_guard(self):
        codes, _ = codes_of(
            """
            import threading

            class Tally:
                def __init__(self):
                    self.lock = threading.Lock()
                    self.count = 0

                def safe(self):
                    with self.lock:
                        self.count += 1

                def fast(self):
                    self.count += 1
            """
        )
        assert codes == {"inconsistent-guard"}

    def test_no_common_lock_is_inconsistent(self):
        codes, _ = codes_of(
            """
            import threading

            class Tally:
                def __init__(self):
                    self.a = threading.Lock()
                    self.b = threading.Lock()
                    self.count = 0

                def via_a(self):
                    with self.a:
                        self.count += 1

                def via_b(self):
                    with self.b:
                        self.count += 1
            """
        )
        assert codes == {"inconsistent-guard"}

    def test_lock_order_inversion(self):
        codes, report = codes_of(
            """
            import threading

            class Pair:
                def __init__(self):
                    self.a = threading.Lock()
                    self.b = threading.Lock()
                    self.n = 0

                def fwd(self):
                    with self.a:
                        with self.b:
                            self.n += 1

                def rev(self):
                    with self.b:
                        with self.a:
                            self.n += 1
            """
        )
        assert "lock-order-inversion" in codes
        assert report.cycles

    def test_consistent_order_has_no_inversion(self):
        codes, _ = codes_of(
            """
            import threading

            class Pair:
                def __init__(self):
                    self.a = threading.Lock()
                    self.b = threading.Lock()
                    self.n = 0

                def one(self):
                    with self.a:
                        with self.b:
                            self.n += 1

                def two(self):
                    with self.a:
                        with self.b:
                            self.n -= 1
            """
        )
        assert "lock-order-inversion" not in codes

    def test_blocking_call_under_lock(self):
        codes, _ = codes_of(
            """
            import threading
            import time

            class Slow:
                def __init__(self):
                    self.lock = threading.Lock()
                    self.n = 0

                def work(self):
                    with self.lock:
                        time.sleep(0.1)
                        self.n += 1
            """
        )
        assert "lock-held-across-blocking-call" in codes

    def test_flag_mutation_in_thread_reachable_method(self):
        codes, _ = codes_of(
            """
            import threading

            class Poker:
                def __init__(self, target):
                    self.lock = threading.Lock()
                    self.target = target
                    self._t = threading.Thread(target=self.poke)

                def poke(self):
                    self.target._ckpt_info.modified = True
            """
        )
        assert "flag-mutation-outside-commit" in codes

    def test_guarded_class_is_clean(self):
        codes, report = codes_of(
            """
            import threading

            class Clean:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.count = 0

                def bump(self):
                    with self._lock:
                        self.count += 1
            """
        )
        assert codes == set()
        table = report.guard_table()
        assert table["Clean.count"].status == "guarded"
        assert set(table["Clean.count"].locks) == {"Clean._lock"}


class TestInterprocedural:
    def test_held_set_propagates_through_self_calls(self):
        codes, _ = codes_of(
            """
            import threading

            class Layered:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.state = 0

                def public(self):
                    with self._lock:
                        self._apply()

                def _apply(self):
                    self.state += 1
            """
        )
        # _apply writes bare syntactically, but its only caller holds
        # the lock — and as an underscore-helper it is not its own root
        assert codes == set()

    def test_private_helper_with_no_callers_is_still_a_root(self):
        codes, _ = codes_of(
            """
            import threading

            class Orphan:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.state = 0

                def _externally_driven(self):
                    self.state += 1
            """
        )
        assert codes == {"unguarded-shared-write"}

    def test_public_method_mixing_contexts_is_flagged(self):
        codes, _ = codes_of(
            """
            import threading

            class Mixed:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.state = 0

                def locked_path(self):
                    with self._lock:
                        self.helper()

                def helper(self):
                    self.state += 1
            """
        )
        # helper is public: callable bare from outside, so the bare
        # root races the locked path
        assert codes == {"inconsistent-guard"}


class TestNoFalseNegativesOnFixtures:
    @pytest.mark.parametrize("seed", [0, 7, 42])
    def test_every_seeded_fixture_race_is_detected(self, tmp_path, seed):
        spec = importlib.util.spec_from_file_location(
            "make_race_fixture", REPO / "tools" / "make_race_fixture.py"
        )
        tool = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(tool)
        out = tmp_path / f"seed{seed}"
        manifest = tool.generate(out, seed=seed)
        assert len(manifest) == 5
        written = json.loads((out / "manifest.json").read_text())
        assert written == manifest
        for entry in manifest:
            report = analyze_paths([str(out / entry["file"])])
            codes = {f.code for f in report.findings}
            assert entry["rule"] in codes, (
                f"seed {seed}: {entry['file']} seeded with {entry['rule']} "
                f"but the analysis reported {codes or 'nothing'}"
            )


class TestShippedRuntimeIsClean:
    def test_src_repro_has_zero_findings(self):
        report = analyze_paths([str(REPO / "src" / "repro")])
        assert [f.format_human() for f in report.findings] == []

    def test_src_repro_guard_proofs_cover_the_session_and_writer(self):
        report = analyze_paths([str(REPO / "src" / "repro")])
        table = report.guard_table()
        for name in (
            "BackgroundWriter._failed",
            "BackgroundWriter.dropped",
            "BackgroundWriter.degraded",
            "CheckpointSession.history",
            "CheckpointSession.commits",
            "CheckpointSession._escalate_full",
            "IdAllocator._last",
            "Tracer.dropped",
        ):
            assert table[name].status == "guarded", (
                name,
                table[name].status,
            )

    def test_the_fsync_suppression_is_recorded_with_provenance(self):
        report = analyze_paths([str(REPO / "src" / "repro")])
        sites = [
            s
            for s in report.suppressed
            if s.filename.endswith("storage.py")
        ]
        assert any("fsync" in s.reason for s in sites)
