"""The conservative fallback: aliases escaping to unresolvable callables.

A shape alias handed to a callable the analysis cannot see (builtin, C
extension, ``exec``-built function, unknown-receiver method) must widen
the *whole* escaping subtree — every position reachable from the alias —
and record a precision-loss note in ``EffectReport.fallbacks``. Siblings
that never escape must stay quiescent: the fallback is conservative, not
a give-up-on-everything.
"""

import pytest

from repro.spec import Shape, analyze_effects
from tests.conftest import Root, build_root


@pytest.fixture(scope="module")
def shape():
    return Shape.of(build_root())


def _subtree_paths(shape, prefix):
    return {
        path for path in shape.paths() if path[: len(prefix)] == prefix
    }


# -- phases under analysis (module level: the analyzer needs their source) --

exec("def UNRESOLVABLE(obj):\n    obj.mystery()\n")


def phase_escape_direct(root: Root):
    UNRESOLVABLE(root.mid)  # noqa: F821


def phase_escape_via_alias(root: Root):
    m = root.mid
    UNRESOLVABLE(m)  # noqa: F821


def phase_escape_to_unknown_method(root: Root, log):
    log.append(root.mid)


def phase_escape_keyword(root: Root):
    UNRESOLVABLE(obj=root.mid)  # noqa: F821


class TestSubtreeWidening:
    def test_escaping_subtree_is_fully_widened(self, shape):
        report = analyze_effects(shape, [phase_escape_direct])
        expected = _subtree_paths(shape, ("mid",))
        assert expected  # the fixture really has a subtree under mid
        assert expected <= report.may_write

    def test_alias_indirection_does_not_hide_the_escape(self, shape):
        direct = analyze_effects(shape, [phase_escape_direct])
        via_alias = analyze_effects(shape, [phase_escape_via_alias])
        assert via_alias.may_write == direct.may_write

    def test_keyword_arguments_escape_too(self, shape):
        report = analyze_effects(shape, [phase_escape_keyword])
        assert _subtree_paths(shape, ("mid",)) <= report.may_write

    def test_unknown_receiver_method_escapes_its_argument(self, shape):
        report = analyze_effects(
            shape, [phase_escape_to_unknown_method], roots=["root"]
        )
        assert _subtree_paths(shape, ("mid",)) <= report.may_write
        assert not report.is_exact()

    def test_non_escaping_siblings_stay_quiescent(self, shape):
        report = analyze_effects(shape, [phase_escape_direct])
        assert ("extra",) not in report.may_write
        assert () not in report.may_write  # the root itself did not escape


class TestPrecisionLossNotes:
    def test_fallback_note_is_recorded(self, shape):
        report = analyze_effects(shape, [phase_escape_direct])
        assert not report.is_exact()
        assert report.fallbacks
        reasons = [site.reason for site in report.fallbacks]
        assert any("UNRESOLVABLE" in reason for reason in reasons)
        assert all(site.filename and site.lineno for site in report.fallbacks)

    def test_evidence_links_widened_position_to_the_escape(self, shape):
        report = analyze_effects(shape, [phase_escape_direct])
        sites = report.evidence(("mid", "leaf"))
        assert sites
        assert any(
            site.filename.endswith("test_effects_fallback.py")
            for site in sites
        )

    def test_exact_phase_has_no_fallbacks(self, shape):
        def untouched(root: Root):
            root.extra.value = 9

        # defined inside the test: source is still available via the file
        report = analyze_effects(shape, [untouched])
        assert report.is_exact()
        assert not report.fallbacks
