"""Unit tests for the call graph and the source/summary caches."""

import ast

import pytest

from repro.core.errors import EffectAnalysisError
from repro.spec import Shape, analyze_effects
from repro.spec.effects.callgraph import (
    CallGraph,
    SourceCache,
    SummaryCache,
    code_digest,
    code_key,
)
from tests.conftest import Mid, Root, build_root


@pytest.fixture(scope="module")
def shape():
    return Shape.of(build_root())


# -- functions under analysis (module level: source must be available) ------


def _touch_leaf(mid: Mid):
    mid.leaf.value = 1


def phase_calls_helper_twice(root: Root):
    _touch_leaf(root.mid)
    _touch_leaf(root.mid)


def phase_calls_helper_once(root: Root):
    _touch_leaf(root.mid)


def plain_function(x):
    return x + 1


# a function whose source is genuinely unavailable (exec-built)
exec("def GHOST(obj):\n    obj.anything = 1\n")


def phase_calls_ghost(root: Root):
    GHOST(root.mid)  # noqa: F821


class TestCodeIdentity:
    def test_digest_is_stable(self):
        assert (
            code_digest(plain_function.__code__)
            == code_digest(plain_function.__code__)
        )

    def test_digest_distinguishes_bodies(self):
        def variant_a(x):
            return x + 1

        def variant_b(x):
            return x + 2

        assert code_digest(variant_a.__code__) != code_digest(
            variant_b.__code__
        )

    def test_code_key_carries_module_and_qualname(self):
        module, qualname, digest = code_key(plain_function)
        assert module == __name__
        assert qualname == "plain_function"
        assert digest == code_digest(plain_function.__code__)


class TestSourceCache:
    def test_load_parses_once_then_hits(self):
        cache = SourceCache()
        first = cache.load(plain_function)
        second = cache.load(plain_function)
        assert first is second  # the memoized parse, not a re-parse
        assert cache.misses == 1 and cache.hits == 1
        fdef, filename = first
        assert isinstance(fdef, ast.FunctionDef)
        assert filename.endswith("test_callgraph.py")

    def test_redefinition_invalidates_the_stale_parse(self):
        cache = SourceCache()
        # two distinct bodies sharing one (module, qualname) slot, the way
        # a reloaded module or an interactively-redefined function would
        if True:
            def reloaded(x):  # noqa: E301
                return x + 1
        first = cache.load(reloaded)
        if True:
            def reloaded(x):  # noqa: F811
                return x - 1
        second = cache.load(reloaded)
        assert cache.invalidations == 1
        assert cache.misses == 2
        assert first is not second
        assert len(cache) == 1  # the slot was replaced, not duplicated

    def test_unavailable_source_is_cached_as_none(self):
        cache = SourceCache()
        namespace = {}
        exec("def ghost(x):\n    return x\n", namespace)
        assert cache.load(namespace["ghost"]) is None
        assert cache.load(namespace["ghost"]) is None
        assert cache.hits == 1  # the None verdict is memoized too

    def test_non_function_is_rejected_without_caching(self):
        cache = SourceCache()
        assert cache.load(len) is None
        assert len(cache) == 0

    def test_clear(self):
        cache = SourceCache()
        cache.load(plain_function)
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0


class TestSummaryCache:
    def test_repeated_call_hits_the_summary(self, shape):
        cache = SummaryCache(shape)
        report = analyze_effects(
            shape, [phase_calls_helper_twice], summaries=cache
        )
        assert report.may_write == {("mid", "leaf")}
        assert cache.misses >= 1
        assert cache.hits >= 1  # the second identical call replays

    def test_cache_is_reused_across_analyses(self, shape):
        cache = SummaryCache(shape)
        analyze_effects(shape, [phase_calls_helper_once], summaries=cache)
        misses_before = cache.misses
        report = analyze_effects(
            shape, [phase_calls_helper_once], summaries=cache
        )
        assert report.may_write == {("mid", "leaf")}
        assert cache.misses == misses_before  # nothing re-analysed
        assert cache.hits >= 1

    def test_foreign_shape_cache_is_rejected(self, shape):
        other = Shape.of(build_root())
        with pytest.raises(EffectAnalysisError):
            analyze_effects(
                shape, [phase_calls_helper_once], summaries=SummaryCache(other)
            )


class TestCallGraph:
    def test_edges_are_collected_during_analysis(self, shape):
        graph = CallGraph()
        analyze_effects(shape, [phase_calls_helper_once], callgraph=graph)
        assert len(graph) >= 1
        callers = graph.functions()
        assert any("phase_calls_helper_once" in name for name in callers)
        callees = [
            callee
            for caller in callers
            for callee in graph.callees(caller)
        ]
        assert any("_touch_leaf" in callee for callee in callees)

    def test_unresolved_edges_are_recorded(self, shape):
        graph = CallGraph()
        report = analyze_effects(
            shape, [phase_calls_ghost], callgraph=graph
        )
        unresolved = graph.unresolved()
        assert unresolved
        assert any("GHOST" in edge.callee for edge in unresolved)
        assert all(edge.location() for edge in unresolved)
        assert not report.is_exact()  # the escape widened conservatively
