"""Tests for the dynamic counterexample harness (``effects/crosscheck``).

The harness exists to catch exactly one thing: a statically-quiescent
position that a live run dirties. The static analysis is conservative
over everything it can see, so to exercise the failure path the cheat
phase below launders an alias through a module-global dict — a write the
flow-insensitive analysis genuinely cannot attribute. The harness must
catch it dynamically and minimize the repro to the offending function.
"""

import pytest

from repro.spec import Shape
from repro.spec.effects.crosscheck import (
    SYNTHETIC_PRESETS,
    Counterexample,
    CrosscheckResult,
    crosscheck_driver,
    crosscheck_phases,
    crosscheck_synthetic,
)
from tests.conftest import Root, build_root


@pytest.fixture(scope="module")
def shape():
    return Shape.of(build_root())


# -- phases / drivers (module level: the analyzer needs their source) -------


def bump_leaf(root: Root):
    root.mid.leaf.value += 1


def touch_extra(root: Root):
    root.extra.value = 5


_STASH = {}


def sneaky_stash(root: Root):
    _STASH["node"] = root.extra


def sneaky_write(root: Root):
    sneaky_stash(root)
    _STASH["node"].value += 1  # invisible to the static analysis


def honest_driver(root: Root, session):
    session.base(roots=[root])
    root.mid.leaf.value += 1
    session.commit(phase="bump", roots=[root])


class TestSoundPhases:
    def test_sound_phases_produce_no_counterexamples(self, shape):
        result = crosscheck_phases(
            shape,
            {"bump": [bump_leaf], "extra": [touch_extra]},
            build_root,
            rounds=2,
        )
        assert result.ok
        assert result.counterexamples == []
        # per round and phase: one quiescence check + one byte check
        assert result.checks == 2 * 2 * 2
        assert any("bump" in note for note in result.notes)

    def test_describe_reports_green(self, shape):
        result = crosscheck_phases(shape, {"bump": [bump_leaf]}, build_root)
        text = "\n".join(result.describe())
        assert "ok" in text and "FAILED" not in text


class TestCounterexamples:
    def test_laundered_write_is_caught_dynamically(self, shape):
        result = crosscheck_phases(
            shape, {"sneak": [sneaky_write]}, build_root, rounds=1
        )
        assert not result.ok
        assert result.counterexamples
        ce = result.counterexamples[0]
        assert isinstance(ce, Counterexample)
        assert ce.phase == "sneak"
        assert ce.path == ("extra",)

    def test_counterexample_repro_is_minimized_to_the_writer(self, shape):
        result = crosscheck_phases(
            shape, {"sneak": [sneaky_write]}, build_root, rounds=1
        )
        ce = result.counterexamples[0]
        assert "sneaky_write" in ce.repro

    def test_describe_mentions_the_counterexample(self, shape):
        result = crosscheck_phases(
            shape, {"sneak": [sneaky_write]}, build_root, rounds=1
        )
        text = "\n".join(result.describe())
        assert "FAILED" in text
        assert "minimized" in text


class TestDriverCrosscheck:
    def test_honest_driver_is_green(self, shape):
        result = crosscheck_driver(
            shape, honest_driver, build_root, roots=["root"]
        )
        assert result.ok
        assert result.checks > 0


class TestSyntheticCrosscheck:
    def test_presets_are_well_formed(self):
        assert set(SYNTHETIC_PRESETS) >= {
            "uniform", "restricted-lists", "last-element",
        }

    def test_tiny_preset_is_green(self):
        results = crosscheck_synthetic(
            presets={
                "tiny": dict(num_structures=4, num_lists=2, list_length=2)
            },
            sample=2,
        )
        assert len(results) == 1
        result = results[0]
        assert isinstance(result, CrosscheckResult)
        assert result.scenario == "synthetic:tiny"
        assert result.ok
        assert result.checks > 0
