"""Unit tests for whole-program phase inference (``effects/wholeprogram``)."""

import copy

import pytest

from repro.core.errors import EffectAnalysisError
from repro.spec import ModificationPattern, Shape, SpecCompiler
from repro.spec.effects.wholeprogram import CommitSite, infer_phases
from tests.conftest import Root, build_root


@pytest.fixture(scope="module")
def shape():
    return Shape.of(build_root())


# -- drivers under analysis (module level: the analyzer needs their source) --


def driver_basic(root: Root, session):
    session.base(roots=[root])
    root.mid.leaf.value += 1
    session.commit(phase="hot", roots=[root])
    root.name = "done"
    session.commit(phase="wrap", roots=[root])


def driver_unlabeled(root: Root, session):
    session.base(roots=[root])
    root.mid.leaf.value = 1
    session.commit(roots=[root])
    root.name = "x"
    session.commit(phase="named", roots=[root])


def driver_merged(root: Root, session):
    session.base(roots=[root])
    root.mid.leaf.value = 1
    session.commit(phase="work", roots=[root])
    root.extra.value = 2
    session.commit(phase="work", roots=[root])


def driver_epilogue(root: Root, session):
    session.base(roots=[root])
    root.mid.leaf.value = 1
    session.commit(phase="only", roots=[root])
    root.name = "trailing"


def driver_session_alias(root: Root, session):
    s = session
    s.base(roots=[root])
    root.mid.leaf.value = 1
    s.commit(phase="aliased", roots=[root])


def driver_escape(root: Root, session):
    session.base(roots=[root])
    copy.deepcopy(root.mid)
    session.commit(phase="fuzzy", roots=[root])


class TestCommitSiteDiscovery:
    def test_sites_in_program_order(self, shape):
        report = infer_phases(shape, driver_basic, roots=["root"])
        methods = [s.method for s in report.commit_sites]
        assert methods == ["base", "commit", "commit"]
        linenos = [s.lineno for s in report.commit_sites]
        assert linenos == sorted(linenos)
        assert all(s.filename.endswith("test_wholeprogram.py")
                   for s in report.commit_sites)

    def test_labels_and_labeled_flag(self, shape):
        report = infer_phases(shape, driver_basic, roots=["root"])
        commits = [s for s in report.commit_sites if s.method == "commit"]
        assert [s.phase for s in commits] == ["hot", "wrap"]
        assert all(s.labeled for s in commits)

    def test_unlabeled_commit_is_found_but_not_bindable(self, shape):
        report = infer_phases(shape, driver_unlabeled, roots=["root"])
        unlabeled = report.unlabeled_commits()
        assert len(unlabeled) == 1
        assert isinstance(unlabeled[0], CommitSite)
        assert not unlabeled[0].labeled
        assert set(report.bindable()) == {"named"}

    def test_session_alias_is_followed(self, shape):
        report = infer_phases(shape, driver_session_alias, roots=["root"])
        assert len(report.commit_sites) == 2
        assert set(report.bindable()) == {"aliased"}

    def test_driver_without_source_is_an_error(self, shape):
        namespace = {}
        exec("def ghost(root, session):\n    session.commit()\n", namespace)
        with pytest.raises(EffectAnalysisError):
            infer_phases(shape, namespace["ghost"], roots=["root"])


class TestRegionSegmentation:
    def test_region_per_commit_site(self, shape):
        report = infer_phases(shape, driver_basic, roots=["root"])
        kinds = [p.kind for p in report.phases]
        assert kinds.count("interval") == 2
        names = [p.name for p in report.phases if p.kind == "interval"]
        assert names == ["hot", "wrap"]

    def test_region_writes_are_what_its_commit_captures(self, shape):
        report = infer_phases(shape, driver_basic, roots=["root"])
        assert report.phase("hot").report.may_write == {("mid", "leaf")}
        # root.name is a scalar on the root node: position ()
        assert report.phase("wrap").report.may_write == {()}

    def test_region_line_spans_nest_inside_the_driver(self, shape):
        report = infer_phases(shape, driver_basic, roots=["root"])
        hot = report.phase("hot").region
        wrap = report.phase("wrap").region
        assert hot.start_line <= hot.end_line < wrap.end_line

    def test_epilogue_writes_are_reported(self, shape):
        report = infer_phases(shape, driver_epilogue, roots=["root"])
        tails = [p for p in report.phases if p.kind == "epilogue"]
        assert len(tails) == 1
        assert tails[0].report.may_write == {()}
        # the epilogue is not a bindable phase: no commit carries it
        assert set(report.bindable()) == {"only"}


class TestBindableMerging:
    def test_same_label_from_two_regions_is_joined(self, shape):
        report = infer_phases(shape, driver_merged, roots=["root"])
        merged = report.bindable()["work"]
        assert merged.report.may_write == {("mid", "leaf"), ("extra",)}

    def test_merged_pattern_admits_both_regions(self, shape):
        report = infer_phases(shape, driver_merged, roots=["root"])
        pattern = report.bindable()["work"].pattern
        expected = ModificationPattern.only(
            shape, [("mid", "leaf"), ("extra",)]
        )
        assert pattern.may_modify_paths() == expected.may_modify_paths()


class TestProvenanceAndPrecision:
    def test_provenance_points_at_the_write(self, shape):
        report = infer_phases(shape, driver_basic, roots=["root"])
        trail = report.phase("hot").provenance()
        assert any("test_wholeprogram.py" in line for line in trail)

    def test_exact_phase(self, shape):
        report = infer_phases(shape, driver_basic, roots=["root"])
        assert report.phase("hot").exact

    def test_opaque_escape_widens_and_marks_inexact(self, shape):
        report = infer_phases(shape, driver_escape, roots=["root"])
        fuzzy = report.phase("fuzzy")
        assert not fuzzy.exact
        assert fuzzy.report.fallbacks
        assert {("mid",), ("mid", "leaf")} <= fuzzy.report.may_write

    def test_unknown_phase_name_raises(self, shape):
        report = infer_phases(shape, driver_basic, roots=["root"])
        with pytest.raises(EffectAnalysisError):
            report.phase("nonexistent")

    def test_describe_mentions_every_region(self, shape):
        report = infer_phases(shape, driver_basic, roots=["root"])
        text = "\n".join(report.describe())
        assert "hot" in text and "wrap" in text


class TestInferredSpecs:
    def test_inferred_phase_compiles_unguarded(self, shape):
        report = infer_phases(shape, driver_basic, roots=["root"])
        fast = SpecCompiler().compile(report.phase("hot").spec())
        assert ("mid", "leaf") in fast.recorded_paths

    def test_spec_records_exactly_the_inferred_positions(self, shape):
        report = infer_phases(shape, driver_merged, roots=["root"])
        fast = SpecCompiler().compile(report.bindable()["work"].spec())
        assert {("mid", "leaf"), ("extra",)} <= set(fast.recorded_paths)
