"""Property-based consistency tests for shapes and modification patterns."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spec.modpattern import ModificationPattern
from repro.spec.shape import Shape
from repro.synthetic.structures import build_structure


def _shape(num_lists, list_length):
    return Shape.of(build_structure(num_lists, list_length, 1))


@st.composite
def shape_and_paths(draw):
    num_lists = draw(st.integers(1, 3))
    list_length = draw(st.integers(1, 4))
    shape = _shape(num_lists, list_length)
    paths = draw(st.sets(st.sampled_from(shape.paths()), max_size=shape.node_count()))
    return shape, sorted(paths)


class TestPatternConsistency:
    @settings(max_examples=50, deadline=None)
    @given(shape_and_paths())
    def test_subtree_query_matches_node_queries(self, case):
        shape, paths = case
        pattern = ModificationPattern.only(shape, paths)
        for node in shape.root.walk():
            expected = any(
                pattern.node_may_be_modified(descendant)
                for descendant in node.walk()
            )
            assert pattern.subtree_may_be_modified(node) == expected

    @settings(max_examples=50, deadline=None)
    @given(shape_and_paths())
    def test_quiescent_and_live_partition_all_paths(self, case):
        shape, paths = case
        pattern = ModificationPattern.only(shape, paths)
        quiescent = set(pattern.quiescent_paths())
        live = set(pattern.may_modify_paths())
        assert quiescent | live == set(shape.paths())
        assert quiescent & live == set()

    @settings(max_examples=30, deadline=None)
    @given(shape_and_paths())
    def test_specialized_source_never_reads_dead_subtrees(self, case):
        """Positions in fully quiescent subtrees leave no trace in the
        residual code: the structural access for their list field only
        appears when some member's subtree is live."""
        from repro.spec.specclass import SpecClass, SpecializedCheckpointer

        shape, paths = case
        pattern = ModificationPattern.only(shape, paths)
        fn = SpecializedCheckpointer(
            SpecClass(shape, pattern, name=f"prop_pat_{abs(hash(tuple(paths))) % 10**8}")
        )
        root_recordable = pattern.node_may_be_modified(shape.root)
        for edge in shape.root.edges:
            live = pattern.subtree_may_be_modified(edge.node)
            accessed = f"_f_{edge.field}" in fn.source
            if root_recordable:
                # The root's record writes every child id: all fields appear.
                assert accessed
            else:
                assert accessed == live

    @settings(max_examples=30, deadline=None)
    @given(shape_and_paths())
    def test_all_dynamic_is_upper_bound(self, case):
        shape, paths = case
        restricted = ModificationPattern.only(shape, paths)
        everything = ModificationPattern.all_dynamic(shape)
        for node in shape.root.walk():
            if restricted.subtree_may_be_modified(node):
                assert everything.subtree_may_be_modified(node)
