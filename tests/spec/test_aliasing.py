"""Rule-engine tests for the static escape/alias analysis.

The load-bearing guarantees pinned here:

- every rule in the alias family fires on its seeded bug shape, at the
  right severity;
- ``# alias-ok: reason`` suppresses a finding and records the site;
- reference flow is tracked interprocedurally (a helper that bypasses
  the flag is caught from its call sites, and its summary is cached);
- :func:`repro.spec.effects.aliasing.analyze_function` produces the
  same verdicts for a live function object (the bind-time seam);
- the shipped runtime (``src/repro``) is clean — no error/warning
  false positives on real code;
- every fixture ``tools/make_alias_fixture.py`` seeds is statically
  detected under its manifest rule (the crosscheck's static half).
"""

import importlib.util
import textwrap
from pathlib import Path

import pytest

from repro.spec.effects.aliasing import (
    analyze_function,
    analyze_paths,
    analyze_source,
)
from repro.spec.effects.aliasing.escape import SUMMARY_CACHE

REPO = Path(__file__).resolve().parents[2]

_PRELUDE = """
from repro.core.checkpointable import Checkpointable
from repro.core.fields import child, child_list, scalar

class Leaf(Checkpointable):
    value = scalar("int")

class Node(Checkpointable):
    kid = child(Leaf)
    kids = child_list(Leaf)
"""


def analyze(source, filename="<test>"):
    return analyze_source(filename, _PRELUDE + textwrap.dedent(source))


def verdicts(report):
    """(severity, code) pairs, ignoring info-level observations."""
    return {
        (f.severity, f.code)
        for f in report.findings
        if f.severity in ("error", "warning")
    }


class TestRuleFamily:
    def test_slot_write_through_alias(self):
        report = analyze(
            """
            def poke(node: Node):
                alias = node.kid
                alias._f_value = 41
            """
        )
        assert ("error", "alias-write-bypasses-flag") in verdicts(report)

    def test_setattr_with_slot_name(self):
        report = analyze(
            """
            def poke(node: Node):
                setattr(node.kid, "_f_value", 5)
            """
        )
        assert ("error", "alias-write-bypasses-flag") in verdicts(report)

    def test_raw_backing_list_mutation(self):
        report = analyze(
            """
            def poke(node: Node):
                backing = node.kids._items
                backing.append(Leaf())
            """
        )
        assert ("error", "alias-write-bypasses-flag") in verdicts(report)

    def test_dict_store(self):
        report = analyze(
            """
            def poke(node: Node):
                vars(node.kid)["_f_value"] = 7
            """
        )
        assert ("error", "alias-write-bypasses-flag") in verdicts(report)

    def test_shared_subtree_double_attach(self):
        report = analyze(
            """
            def build():
                shared = Leaf()
                a = Node()
                a.kid = shared
                b = Node()
                b.kid = shared
            """
        )
        assert ("error", "shared-subtree-alias") in verdicts(report)

    def test_load_then_reattach_warns(self):
        report = analyze(
            """
            def rewire(a: Node, b: Node):
                b.kid = a.kid
            """
        )
        assert ("warning", "shared-subtree-alias") in verdicts(report)

    def test_global_store_escape(self):
        report = analyze(
            """
            CACHE = []

            def stash(node: Node):
                CACHE.append(node.kid)
            """
        )
        assert (
            "warning",
            "reference-escapes-recorded-graph",
        ) in verdicts(report)

    def test_thread_capture(self):
        report = analyze(
            """
            import threading

            def go(node: Node):
                t = threading.Thread(target=print, args=(node.kid,))
                t.start()
            """
        )
        assert ("warning", "alias-captured-by-thread") in verdicts(report)

    def test_thread_worker_bypass_is_interprocedural(self):
        report = analyze(
            """
            import threading

            def worker(leaf):
                leaf._f_value = 99

            def go(node: Node):
                t = threading.Thread(target=worker, args=(node.kid,))
                t.start()
            """
        )
        found = verdicts(report)
        assert ("warning", "alias-captured-by-thread") in found
        assert ("error", "alias-write-bypasses-flag") in found

    def test_clean_function_has_no_findings(self):
        report = analyze(
            """
            def honest(node: Node):
                node.kid = Leaf()
                node.kid.value = 3
                node.kids.append(Leaf())
            """
        )
        assert verdicts(report) == set()


class TestSuppression:
    def test_alias_ok_suppresses_and_records(self):
        report = analyze(
            """
            def rewire(a: Node, b: Node):
                # alias-ok: single-owner handoff, a is discarded
                b.kid = a.kid
            """
        )
        assert verdicts(report) == set()
        assert len(report.suppressed) == 1
        assert report.suppressed[0].reason == "single-owner handoff, a is discarded"

    def test_unsuppressed_line_still_fires(self):
        report = analyze(
            """
            def rewire(a: Node, b: Node):
                b.kid = a.kid  # alias-ok is elsewhere, not here
                b.kids.append(a.kid)
            """
        )
        # only a bare `# alias-ok` / `# alias-ok: reason` comment counts
        assert ("warning", "shared-subtree-alias") in verdicts(report)


class TestInterprocedural:
    def test_bypass_in_helper_caught_from_call_site(self):
        report = analyze(
            """
            def bump(leaf):
                leaf._f_value = 2

            def outer(node: Node):
                bump(node.kid)
            """
        )
        assert ("error", "alias-write-bypasses-flag") in verdicts(report)

    def test_summaries_are_cached_and_replayed(self):
        SUMMARY_CACHE.clear()
        report = analyze(
            """
            def bump(leaf):
                leaf._f_value = 2

            def first(node: Node):
                bump(node.kid)

            def second(node: Node):
                bump(node.kid)
            """
        )
        assert ("error", "alias-write-bypasses-flag") in verdicts(report)
        assert report.cache_hits >= 1
        # replay dedupes: the helper's bug is one site, reported once
        bypass = [
            f for f in report.findings
            if f.code == "alias-write-bypasses-flag"
        ]
        assert len(bypass) == 1


class TestBindTimeSeam:
    def test_analyze_function_flags_live_object(self, tmp_path):
        unique = f"AF{id(tmp_path) % 100000}"
        module_path = tmp_path / "af_mod.py"
        module_path.write_text(
            textwrap.dedent(
                f"""
                from repro.core.checkpointable import Checkpointable
                from repro.core.fields import child, scalar

                class Leaf{unique}(Checkpointable):
                    value = scalar("int")

                class Node{unique}(Checkpointable):
                    kid = child(Leaf{unique})

                def poke(node: Node{unique}):
                    node.kid._f_value = 5

                def honest(node: Node{unique}):
                    node.kid.value = 5
                """
            ),
            encoding="utf-8",
        )
        spec = importlib.util.spec_from_file_location(
            f"af_mod_{unique}", module_path
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)

        report = analyze_function(module.poke)
        assert ("error", "alias-write-bypasses-flag") in verdicts(report)
        assert verdicts(analyze_function(module.honest)) == set()


class TestRealCode:
    def test_shipped_runtime_is_clean(self):
        report = analyze_paths([str(REPO / "src" / "repro")])
        noisy = [
            f.format_human()
            for f in report.findings
            if f.severity in ("error", "warning")
        ]
        assert noisy == []


class TestSeededFixtures:
    def test_every_seeded_bug_is_detected(self, tmp_path):
        spec = importlib.util.spec_from_file_location(
            "make_alias_fixture", REPO / "tools" / "make_alias_fixture.py"
        )
        make_alias_fixture = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(make_alias_fixture)

        manifest = make_alias_fixture.generate(tmp_path, seed=7)
        assert len(manifest) >= 4
        for entry in manifest:
            report = analyze_paths([str(tmp_path / entry["file"])])
            codes = {
                f.code
                for f in report.findings
                if f.severity in ("error", "warning")
            }
            assert entry["rule"] in codes, (
                f"{entry['file']}: seeded {entry['rule']}, "
                f"statically found {sorted(codes)}"
            )
