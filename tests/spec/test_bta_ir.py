"""Unit tests for the IR templates and the binding-time analysis over them."""

import pytest

from repro.core.errors import SpecializationError
from repro.spec import bta, ir, templates
from repro.spec.modpattern import ModificationPattern
from repro.spec.shape import Shape
from tests.conftest import Leaf, Mid, Root, build_root


@pytest.fixture
def shape():
    return Shape.of(build_root())


def _annotate_checkpoint(shape, pattern, node=None):
    template = templates.checkpoint_ir()
    env = {
        "o": bta.ps(node or shape.root),
        "out": bta.OUT,
        "ckpt": bta.DRIVER,
    }
    bta.annotate(template, bta.BTContext(env, pattern))
    return template


class TestTemplates:
    def test_checkpoint_template_shape(self):
        template = templates.checkpoint_ir()
        assert isinstance(template, ir.Seq)
        assign, conditional, fold = template.stmts
        assert isinstance(assign, ir.Assign)
        assert isinstance(conditional, ir.If)
        assert isinstance(fold, ir.ExprStmt)
        assert isinstance(fold.expr, ir.MethodCall)
        assert fold.expr.method == "fold"

    def test_record_ir_covers_schema(self):
        body = templates.record_ir(Leaf)
        writes = [s for s in body.stmts if isinstance(s, ir.Write)]
        assert len(writes) == 4  # int, float, str, bool scalars

    def test_record_ir_child_conditional(self):
        body = templates.record_ir(Mid)
        kinds = [type(s).__name__ for s in body.stmts]
        assert "Assign" in kinds and "If" in kinds and "WriteScalarList" in kinds

    def test_fold_ir_only_children(self):
        assert templates.fold_ir(Leaf).stmts == []
        body = templates.fold_ir(Root)
        assert any(isinstance(s, ir.FoldChildren) for s in body.stmts)

    def test_non_checkpointable_class_rejected(self):
        class Plain:
            pass

        with pytest.raises(SpecializationError):
            templates.record_ir(Plain)
        with pytest.raises(SpecializationError):
            templates.fold_ir(Plain)

    def test_full_template_has_no_test(self):
        template = templates.full_checkpoint_ir()
        assert not any(isinstance(s, ir.If) for s in template.stmts)

    def test_pretty_renders(self):
        text = ir.pretty(templates.checkpoint_ir())
        assert "modified" in text


class TestBindingTimes:
    def test_modified_dynamic_when_node_may_change(self, shape):
        pattern = ModificationPattern.all_dynamic(shape)
        template = _annotate_checkpoint(shape, pattern)
        conditional = template.stmts[1]
        assert conditional.bt == "residual"
        assert conditional.cond.bt == "D"

    def test_modified_static_when_quiescent(self, shape):
        pattern = ModificationPattern.none_modified(shape)
        template = _annotate_checkpoint(shape, pattern)
        conditional = template.stmts[1]
        assert conditional.bt == "reduce"
        assert conditional.cond.bt == "S"

    def test_virtual_calls_marked_unfold(self, shape):
        pattern = ModificationPattern.all_dynamic(shape)
        template = _annotate_checkpoint(shape, pattern)
        fold_stmt = template.stmts[2]
        assert fold_stmt.bt == "unfold"

    def test_class_serial_static(self, shape):
        pattern = ModificationPattern.all_dynamic(shape)
        template = _annotate_checkpoint(shape, pattern)
        body = template.stmts[1].then
        serial_write = body.stmts[1]
        assert isinstance(serial_write, ir.Write)
        assert serial_write.expr.bt == "S"

    def test_object_id_dynamic(self, shape):
        pattern = ModificationPattern.all_dynamic(shape)
        template = _annotate_checkpoint(shape, pattern)
        id_write = template.stmts[1].then.stmts[0]
        assert id_write.expr.bt == "D"

    def test_record_child_isnone_static(self, shape):
        pattern = ModificationPattern.all_dynamic(shape)
        body = templates.record_ir(Mid)
        env = {"self": bta.ps(shape.node_at(("mid",))), "out": bta.OUT}
        bta.annotate(body, bta.BTContext(env, pattern))
        conditional = next(s for s in body.stmts if isinstance(s, ir.If))
        assert conditional.bt == "reduce"  # presence is a structural fact

    def test_child_list_unrolls(self, shape):
        pattern = ModificationPattern.all_dynamic(shape)
        body = templates.fold_ir(Root)
        env = {"self": bta.ps(shape.root), "ckpt": bta.DRIVER}
        bta.annotate(body, bta.BTContext(env, pattern))
        fold_children = next(
            s for s in body.stmts if isinstance(s, ir.FoldChildren)
        )
        assert fold_children.bt == "unroll"

    def test_unbound_variable_rejected(self, shape):
        pattern = ModificationPattern.all_dynamic(shape)
        with pytest.raises(SpecializationError, match="unbound"):
            bta.annotate(
                ir.Seq([ir.Assign("x", ir.Var("ghost"))]),
                bta.BTContext({}, pattern),
            )

    def test_scalar_fields_dynamic(self, shape):
        pattern = ModificationPattern.all_dynamic(shape)
        body = templates.record_ir(Leaf)
        env = {"self": bta.ps(shape.node_at(("extra",))), "out": bta.OUT}
        bta.annotate(body, bta.BTContext(env, pattern))
        first_write = body.stmts[0]
        assert first_write.expr.bt == "D"
