"""Unit tests for modification-pattern declarations."""

import pytest

from repro.core.checkpoint import reset_flags
from repro.core.errors import SpecializationError
from repro.spec.modpattern import ModificationPattern
from repro.spec.shape import Shape
from repro.synthetic.structures import build_structure
from tests.conftest import build_root


@pytest.fixture
def shape():
    return Shape.of(build_root())


class TestConstructors:
    def test_all_dynamic(self, shape):
        pattern = ModificationPattern.all_dynamic(shape)
        assert all(
            pattern.node_may_be_modified(shape.node_at(p)) for p in shape.paths()
        )
        assert pattern.quiescent_paths() == []

    def test_none_modified(self, shape):
        pattern = ModificationPattern.none_modified(shape)
        assert not pattern.subtree_may_be_modified(shape.root)

    def test_only(self, shape):
        pattern = ModificationPattern.only(shape, [("mid", "leaf")])
        assert pattern.node_may_be_modified(shape.node_at(("mid", "leaf")))
        assert not pattern.node_may_be_modified(shape.node_at(("mid",)))
        assert pattern.subtree_may_be_modified(shape.node_at(("mid",)))
        assert not pattern.subtree_may_be_modified(shape.node_at(("extra",)))

    def test_only_rejects_unknown_paths(self, shape):
        with pytest.raises(SpecializationError, match="missing from the shape"):
            ModificationPattern.only(shape, [("nope",)])

    def test_subtrees(self, shape):
        pattern = ModificationPattern.subtrees(shape, [("mid",)])
        assert pattern.node_may_be_modified(shape.node_at(("mid",)))
        assert pattern.node_may_be_modified(shape.node_at(("mid", "leaf")))
        assert not pattern.node_may_be_modified(shape.root)

    def test_subtrees_rejects_empty_match(self, shape):
        with pytest.raises(SpecializationError):
            ModificationPattern.subtrees(shape, [("ghost",)])


class TestSyntheticPatterns:
    def test_restricted_to_lists(self):
        compound = build_structure(num_lists=3, list_length=2, ints_per_element=1)
        shape = Shape.of(compound)
        pattern = ModificationPattern.restricted_to_lists(shape, ["list0", "list2"])
        assert pattern.node_may_be_modified(shape.node_at(("list0",)))
        assert pattern.node_may_be_modified(shape.node_at(("list0", "next")))
        assert not pattern.subtree_may_be_modified(shape.node_at(("list1",)))
        assert pattern.node_may_be_modified(shape.node_at(("list2",)))

    def test_last_element_of_lists(self):
        compound = build_structure(num_lists=2, list_length=3, ints_per_element=1)
        shape = Shape.of(compound)
        pattern = ModificationPattern.last_element_of_lists(shape, ["list0"])
        deepest = ("list0", "next", "next")
        assert pattern.node_may_be_modified(shape.node_at(deepest))
        assert not pattern.node_may_be_modified(shape.node_at(("list0",)))
        assert not pattern.node_may_be_modified(shape.node_at(("list0", "next")))
        # The spine must still be traversed to reach the tail:
        assert pattern.subtree_may_be_modified(shape.node_at(("list0",)))
        assert not pattern.subtree_may_be_modified(shape.node_at(("list1",)))

    def test_unknown_list_field_rejected(self):
        compound = build_structure(num_lists=1, list_length=1, ints_per_element=1)
        shape = Shape.of(compound)
        with pytest.raises(SpecializationError):
            ModificationPattern.restricted_to_lists(shape, ["list9"])


class TestValidation:
    def test_validate_against_clean_structure(self, shape):
        root = build_root()
        reset_flags(root)
        pattern = ModificationPattern.only(shape, [("mid", "leaf")])
        assert pattern.validate_against(root) == []

    def test_validate_reports_violations(self, shape):
        root = build_root()
        reset_flags(root)
        pattern = ModificationPattern.only(shape, [("mid", "leaf")])
        root.extra.value = 9  # violates: extra declared quiescent
        root.mid.leaf.value = 1  # allowed
        violations = pattern.validate_against(root)
        assert violations == [("extra",)]

    def test_pattern_for_wrong_shape_rejected_by_specclass(self, shape):
        from repro.spec.specclass import SpecClass

        other_shape = Shape.of(build_root())
        pattern = ModificationPattern.all_dynamic(other_shape)
        with pytest.raises(SpecializationError):
            SpecClass(shape, pattern)
