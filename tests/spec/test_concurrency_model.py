"""Extraction-layer tests for the static lockset analysis."""

import textwrap

from repro.spec.effects.concurrency.model import (
    extract_module,
    race_ok_lines,
)


def extract(source):
    return extract_module("<test>", textwrap.dedent(source))


def one_class(source):
    module = extract(source)
    assert module is not None and len(module.classes) == 1
    return module.classes[0]


class TestLockDiscovery:
    def test_lock_and_rlock_attributes_are_declared_locks(self):
        cls = one_class(
            """
            import threading

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._mutex = threading.RLock()
                    self.data = {}
            """
        )
        assert set(cls.locks) == {"_lock", "_mutex"}
        assert cls.locks["_lock"].name == "Store._lock"
        assert cls.concurrent

    def test_lock_passed_as_init_parameter_is_discovered(self):
        # the repro.obs.metrics idiom: Counter(self._lock) shares the
        # registry's lock
        cls = one_class(
            """
            class Counter:
                def __init__(self, lock):
                    self._lock = lock
                    self.value = 0

                def inc(self):
                    with self._lock:
                        self.value += 1
            """
        )
        assert "_lock" in cls.locks

    def test_container_literals_register_constructor_notes(self):
        cls = one_class(
            """
            import threading
            from typing import List

            class Keeper:
                def __init__(self):
                    self.lock = threading.Lock()
                    self.plain = []
                    self.typed: List[str] = []
                    self.table = {}
            """
        )
        assert cls.ctors.get("plain") == "list"
        assert cls.ctors.get("typed") == "list"
        assert cls.ctors.get("table") == "dict"

    def test_class_without_locks_or_threads_is_not_concurrent(self):
        cls = one_class(
            """
            class Plain:
                def __init__(self):
                    self.x = 0

                def bump(self):
                    self.x += 1
            """
        )
        assert not cls.concurrent


class TestHeldSets:
    def test_with_block_adds_the_lock_to_held_writes(self):
        cls = one_class(
            """
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.value = 0

                def put(self, v):
                    with self._lock:
                        self.value = v

                def leak(self, v):
                    self.value = v
            """
        )
        accesses = {
            (a.method, a.field): a.held
            for a in cls.methods["put"].accesses + cls.methods["leak"].accesses
            if a.kind == "write"
        }
        assert accesses[("put", "value")] == frozenset({"_lock"})
        assert accesses[("leak", "value")] == frozenset()

    def test_explicit_acquire_release_tracks_the_span(self):
        cls = one_class(
            """
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.inside = 0
                    self.outside = 0

                def update(self):
                    self._lock.acquire()
                    self.inside = 1
                    self._lock.release()
                    self.outside = 1
            """
        )
        held = {
            a.field: a.held
            for a in cls.methods["update"].accesses
            if a.kind == "write"
        }
        assert held["inside"] == frozenset({"_lock"})
        assert held["outside"] == frozenset()

    def test_thread_target_spawn_marks_the_entry_point(self):
        cls = one_class(
            """
            import threading

            class Worker:
                def __init__(self):
                    self.jobs = 0
                    self._thread = threading.Thread(target=self._run)

                def _run(self):
                    self.jobs += 1
            """
        )
        assert "_run" in cls.thread_entries
        assert cls.concurrent


class TestSuppression:
    def test_race_ok_lines_found_by_tokenization(self):
        lines = race_ok_lines(
            "x = 1  # race-ok: benign\n"
            "s = '# race-ok: not me, I am a string'\n"
            "# race-ok\n"
        )
        assert lines == {1: "benign", 3: "unspecified"}

    def test_trailing_annotation_suppresses_the_write(self):
        cls = one_class(
            """
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.value = 0

                def leak(self):
                    self.value = 1  # race-ok: monotonic flag, torn reads fine
            """
        )
        writes = [
            a for a in cls.methods["leak"].accesses if a.kind == "write"
        ]
        assert writes == []

    def test_annotation_on_the_line_above_suppresses_too(self):
        module = extract(
            """
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.value = 0

                def leak(self):
                    # race-ok: checked elsewhere
                    self.value = 1
            """
        )
        cls = module.classes[0]
        writes = [
            a for a in cls.methods["leak"].accesses if a.kind == "write"
        ]
        assert writes == []
        # the suppression is recorded with provenance, never silent
        assert len(module.suppressed) == 1
        assert module.suppressed[0].reason == "checked elsewhere"


class TestConstructionOnly:
    def test_helpers_called_only_from_init_are_construction_only(self):
        cls = one_class(
            """
            import threading

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._load()

                def _load(self):
                    self.cache = {}

                def mutate(self):
                    with self._lock:
                        self.cache = {}
            """
        )
        assert cls.construction_only() == {"_load"}


class TestMutatorCalls:
    def test_container_mutator_is_a_write_only_for_known_containers(self):
        cls = one_class(
            """
            import threading

            class Writer:
                def __init__(self, backing):
                    self._lock = threading.Lock()
                    self.backing = backing
                    self.events = []

                def log(self, e):
                    self.events.append(e)
                    self.backing.append(e)
            """
        )
        written = {
            a.field
            for a in cls.methods["log"].accesses
            if a.kind == "write"
        }
        # .append on the list literal counts; on the unknown-typed
        # collaborator it is a method call, not a container mutation
        assert "events" in written
        assert "backing" not in written
