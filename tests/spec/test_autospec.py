"""Unit tests for automatic specialization-class construction (paper §7)."""

import pytest

from repro.core.checkpoint import Checkpoint, collect_objects, reset_flags
from repro.core.errors import PatternViolationError
from repro.core.streams import DataOutputStream
from repro.spec.autospec import AutoSpecializer, PatternObserver
from repro.spec.shape import Shape
from tests.conftest import build_root


def _generic(root):
    driver = Checkpoint()
    driver.checkpoint(root)
    return driver.getvalue()


def _spec(fn, root):
    out = DataOutputStream()
    fn(root, out)
    return out.getvalue()


@pytest.fixture
def scenario():
    root = build_root()
    shape = Shape.of(root)
    reset_flags(root)
    return root, shape


class TestPatternObserver:
    def test_observes_dirty_positions(self, scenario):
        root, shape = scenario
        root.mid.leaf.value = 1
        root.extra.value = 2
        observer = PatternObserver(shape)
        added = observer.observe(root)
        assert added == 2
        assert observer.seen_dirty() == {("mid", "leaf"), ("extra",)}
        # Observation must not consume the flags.
        assert root.mid.leaf._ckpt_info.modified

    def test_accumulates_across_runs(self, scenario):
        root, shape = scenario
        observer = PatternObserver(shape)
        root.mid.leaf.value = 1
        observer.observe(root)
        reset_flags(root)
        root.kids[0].value = 2
        observer.observe(root)
        assert observer.seen_dirty() == {("mid", "leaf"), (("kids", 0),)}
        assert observer.observations == 2

    def test_coverage(self, scenario):
        root, shape = scenario
        observer = PatternObserver(shape)
        assert observer.coverage() == 0.0
        root.mid.leaf.value = 1
        observer.observe(root)
        assert observer.coverage() == pytest.approx(1 / 6)

    def test_derived_pattern_queries(self, scenario):
        root, shape = scenario
        observer = PatternObserver(shape)
        root.mid.leaf.value = 1
        observer.observe(root)
        pattern = observer.pattern()
        assert pattern.node_may_be_modified(shape.node_at(("mid", "leaf")))
        assert not pattern.node_may_be_modified(shape.node_at(("extra",)))


class TestAutoSpecializer:
    def test_derived_routine_matches_generic(self, scenario):
        root, shape = scenario
        observer = PatternObserver(shape)
        root.mid.leaf.value = 1
        observer.observe(root)
        auto = AutoSpecializer(shape, observer, name="auto_eq")
        fn = auto.compiled()
        snapshot = [(o._ckpt_info, o._ckpt_info.modified) for o in collect_objects(root)]
        expected = _generic(root)
        for info, modified in snapshot:
            info.modified = modified
        assert _spec(fn, root) == expected

    def test_guarded_violation_then_refine(self, scenario):
        root, shape = scenario
        observer = PatternObserver(shape)
        root.mid.leaf.value = 1
        observer.observe(root)
        auto = AutoSpecializer(shape, observer, name="auto_refine")
        fn = auto.compiled()
        _spec(fn, root)  # consumes the observed modification

        # A new behaviour appears: a kid is modified. kids[0] is not on the
        # traversed path of the narrow pattern, so the routine would
        # silently skip it... except root itself is clean too, making the
        # divergence observable as missing bytes. Use a traversed-path
        # violation instead: dirty mid (spine of mid.leaf).
        root.mid.notes.append(7)
        with pytest.raises(PatternViolationError):
            _spec(fn, root)

        refined = auto.refine(root)
        assert auto.recompilations == 2
        snapshot = [(o._ckpt_info, o._ckpt_info.modified) for o in collect_objects(root)]
        expected = _generic(root)
        for info, modified in snapshot:
            info.modified = modified
        assert _spec(refined, root) == expected

    def test_compiled_is_cached_until_refined(self, scenario):
        root, shape = scenario
        auto = AutoSpecializer(shape, name="auto_cache")
        assert auto.compiled() is auto.compiled()
        assert auto.recompilations == 1

    def test_empty_observations_compile_to_noop(self, scenario):
        root, shape = scenario
        auto = AutoSpecializer(shape, name="auto_empty", guards=False)
        fn = auto.compiled()
        root.extra.value = 5
        assert _spec(fn, root) == b""  # nothing observed -> nothing recorded


class TestEngineIntegration:
    def test_observer_reconstructs_phase_patterns(self):
        """Observing one engine phase re-derives the declared pattern."""
        from repro.analysis.engine import PHASE_WRITES, AnalysisEngine
        from repro.analysis.programs import image_division, tiny_source
        from repro.spec.modpattern import ModificationPattern

        engine = AnalysisEngine(
            tiny_source(), division=image_division(), strategy="none"
        )
        shape = engine.attributes_shape()
        observer = PatternObserver(shape)
        engine._base_checkpoint()  # clears construction flags

        engine.bta.run(
            lambda i: [observer.observe(a) for a in engine.attributes.entries]
        )
        declared = ModificationPattern.subtrees(shape, [PHASE_WRITES["BTA"]])
        # Everything observed dirty must lie inside the declared pattern.
        assert observer.seen_dirty() <= declared.may_modify_paths()
        assert observer.seen_dirty()  # and the phase did modify something
