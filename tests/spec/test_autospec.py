"""Unit tests for automatic specialization-class construction (paper §7)."""

import pytest

from repro.core.checkpoint import Checkpoint, collect_objects, reset_flags
from repro.core.errors import PatternViolationError
from repro.core.streams import DataOutputStream
from repro.spec.autospec import AutoSpecializer, PatternObserver
from repro.spec.shape import Shape
from tests.conftest import build_root


def _generic(root):
    driver = Checkpoint()
    driver.checkpoint(root)
    return driver.getvalue()


def _spec(fn, root):
    out = DataOutputStream()
    fn(root, out)
    return out.getvalue()


@pytest.fixture
def scenario():
    root = build_root()
    shape = Shape.of(root)
    reset_flags(root)
    return root, shape


class TestPatternObserver:
    def test_observes_dirty_positions(self, scenario):
        root, shape = scenario
        root.mid.leaf.value = 1
        root.extra.value = 2
        observer = PatternObserver(shape)
        added = observer.observe(root)
        assert added == 2
        assert observer.seen_dirty() == {("mid", "leaf"), ("extra",)}
        # Observation must not consume the flags.
        assert root.mid.leaf._ckpt_info.modified

    def test_accumulates_across_runs(self, scenario):
        root, shape = scenario
        observer = PatternObserver(shape)
        root.mid.leaf.value = 1
        observer.observe(root)
        reset_flags(root)
        root.kids[0].value = 2
        observer.observe(root)
        assert observer.seen_dirty() == {("mid", "leaf"), (("kids", 0),)}
        assert observer.observations == 2

    def test_coverage(self, scenario):
        root, shape = scenario
        observer = PatternObserver(shape)
        assert observer.coverage() == 0.0
        root.mid.leaf.value = 1
        observer.observe(root)
        assert observer.coverage() == pytest.approx(1 / 6)

    def test_derived_pattern_queries(self, scenario):
        root, shape = scenario
        observer = PatternObserver(shape)
        root.mid.leaf.value = 1
        observer.observe(root)
        pattern = observer.pattern()
        assert pattern.node_may_be_modified(shape.node_at(("mid", "leaf")))
        assert not pattern.node_may_be_modified(shape.node_at(("extra",)))


class TestAutoSpecializer:
    def test_derived_routine_matches_generic(self, scenario):
        root, shape = scenario
        observer = PatternObserver(shape)
        root.mid.leaf.value = 1
        observer.observe(root)
        auto = AutoSpecializer(shape, observer, name="auto_eq")
        fn = auto.compiled()
        snapshot = [(o._ckpt_info, o._ckpt_info.modified) for o in collect_objects(root)]
        expected = _generic(root)
        for info, modified in snapshot:
            info.modified = modified
        assert _spec(fn, root) == expected

    def test_guarded_violation_then_refine(self, scenario):
        root, shape = scenario
        observer = PatternObserver(shape)
        root.mid.leaf.value = 1
        observer.observe(root)
        auto = AutoSpecializer(shape, observer, name="auto_refine")
        fn = auto.compiled()
        _spec(fn, root)  # consumes the observed modification

        # A new behaviour appears: a kid is modified. kids[0] is not on the
        # traversed path of the narrow pattern, so the routine would
        # silently skip it... except root itself is clean too, making the
        # divergence observable as missing bytes. Use a traversed-path
        # violation instead: dirty mid (spine of mid.leaf).
        root.mid.notes.append(7)
        with pytest.raises(PatternViolationError):
            _spec(fn, root)

        refined = auto.refine(root)
        assert auto.recompilations == 2
        snapshot = [(o._ckpt_info, o._ckpt_info.modified) for o in collect_objects(root)]
        expected = _generic(root)
        for info, modified in snapshot:
            info.modified = modified
        assert _spec(refined, root) == expected

    def test_compiled_is_cached_until_refined(self, scenario):
        root, shape = scenario
        auto = AutoSpecializer(shape, name="auto_cache")
        assert auto.compiled() is auto.compiled()
        assert auto.recompilations == 1

    def test_empty_observations_compile_to_noop(self, scenario):
        root, shape = scenario
        auto = AutoSpecializer(shape, name="auto_empty", guards=False)
        fn = auto.compiled()
        root.extra.value = 5
        assert _spec(fn, root) == b""  # nothing observed -> nothing recorded


class TestPatternCacheFreshness:
    """Regression: refine() must never act on stale subtree-cache facts.

    ``ModificationPattern._subtree_cache`` memoizes "may anything in this
    subtree be modified?" — a fact derived from the immutable
    ``_may_modify`` set. Refinement therefore has to build a *new* pattern
    (and with it an empty cache); reusing or mutating the old one would
    let the recompiled routine keep skipping a subtree that just became
    modifiable.
    """

    def test_refine_builds_fresh_pattern_with_fresh_cache(self, scenario):
        root, shape = scenario
        observer = PatternObserver(shape)
        root.mid.leaf.value = 1
        observer.observe(root)
        auto = AutoSpecializer(shape, observer, name="auto_fresh_cache")
        fn = auto.compiled()
        old_pattern = fn.spec.pattern
        extra_node = shape.node_at(("extra",))
        # Populate the old pattern's subtree cache with "extra is quiescent".
        assert not old_pattern.subtree_may_be_modified(extra_node)
        _spec(fn, root)

        root.extra.value = 3
        with pytest.raises(PatternViolationError):
            _spec(fn, root)
        refined = auto.refine(root)
        new_pattern = refined.spec.pattern

        assert new_pattern is not old_pattern
        assert new_pattern._subtree_cache is not old_pattern._subtree_cache
        assert new_pattern.subtree_may_be_modified(extra_node)
        # The stale fact stays confined to the retired pattern object.
        assert not old_pattern.subtree_may_be_modified(extra_node)

    def test_observe_violate_refine_recompile_matches_generic(self, scenario):
        root, shape = scenario
        observer = PatternObserver(shape)
        root.mid.leaf.value = 1
        observer.observe(root)
        auto = AutoSpecializer(shape, observer, name="auto_full_cycle")
        fn = auto.compiled()
        _spec(fn, root)

        # A subtree the first compile skipped entirely becomes dirty.
        root.extra.value = 4
        with pytest.raises(PatternViolationError):
            _spec(fn, root)
        refined = auto.refine(root)

        snapshot = [
            (o._ckpt_info, o._ckpt_info.modified) for o in collect_objects(root)
        ]
        expected = _generic(root)
        for info, modified in snapshot:
            if modified:
                info.set_modified()
            else:
                info.reset_modified()
        assert _spec(refined, root) == expected
        # The recompiled routine now traverses and records the subtree.
        assert set(refined.recorded_paths) >= {("mid", "leaf"), ("extra",)}

    def test_constructor_copies_its_input_set(self, scenario):
        _root, shape = scenario
        from repro.spec.modpattern import ModificationPattern

        paths = {("extra",)}
        pattern = ModificationPattern.only(shape, paths)
        paths.add(("mid",))  # caller keeps mutating its set
        assert pattern.may_modify_paths() == {("extra",)}
        assert not pattern.node_may_be_modified(shape.node_at(("mid",)))

    def test_widened_leaves_original_untouched(self, scenario):
        _root, shape = scenario
        from repro.spec.modpattern import ModificationPattern

        pattern = ModificationPattern.only(shape, [("mid", "leaf")])
        extra_node = shape.node_at(("extra",))
        assert not pattern.subtree_may_be_modified(extra_node)  # fill cache
        widened = pattern.widened([("extra",)])
        assert widened.subtree_may_be_modified(extra_node)
        assert widened.may_modify_paths() == {("mid", "leaf"), ("extra",)}
        assert pattern.may_modify_paths() == {("mid", "leaf")}
        assert not pattern.subtree_may_be_modified(extra_node)


class TestEngineIntegration:
    def test_observer_reconstructs_phase_patterns(self):
        """Observing one engine phase re-derives the declared pattern."""
        from repro.analysis.engine import PHASE_WRITES, AnalysisEngine
        from repro.analysis.programs import image_division, tiny_source
        from repro.spec.modpattern import ModificationPattern

        engine = AnalysisEngine(
            tiny_source(), division=image_division(), strategy="none"
        )
        shape = engine.attributes_shape()
        observer = PatternObserver(shape)
        engine._base_checkpoint()  # clears construction flags

        engine.bta.run(
            lambda i: [observer.observe(a) for a in engine.attributes.entries]
        )
        declared = ModificationPattern.subtrees(shape, [PHASE_WRITES["BTA"]])
        # Everything observed dirty must lie inside the declared pattern.
        assert observer.seen_dirty() <= declared.may_modify_paths()
        assert observer.seen_dirty()  # and the phase did modify something
