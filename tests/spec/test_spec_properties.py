"""Property-based tests of the specializer's equivalence invariant.

For any structure shape, any declared modification pattern, and any
run-time modification state *conforming to the pattern*:

1. the specialized checkpointer writes byte-identical output to the
   generic incremental driver, and
2. both leave identical modification-flag state behind.

Shapes are drawn from the synthetic structure family (lists x length x
payload arity — the axes the paper sweeps) plus the conftest Root family;
patterns are random subsets of positions; states are random conforming
flag assignments.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.checkpoint import Checkpoint, collect_objects, reset_flags
from repro.core.streams import DataOutputStream
from repro.spec.modpattern import ModificationPattern
from repro.spec.shape import Shape
from repro.spec.specclass import SpecClass, SpecializedCheckpointer
from repro.synthetic.structures import build_structure
from tests.conftest import build_root

# Compile-once caches: hypothesis runs many examples; shapes/compilations
# are deterministic per configuration.
_struct_cache = {}


def _compiled(num_lists, list_length, ints, pattern_paths):
    key = (num_lists, list_length, ints, tuple(sorted(pattern_paths or [])))
    if key not in _struct_cache:
        prototype = build_structure(num_lists, list_length, ints)
        shape = Shape.of(prototype)
        pattern = (
            None
            if pattern_paths is None
            else ModificationPattern.only(shape, pattern_paths)
        )
        fn = SpecializedCheckpointer(
            SpecClass(shape, pattern, name=f"prop_{len(_struct_cache)}")
        )
        _struct_cache[key] = (shape, fn)
    return _struct_cache[key]


def _apply_state(root, objects, dirty_indices):
    reset_flags(root)
    for index in dirty_indices:
        objects[index]._ckpt_info.modified = True


def _generic(root):
    driver = Checkpoint()
    driver.checkpoint(root)
    return driver.getvalue()


def _specialized(fn, root):
    out = DataOutputStream()
    fn(root, out)
    return out.getvalue()


def _flag_vector(objects):
    return [o._ckpt_info.modified for o in objects]


@st.composite
def synthetic_case(draw):
    num_lists = draw(st.integers(1, 3))
    list_length = draw(st.integers(1, 4))
    ints = draw(st.integers(1, 3))
    node_count = 1 + num_lists * list_length
    dirty = draw(st.sets(st.integers(0, node_count - 1), max_size=node_count))
    return num_lists, list_length, ints, sorted(dirty)


class TestStructureOnlyEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(synthetic_case())
    def test_bytes_and_flags_match_generic(self, case):
        num_lists, list_length, ints, dirty = case
        shape, fn = _compiled(num_lists, list_length, ints, None)
        root = build_structure(num_lists, list_length, ints)
        objects = collect_objects(root)

        _apply_state(root, objects, dirty)
        expected = _generic(root)
        expected_flags = _flag_vector(objects)

        _apply_state(root, objects, dirty)
        actual = _specialized(fn, root)
        assert actual == expected
        assert _flag_vector(objects) == expected_flags


@st.composite
def pattern_case(draw):
    num_lists = draw(st.integers(1, 3))
    list_length = draw(st.integers(1, 3))
    prototype_key = (num_lists, list_length)
    # Enumerate positions as paths.
    paths = [()]
    for list_index in range(num_lists):
        for depth in range(list_length):
            paths.append((f"list{list_index}",) + ("next",) * depth)
    allowed = draw(st.sets(st.sampled_from(paths), max_size=len(paths)))
    # Dirty a random subset of the *allowed* positions (conforming state).
    dirty = draw(st.sets(st.sampled_from(sorted(allowed)), max_size=len(allowed))) if allowed else set()
    return num_lists, list_length, sorted(allowed), sorted(dirty)


def _object_at_path(root, path):
    obj = root
    for segment in path:
        obj = getattr(obj, segment)
    return obj


class TestPatternEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(pattern_case())
    def test_conforming_states_match_generic(self, case):
        num_lists, list_length, allowed, dirty = case
        shape, fn = _compiled(num_lists, list_length, 1, allowed)
        root = build_structure(num_lists, list_length, 1)
        objects = collect_objects(root)

        def dirty_state():
            reset_flags(root)
            for path in dirty:
                _object_at_path(root, path)._ckpt_info.modified = True

        dirty_state()
        assert shape  # the pattern conforms by construction
        expected = _generic(root)
        expected_flags = _flag_vector(objects)

        dirty_state()
        actual = _specialized(fn, root)
        assert actual == expected
        assert _flag_vector(objects) == expected_flags


class TestMixedFamilyEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(st.sets(st.integers(0, 5), max_size=6))
    def test_conftest_root_family(self, dirty):
        root = build_root()
        shape = Shape.of(root)
        fn = SpecializedCheckpointer(SpecClass(shape, name="prop_root"))
        objects = collect_objects(root)

        _apply_state(root, objects, dirty)
        expected = _generic(root)
        _apply_state(root, objects, dirty)
        assert _specialized(fn, root) == expected

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 5), st.integers(-1000, 1000)), max_size=8
        )
    )
    def test_value_mutations_roundtrip_through_spec_checkpoints(self, writes):
        """Replaying spec-written deltas reproduces the live state."""
        from repro.core.checkpoint import FullCheckpoint
        from repro.core.restore import replay, structurally_equal

        root = build_root()
        shape = Shape.of(root)
        fn = SpecializedCheckpointer(SpecClass(shape, name="prop_replay"))
        base_driver = FullCheckpoint()
        base_driver.checkpoint(root)
        base = base_driver.getvalue()
        objects = collect_objects(root)
        leaves = [o for o in objects if hasattr(o, "_f_value")]
        deltas = []
        for target, value in writes:
            leaves[target % len(leaves)].value = value
            out = DataOutputStream()
            fn(root, out)
            deltas.append(out.getvalue())
        recovered = replay(base, deltas)[root._ckpt_info.object_id]
        assert structurally_equal(root, recovered, compare_ids=True)
