"""Error-path tests for the code generator and the abstract machine."""

import pytest

from repro.core.errors import SpecializationError
from repro.core.streams import DataOutputStream
from repro.spec import codegen, ir
from repro.vm.machine import MeteredMachine
from tests.conftest import build_root


class TestCodegenErrors:
    def test_virtual_call_cannot_be_emitted(self):
        body = ir.Seq(
            [ir.ExprStmt(ir.MethodCall(ir.Var("root"), "record", [ir.Var("out")]))]
        )
        with pytest.raises(SpecializationError, match="cannot be emitted"):
            codegen.emit(body, "bad")

    def test_class_serial_cannot_be_emitted(self):
        body = ir.Seq([ir.Write("int", ir.ClassSerialOf(ir.Var("root")))])
        with pytest.raises(SpecializationError, match="cannot be emitted"):
            codegen.emit(body, "bad_serial")

    def test_fold_children_cannot_be_emitted(self):
        body = ir.Seq([ir.FoldChildren(ir.Var("root"))])
        with pytest.raises(SpecializationError, match="cannot be emitted"):
            codegen.emit(body, "bad_fold")

    def test_empty_body_compiles_to_noop(self):
        source, fn = codegen.emit(ir.Seq([]), "noop")
        assert "pass" in source
        out = DataOutputStream()
        fn(build_root(), out)
        assert out.size == 0

    def test_only_used_writers_bound(self):
        body = ir.Seq([ir.Write("float", ir.Const(1.5))])
        source, _ = codegen.emit(body, "floats_only")
        assert "_w_f = out.write_float64" in source
        assert "_w_i" not in source

    def test_residual_scalar_list_loop(self):
        root = build_root()
        body = ir.Seq(
            [
                ir.WriteScalarList(
                    "int", ir.FieldGet(ir.FieldGet(ir.Var("root"), "_f_mid"), "_f_notes")
                )
            ]
        )
        source, fn = codegen.emit(body, "list_loop")
        out = DataOutputStream()
        fn(root, out)
        assert out.size == 4 + 3 * 4  # count + three notes

    def test_residual_record_child_ids_loop(self):
        root = build_root()
        body = ir.Seq([ir.RecordChildIds(ir.FieldGet(ir.Var("root"), "_f_kids"))])
        _, fn = codegen.emit(body, "ids_loop")
        out = DataOutputStream()
        fn(root, out)
        assert out.size == 4 + 2 * 4  # count + two kid ids

    def test_emitted_if_with_empty_then_gets_pass(self):
        body = ir.Seq(
            [ir.If(ir.IsNone(ir.FieldGet(ir.Var("root"), "_f_extra")), ir.Seq([]))]
        )
        source, fn = codegen.emit(body, "empty_if")
        assert "pass" in source
        fn(build_root(), DataOutputStream())


class TestMachineErrors:
    def test_unknown_statement_rejected(self):
        class Alien(ir.Stmt):
            __slots__ = ()

        machine = MeteredMachine()
        with pytest.raises(SpecializationError, match="cannot execute"):
            machine._exec(Alien(), {}, generic=False)

    def test_unknown_expression_rejected(self):
        class AlienExpr(ir.Expr):
            __slots__ = ()

        machine = MeteredMachine()
        with pytest.raises(SpecializationError, match="cannot evaluate"):
            machine._eval(AlienExpr(), {}, generic=False)

    def test_undispatched_method_rejected(self):
        machine = MeteredMachine()
        root = build_root()
        call = ir.MethodCall(ir.Var("o"), "teleport", [])
        with pytest.raises(SpecializationError, match="cannot dispatch"):
            machine._call(call, {"o": root}, generic=True)

    def test_guard_execution(self):
        from repro.core.errors import PatternViolationError

        machine = MeteredMachine()
        body = ir.Seq([ir.Guard(ir.Const(False), "boom")])
        with pytest.raises(PatternViolationError, match="boom"):
            machine._exec(body, {}, generic=False)
        assert machine.counts["test"] == 1
