"""Unit tests for Shape derivation from prototypes."""

import pytest

from repro.core.errors import CycleError, SpecializationError
from repro.core.fields import child
from repro.spec.shape import Shape
from tests.conftest import Leaf, Mid, Root, build_root, make_class


class TestShapeOf:
    def test_node_classes(self, root):
        shape = Shape.of(root)
        assert shape.root.cls is Root
        assert shape.node_at(("mid",)).cls is Mid
        assert shape.node_at(("mid", "leaf")).cls is Leaf
        assert shape.node_at(("extra",)).cls is Leaf

    def test_child_list_paths(self, root):
        shape = Shape.of(root)
        assert shape.node_at((("kids", 0),)).cls is Leaf
        assert shape.node_at((("kids", 1),)).cls is Leaf
        assert shape.root.list_lengths == {"kids": 2}

    def test_absent_children_recorded(self):
        shape = Shape.of(build_root(with_extra=False))
        assert "extra" in shape.root.absent_children
        assert shape.root.child_node("extra") is None

    def test_node_count_and_paths(self, root):
        shape = Shape.of(root)
        assert shape.node_count() == 6
        assert () in shape.paths()
        assert ("mid", "leaf") in shape.paths()

    def test_unknown_path_raises(self, root):
        shape = Shape.of(root)
        with pytest.raises(SpecializationError):
            shape.node_at(("nonexistent",))

    def test_cycle_rejected(self):
        node_cls = make_class("ShapeCycle", next=child())
        a, b = node_cls(), node_cls()
        a.next = b
        b.next = a
        with pytest.raises(CycleError):
            Shape.of(a)

    def test_shared_object_rejected(self):
        holder = make_class("ShapeShare", a=child(Leaf), b=child(Leaf))
        shared = Leaf()
        with pytest.raises(SpecializationError, match="shares"):
            Shape.of(holder(a=shared, b=shared))

    def test_list_nodes_ordered(self, root):
        shape = Shape.of(root)
        nodes = shape.root.list_nodes("kids")
        assert [n.path for n in nodes] == [(("kids", 0),), (("kids", 1),)]

    def test_edges_in_schema_order(self, root):
        shape = Shape.of(root)
        fields = [edge.field for edge in shape.root.edges]
        assert fields == ["mid", "extra", "kids", "kids"]


class TestShapeMatching:
    def test_describes_same_layout(self):
        a = Shape.of(build_root())
        b = Shape.of(build_root())
        assert a.describes(b)
        assert a.matches(build_root())

    def test_rejects_different_list_length(self):
        a = Shape.of(build_root(kid_count=2))
        assert not a.matches(build_root(kid_count=3))

    def test_rejects_missing_child(self):
        a = Shape.of(build_root(with_extra=True))
        assert not a.matches(build_root(with_extra=False))

    def test_rejects_cyclic_candidate(self):
        node_cls = make_class("MatchCycle", next=child())
        a = node_cls()
        shape = Shape.of(a)
        b = node_cls()
        b.next = b
        assert not shape.matches(b)

    def test_walk_is_preorder(self, root):
        shape = Shape.of(root)
        paths = [n.path for n in shape.root.walk()]
        assert paths[0] == ()
        assert paths.index(("mid",)) < paths.index(("mid", "leaf"))
