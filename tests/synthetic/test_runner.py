"""Unit tests for the synthetic experiment runner."""

import pytest

from repro.synthetic.runner import (
    SyntheticConfig,
    SyntheticWorkload,
    run_variant,
    run_variants,
    speedup,
)
from repro.vm.backends import HARISSA


@pytest.fixture(scope="module")
def workload():
    return SyntheticWorkload(
        SyntheticConfig(
            num_structures=60,
            num_lists=3,
            list_length=3,
            ints_per_element=2,
            percent_modified=0.5,
            seed=11,
        )
    )


class TestWorkload:
    def test_modified_count_matches_percent(self, workload):
        eligible = 60 * 9
        assert workload.modified_count == round(0.5 * eligible)

    def test_pattern_covers_eligible_paths(self, workload):
        assert len(workload.pattern.may_modify_paths()) == 9

    def test_describe(self):
        config = SyntheticConfig(10, 5, 5, 1, 0.25, modified_lists=2, last_only=True)
        text = config.describe()
        assert "25%" in text and "2 modifiable lists" in text and "last element" in text


class TestVariants:
    def test_unknown_variant_rejected(self, workload):
        with pytest.raises(ValueError, match="unknown variant"):
            run_variant(workload, "quantum")

    def test_incremental_and_specialized_bytes_identical(self, workload):
        incremental = run_variant(workload, "incremental", meter=False)
        spec_struct = run_variant(workload, "spec_struct", meter=False)
        spec_mod = run_variant(workload, "spec_struct_mod", meter=False)
        reflective = run_variant(workload, "reflective", meter=False)
        assert (
            incremental.checkpoint_bytes
            == spec_struct.checkpoint_bytes
            == spec_mod.checkpoint_bytes
            == reflective.checkpoint_bytes
        )

    def test_full_records_everything(self, workload):
        full = run_variant(workload, "full", meter=False)
        incremental = run_variant(workload, "incremental", meter=False)
        assert full.checkpoint_bytes > incremental.checkpoint_bytes
        # 60 structures x 10 objects, each entry: id + serial + payload.
        per_object_ids = 2 * 4
        assert full.checkpoint_bytes >= 600 * per_object_ids

    def test_snapshot_makes_runs_repeatable(self, workload):
        first = run_variant(workload, "incremental", meter=False)
        second = run_variant(workload, "incremental", meter=False)
        assert first.checkpoint_bytes == second.checkpoint_bytes

    def test_meter_sampling_scales_counts(self, workload):
        sampled = run_variant(workload, "incremental", meter_sample=30)
        exact = run_variant(workload, "incremental", meter_sample=None)
        # Sampling halves the metered population then scales by 2: the
        # test-op count (structure-shape-determined) must match exactly.
        assert sampled.counts["test"] == exact.counts["test"]

    def test_spec_source_attached(self, workload):
        result = run_variant(workload, "spec_struct", meter=False)
        assert "def spec_struct" in result.spec_source

    def test_run_variants_convenience(self):
        config = SyntheticConfig(20, 2, 2, 1, 1.0, seed=3)
        results = run_variants(config, variants=("full", "incremental"), meter=False)
        assert set(results) == {"full", "incremental"}


class TestSpeedups:
    def test_wall_speedup(self, workload):
        full = run_variant(workload, "full", meter=False)
        incremental = run_variant(workload, "incremental", meter=False)
        assert speedup(full, incremental) == pytest.approx(
            full.wall_seconds / incremental.wall_seconds
        )

    def test_simulated_speedup_requires_counts(self, workload):
        full = run_variant(workload, "full", meter=False)
        incremental = run_variant(workload, "incremental", meter=False)
        with pytest.raises(ValueError):
            speedup(full, incremental, HARISSA)

    def test_specialization_wins_on_harissa(self):
        config = SyntheticConfig(
            100, 5, 5, 1, 0.25, modified_lists=1, last_only=True, seed=5
        )
        workload = SyntheticWorkload(config)
        incremental = run_variant(workload, "incremental", meter_sample=None)
        spec = run_variant(workload, "spec_struct_mod", meter_sample=None)
        assert speedup(incremental, spec, HARISSA) > 5.0

    def test_population_size_invariance_of_sim_speedup(self):
        """Op counts are additive: speedups are independent of scale."""
        ratios = []
        for count in (50, 200):
            config = SyntheticConfig(count, 3, 5, 1, 0.25, seed=21)
            workload = SyntheticWorkload(config)
            incremental = run_variant(workload, "incremental", meter_sample=None)
            spec = run_variant(workload, "spec_struct", meter_sample=None)
            ratios.append(speedup(incremental, spec, HARISSA))
        assert ratios[0] == pytest.approx(ratios[1], rel=0.05)
