"""Unit tests for the synthetic structure builders and workloads."""

import pytest

from repro.core.checkpoint import collect_objects, reset_flags
from repro.synthetic.structures import (
    build_structure,
    build_structures,
    compound_class,
    element_at,
    element_class,
    list_field_name,
    structure_objects,
)
from repro.synthetic.workload import (
    FlagSnapshot,
    apply_modifications,
    draw_modified_positions,
    eligible_positions,
)


class TestStructureBuilders:
    def test_classes_cached(self):
        assert element_class(3) is element_class(3)
        assert compound_class(4) is compound_class(4)
        assert element_class(3) is not element_class(4)

    def test_invalid_arities_rejected(self):
        with pytest.raises(ValueError):
            element_class(0)
        with pytest.raises(ValueError):
            compound_class(0)

    def test_structure_layout(self):
        compound = build_structure(num_lists=3, list_length=4, ints_per_element=2)
        assert len(collect_objects(compound)) == 1 + 3 * 4
        for list_index in range(3):
            node = getattr(compound, list_field_name(list_index))
            depth = 0
            while node is not None:
                depth += 1
                node = node.next
            assert depth == 4

    def test_element_payload_fields(self):
        compound = build_structure(1, 1, 10)
        element = compound.list0
        for index in range(10):
            assert getattr(element, f"v{index}") == 0
        assert not hasattr(type(element), "v10")

    def test_element_at_walks_from_head(self):
        compound = build_structure(2, 3, 1)
        assert element_at(compound, 0, 0) is compound.list0
        assert element_at(compound, 0, 2) is compound.list0.next.next

    def test_structure_objects_order(self):
        compound = build_structure(2, 2, 1)
        objects = structure_objects(compound)
        assert objects[0] is compound
        assert len(objects) == 5

    def test_build_structures_population(self):
        population = build_structures(7, 2, 2, 1)
        assert len(population) == 7
        ids = {c._ckpt_info.object_id for c in population}
        assert len(ids) == 7


class TestEligibility:
    def test_all_positions(self):
        positions = eligible_positions(3, 4, modified_lists=3, last_only=False)
        assert len(positions) == 12

    def test_restricted_lists(self):
        positions = eligible_positions(5, 2, modified_lists=2, last_only=False)
        assert {p[0] for p in positions} == {0, 1}

    def test_last_only(self):
        positions = eligible_positions(3, 4, modified_lists=3, last_only=True)
        assert positions == [(0, 3), (1, 3), (2, 3)]

    def test_bad_modified_lists(self):
        with pytest.raises(ValueError):
            eligible_positions(3, 4, modified_lists=0, last_only=False)
        with pytest.raises(ValueError):
            eligible_positions(3, 4, modified_lists=4, last_only=False)


class TestDraws:
    def test_exact_global_count(self):
        eligible = eligible_positions(5, 5, 5, False)
        chosen = draw_modified_positions(100, eligible, 0.25, seed=1)
        total = sum(len(c) for c in chosen)
        assert total == round(0.25 * 100 * len(eligible))

    def test_deterministic_per_seed(self):
        eligible = eligible_positions(2, 3, 2, False)
        a = draw_modified_positions(50, eligible, 0.5, seed=9)
        b = draw_modified_positions(50, eligible, 0.5, seed=9)
        c = draw_modified_positions(50, eligible, 0.5, seed=10)
        assert a == b
        assert a != c

    def test_bounds_checked(self):
        eligible = eligible_positions(1, 1, 1, False)
        with pytest.raises(ValueError):
            draw_modified_positions(10, eligible, 1.5, seed=0)


class TestApplication:
    def test_modifications_set_flags_exactly(self):
        population = build_structures(4, 2, 3, 1)
        for compound in population:
            reset_flags(compound)
        eligible = eligible_positions(2, 3, 2, False)
        chosen = draw_modified_positions(4, eligible, 0.5, seed=2)
        count = apply_modifications(population, chosen)
        dirty = sum(
            1
            for compound in population
            for obj in structure_objects(compound)
            if obj._ckpt_info.modified
        )
        assert dirty == count == sum(len(c) for c in chosen)

    def test_snapshot_restore(self):
        population = build_structures(2, 1, 2, 1)
        for compound in population:
            reset_flags(compound)
        population[0].list0.v0 = 7
        snapshot = FlagSnapshot(population)
        assert snapshot.modified_count() == 1
        assert snapshot.object_count() == 6
        # Clobber and restore.
        for compound in population:
            reset_flags(compound)
        snapshot.restore()
        assert population[0].list0._ckpt_info.modified
        assert not population[1].list0._ckpt_info.modified
