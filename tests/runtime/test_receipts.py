"""Commit receipts: durability states, strategy fallback, escalation."""

import pytest

from repro.core.retry import RetryPolicy
from repro.core.storage import (
    FULL,
    INCREMENTAL,
    BackgroundWriter,
    FileStore,
    MemoryStore,
)
from repro.runtime.policy import EpochPolicy
from repro.runtime.session import CheckpointSession
from repro.runtime.sink import NullSink
from repro.runtime.strategy import Strategy
from tests.conftest import build_root


class _BrokenSpecialized(Strategy):
    """A 'specialized' routine that partially runs, then dies.

    Records the first root through the incremental driver (so its flags
    clear — the partial-commit hazard the fallback must handle) and
    raises before touching the rest.
    """

    name = "broken_spec"

    def __init__(self, fail_times=1):
        self.fail_times = fail_times
        self.calls = 0

    def write(self, roots, out):
        from repro.core.checkpoint import Checkpoint

        self.calls += 1
        if self.calls <= self.fail_times:
            if roots:
                Checkpoint(out).checkpoint(roots[0])
            raise RuntimeError("specialized routine hit an unproved shape")


class TestDurabilityStates:
    def test_memory_store_commits_are_durable(self):
        session = CheckpointSession(roots=build_root(), sink=MemoryStore())
        receipt = session.base().receipt
        assert receipt.durability == "durable"
        assert receipt.retries == 0
        assert not receipt.degraded

    def test_file_store_commits_are_durable(self, tmp_path):
        session = CheckpointSession(
            roots=build_root(), sink=str(tmp_path / "ckpts")
        )
        assert session.base().receipt.durability == "durable"

    def test_background_writer_commits_are_queued(self, tmp_path):
        writer = BackgroundWriter(FileStore(str(tmp_path / "ckpts")))
        session = CheckpointSession(roots=build_root(), sink=writer)
        try:
            assert session.base().receipt.durability == "queued"
        finally:
            session.close()

    def test_null_sink_commits_are_discarded(self):
        session = CheckpointSession(roots=build_root(), sink=NullSink())
        assert session.base().receipt.durability == "discarded"

    def test_plain_sink_default_is_buffered(self):
        from repro.runtime.sink import Sink

        assert Sink().durability() == "buffered"

    def test_none_sink_commits_are_discarded(self):
        session = CheckpointSession(roots=build_root(), sink=None)
        assert session.base().receipt.durability == "discarded"

    def test_commit_bytes_carries_a_receipt(self):
        session = CheckpointSession(sink=MemoryStore())
        result = session.commit_bytes(FULL, b"\x00")
        assert result.receipt.durability == "durable"


class _FlakyStore(MemoryStore):
    def __init__(self, failures):
        super().__init__()
        self.failures = failures
        self.attempts = 0

    def append(self, kind, data, **lineage):
        self.attempts += 1
        if self.attempts <= self.failures:
            raise OSError(f"flaky append {self.attempts}")
        return super().append(kind, data, **lineage)


class TestReceiptRetries:
    def test_receipt_counts_transient_retries(self):
        store = _FlakyStore(failures=2)
        session = CheckpointSession(
            roots=build_root(),
            sink=store,
            retry=RetryPolicy(max_attempts=4, base_delay=0.0),
        )
        receipt = session.base().receipt
        assert receipt.retries == 2
        assert any("retry" in event for event in receipt.events)

    def test_later_commits_count_only_their_own_retries(self):
        store = _FlakyStore(failures=1)
        session = CheckpointSession(
            roots=build_root(),
            sink=store,
            retry=RetryPolicy(max_attempts=4, base_delay=0.0),
        )
        assert session.base().receipt.retries == 1
        assert session.commit().receipt.retries == 0


class TestStrategyFallback:
    def make_session(self, root=None, fail_times=1):
        broken = _BrokenSpecialized(fail_times=fail_times)
        session = CheckpointSession(
            roots=root if root is not None else build_root(),
            strategy=broken,
            sink=MemoryStore(),
            policy=EpochPolicy.delta_only(),
        )
        return session, broken

    def test_failed_specialized_commit_falls_back(self):
        session, _ = self.make_session()
        session.base()
        result = session.commit()
        assert result.strategy == "checking"
        assert result.receipt.degraded
        assert session.degradations == 1
        assert any("fell back" in event for event in result.receipt.events)

    def test_next_commit_escalates_to_full(self):
        session, _ = self.make_session()
        session.base()
        session.commit()  # degrades
        repaired = session.commit()
        assert repaired.kind == FULL
        assert repaired.strategy == "full"
        assert repaired.receipt.escalated
        # The chain is repaired: the escalation flag does not persist.
        after = session.commit()
        assert after.kind == INCREMENTAL
        assert not after.receipt.escalated

    def test_explicit_kind_does_not_consume_escalation(self):
        session, _ = self.make_session()
        session.base()
        session.commit()  # degrades, schedules escalation
        labeled = session.commit(kind=INCREMENTAL)
        assert labeled.kind == INCREMENTAL  # caller forced the label
        escalated = session.commit()
        assert escalated.kind == FULL
        assert escalated.receipt.escalated

    def test_degraded_commit_loses_no_data(self):
        """The partial-commit hazard: flags cleared mid-failure still land.

        The broken strategy records root (clearing its flags) before
        raising; the fallback re-records what is *still* flagged and the
        escalated full re-records everything, so recovery after the full
        sees every mutation.
        """
        root = build_root()
        session, _ = self.make_session(root=root)
        session.base()
        root.mid.leaf.value = 4321
        session.commit()  # degraded delta
        session.commit()  # escalated full
        table = session.recover()
        recovered = table[root._ckpt_info.object_id]
        assert recovered.mid.leaf.value == 4321

    def test_generic_strategy_failure_is_not_absorbed(self):
        def broken_driver(out):
            class _Driver:
                def checkpoint(self, root):
                    raise RuntimeError("driver bug")

            return _Driver()

        from repro.runtime.strategy import DriverStrategy

        session = CheckpointSession(
            roots=build_root(),
            strategy=DriverStrategy("broken", broken_driver),
            sink=MemoryStore(),
        )
        with pytest.raises(RuntimeError, match="driver bug"):
            session.commit()
        assert session.degradations == 0
        assert not session._escalate_full

    def test_recovery_after_only_degraded_delta_is_consistent(self):
        """Even before the escalated full lands, the store recovers."""
        root = build_root()
        session, _ = self.make_session(root=root)
        session.base()
        root.mid.leaf.value = 99
        session.commit()  # degraded delta only
        table = session.recover()
        assert table[root._ckpt_info.object_id].mid.leaf.value == 99


class _DeadReplica(MemoryStore):
    def append(self, kind, data, **lineage):
        raise OSError("volume pulled")


class TestReplicaReceipts:
    def make_replicated(self, children=None, **kwargs):
        from repro.core.replica import ReplicatedStore

        children = children or [MemoryStore(), MemoryStore(), MemoryStore()]
        return ReplicatedStore(children, **kwargs)

    def test_receipt_reports_full_ack(self):
        store = self.make_replicated()
        session = CheckpointSession(roots=build_root(), sink=store)
        receipt = session.base().receipt
        assert receipt.replicas_acked == ["r0", "r1", "r2"]
        assert receipt.replica_quorum == 2
        assert receipt.degraded_replicas == []
        assert receipt.durability == "durable"

    def test_receipt_reports_degraded_replica(self):
        store = self.make_replicated(
            [MemoryStore(), MemoryStore(), _DeadReplica()]
        )
        session = CheckpointSession(roots=build_root(), sink=store)
        receipt = session.base().receipt
        assert receipt.replicas_acked == ["r0", "r1"]
        assert receipt.degraded_replicas == ["r2"]
        assert receipt.durability == "quorum"

    def test_single_store_receipt_has_no_replica_fields(self):
        session = CheckpointSession(roots=build_root(), sink=MemoryStore())
        receipt = session.base().receipt
        assert receipt.replicas_acked is None
        assert receipt.replica_quorum is None
        assert receipt.degraded_replicas is None

    def test_receipt_through_background_writer(self):
        store = self.make_replicated()
        writer = BackgroundWriter(store)
        session = CheckpointSession(roots=build_root(), sink=writer)
        try:
            session.base()
            session.flush()
            result = session.commit()
            session.flush()
        finally:
            session.close()
        # behind a queue the receipt reflects the newest drained epoch
        assert store.last_commit["acked"] == ["r0", "r1", "r2"]
