"""RetryPolicy semantics and its wiring into StoreSink."""

import errno
import os

import pytest

from repro.core.errors import CheckpointError, StorageError
from repro.core.retry import RetryPolicy, RetryStats, transient_oserror
from repro.core.storage import FULL, MemoryStore
from repro.runtime.sink import StoreSink


class TestClassifier:
    def test_oserror_is_transient(self):
        assert transient_oserror(OSError("disk glitch"))

    def test_wrapped_oserror_is_transient(self):
        try:
            try:
                raise OSError("inner")
            except OSError as inner:
                raise StorageError("outer") from inner
        except StorageError as exc:
            assert transient_oserror(exc)

    def test_other_errors_are_permanent(self):
        assert not transient_oserror(ValueError("bug"))
        assert not transient_oserror(StorageError("corrupt frame"))

    def test_volume_state_errnos_are_permanent(self):
        # a full or read-only disk does not heal in a backoff window
        for code in (errno.ENOSPC, errno.EROFS, getattr(errno, "EDQUOT", None)):
            if code is None:
                continue
            exc = OSError(code, os.strerror(code))
            assert not transient_oserror(exc), os.strerror(code)

    def test_blip_errnos_are_transient(self):
        for code in (errno.EAGAIN, errno.EINTR, errno.EIO):
            exc = OSError(code, os.strerror(code))
            assert transient_oserror(exc), os.strerror(code)

    def test_wrapped_enospc_is_permanent(self):
        # errno classification must see through store-level wrapping
        try:
            try:
                raise OSError(errno.ENOSPC, "no space left on device")
            except OSError as inner:
                raise StorageError("append failed") from inner
        except StorageError as exc:
            assert not transient_oserror(exc)

    def test_enospc_not_retried_by_run(self):
        calls = []

        def fn():
            calls.append(1)
            raise OSError(errno.ENOSPC, "no space left on device")

        with pytest.raises(OSError):
            RetryPolicy(max_attempts=5, base_delay=0.0).run(
                fn, sleep=lambda _: None
            )
        assert len(calls) == 1

    def test_eagain_is_retried_by_run(self):
        calls = []

        def fn():
            calls.append(1)
            if len(calls) < 3:
                raise OSError(errno.EAGAIN, "try again")
            return "ok"

        policy = RetryPolicy(max_attempts=5, base_delay=0.0)
        assert policy.run(fn, sleep=lambda _: None) == "ok"
        assert len(calls) == 3


class TestPolicyValidation:
    def test_zero_attempts_rejected(self):
        with pytest.raises(CheckpointError, match="max_attempts"):
            RetryPolicy(max_attempts=0)

    def test_bad_jitter_rejected(self):
        with pytest.raises(CheckpointError, match="jitter"):
            RetryPolicy(jitter=1.5)


class TestDelays:
    def test_schedule_is_deterministic(self):
        policy = RetryPolicy(max_attempts=5, seed=9)
        assert policy.delays() == policy.delays()
        assert policy.delays() == RetryPolicy(max_attempts=5, seed=9).delays()

    def test_different_seeds_differ(self):
        a = RetryPolicy(max_attempts=5, seed=1).delays()
        b = RetryPolicy(max_attempts=5, seed=2).delays()
        assert a != b

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            max_attempts=6,
            base_delay=0.01,
            multiplier=2.0,
            max_delay=0.04,
            jitter=0.0,
        )
        assert policy.delays() == [0.01, 0.02, 0.04, 0.04, 0.04]

    def test_single_attempt_has_no_delays(self):
        assert RetryPolicy.none().delays() == []


class TestRun:
    def make_flaky(self, failures, exc=OSError):
        calls = []

        def fn():
            calls.append(1)
            if len(calls) <= failures:
                raise exc(f"boom {len(calls)}")
            return "done"

        return fn, calls

    def test_retries_transient_until_success(self):
        fn, calls = self.make_flaky(2)
        policy = RetryPolicy(max_attempts=3, base_delay=0.0)
        naps = []
        assert policy.run(fn, sleep=naps.append) == "done"
        assert len(calls) == 3
        assert len(naps) == 2

    def test_exhausted_attempts_reraise_last_error(self):
        fn, calls = self.make_flaky(10)
        policy = RetryPolicy(max_attempts=3, base_delay=0.0)
        with pytest.raises(OSError, match="boom 3"):
            policy.run(fn, sleep=lambda _: None)
        assert len(calls) == 3

    def test_permanent_errors_not_retried(self):
        fn, calls = self.make_flaky(1, exc=ValueError)
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=5).run(fn, sleep=lambda _: None)
        assert len(calls) == 1

    def test_deadline_stops_retrying(self):
        fn, calls = self.make_flaky(10)
        policy = RetryPolicy(
            max_attempts=10,
            base_delay=1.0,
            max_delay=8.0,
            jitter=0.0,
            deadline=2.5,
        )
        fake_now = [0.0]

        def clock():
            return fake_now[0]

        def sleep(delay):
            fake_now[0] += delay

        with pytest.raises(OSError):
            policy.run(fn, sleep=sleep, clock=clock)
        # The 1s sleep fits the 2.5s budget; the next 2s sleep would not.
        assert len(calls) == 2

    def test_deadline_expires_mid_backoff_with_slow_attempts(self):
        # Time spent *inside* failing attempts counts against the
        # deadline too: the first backoff already blows the budget even
        # though it would have fit at t=0.
        fn_calls = []
        fake_now = [0.0]

        def fn():
            fn_calls.append(1)
            fake_now[0] += 2.0  # each attempt itself burns wall clock
            raise OSError("slow failure")

        policy = RetryPolicy(
            max_attempts=10,
            base_delay=1.0,
            max_delay=8.0,
            jitter=0.0,
            deadline=2.5,
        )
        with pytest.raises(OSError):
            policy.run(
                fn,
                sleep=lambda d: fake_now.__setitem__(0, fake_now[0] + d),
                clock=lambda: fake_now[0],
            )
        # attempt 1 ends at t=2.0; the 1s backoff would end past the
        # 2.5s deadline, so there is no second attempt
        assert len(fn_calls) == 1

    def test_on_retry_hook_sees_each_attempt(self):
        fn, _ = self.make_flaky(2)
        seen = []
        RetryPolicy(max_attempts=3, base_delay=0.0).run(
            fn,
            on_retry=lambda attempt, exc, delay: seen.append(attempt),
            sleep=lambda _: None,
        )
        assert seen == [1, 2]

    def test_retry_stats_note(self):
        stats = RetryStats()
        stats.note("put", 1, OSError("glitch"))
        stats.note("put", 2, OSError("glitch"))
        assert stats.retries == 2
        assert "put retry 1" in stats.events[0]


class _FlakyStore(MemoryStore):
    """Fails the first ``failures`` appends with OSError, then works."""

    def __init__(self, failures):
        super().__init__()
        self.failures = failures
        self.attempts = 0

    def append(self, kind, data, **lineage):
        self.attempts += 1
        if self.attempts <= self.failures:
            raise OSError(f"flaky append {self.attempts}")
        return super().append(kind, data, **lineage)


class TestStoreSinkRetry:
    def test_put_retries_and_records_stats(self):
        store = _FlakyStore(failures=2)
        sink = StoreSink(store, retry=RetryPolicy(max_attempts=4, base_delay=0.0))
        sink.put(FULL, b"epoch-bytes")
        assert [epoch.data for epoch in store.epochs()] == [b"epoch-bytes"]
        assert sink.retry_stats.retries == 2

    def test_put_without_retry_fails_fast(self):
        store = _FlakyStore(failures=1)
        sink = StoreSink(store)
        with pytest.raises(OSError):
            sink.put(FULL, b"epoch-bytes")
        assert store.attempts == 1

    def test_exhausted_retry_surfaces_error(self):
        store = _FlakyStore(failures=99)
        sink = StoreSink(store, retry=RetryPolicy(max_attempts=2, base_delay=0.0))
        with pytest.raises(OSError):
            sink.put(FULL, b"epoch-bytes")
        assert sink.retry_stats.retries == 1
