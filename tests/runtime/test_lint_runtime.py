"""The runtime modules must pass the soundness linter (acceptance item)."""

import json
from pathlib import Path

import repro
from repro.lint.cli import main
from repro.runtime import selfcheck


def _runtime_dir() -> str:
    return str(Path(repro.__file__).parent / "runtime")


class TestLintOverRuntime:
    def test_runtime_package_is_clean(self, capsys):
        assert main([_runtime_dir(), "--strict"]) == 0
        out = capsys.readouterr().out
        # the reference declarations produce pattern-redundant hints by
        # design (static inference proves them); errors and warnings would
        # mean the runtime's own usage is unsound
        assert "error" not in out
        assert "warning" not in out

    def test_selfcheck_target_is_analyzed(self, capsys):
        assert main([_runtime_dir(), "--format", "json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["targets"] >= 1
        assert report["counts"]["error"] == 0

    def test_default_paths_cover_the_runtime(self):
        # `python -m repro.lint` with no paths lints the installed repro
        # package, which contains the runtime modules.
        from repro.lint.cli import discover

        files = discover([str(Path(repro.__file__).parent)])
        names = {str(f) for f in files}
        assert any("runtime" in n and n.endswith("session.py") for n in names)
        assert any(n.endswith("selfcheck.py") for n in names)


class TestSelfCheckProbe:
    def test_probe_phase_conforms_to_its_pattern(self):
        root = selfcheck.probe_prototype()
        from repro.core.checkpoint import reset_flags

        reset_flags(root)
        selfcheck.probe_phase(root)
        selfcheck.PROBE_PATTERN.validate_against(root)

    def test_probe_spec_compiles_and_matches_generic(self):
        from repro.core.checkpoint import Checkpoint, reset_flags
        from repro.core.streams import DataOutputStream
        from repro.runtime import CheckpointSession, SpecializedStrategy

        root = selfcheck.probe_prototype()
        session = CheckpointSession(
            roots=root,
            strategy=SpecializedStrategy.from_spec(selfcheck.probe_spec()),
        )
        session.base()
        reset_flags(root)
        selfcheck.probe_phase(root)

        out = DataOutputStream()
        info = root.counter._ckpt_info
        was = info.modified
        Checkpoint(out).checkpoint(root)
        info.modified = was  # restore the flag the generic driver cleared
        assert session.commit().data == out.getvalue()
