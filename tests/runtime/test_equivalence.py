"""The refactor's acceptance suite: sessions are byte-identical to drivers.

`repro.runtime` replaced four open-coded `driver -> stream -> store`
wirings. These tests pin the invariant that made the replacement safe:
for every strategy tier, a session commit produces exactly the bytes the
direct driver call produced, and a session-written store replays to the
same live state — including across full -> delta -> compact sequences.
"""

import pytest

from repro.core.checkpoint import (
    CheckingCheckpoint,
    Checkpoint,
    FullCheckpoint,
    IterativeCheckpoint,
    ReflectiveCheckpoint,
    collect_objects,
    reset_flags,
)
from repro.core.restore import state_digest, structurally_equal
from repro.core.storage import FULL, INCREMENTAL, FileStore, MemoryStore
from repro.core.streams import DataOutputStream
from repro.runtime import (
    AutoSpecStrategy,
    BufferSink,
    CheckpointSession,
    SpecializedStrategy,
)
from repro.spec.shape import Shape
from repro.synthetic.runner import (
    SyntheticConfig,
    SyntheticWorkload,
    variant_strategy,
)
from tests.conftest import build_root

TIER_DRIVERS = {
    "full": FullCheckpoint,
    "incremental": Checkpoint,
    "reflective": ReflectiveCheckpoint,
    "iterative": IterativeCheckpoint,
    "checking": CheckingCheckpoint,
    # The packed codec and the block tier above it both pin the paper
    # driver's exact bytes — their reference is the generic flag walk.
    "packed": Checkpoint,
    "differential": Checkpoint,
    "differential-verify": Checkpoint,
}


def _snapshot_flags(roots):
    return [
        (o._ckpt_info, o._ckpt_info.modified)
        for root in roots
        for o in collect_objects(root)
    ]


def _restore_flags(snapshot):
    for info, modified in snapshot:
        info.modified = modified


def _driver_bytes(driver_cls, roots):
    """The pre-runtime direct wiring: one driver, looped over the roots."""
    out = DataOutputStream()
    driver = driver_cls(out)
    for root in roots:
        driver.checkpoint(root)
    return out.getvalue()


def _mutate(root, round_index):
    root.mid.leaf.value = 100 + round_index
    if round_index % 2:
        root.extra.label = f"round-{round_index}"


class TestTierEquivalence:
    @pytest.mark.parametrize("tier", sorted(TIER_DRIVERS))
    def test_session_commit_matches_direct_driver(self, tier):
        roots = [build_root(), build_root()]
        reset_flags(roots[0])
        _mutate(roots[0], 1)  # partially modified; roots[1] fully flagged
        flags = _snapshot_flags(roots)
        expected = _driver_bytes(TIER_DRIVERS[tier], roots)
        _restore_flags(flags)
        session = CheckpointSession(roots=roots, strategy=tier, sink=BufferSink())
        result = session.commit(kind=INCREMENTAL)
        assert result.data == expected
        assert result.strategy == tier

    @pytest.mark.parametrize("tier", sorted(TIER_DRIVERS))
    def test_commit_sequence_matches_driver_written_store(self, tier):
        driver_root = build_root()
        session_root = build_root()

        store = MemoryStore()
        store.append(FULL, _driver_bytes(FullCheckpoint, [driver_root]))
        for round_index in range(3):
            _mutate(driver_root, round_index)
            store.append(
                INCREMENTAL, _driver_bytes(TIER_DRIVERS[tier], [driver_root])
            )

        session = CheckpointSession(
            roots=session_root, strategy=tier, sink=BufferSink()
        )
        session.base()
        for round_index in range(3):
            _mutate(session_root, round_index)
            session.commit(kind=INCREMENTAL)

        driver_epochs = store.epochs()
        session_epochs = session.sink.epochs()
        assert len(driver_epochs) == len(session_epochs) == 4
        for driver_epoch, session_epoch in zip(driver_epochs, session_epochs):
            assert driver_epoch.kind == session_epoch.kind
            # the two structures have distinct object ids; compare payload
            # sizes byte-for-byte and the replayed state structurally
            assert len(driver_epoch.data) == len(session_epoch.data)
        assert structurally_equal(
            store.recover()[driver_root._ckpt_info.object_id],
            session.recover()[session_root._ckpt_info.object_id],
        )


class TestDifferentialSteadyState:
    """Byte-identity while block skipping is actually happening."""

    def test_multi_commit_sequence_matches_generic_driver(self):
        from repro.runtime.strategy import DifferentialStrategy

        roots = [build_root() for _ in range(8)]
        strategy = DifferentialStrategy(block_size=2)
        session = CheckpointSession(
            roots=roots, strategy=strategy, sink=BufferSink()
        )
        session.commit(kind=INCREMENTAL)  # baseline: partition, full walk
        for round_index in range(5):
            _mutate(roots[round_index % len(roots)], round_index)
            flags = _snapshot_flags(roots)
            expected = _driver_bytes(Checkpoint, roots)
            _restore_flags(flags)
            result = session.commit(kind=INCREMENTAL)
            assert result.data == expected
            # the equivalence must hold *because of* skipping, not in its
            # absence: one structure dirty out of eight -> blocks skipped
            assert strategy.last_stats["skipped"] > 0

    def test_sequence_with_compaction_recovers_live_state(self, tmp_path):
        root = build_root()
        directory = str(tmp_path / "ckpt")
        session = CheckpointSession(
            roots=root, strategy="differential", sink=directory
        )
        session.base()
        for round_index in range(4):
            _mutate(root, round_index)
            session.commit()
        session.compact()
        _mutate(root, 9)
        session.commit()
        table = FileStore(directory).recover()
        assert state_digest(
            table[root._ckpt_info.object_id], include_ids=True
        ) == state_digest(root, include_ids=True)


class TestPackedFaultRecovery:
    """Torn-write recovery over epochs written by the packed code paths."""

    @pytest.mark.parametrize("tier", ["packed", "differential"])
    def test_torn_tail_recovers_intact_prefix(self, tier, tmp_path):
        import os
        import shutil

        from repro.faults.crashsim import table_fingerprint

        directory = str(tmp_path / "ckpts")
        root = build_root()
        session = CheckpointSession(roots=root, strategy=tier, sink=directory)
        session.base()
        epochs = 4
        for step in range(1, epochs):
            _mutate(root, step)
            session.commit()
        session.flush()

        prefix_dir = str(tmp_path / "prefix")
        shutil.copytree(directory, prefix_dir)
        tail = os.path.join(prefix_dir, f"epoch-{epochs - 1:06d}.ckpt")
        os.remove(tail)
        expected = table_fingerprint(FileStore(prefix_dir).recover())

        path = os.path.join(directory, f"epoch-{epochs - 1:06d}.ckpt")
        size = os.path.getsize(path)
        for cut in sorted({0, 1, 7, 13, 14, size // 2, size - 1}):
            if cut >= size:
                continue
            torn_dir = str(tmp_path / f"torn-{cut}")
            shutil.copytree(directory, torn_dir)
            with open(os.path.join(
                torn_dir, f"epoch-{epochs - 1:06d}.ckpt"
            ), "rb+") as handle:
                handle.truncate(cut)
            store = FileStore(torn_dir)
            assert [e.index for e in store.epochs()] == list(range(epochs - 1))
            assert table_fingerprint(store.recover()) == expected


class TestSpecializedEquivalence:
    def test_specialized_session_matches_generic_driver(self):
        root = build_root()
        flags = _snapshot_flags([root])
        expected = _driver_bytes(Checkpoint, [root])
        _restore_flags(flags)
        session = CheckpointSession(
            roots=root,
            strategy=SpecializedStrategy.for_prototype(build_root()),
            sink=BufferSink(),
        )
        assert session.commit(kind=INCREMENTAL).data == expected

    def test_autospec_session_matches_generic_driver_across_commits(self):
        root = build_root()
        session = CheckpointSession(
            roots=root,
            strategy=AutoSpecStrategy(shape=Shape.of(root)),
            sink=BufferSink(),
        )
        for round_index in range(3):
            flags = _snapshot_flags([root])
            expected = _driver_bytes(Checkpoint, [root])
            _restore_flags(flags)
            result = session.commit(kind=INCREMENTAL)
            assert result.data == expected
            _mutate(root, round_index)

    @pytest.mark.parametrize("variant", ["spec_struct", "spec_struct_mod"])
    def test_synthetic_variants_match_generic_driver(self, variant):
        workload = SyntheticWorkload(
            SyntheticConfig(num_structures=20, percent_modified=0.5)
        )
        workload.snapshot.restore()
        expected = _driver_bytes(Checkpoint, workload.structures)
        workload.snapshot.restore()
        strategy = variant_strategy(workload, variant)
        session = CheckpointSession(roots=workload.structures, strategy=strategy)
        assert session.commit(kind=INCREMENTAL).data == expected


class TestSequencesWithCompaction:
    def test_full_delta_compact_delta_recovers_live_state(self, tmp_path):
        root = build_root()
        directory = str(tmp_path / "ckpt")
        session = CheckpointSession(roots=root, sink=directory)
        session.base()
        for round_index in range(4):
            _mutate(root, round_index)
            session.commit()
        session.compact()
        _mutate(root, 9)
        session.commit()

        live = state_digest(root, include_ids=True)
        # acceptance: a *plain* FileStore over the session's directory (a
        # fresh process) replays to the live state
        table = FileStore(directory).recover()
        assert state_digest(table[root._ckpt_info.object_id], include_ids=True) == live
        # the line is now: compacted base + one delta
        epochs = FileStore(directory).epochs()
        assert [e.kind for e in epochs] == [FULL, INCREMENTAL]

    def test_compaction_preserves_recovery_equivalence(self, tmp_path):
        # recover() before and after compaction yields the same state
        root = build_root()
        directory = str(tmp_path / "ckpt")
        session = CheckpointSession(roots=root, sink=directory)
        session.base()
        for round_index in range(3):
            _mutate(root, round_index)
            session.commit()
        before = state_digest(
            session.recover()[root._ckpt_info.object_id], include_ids=True
        )
        session.compact()
        after = state_digest(
            session.recover()[root._ckpt_info.object_id], include_ids=True
        )
        assert before == after

    def test_periodic_full_line_recovers_from_latest_base(self, tmp_path):
        from repro.runtime import EpochPolicy

        root = build_root()
        directory = str(tmp_path / "ckpt")
        session = CheckpointSession(
            roots=root, sink=directory, policy=EpochPolicy.periodic_full(3)
        )
        for round_index in range(7):
            _mutate(root, round_index)
            session.commit()
        store = FileStore(directory)
        line = store.recovery_line()
        assert line[0].kind == FULL and line[0].index == 6
        assert structurally_equal(
            root, store.recover()[root._ckpt_info.object_id], compare_ids=True
        )
