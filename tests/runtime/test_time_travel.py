"""Session time travel: restore-to-any-epoch, named pins, branching fork."""

import pytest

from repro.core.errors import RestoreError, StorageError
from repro.core.restore import state_digest
from repro.core.storage import FULL, INCREMENTAL, MemoryStore
from repro.runtime.policy import EpochPolicy
from repro.runtime.session import CheckpointSession
from repro.runtime.strategy import Strategy
from tests.conftest import build_root


def make_session(tmp_path=None, **kwargs):
    sink = MemoryStore() if tmp_path is None else str(tmp_path / "ckpts")
    kwargs.setdefault("policy", EpochPolicy.delta_only())
    return CheckpointSession(roots=build_root(), sink=sink, **kwargs)


def run_history(session, steps=4):
    """base + ``steps`` delta commits; returns {epoch_index: digest}."""
    digests = {}
    root = session.roots()[0]
    result = session.base()
    digests[result.epoch_index] = state_digest(root)
    for step in range(1, steps + 1):
        root.mid.leaf.value = step * 10
        root.mid.notes.append(step)
        result = session.commit()
        digests[result.epoch_index] = state_digest(root)
    return digests


def restored_digest(session, target):
    table = session.restore(target)
    return state_digest(session.roots()[0])


class TestRestoreByteIdentity:
    def test_full_epoch_restores_byte_identical(self):
        session = make_session()
        digests = run_history(session)
        assert restored_digest(session, 0) == digests[0]

    def test_every_delta_chain_epoch_restores_byte_identical(self):
        session = make_session()
        digests = run_history(session)
        for index in sorted(digests, reverse=True):
            assert restored_digest(session, index) == digests[index]

    def test_restore_after_compaction_is_byte_identical(self, tmp_path):
        session = make_session(tmp_path)
        digests = run_history(session)
        tip = max(digests)
        tip_digest = digests[tip]
        new_base = session.compact()
        assert session.sink.store.epochs()[0].kind == FULL or new_base >= 0
        assert restored_digest(session, new_base) == tip_digest

    def test_restore_with_periodic_fulls(self):
        session = CheckpointSession(
            roots=build_root(),
            sink=MemoryStore(),
            policy=EpochPolicy.periodic_full(3),
        )
        digests = run_history(session, steps=7)
        for index in digests:
            assert restored_digest(session, index) == digests[index]


class TestRestoreThenCommit:
    def test_commit_after_restore_has_correct_kind_and_parent(self):
        session = make_session()
        run_history(session)
        session.restore(2)
        root = session.roots()[0]
        root.mid.leaf.value = 999
        result = session.commit()
        assert result.kind == INCREMENTAL
        lineage = session.lineage()
        assert lineage.epoch(result.epoch_index).parent == 2
        assert result.branch != "main"

    def test_commit_after_restore_carries_no_stale_flags(self):
        """Mutations made *before* the restore must not leak into the
        first post-restore delta: the restored objects' state is exactly
        epoch 2, so an unmodified commit replays to the same digest."""
        session = make_session()
        digests = run_history(session)
        root = session.roots()[0]
        root.mid.leaf.value = -12345  # dirty the pre-restore objects
        session.restore(2)
        result = session.commit()  # nothing touched since restore
        assert (
            state_digest(
                session.sink.materialize(result.epoch_index)[
                    session.roots()[0]._ckpt_info.object_id
                ]
            )
            == digests[2]
        )

    def test_restore_tip_continues_branch(self):
        session = make_session()
        digests = run_history(session)
        tip = max(digests)
        session.restore(tip)
        assert session.current_branch == "main"
        result = session.commit()
        assert result.branch == "main"
        assert session.lineage().epoch(result.epoch_index).parent == tip

    def test_restore_interior_epoch_auto_forks(self):
        session = make_session()
        run_history(session)
        session.restore(1)
        assert session.current_branch == "main@1"
        result = session.commit()
        assert result.branch == "main@1"
        # original branch head is untouched
        assert session.branches()["main"] == 4

    def test_restore_resets_deltas_since_full(self):
        session = make_session()
        run_history(session)
        session.restore(2)
        assert session.deltas_since_full == 2
        session.restore(0)
        assert session.deltas_since_full == 0


class TestNamedCheckpoints:
    def test_checkpoint_names_resolve_on_restore(self):
        session = make_session()
        root = session.roots()[0]
        session.base()
        root.mid.leaf.value = 42
        session.checkpoint("answer")
        root.mid.leaf.value = 43
        session.commit()
        session.restore("answer")
        assert session.roots()[0].mid.leaf.value == 42
        assert session.named_checkpoints() == {"answer": 1}

    def test_duplicate_checkpoint_name_rejected(self):
        session = make_session()
        session.base(name="start")
        session.roots()[0].mid.leaf.value = 5
        with pytest.raises(StorageError, match="already pins"):
            session.checkpoint("start")

    def test_commit_result_records_name(self):
        session = make_session()
        session.base()
        session.roots()[0].mid.leaf.value = 3
        result = session.checkpoint("pin", phase=None)
        assert result.epoch_name == "pin"


class TestFork:
    def test_fork_produces_divergent_branches(self):
        session = make_session()
        digests = run_history(session, steps=2)
        root = session.roots()[0]

        session.fork(at=0, branch="alt")
        alt_root = session.roots()[0]
        alt_root.mid.leaf.value = 777
        alt = session.commit()
        assert alt.branch == "alt"

        session.restore(2)  # back to the main tip
        main_root = session.roots()[0]
        main_root.mid.leaf.value = 888
        main = session.commit()

        alt_digest = state_digest(
            session.sink.materialize(alt.epoch_index)[
                alt_root._ckpt_info.object_id
            ]
        )
        main_digest = state_digest(
            session.sink.materialize(main.epoch_index)[
                main_root._ckpt_info.object_id
            ]
        )
        assert alt_digest != main_digest
        branches = session.branches()
        assert branches["alt"] == alt.epoch_index
        assert branches["main"] == main.epoch_index

    def test_fork_without_at_keeps_live_state(self):
        session = make_session()
        run_history(session, steps=2)
        root = session.roots()[0]
        root.mid.leaf.value = 31337  # dirty, uncommitted
        session.fork(branch="wip")
        result = session.commit()
        assert result.branch == "wip"
        assert session.lineage().epoch(result.epoch_index).parent == 2
        restored = session.sink.materialize(result.epoch_index)[
            root._ckpt_info.object_id
        ]
        assert restored.mid.leaf.value == 31337

    def test_fork_existing_branch_name_rejected(self):
        session = make_session()
        session.base()
        with pytest.raises(StorageError, match="already exists"):
            session.fork(branch="main")

    def test_fork_auto_names(self):
        session = make_session()
        session.base()
        session.fork()
        assert session.current_branch == "fork-1"

    def test_counters(self):
        session = make_session()
        run_history(session, steps=1)
        session.restore(0)
        session.commit()
        session.fork()
        assert session.restores == 1
        assert session.forks == 1


class TestRestoreGuards:
    def test_compact_refused_between_restore_and_commit(self, tmp_path):
        session = make_session(tmp_path)
        run_history(session)
        session.restore(1)
        with pytest.raises(StorageError, match="not yet anchored"):
            session.compact()
        session.commit()  # anchors the pending chain
        session.compact()

    def test_restore_unknown_name_raises(self):
        session = make_session()
        session.base()
        with pytest.raises(StorageError, match="no checkpoint named"):
            session.restore("missing")

    def test_restore_missing_root_raises(self):
        session = make_session()
        session.base()
        orphan = build_root()  # never committed: unknown object id
        session2 = CheckpointSession(roots=orphan, sink=session.sink)
        with pytest.raises(RestoreError, match="does not exist"):
            session2.restore(0)


class _BrokenSpecialized(Strategy):
    """Specialized routine that half-commits the first root, then dies."""

    name = "broken_spec"

    def __init__(self, fail_times=1):
        self.fail_times = fail_times
        self.calls = 0

    def write(self, roots, out):
        from repro.core.checkpoint import Checkpoint

        self.calls += 1
        if self.calls <= self.fail_times:
            if roots:
                Checkpoint(out).checkpoint(roots[0])
            raise RuntimeError("specialized routine hit an unproved shape")


class TestCompactAfterEscalation:
    """Satellite: ``compact()`` x ``recovery_line()`` after a degraded
    commit forced the next epoch to escalate to a full checkpoint."""

    def _escalated_session(self, tmp_path):
        session = CheckpointSession(
            roots=build_root(),
            sink=str(tmp_path / "ckpts"),
            strategy=_BrokenSpecialized(),
            policy=EpochPolicy.delta_only(),
        )
        root = session.roots()[0]
        session.base()
        root.mid.leaf.value = 11
        degraded = session.commit()  # falls back, schedules escalation
        assert degraded.receipt.degraded
        root.mid.leaf.value = 22
        escalated = session.commit()
        assert escalated.kind == FULL
        assert escalated.receipt.escalated
        # later commits go through the real incremental driver
        session.bind("post", "incremental")
        return session, root, escalated

    def test_recovery_line_starts_at_escalated_full_after_compact(
        self, tmp_path
    ):
        session, root, escalated = self._escalated_session(tmp_path)
        root.mid.leaf.value = 33
        session.commit(phase="post")
        expected = state_digest(root)
        new_base = session.compact()
        store = session.sink.store
        line = store.recovery_line()
        assert line[0].kind == FULL
        assert line[0].index == new_base
        table = store.materialize(store.lineage().branches()["main"])
        assert state_digest(table[root._ckpt_info.object_id]) == expected

    def test_restore_into_escalated_history_is_byte_identical(
        self, tmp_path
    ):
        session, root, escalated = self._escalated_session(tmp_path)
        expected = state_digest(root)
        root.mid.leaf.value = 44
        session.commit(phase="post")
        assert restored_digest(session, escalated.epoch_index) == expected
