"""Session-level observability and the commit-path bugfix regressions.

The three regressions here guard the bugs fixed alongside the
observability layer:

1. ``measure()`` used to run the live strategy destructively — its
   ``record`` pass cleared modification flags, so a ``commit()`` after a
   ``measure()`` under-reported the delta.
2. ``_commit``'s fallback path folded the failed specialized attempt and
   the checked-driver re-record into one ``wall_seconds``.
3. ``commit_bytes()`` bypassed the ``_escalate_full`` bookkeeping: a FULL
   epoch committed through it never cleared a pending escalation, and a
   pending escalation it could not honor was silently ignored.
"""

import pytest

from repro.core.storage import FULL, INCREMENTAL, MemoryStore
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import MemoryExporter, Tracer
from repro.runtime.policy import EpochPolicy
from repro.runtime.session import CheckpointSession
from repro.runtime.strategy import Strategy
from tests.conftest import build_root
from tests.runtime.test_receipts import _BrokenSpecialized


class TestMeasurePreservesFlags:
    """Regression 1: measure()-then-commit() must equal commit() alone."""

    def _mutate(self, root):
        root.mid.leaf.value = 4242
        root.kids[0].weight = 9.5

    def test_commit_after_measure_reports_the_full_delta(self):
        root = build_root()
        session = CheckpointSession(roots=root, sink=MemoryStore())
        session.base()
        self._mutate(root)
        # measure() sees the delta commit() is about to write; before the
        # fix its record pass cleared the flags, so the commit that
        # followed wrote an empty epoch
        measured = session.measure()
        committed = session.commit()
        assert measured.size > 0
        assert committed.data == measured.data

    def test_measure_still_observes_the_delta(self):
        root = build_root()
        session = CheckpointSession(roots=root, sink=MemoryStore())
        session.base()
        self._mutate(root)
        assert session.measure().size > 0
        # and the flags survive, so measure is repeatable
        assert session.measure().size > 0

    def test_measure_restores_flags_even_when_the_strategy_raises(self):
        root = build_root()
        session = CheckpointSession(
            roots=root,
            strategy=_BrokenSpecialized(fail_times=1),
            sink=MemoryStore(),
        )
        with pytest.raises(RuntimeError):
            session.measure()
        # the broken strategy recorded (and cleared) part of the structure
        # before raising; measure must have undone that
        assert any(
            obj._ckpt_info.modified
            for obj in [root, root.mid, root.mid.leaf]
        )


class TestFallbackTimingSplit:
    """Regression 2: failed-attempt and re-record durations are separate."""

    def _degraded_commit(self):
        session = CheckpointSession(
            roots=build_root(),
            strategy=_BrokenSpecialized(fail_times=1),
            sink=MemoryStore(),
            policy=EpochPolicy.delta_only(),
        )
        session.base()
        return session.commit()

    def test_receipt_carries_both_durations(self):
        receipt = self._degraded_commit().receipt
        assert receipt.degraded
        assert receipt.failed_wall_seconds is not None
        assert receipt.fallback_wall_seconds is not None
        assert receipt.failed_wall_seconds >= 0.0
        assert receipt.fallback_wall_seconds > 0.0

    def test_total_wall_covers_both_attempts(self):
        result = self._degraded_commit()
        receipt = result.receipt
        assert result.wall_seconds >= (
            receipt.failed_wall_seconds + receipt.fallback_wall_seconds
        ) - 1e-9

    def test_clean_commit_leaves_the_split_fields_unset(self):
        session = CheckpointSession(roots=build_root(), sink=MemoryStore())
        receipt = session.base().receipt
        assert receipt.failed_wall_seconds is None
        assert receipt.fallback_wall_seconds is None


class TestCommitBytesEscalation:
    """Regression 3: commit_bytes participates in escalation bookkeeping."""

    def _degraded_session(self):
        session = CheckpointSession(
            roots=build_root(),
            strategy=_BrokenSpecialized(fail_times=1),
            sink=MemoryStore(),
            policy=EpochPolicy.delta_only(),
        )
        session.base()
        session.commit()  # degrades, schedules escalation
        assert session._escalate_full
        return session

    def test_full_bytes_clear_a_pending_escalation(self):
        session = self._degraded_session()
        result = session.commit_bytes(FULL, b"\x00" * 8)
        assert result.receipt.escalated
        assert not session._escalate_full
        # the next policy-decided commit is back to normal deltas
        after = session.commit()
        assert after.kind == INCREMENTAL
        assert not after.receipt.escalated

    def test_incremental_bytes_keep_the_escalation_pending(self):
        session = self._degraded_session()
        result = session.commit_bytes(INCREMENTAL, b"\x00" * 8)
        assert not result.receipt.escalated
        assert session._escalate_full  # not silently consumed
        assert any("still pending" in event for event in result.receipt.events)
        # the escalation eventually lands through the normal commit path
        assert session.commit().kind == FULL

    def test_unescalated_sessions_are_unaffected(self):
        session = CheckpointSession(roots=build_root(), sink=MemoryStore())
        session.base()
        result = session.commit_bytes(INCREMENTAL, b"\x00" * 4)
        assert not result.receipt.escalated
        assert result.receipt.events == []


class TestSessionInstrumentation:
    def test_commit_emits_start_and_end_events(self):
        exporter = MemoryExporter()
        session = CheckpointSession(
            roots=build_root(), sink=MemoryStore(), tracer=Tracer([exporter])
        )
        session.base()
        session.commit(phase="hot")
        ends = exporter.of_type("commit.end")
        assert len(ends) == 2
        assert ends[1]["phase"] == "hot"
        assert ends[1]["bytes"] >= 0
        assert ends[1]["epoch_index"] == 1
        assert len(exporter.of_type("commit.start")) == 2
        assert len(exporter.of_type("sink.put")) == 2

    def test_fallback_emits_a_fallback_event(self):
        exporter = MemoryExporter()
        session = CheckpointSession(
            roots=build_root(),
            strategy=_BrokenSpecialized(fail_times=1),
            sink=MemoryStore(),
            tracer=Tracer([exporter]),
            policy=EpochPolicy.delta_only(),
        )
        session.base()
        session.commit()
        fallback = exporter.of_type("commit.fallback")
        assert len(fallback) == 1
        assert "RuntimeError" in fallback[0]["error"]
        end = exporter.of_type("commit.end")[-1]
        assert end["degraded"]
        assert end["failed_wall_seconds"] is not None
        assert end["fallback_wall_seconds"] is not None

    def test_metrics_record_commit_histograms_and_tier_hits(self):
        registry = MetricsRegistry()
        session = CheckpointSession(
            roots=build_root(), sink=MemoryStore(), metrics=registry
        )
        session.base()
        session.commit(phase="hot")
        snapshot = registry.snapshot()
        assert snapshot["counters"]["commits_total{kind=full,phase=}"] == 1
        assert (
            snapshot["counters"]["commits_total{kind=incremental,phase=hot}"]
            == 1
        )
        assert snapshot["counters"]["strategy_hits_total{strategy=full}"] == 1
        hist = snapshot["histograms"]["commit_seconds{phase=hot}"]
        assert hist["count"] == 1
        assert hist["p50"] is not None

    def test_measure_event_and_histogram(self):
        exporter = MemoryExporter()
        registry = MetricsRegistry()
        root = build_root()
        session = CheckpointSession(
            roots=root,
            sink=MemoryStore(),
            tracer=Tracer([exporter]),
            metrics=registry,
        )
        session.base()
        root.mid.leaf.value = 1
        session.measure(phase="SE")
        assert len(exporter.of_type("measure")) == 1
        assert (
            registry.snapshot()["histograms"]["measure_seconds{phase=SE}"][
                "count"
            ]
            == 1
        )

    def test_compaction_is_traced(self):
        exporter = MemoryExporter()
        root = build_root()
        session = CheckpointSession(
            roots=root,
            sink=MemoryStore(),
            tracer=Tracer([exporter]),
            policy=EpochPolicy.bounded_chain(max_delta_chain=2),
        )
        session.base()
        for step in range(5):
            root.mid.leaf.value = step
            session.commit()
        assert len(exporter.of_type("compaction")) >= 1
