"""Tests for the ``inferred`` strategy tier and its runtime wiring."""

import pytest

from repro.core.checkpoint import Checkpoint, collect_objects, reset_flags
from repro.core.errors import CheckpointError
from repro.core.streams import DataOutputStream
from repro.runtime import (
    DEFAULT_STRATEGIES,
    CheckpointSession,
    InferredStrategy,
)
from repro.spec.effects.wholeprogram import infer_phases
from repro.spec.shape import Shape
from tests.conftest import Root, build_root


def _generic_bytes(roots):
    # snapshot/restore flags: the generic driver clears them as it records
    snapshot = [
        (o._ckpt_info, o._ckpt_info.modified)
        for root in roots
        for o in collect_objects(root)
    ]
    out = DataOutputStream()
    driver = Checkpoint(out)
    for root in roots:
        driver.checkpoint(root)
    for info, modified in snapshot:
        info.modified = modified
    return out.getvalue()


def _strategy_bytes(strategy, roots):
    out = DataOutputStream()
    strategy.write(roots, out)
    return out.getvalue()


# -- phases / drivers (module level: the analyzer needs their source) -------


def bump_leaf(root: Root):
    root.mid.leaf.value += 1


def rename(root: Root):
    root.name = "renamed"


def inferred_driver(root: Root, session):
    session.base(roots=[root])
    bump_leaf(root)
    session.commit(phase="bump", roots=[root])
    rename(root)
    session.commit(phase="rename", roots=[root])


def unlabeled_driver(root: Root, session):
    session.base(roots=[root])
    bump_leaf(root)
    session.commit(roots=[root])


class TestInferredStrategy:
    def test_from_phases_matches_the_generic_driver(self):
        root = build_root()
        strategy = InferredStrategy.from_phases(
            Shape.of(root), [bump_leaf], name="bump_ckpt"
        )
        reset_flags(root)
        bump_leaf(root)
        expected = _generic_bytes([root])  # snapshots + restores the flags
        assert _strategy_bytes(strategy, [root]) == expected

    def test_name_and_report(self):
        strategy = InferredStrategy.from_phases(
            Shape.of(build_root()), [bump_leaf], name="bump_ckpt"
        )
        assert strategy.name == "inferred:bump_ckpt"
        assert strategy.report.may_write == {("mid", "leaf")}
        assert strategy.report.is_exact()

    def test_from_inferred_phase(self):
        root = build_root()
        shape = Shape.of(root)
        report = infer_phases(shape, inferred_driver, roots=["root"])
        strategy = InferredStrategy.from_inferred(report.bindable()["bump"])
        reset_flags(root)
        bump_leaf(root)
        expected = _generic_bytes([root])  # snapshots + restores the flags
        assert _strategy_bytes(strategy, [root]) == expected


class TestRegisterInferred:
    def test_register_and_create(self):
        registry = DEFAULT_STRATEGIES.copy()
        shape = Shape.of(build_root())
        registry.register_inferred("bump-tier", shape, [bump_leaf])
        strategy = registry.create("bump-tier")
        assert isinstance(strategy, InferredStrategy)
        assert strategy.report.may_write == {("mid", "leaf")}

    def test_factory_compiles_once(self):
        registry = DEFAULT_STRATEGIES.copy()
        shape = Shape.of(build_root())
        registry.register_inferred("bump-tier", shape, [bump_leaf])
        assert registry.create("bump-tier") is registry.create("bump-tier")

    def test_duplicate_name_needs_replace(self):
        registry = DEFAULT_STRATEGIES.copy()
        shape = Shape.of(build_root())
        registry.register_inferred("bump-tier", shape, [bump_leaf])
        with pytest.raises(CheckpointError, match="already registered"):
            registry.register_inferred("bump-tier", shape, [bump_leaf])
        registry.register_inferred(
            "bump-tier", shape, [bump_leaf], replace=True
        )


class TestSessionBinding:
    def test_bind_inferred_routes_the_phase(self):
        root = build_root()
        session = CheckpointSession(roots=root)
        strategy = session.bind_inferred("bump", Shape.of(root), [bump_leaf])
        assert session.bound("bump")
        session.base()
        bump_leaf(root)
        generic = _generic_bytes([root])
        result = session.commit(phase="bump")
        assert result.data == generic
        assert isinstance(strategy, InferredStrategy)

    def test_bind_program_binds_every_labeled_phase(self):
        root = build_root()
        session = CheckpointSession(roots=root)
        report = session.bind_program(
            Shape.of(root), inferred_driver, roots=["root"]
        )
        assert session.bound("bump") and session.bound("rename")
        assert set(report.bindable()) == {"bump", "rename"}

    def test_bind_program_end_to_end_matches_generic(self):
        root = build_root()
        session = CheckpointSession(roots=root)
        session.bind_program(Shape.of(root), inferred_driver, roots=["root"])
        session.base()
        bump_leaf(root)
        expected = _generic_bytes([root])
        assert session.commit(phase="bump").data == expected
        rename(root)
        expected = _generic_bytes([root])
        assert session.commit(phase="rename").data == expected

    def test_bind_program_without_labels_is_an_error(self):
        root = build_root()
        session = CheckpointSession(roots=root)
        with pytest.raises(CheckpointError, match="no labeled commit site"):
            session.bind_program(
                Shape.of(root), unlabeled_driver, roots=["root"]
            )

    def test_unbound_phases_fall_back_to_the_session_strategy(self):
        root = build_root()
        session = CheckpointSession(roots=root)
        session.bind_program(Shape.of(root), inferred_driver, roots=["root"])
        session.base()
        bump_leaf(root)
        expected = _generic_bytes([root])
        # a label the program never committed: generic incremental applies
        assert session.commit(phase="elsewhere").data == expected
