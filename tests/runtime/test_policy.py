"""Unit tests for the epoch policy."""

import pytest

from repro.core.errors import CheckpointError
from repro.core.storage import FULL, INCREMENTAL
from repro.runtime import EpochPolicy


class TestKindFor:
    def test_delta_only_never_schedules_full(self):
        policy = EpochPolicy.delta_only()
        kinds = {policy.kind_for(n, n) for n in range(20)}
        assert kinds == {INCREMENTAL}

    def test_periodic_full_cadence(self):
        policy = EpochPolicy.periodic_full(3)
        kinds = [policy.kind_for(n, 0) for n in range(7)]
        assert kinds == [FULL, INCREMENTAL, INCREMENTAL] * 2 + [FULL]

    def test_interval_one_is_always_full(self):
        policy = EpochPolicy.periodic_full(1)
        assert {policy.kind_for(n, 0) for n in range(5)} == {FULL}


class TestShouldCompact:
    def test_delta_only_never_compacts(self):
        policy = EpochPolicy.delta_only()
        assert not any(policy.should_compact(n) for n in range(50))

    def test_bounded_chain_triggers_past_bound(self):
        policy = EpochPolicy.bounded_chain(3)
        assert [policy.should_compact(n) for n in range(6)] == [
            False, False, False, False, True, True,
        ]

    def test_keep_history_flag_carried(self):
        assert EpochPolicy.bounded_chain(3, keep_history=True).keep_history
        assert not EpochPolicy.bounded_chain(3).keep_history


class TestValidation:
    def test_zero_full_interval_rejected(self):
        with pytest.raises(CheckpointError):
            EpochPolicy(full_interval=0)

    def test_zero_chain_bound_rejected(self):
        with pytest.raises(CheckpointError):
            EpochPolicy(max_delta_chain=0)

    def test_policy_is_immutable(self):
        policy = EpochPolicy.delta_only()
        with pytest.raises(AttributeError):
            policy.full_interval = 2
