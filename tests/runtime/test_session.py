"""Unit tests for the checkpoint session lifecycle."""

import pytest

from repro.core.checkpoint import reset_flags
from repro.core.errors import CheckpointError, StorageError
from repro.core.restore import structurally_equal
from repro.core.storage import FULL, INCREMENTAL, FileStore
from repro.runtime import (
    BufferSink,
    CheckpointSession,
    EpochPolicy,
    NullSink,
    SpecializedStrategy,
)
from repro.runtime.strategy import NullStrategy
from tests.conftest import build_root


class TestRoots:
    def test_single_checkpointable(self):
        root = build_root()
        session = CheckpointSession(roots=root)
        assert list(session.roots()) == [root]

    def test_sequence(self):
        roots = [build_root(), build_root()]
        session = CheckpointSession(roots=roots)
        assert list(session.roots()) == roots

    def test_callable_sees_live_collection(self):
        roots = [build_root()]
        session = CheckpointSession(roots=lambda: roots)
        roots.append(build_root())
        assert len(session.roots()) == 2

    def test_non_checkpointable_rejected(self):
        with pytest.raises(CheckpointError, match="not a Checkpointable"):
            CheckpointSession(roots=[42])
        with pytest.raises(CheckpointError, match="cannot use"):
            CheckpointSession(roots=42)

    def test_per_commit_roots_override(self):
        a, b = build_root(), build_root()
        session = CheckpointSession(roots=a, sink=BufferSink())
        result = session.base(roots=[a, b])
        solo = CheckpointSession(roots=[a, b], sink=BufferSink()).base()
        assert result.data == solo.data


class TestCommitLifecycle:
    def test_base_then_deltas_then_recover(self):
        root = build_root()
        session = CheckpointSession(roots=root, sink=BufferSink())
        base = session.base()
        assert base.kind == FULL and base.strategy == "full"
        root.mid.leaf.value = 8
        delta = session.commit()
        assert delta.kind == INCREMENTAL
        assert 0 < delta.size < base.size
        recovered = session.recover()[root._ckpt_info.object_id]
        assert structurally_equal(root, recovered, compare_ids=True)

    def test_counters(self):
        root = build_root()
        session = CheckpointSession(roots=root, sink=BufferSink())
        session.base()
        root.mid.leaf.value = 1
        session.commit()
        root.mid.leaf.value = 2
        session.commit()
        assert session.commits == 3
        assert session.deltas_since_full == 2
        assert session.bytes_written == sum(r.size for r in session.history)
        assert [r.kind for r in session.history] == [FULL, INCREMENTAL, INCREMENTAL]

    def test_base_always_uses_full_driver(self):
        root = build_root()
        session = CheckpointSession(
            roots=root, strategy=NullStrategy(), sink=BufferSink()
        )
        base = session.base()
        assert base.strategy == "full"
        assert base.size > 0  # the null default did not produce it

    def test_explicit_kind_labels_without_switching_strategy(self):
        root = build_root()
        session = CheckpointSession(roots=root, sink=BufferSink())
        result = session.commit(kind=FULL)
        # labelled full, but produced by the bound incremental strategy
        assert result.kind == FULL and result.strategy == "incremental"

    def test_unknown_kind_rejected(self):
        session = CheckpointSession(roots=build_root())
        with pytest.raises(StorageError, match="unknown checkpoint kind"):
            session.commit(kind="bogus")

    def test_epoch_indices_from_store(self, tmp_path):
        root = build_root()
        session = CheckpointSession(roots=root, sink=str(tmp_path / "ckpt"))
        assert session.base().epoch_index == 0
        root.mid.leaf.value = 3
        assert session.commit().epoch_index == 1

    def test_null_sink_assigns_no_index(self):
        session = CheckpointSession(roots=build_root())
        assert isinstance(session.sink, NullSink)
        assert session.base().epoch_index is None


class TestPolicyDriven:
    def test_periodic_full_cadence(self):
        root = build_root()
        session = CheckpointSession(
            roots=root, sink=BufferSink(), policy=EpochPolicy.periodic_full(3)
        )
        kinds, strategies = [], []
        for i in range(6):
            root.mid.leaf.value = i
            result = session.commit()
            kinds.append(result.kind)
            strategies.append(result.strategy)
        assert kinds == [FULL, INCREMENTAL, INCREMENTAL] * 2
        # scheduled fulls are produced by the full driver (standalone base)
        assert strategies == ["full", "incremental", "incremental"] * 2

    def test_bounded_chain_auto_compacts(self, tmp_path):
        root = build_root()
        session = CheckpointSession(
            roots=root,
            sink=str(tmp_path / "ckpt"),
            policy=EpochPolicy.bounded_chain(2),
        )
        session.base()
        results = []
        for i in range(3):
            root.mid.leaf.value = i
            results.append(session.commit())
        assert [r.compacted for r in results] == [False, False, True]
        assert session.compactions == 1
        assert session.deltas_since_full == 0
        # the store now holds exactly the compacted base
        epochs = session.sink.epochs()
        assert len(epochs) == 1 and epochs[0].kind == FULL
        recovered = session.recover()[root._ckpt_info.object_id]
        assert structurally_equal(root, recovered, compare_ids=True)

    def test_no_auto_compaction_without_capable_sink(self):
        root = build_root()
        session = CheckpointSession(
            roots=root, policy=EpochPolicy.bounded_chain(1)
        )  # NullSink cannot compact
        session.base()
        for i in range(4):
            root.mid.leaf.value = i
            session.commit()
        assert session.compactions == 0


class TestPhaseBinding:
    def test_bound_phase_overrides_default(self):
        root = build_root()
        session = CheckpointSession(roots=root, sink=BufferSink())
        session.bind("quiet", NullStrategy())
        assert session.bound("quiet") and not session.bound("other")
        root.mid.leaf.value = 1
        assert session.commit(phase="quiet").size == 0
        root.mid.leaf.value = 2
        assert session.commit(phase="other").size > 0  # default strategy

    def test_bind_resolves_names_via_registry(self):
        session = CheckpointSession(roots=build_root(), sink=BufferSink())
        session.bind("p", "full")
        assert session.strategy_for("p").name == "full"

    def test_factory_resolved_lazily_and_cached(self):
        calls = []

        def factory():
            calls.append(1)
            return NullStrategy()

        session = CheckpointSession(roots=build_root(), sink=BufferSink())
        session.bind("p", factory)
        assert calls == []  # not resolved at bind time
        session.commit(phase="p")
        session.commit(phase="p")
        assert calls == [1]  # resolved once

    def test_rebind_replaces_and_unbind_removes(self):
        root = build_root()
        session = CheckpointSession(roots=root, sink=BufferSink())
        session.bind("p", NullStrategy())
        session.bind("p", "full")
        assert session.strategy_for("p").name == "full"
        session.unbind("p")
        assert not session.bound("p")
        assert session.strategy_for("p").name == "incremental"

    def test_unbind_all(self):
        session = CheckpointSession(roots=build_root())
        session.bind("a", NullStrategy())
        session.bind("b", NullStrategy())
        session.unbind()
        assert not session.bound("a") and not session.bound("b")

    def test_specialized_phase_binding(self):
        root = build_root()
        session = CheckpointSession(roots=root, sink=BufferSink())
        session.base()
        session.bind("hot", SpecializedStrategy.for_prototype(build_root()))
        root.mid.leaf.value = 77
        result = session.commit(phase="hot")
        assert result.phase == "hot"
        assert result.strategy.startswith("specialized:")
        recovered = session.recover()[root._ckpt_info.object_id]
        assert recovered.mid.leaf.value == 77


class TestMeasureAndBytes:
    def test_measure_does_not_persist_or_count(self):
        root = build_root()
        session = CheckpointSession(roots=root, sink=BufferSink())
        result = session.measure()
        assert result.size > 0  # fresh structure: everything is flagged
        assert session.commits == 0
        assert len(session.sink) == 0
        assert result.wall_seconds >= 0

    def test_commit_bytes_goes_through_sink_and_policy(self, tmp_path):
        root = build_root()
        session = CheckpointSession(
            roots=root,
            sink=str(tmp_path / "ckpt"),
            policy=EpochPolicy.bounded_chain(1),
        )
        base = session.base()
        first = session.commit_bytes(INCREMENTAL, b"", wall_seconds=0.5)
        assert first.strategy == "bytes" and first.wall_seconds == 0.5
        second = session.commit_bytes(INCREMENTAL, b"")
        assert second.compacted  # chain bound enforced for raw bytes too
        assert session.commits == 3
        assert session.bytes_written == base.size

    def test_commit_bytes_validates_kind(self):
        session = CheckpointSession(roots=build_root())
        with pytest.raises(StorageError, match="unknown checkpoint kind"):
            session.commit_bytes("bogus", b"")


class TestClose:
    def test_closed_session_rejects_commits(self):
        root = build_root()
        session = CheckpointSession(roots=root, sink=BufferSink())
        session.close()
        with pytest.raises(CheckpointError, match="closed"):
            session.commit()
        with pytest.raises(CheckpointError, match="closed"):
            session.base()
        session.close()  # idempotent

    def test_context_manager_closes(self):
        root = build_root()
        with CheckpointSession(roots=root, sink=BufferSink()) as session:
            session.base()
        with pytest.raises(CheckpointError, match="closed"):
            session.commit()

    def test_file_backed_session_recovers_in_new_process(self, tmp_path):
        root = build_root()
        directory = str(tmp_path / "ckpt")
        with CheckpointSession(roots=root, sink=directory) as session:
            session.base()
            root.mid.leaf.value = 55
            session.commit()
        # a "fresh process": a plain FileStore over the same directory
        recovered = FileStore(directory).recover()[root._ckpt_info.object_id]
        assert structurally_equal(root, recovered, compare_ids=True)

    def test_explicit_flag_reset_keeps_sessions_independent(self):
        # Two sessions over the same structure: flags are global state, so
        # a commit in one clears what the other would record. This pins the
        # (documented) sharing semantics rather than isolation.
        root = build_root()
        first = CheckpointSession(roots=root, sink=BufferSink())
        second = CheckpointSession(roots=root, sink=BufferSink())
        first.base()
        reset_flags(root)
        root.mid.leaf.value = 5
        assert second.commit().size > 0
        assert second.commit().size == 0  # the first commit cleared the flag
