"""Unit tests for strategies and the strategy registry."""

import pytest

from repro.core.checkpoint import (
    Checkpoint,
    collect_objects,
    reset_flags,
    set_all_flags,
)
from repro.core.errors import CheckpointError
from repro.core.streams import DataOutputStream
from repro.runtime import (
    DEFAULT_STRATEGIES,
    AutoSpecStrategy,
    DriverStrategy,
    SpecializedStrategy,
    Strategy,
    StrategyRegistry,
)
from repro.runtime.strategy import NullStrategy
from repro.spec.shape import Shape
from tests.conftest import build_root


def _write(strategy, roots):
    out = DataOutputStream()
    strategy.write(roots, out)
    return out.getvalue()


def _generic_bytes(roots):
    out = DataOutputStream()
    driver = Checkpoint(out)
    for root in roots:
        driver.checkpoint(root)
    return out.getvalue()


def _snapshot_flags(root):
    return [(o._ckpt_info, o._ckpt_info.modified) for o in collect_objects(root)]


def _restore_flags(snapshot):
    for info, modified in snapshot:
        info.modified = modified


class TestRegistry:
    def test_default_tiers_registered(self):
        for name in (
            "none",
            "full",
            "incremental",
            "reflective",
            "iterative",
            "checking",
            "packed",
            "differential",
            "differential-verify",
        ):
            assert name in DEFAULT_STRATEGIES
        assert len(DEFAULT_STRATEGIES) == 9

    def test_create_unknown_raises(self):
        with pytest.raises(CheckpointError, match="unknown strategy"):
            DEFAULT_STRATEGIES.create("bogus")

    def test_duplicate_registration_raises(self):
        registry = DEFAULT_STRATEGIES.copy()
        with pytest.raises(CheckpointError, match="already registered"):
            registry.register("full", NullStrategy)
        registry.register("full", NullStrategy, replace=True)
        assert isinstance(registry.create("full"), NullStrategy)

    def test_copy_isolates_the_default(self):
        registry = DEFAULT_STRATEGIES.copy()
        registry.register("custom", NullStrategy)
        assert "custom" in registry
        assert "custom" not in DEFAULT_STRATEGIES

    def test_resolve_accepts_name_instance_and_factory(self):
        registry = DEFAULT_STRATEGIES.copy()
        by_name = registry.resolve("incremental")
        assert by_name.name == "incremental"
        instance = NullStrategy()
        assert registry.resolve(instance) is instance
        assert isinstance(registry.resolve(NullStrategy), NullStrategy)

    def test_resolve_rejects_garbage(self):
        with pytest.raises(CheckpointError, match="cannot resolve"):
            DEFAULT_STRATEGIES.resolve(42)

    def test_factory_must_return_a_strategy(self):
        registry = StrategyRegistry({"bad": lambda: "nope"})
        with pytest.raises(CheckpointError, match="not a Strategy"):
            registry.create("bad")
        with pytest.raises(CheckpointError, match="not a Strategy"):
            registry.resolve(lambda: object())

    def test_names_sorted(self):
        assert DEFAULT_STRATEGIES.names() == sorted(DEFAULT_STRATEGIES.names())


class TestDriverStrategy:
    @pytest.mark.parametrize(
        "name", ["incremental", "reflective", "iterative", "checking"]
    )
    def test_flag_gated_tiers_match_generic_driver(self, name):
        root = build_root()
        reset_flags(root)
        root.mid.leaf.value = 5
        root.extra.label = "x"
        flags = _snapshot_flags(root)
        expected = _generic_bytes([root])
        _restore_flags(flags)
        strategy = DEFAULT_STRATEGIES.create(name)
        assert _write(strategy, [root]) == expected

    def test_fresh_driver_per_commit(self):
        root = build_root()
        strategy = DEFAULT_STRATEGIES.create("full")
        first = _write(strategy, [root])
        second = _write(strategy, [root])
        assert first == second  # no state bleeds between commits

    def test_multiple_roots_in_order(self):
        a, b = build_root(), build_root()
        flags = _snapshot_flags(a) + _snapshot_flags(b)
        expected = _generic_bytes([a, b])
        _restore_flags(flags)
        strategy = DriverStrategy("incremental", Checkpoint)
        assert _write(strategy, [a, b]) == expected

    def test_null_strategy_writes_nothing(self):
        root = build_root()
        assert _write(NullStrategy(), [root]) == b""


class TestSpecializedStrategy:
    def test_for_prototype_matches_generic_on_conforming_state(self):
        root = build_root()
        set_all_flags(root)
        flags = _snapshot_flags(root)
        expected = _generic_bytes([root])
        _restore_flags(flags)
        strategy = SpecializedStrategy.for_prototype(build_root())
        assert _write(strategy, [root]) == expected

    def test_source_exposed(self):
        strategy = SpecializedStrategy.for_prototype(build_root())
        assert "def spec_checkpoint" in strategy.source

    def test_name_defaults_to_spec_name(self):
        strategy = SpecializedStrategy.for_prototype(build_root())
        assert strategy.name == "specialized:spec_checkpoint"
        named = SpecializedStrategy(strategy.checkpointer, name="tier-x")
        assert named.name == "tier-x"


class TestAutoSpecStrategy:
    def test_requires_shape_or_auto(self):
        with pytest.raises(CheckpointError, match="needs a shape"):
            AutoSpecStrategy()

    def test_first_commit_observes_and_matches_generic(self):
        root = build_root()
        strategy = AutoSpecStrategy(shape=Shape.of(root))
        flags = _snapshot_flags(root)
        expected = _generic_bytes([root])
        _restore_flags(flags)
        assert _write(strategy, [root]) == expected
        assert strategy.auto.observer.observations > 0

    def test_specialized_commits_match_generic(self):
        root = build_root()
        strategy = AutoSpecStrategy(shape=Shape.of(root))
        _write(strategy, [root])  # observe + generic
        reset_flags(root)
        root.mid.leaf.value = 9  # same position again: conforming
        flags = _snapshot_flags(root)
        expected = _generic_bytes([root])
        _restore_flags(flags)
        assert _write(strategy, [root]) == expected

    def test_refines_on_pattern_violation(self):
        root = build_root()
        strategy = AutoSpecStrategy(shape=Shape.of(root))
        reset_flags(root)
        root.mid.leaf.value = 1
        _write(strategy, [root])  # observes only the leaf position
        reset_flags(root)
        root.extra.label = "surprise"  # outside the observed pattern
        flags = _snapshot_flags(root)
        expected = _generic_bytes([root])
        _restore_flags(flags)
        assert _write(strategy, [root]) == expected  # widened, not dropped


class TestStrategyBase:
    def test_write_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Strategy().write([], DataOutputStream())
