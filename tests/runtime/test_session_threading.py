"""CheckpointSession bookkeeping under concurrent commits.

The session lock added with the lockset analysis guards the counters,
history, escalation state, and phase bindings; these tests drive
commits from several threads and pin the aggregate bookkeeping — no
lost increments, no torn history.
"""

import threading

from repro.core.storage import FULL, INCREMENTAL, MemoryStore
from repro.runtime.session import CheckpointSession

THREADS = 4
PER_THREAD = 30


class TestConcurrentCommits:
    def test_commit_bytes_from_many_threads_keeps_counts_exact(self):
        store = MemoryStore()
        session = CheckpointSession(sink=store)
        barrier = threading.Barrier(THREADS)
        payload = b"x" * 16

        def committer():
            barrier.wait()
            for _ in range(PER_THREAD):
                session.commit_bytes(INCREMENTAL, payload)

        threads = [
            threading.Thread(target=committer) for _ in range(THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = THREADS * PER_THREAD
        assert session.commits == total
        assert len(session.history) == total
        assert session.bytes_written == total * len(payload)
        epochs = store.epochs()
        assert len(epochs) == total
        assert [e.index for e in epochs] == list(range(total))
        indices = sorted(
            r.epoch_index for r in session.history
        )
        assert indices == list(range(total))
        session.close()

    def test_full_commits_reset_the_delta_counter_consistently(self):
        session = CheckpointSession(sink=MemoryStore())
        barrier = threading.Barrier(THREADS)

        def committer(tag):
            barrier.wait()
            for i in range(PER_THREAD):
                kind = FULL if (tag == 0 and i % 10 == 0) else INCREMENTAL
                session.commit_bytes(kind, bytes([tag, i]))

        threads = [
            threading.Thread(target=committer, args=(t,))
            for t in range(THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert session.commits == THREADS * PER_THREAD
        # the counter is some suffix count of the interleaving — bounded
        # by the commits since the last full, never negative or torn
        assert 0 <= session.deltas_since_full <= THREADS * PER_THREAD
        session.close()

    def test_bind_unbind_race_commits_without_corruption(self):
        session = CheckpointSession(sink=MemoryStore())
        barrier = threading.Barrier(3)
        stop = threading.Event()
        errors = []

        def binder():
            barrier.wait()
            while not stop.is_set():
                session.bind("hot", "incremental")
                session.unbind("hot")

        def resolver():
            barrier.wait()
            while not stop.is_set():
                try:
                    session.strategy_for("hot")
                except Exception as exc:  # pragma: no cover - bug hunted
                    errors.append(exc)
                    return

        def committer():
            barrier.wait()
            for i in range(PER_THREAD):
                session.commit_bytes(INCREMENTAL, bytes([i]))
            stop.set()

        threads = [
            threading.Thread(target=binder),
            threading.Thread(target=resolver),
            threading.Thread(target=committer),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert session.commits == PER_THREAD
        session.close()
