"""Unit tests for sinks and the sink coercion."""

from pathlib import Path

import pytest

from repro.core.checkpoint import Checkpoint, FullCheckpoint
from repro.core.errors import StorageError
from repro.core.restore import structurally_equal
from repro.core.storage import (
    FULL,
    INCREMENTAL,
    BackgroundWriter,
    FileStore,
    MemoryStore,
)
from repro.runtime import BufferSink, NullSink, Sink, StoreSink
from repro.runtime.sink import sink_for
from tests.conftest import build_root


def _base_and_delta(root):
    base = FullCheckpoint()
    base.checkpoint(root)
    root.mid.leaf.value = 31
    delta = Checkpoint()
    delta.checkpoint(root)
    return base.getvalue(), delta.getvalue()


class TestSinkFor:
    def test_none_gives_null_sink(self):
        assert isinstance(sink_for(None), NullSink)

    def test_sink_passes_through(self):
        sink = BufferSink()
        assert sink_for(sink) is sink

    def test_store_is_wrapped(self):
        store = MemoryStore()
        sink = sink_for(store)
        assert isinstance(sink, StoreSink)
        assert sink.store is store

    def test_path_makes_a_file_store(self, tmp_path):
        sink = sink_for(str(tmp_path / "ckpt"))
        assert isinstance(sink.store, FileStore)
        pathlike = sink_for(Path(tmp_path) / "ckpt2")
        assert isinstance(pathlike.store, FileStore)

    def test_garbage_rejected(self):
        with pytest.raises(StorageError, match="cannot use"):
            sink_for(42)


class TestNullSink:
    def test_counts_discards(self):
        sink = NullSink()
        assert sink.put(FULL, b"x") is None
        sink.put(INCREMENTAL, b"y")
        assert sink.discarded == 2
        assert not sink.can_recover and not sink.can_compact

    def test_recover_and_compact_raise(self):
        with pytest.raises(StorageError, match="cannot recover"):
            NullSink().recover()
        with pytest.raises(StorageError, match="cannot compact"):
            NullSink().compact()


class TestBufferSink:
    def test_epochs_addressable(self):
        sink = BufferSink()
        sink.put(FULL, b"base")
        sink.put(INCREMENTAL, b"delta")
        assert len(sink) == 2
        assert sink.data(0) == b"base"
        assert sink.data(1) == b"delta"

    def test_recovery_line_replay(self):
        root = build_root()
        base, delta = _base_and_delta(root)
        sink = BufferSink()
        sink.put(FULL, base)
        sink.put(INCREMENTAL, delta)
        recovered = sink.recover()[root._ckpt_info.object_id]
        assert structurally_equal(root, recovered, compare_ids=True)


class TestStoreSink:
    def test_file_store_roundtrip(self, tmp_path):
        root = build_root()
        base, delta = _base_and_delta(root)
        sink = sink_for(str(tmp_path / "ckpt"))
        assert sink.put(FULL, base) == 0
        assert sink.put(INCREMENTAL, delta) == 1
        recovered = sink.recover()[root._ckpt_info.object_id]
        assert structurally_equal(root, recovered, compare_ids=True)
        assert [e.kind for e in sink.epochs()] == [FULL, INCREMENTAL]

    def test_compact_folds_the_line(self, tmp_path):
        root = build_root()
        base, delta = _base_and_delta(root)
        sink = sink_for(str(tmp_path / "ckpt"))
        sink.put(FULL, base)
        sink.put(INCREMENTAL, delta)
        new_base = sink.compact()
        epochs = sink.epochs()
        assert [e.index for e in epochs] == [new_base]
        recovered = sink.recover()[root._ckpt_info.object_id]
        assert structurally_equal(root, recovered, compare_ids=True)

    def test_background_writer_flushed_before_recovery(self, tmp_path):
        root = build_root()
        base, delta = _base_and_delta(root)
        backing = FileStore(str(tmp_path / "ckpt"))
        writer = BackgroundWriter(backing)
        sink = sink_for(writer)
        sink.put(FULL, base)
        sink.put(INCREMENTAL, delta)
        recovered = sink.recover()[root._ckpt_info.object_id]
        assert structurally_equal(root, recovered, compare_ids=True)
        sink.close()

    def test_background_writer_compaction_unwraps(self, tmp_path):
        root = build_root()
        base, delta = _base_and_delta(root)
        backing = FileStore(str(tmp_path / "ckpt"))
        writer = BackgroundWriter(backing)
        sink = sink_for(writer)
        sink.put(FULL, base)
        sink.put(INCREMENTAL, delta)
        new_base = sink.compact()  # flushes the queue, compacts the backing
        assert [e.index for e in backing.epochs()] == [new_base]
        sink.close()

    def test_flush_and_close_tolerate_plain_stores(self):
        sink = StoreSink(MemoryStore())  # no flush/close methods
        sink.flush()
        sink.close()


class TestSinkBase:
    def test_put_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Sink().put(FULL, b"")
