"""Barrier-synchronized stress regressions for the writer and allocator.

The static lockset analysis proves the ``BackgroundWriter`` and
``IdAllocator`` state is guarded; these tests provoke the interleavings
the proof is about — ``flush()``/``close()`` racing concurrent
``append()`` callers — and pin the observable invariant: every
acknowledged epoch is durable exactly once, with contiguous indices.
"""

import threading

import pytest

from repro.core.ids import IdAllocator
from repro.core.storage import (
    FULL,
    INCREMENTAL,
    BackgroundWriter,
    FileStore,
    MemoryStore,
    StorageError,
)

COMMITTERS = 4
PER_THREAD = 40


class TestFlushRacingCommits:
    @pytest.mark.parametrize("backing_kind", ["memory", "file"])
    def test_no_lost_or_duplicate_epochs(self, tmp_path, backing_kind):
        backing = (
            MemoryStore()
            if backing_kind == "memory"
            else FileStore(str(tmp_path / "store"))
        )
        writer = BackgroundWriter(backing, max_queued=8)
        barrier = threading.Barrier(COMMITTERS + 1)
        accepted = []
        accepted_lock = threading.Lock()

        def committer(tag):
            barrier.wait()
            for i in range(PER_THREAD):
                writer.append(INCREMENTAL, bytes([tag]) + i.to_bytes(2, "big"))
                with accepted_lock:
                    accepted.append((tag, i))

        threads = [
            threading.Thread(target=committer, args=(t,))
            for t in range(COMMITTERS)
        ]
        for t in threads:
            t.start()
        barrier.wait()
        # flush concurrently with the committers, repeatedly
        for _ in range(5):
            writer.flush()
        for t in threads:
            t.join()
        writer.flush()
        epochs = backing.epochs()
        # every accepted epoch became durable exactly once...
        assert len(epochs) == len(accepted) == COMMITTERS * PER_THREAD
        # ...with contiguous indices (no slot lost, none written twice)
        assert [e.index for e in epochs] == list(range(len(accepted)))
        # and every payload arrived intact, in per-thread order
        per_thread = {t: [] for t in range(COMMITTERS)}
        for epoch in epochs:
            per_thread[epoch.data[0]].append(
                int.from_bytes(epoch.data[1:], "big")
            )
        for tag, sequence in per_thread.items():
            assert sequence == sorted(sequence), (
                f"thread {tag}'s epochs were reordered: {sequence}"
            )
        writer.close()

    def test_close_racing_commits_never_loses_an_acknowledged_epoch(self):
        backing = MemoryStore()
        writer = BackgroundWriter(backing, max_queued=8)
        barrier = threading.Barrier(COMMITTERS + 1)
        accepted = []
        accepted_lock = threading.Lock()

        def committer(tag):
            barrier.wait()
            for i in range(PER_THREAD):
                try:
                    writer.append(INCREMENTAL, bytes([tag, i]))
                except StorageError:
                    return  # closed under us: acceptable, stop committing
                with accepted_lock:
                    accepted.append((tag, i))

        threads = [
            threading.Thread(target=committer, args=(t,))
            for t in range(COMMITTERS)
        ]
        for t in threads:
            t.start()
        barrier.wait()
        writer.close()
        for t in threads:
            t.join()
        epochs = backing.epochs()
        # acknowledged-then-closed appends may exceed what close() saw
        # queued, but nothing durable may be duplicated or out of range
        assert len(epochs) <= len(accepted)
        assert [e.index for e in epochs] == list(range(len(epochs)))
        payloads = [bytes(e.data) for e in epochs]
        assert len(set(payloads)) == len(payloads)

    def test_concurrent_flush_and_close_are_safe(self):
        writer = BackgroundWriter(MemoryStore(), max_queued=4)
        writer.append(FULL, b"base")
        barrier = threading.Barrier(3)
        errors = []

        def flusher():
            barrier.wait()
            try:
                writer.flush()
            except StorageError:
                pass
            except Exception as exc:  # pragma: no cover - the bug hunted
                errors.append(exc)

        def closer():
            barrier.wait()
            try:
                writer.close()
            except StorageError:
                pass
            except Exception as exc:  # pragma: no cover - the bug hunted
                errors.append(exc)

        threads = [
            threading.Thread(target=flusher),
            threading.Thread(target=flusher),
            threading.Thread(target=closer),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []


class TestIdAllocatorThreadSafety:
    def test_concurrent_allocations_are_unique_and_dense(self):
        allocator = IdAllocator()
        barrier = threading.Barrier(COMMITTERS)
        allocated = []
        lock = threading.Lock()

        def allocate():
            barrier.wait()
            mine = [allocator.allocate() for _ in range(200)]
            with lock:
                allocated.extend(mine)

        threads = [
            threading.Thread(target=allocate) for _ in range(COMMITTERS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(allocated) == list(range(COMMITTERS * 200))
        assert allocator.last_allocated == COMMITTERS * 200 - 1

    def test_advance_past_races_allocate_without_collisions(self):
        allocator = IdAllocator()
        barrier = threading.Barrier(2)
        allocated = []

        def allocate():
            barrier.wait()
            for _ in range(300):
                allocated.append(allocator.allocate())

        def advance():
            barrier.wait()
            for used in range(0, 600, 7):
                allocator.advance_past(used)

        threads = [
            threading.Thread(target=allocate),
            threading.Thread(target=advance),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # advance_past may create gaps, never duplicates
        assert len(set(allocated)) == len(allocated)
        assert allocator.last_allocated >= max(allocated)
