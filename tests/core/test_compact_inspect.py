"""Unit tests for store compaction and checkpoint inspection."""

import os

import pytest

from repro.core.checkpoint import Checkpoint, FullCheckpoint
from repro.core.inspect import decode_stream, render_store, render_stream
from repro.core.restore import state_digest
from repro.core.storage import FULL, INCREMENTAL, FileStore, MemoryStore, compact
from tests.conftest import Leaf, build_root


def _history(store, rounds=4):
    root = build_root()
    base = FullCheckpoint()
    base.checkpoint(root)
    store.append(FULL, base.getvalue())
    for round_index in range(rounds):
        root.mid.leaf.value = round_index
        root.kids[round_index % 2].weight = round_index / 2
        if round_index == 2:
            root.kids.append(Leaf(value=99, label="late"))
        delta = Checkpoint()
        delta.checkpoint(root)
        store.append(INCREMENTAL, delta.getvalue())
    return root


class TestCompaction:
    def test_recovery_equivalent_after_compaction(self):
        store = MemoryStore()
        root = _history(store)
        before = state_digest(
            store.recover()[root._ckpt_info.object_id], include_ids=True
        )
        compact(store)
        after = state_digest(
            store.recover()[root._ckpt_info.object_id], include_ids=True
        )
        assert before == after

    def test_compacted_line_is_single_epoch(self):
        store = MemoryStore()
        _history(store)
        new_index = compact(store)
        line = store.recovery_line()
        assert [e.index for e in line] == [new_index]
        assert line[0].kind == FULL

    def test_new_objects_survive_compaction(self):
        store = MemoryStore()
        root = _history(store)  # appends a Leaf in round 2
        compact(store)
        recovered = store.recover()[root._ckpt_info.object_id]
        assert recovered.kids[2].label == "late"

    def test_file_store_history_deleted(self, tmp_path):
        store = FileStore(str(tmp_path / "ckpt"))
        _history(store)
        assert len(store._epoch_files()) == 5
        new_index = compact(store)
        remaining = [index for index, _ in store._epoch_files()]
        assert remaining == [new_index]

    def test_file_store_keep_history(self, tmp_path):
        store = FileStore(str(tmp_path / "ckpt"))
        root = _history(store)
        compact(store, keep_history=True)
        assert len(store._epoch_files()) == 6
        recovered = store.recover()[root._ckpt_info.object_id]
        assert state_digest(recovered) == state_digest(root)

    def test_further_deltas_chain_off_new_base(self, tmp_path):
        store = FileStore(str(tmp_path / "ckpt"))
        root = _history(store)
        compact(store)
        root.extra.label = "post-compaction"
        delta = Checkpoint()
        delta.checkpoint(root)
        store.append(INCREMENTAL, delta.getvalue())
        recovered = FileStore(store.directory).recover()[
            root._ckpt_info.object_id
        ]
        assert recovered.extra.label == "post-compaction"


class TestInspection:
    def test_decode_stream_entries(self):
        root = build_root()
        driver = FullCheckpoint()
        driver.checkpoint(root)
        entries = decode_stream(driver.getvalue())
        assert len(entries) == 6
        head = entries[0]
        assert head.object_id == root._ckpt_info.object_id
        assert head.class_name == "Root"
        assert head.fields["name"] == "root"
        assert head.fields["mid"] == f"@{root.mid._ckpt_info.object_id}"
        assert head.fields["kids"] == [
            f"@{k._ckpt_info.object_id}" for k in root.kids
        ]
        assert sum(e.byte_size for e in entries) == driver.size

    def test_decode_absent_child(self):
        root = build_root(with_extra=False)
        driver = FullCheckpoint()
        driver.checkpoint(root)
        entries = decode_stream(driver.getvalue())
        assert entries[0].fields["extra"] is None

    def test_render_stream_limit(self):
        root = build_root()
        driver = FullCheckpoint()
        driver.checkpoint(root)
        text = render_stream(driver.getvalue(), limit=2)
        assert "6 entries" in text
        assert "... 4 more" in text

    def test_render_store(self, tmp_path):
        store = FileStore(str(tmp_path / "ckpt"))
        _history(store, rounds=2)
        text = render_store(store.directory, limit=1)
        assert "3 intact epochs" in text
        assert "[full]" in text and "[incremental]" in text

    def test_decode_rejects_garbage(self):
        from repro.core.errors import RestoreError

        with pytest.raises(RestoreError):
            decode_stream(b"\x01\x02\x03")
