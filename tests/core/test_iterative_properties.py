"""Property tests: IterativeCheckpoint matches the recursive driver on DAGs.

The iterative driver exists so checkpoint depth is bounded by heap size,
not the Python stack. These properties pin its other obligation: on
structures with *shared* substructure (DAGs — diamonds, shared leaves,
aliased lists) it must produce byte-identical output to the recursive
:class:`Checkpoint`, recording every shared object exactly once at its
first (preorder) visit. A divergence here would make the two drivers
non-interchangeable as session strategies.
"""

import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.checkpoint import (
    Checkpoint,
    IterativeCheckpoint,
    collect_objects,
    reset_flags,
    set_all_flags,
)
from repro.core.checkpointable import Checkpointable
from repro.core.fields import child, child_list, scalar
from repro.core.restore import restore_full, structurally_equal


class DagNode(Checkpointable):
    """A node whose children may alias any earlier-built node."""

    value = scalar("int")
    left = child()
    right = child()
    extras = child_list()


@st.composite
def dag(draw):
    """A random rooted DAG: node i's children are drawn from nodes < i.

    Building children strictly from earlier nodes guarantees acyclicity
    while allowing arbitrary sharing — including the same node appearing
    as ``left``, ``right``, *and* inside ``extras`` of several parents.
    """
    count = draw(st.integers(min_value=1, max_value=24))
    nodes = []
    for i in range(count):
        node = DagNode(value=draw(st.integers(-1000, 1000)))
        if i > 0:
            earlier = st.integers(0, i - 1)
            if draw(st.booleans()):
                node.left = nodes[draw(earlier)]
            if draw(st.booleans()):
                node.right = nodes[draw(earlier)]
            for _ in range(draw(st.integers(0, 3))):
                node.extras.append(nodes[draw(earlier)])
        nodes.append(node)
    return nodes[-1]


def _snapshot_flags(root):
    return [(o._ckpt_info, o._ckpt_info.modified) for o in collect_objects(root)]


def _restore_flags(snapshot):
    for info, modified in snapshot:
        info.modified = modified


@given(dag())
@settings(max_examples=150, deadline=None)
def test_iterative_matches_recursive_on_dags(root):
    """Fresh (all-modified) DAG: both drivers emit identical bytes."""
    flags = _snapshot_flags(root)
    recursive = Checkpoint()
    recursive.checkpoint(root)
    _restore_flags(flags)
    iterative = IterativeCheckpoint()
    iterative.checkpoint(root)
    assert iterative.getvalue() == recursive.getvalue()
    # Both cleared every reachable flag.
    assert all(not o._ckpt_info.modified for o in collect_objects(root))


@given(dag(), st.data())
@settings(max_examples=150, deadline=None)
def test_iterative_matches_recursive_on_partial_modification(root, data):
    """Random modified subsets: the incremental outputs stay identical."""
    reset_flags(root)
    objects = collect_objects(root)
    for obj in objects:
        if data.draw(st.booleans(), label=f"modify {obj._ckpt_info.object_id}"):
            obj._ckpt_info.modified = True
    flags = _snapshot_flags(root)
    recursive = Checkpoint()
    recursive.checkpoint(root)
    _restore_flags(flags)
    iterative = IterativeCheckpoint()
    iterative.checkpoint(root)
    assert iterative.getvalue() == recursive.getvalue()


@given(dag())
@settings(max_examples=75, deadline=None)
def test_iterative_full_checkpoint_restores_sharing(root):
    """Restoring iterative bytes reproduces the DAG, aliases included."""
    set_all_flags(root)
    iterative = IterativeCheckpoint()
    iterative.checkpoint(root)
    # (FullCheckpoint is NOT the reference here: it records a shared node
    # once per visit, while the flag-gated drivers record it exactly once.)
    table = restore_full(iterative.getvalue())
    recovered = table[root._ckpt_info.object_id]
    assert structurally_equal(root, recovered, compare_ids=True)
    # Shared children must restore as shared, not as copies.
    assert len(table) == len(collect_objects(root))


def test_deep_dag_beyond_recursion_limit():
    """Depth + sharing together: recursive raises, iterative is exact."""
    depth = sys.getrecursionlimit() + 500
    shared = DagNode(value=42)
    root = DagNode(value=0, left=shared)
    for i in range(depth):
        root = DagNode(value=i, left=root, right=shared)
    with pytest.raises(RecursionError):
        Checkpoint().checkpoint(root)
    set_all_flags(root)
    driver = IterativeCheckpoint()
    driver.checkpoint(root)
    table = restore_full(driver.getvalue())
    recovered = table[root._ckpt_info.object_id]
    # The shared leaf is one object in the restored table too.
    assert recovered.right is recovered.left.right
    assert len(table) == len(collect_objects(root))
