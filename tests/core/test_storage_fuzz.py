"""Robustness fuzzing of the durable store's recovery path.

A crash can leave arbitrary bytes on disk; recovery must never crash the
process, never apply corrupt data, and always recover the longest intact
prefix of the epoch chain.
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.checkpoint import Checkpoint, FullCheckpoint
from repro.core.errors import StorageError
from repro.core.restore import state_digest
from repro.core.storage import FULL, INCREMENTAL, FileStore
from tests.conftest import build_root


def _write_history(directory, rounds=3):
    store = FileStore(directory)
    root = build_root()
    base = FullCheckpoint()
    base.checkpoint(root)
    store.append(FULL, base.getvalue())
    digests = [state_digest(root, include_ids=True)]
    for round_index in range(rounds):
        root.mid.leaf.value = round_index + 100
        root.kids[round_index % 2].label = f"r{round_index}"
        delta = Checkpoint()
        delta.checkpoint(root)
        store.append(INCREMENTAL, delta.getvalue())
        digests.append(state_digest(root, include_ids=True))
    return store, root, digests


class TestCorruptionFuzz:
    @settings(max_examples=40, deadline=None)
    @given(
        epoch=st.integers(0, 3),
        offset=st.integers(0, 4000),
        patch=st.binary(min_size=1, max_size=16),
    )
    def test_single_epoch_corruption_recovers_prefix(
        self, tmp_path_factory, epoch, offset, patch
    ):
        directory = str(tmp_path_factory.mktemp("fuzz"))
        store, root, digests = _write_history(directory)

        path = os.path.join(directory, f"epoch-{epoch:06d}.ckpt")
        data = bytearray(open(path, "rb").read())
        offset = offset % len(data)
        # Overwrite in place only (appended trailing junk after the frame
        # is legitimately ignored by the frame-length-based reader).
        patch = patch[: len(data) - offset]
        original_slice = bytes(data[offset : offset + len(patch)])
        data[offset : offset + len(patch)] = patch
        corrupted = patch != original_slice
        with open(path, "wb") as handle:
            handle.write(data)

        fresh = FileStore(directory)
        epochs = fresh.epochs()
        # Never more epochs than written; corruption of epoch k keeps at
        # most the prefix before k (CRC detects any payload change).
        assert len(epochs) <= 4
        if corrupted:
            assert len(epochs) <= epoch if epoch > 0 else len(epochs) == 0
        if epochs and epochs[0].kind == FULL:
            table = fresh.recover()
            recovered = table[root._ckpt_info.object_id]
            # The recovered state must exactly match one of the states the
            # application actually went through.
            assert state_digest(recovered, include_ids=True) in digests
        else:
            with pytest.raises(StorageError):
                fresh.recover()

    @settings(max_examples=25, deadline=None)
    @given(cut=st.integers(1, 400))
    def test_truncation_recovers_prefix(self, tmp_path_factory, cut):
        directory = str(tmp_path_factory.mktemp("trunc"))
        store, root, digests = _write_history(directory)
        path = os.path.join(directory, "epoch-000003.ckpt")
        data = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(data[: max(0, len(data) - cut)])
        fresh = FileStore(directory)
        epochs = fresh.epochs()
        assert [e.index for e in epochs] == [0, 1, 2] or len(epochs) == 4
        recovered = fresh.recover()[root._ckpt_info.object_id]
        assert state_digest(recovered, include_ids=True) in digests

    def test_all_epochs_destroyed(self, tmp_path):
        directory = str(tmp_path / "gone")
        store, root, digests = _write_history(directory)
        for name in os.listdir(directory):
            if name.endswith(".ckpt"):
                with open(os.path.join(directory, name), "wb") as handle:
                    handle.write(b"garbage")
        with pytest.raises(StorageError):
            FileStore(directory).recover()
