"""Block dirtiness tier: partitioning, soundness, wrap/collision defenses.

The load-bearing property: a differential commit must NEVER skip a block
containing a flagged object — every mutation shape that raises a flag (or
changes topology) must leave the tier in a state whose next commit is
byte-identical to the baseline flag walk.
"""

import threading

import pytest

from repro.core import blocks as blocks_module
from repro.core.blocks import (
    DEFAULT_BLOCK_SIZE,
    HASH_SKIP,
    HASH_VERIFY,
    BlockTier,
)
from repro.core.checkpoint import Checkpoint, collect_objects, reset_flags
from repro.core.errors import CheckpointError
from repro.core.info import GENERATION_MASK, TOPOLOGY_CLOCK
from repro.core.inspect import decode_stream
from repro.core.streams import DataOutputStream
from repro.runtime.strategy import DifferentialStrategy
from tests.conftest import Leaf, Mid, build_root


def _generic_bytes(roots):
    out = DataOutputStream()
    driver = Checkpoint(out)
    for root in roots:
        driver.checkpoint(root)
    return out.getvalue()


def _snapshot_flags(roots):
    state = []
    for root in roots:
        for obj in collect_objects(root):
            state.append((obj._ckpt_info, obj._ckpt_info.modified))
    return state


def _restore_flags(snapshot):
    for info, modified in snapshot:
        if modified:
            info.set_modified()
        else:
            info.reset_modified()


def _strategy_bytes(strategy, roots):
    out = DataOutputStream()
    strategy.write(roots, out)
    return out.getvalue()


def _population(count=6):
    roots = [build_root() for _ in range(count)]
    for root in roots:
        reset_flags(root)
    return roots


class TestPartitioning:
    def test_requires_valid_arguments(self):
        with pytest.raises(CheckpointError, match="block_size"):
            BlockTier(block_size=0)
        with pytest.raises(CheckpointError, match="hash_mode"):
            BlockTier(hash_mode="fast")

    def test_blocks_cover_roots_in_order(self):
        roots = _population(5)
        tier = BlockTier(block_size=2)
        tier.partition(roots)
        assert [len(b.roots) for b in tier.blocks] == [2, 2, 1]
        assert all(block.dirty for block in tier.blocks)

    def test_membership_is_first_preorder_reach(self):
        roots = _population(4)
        shared = roots[0].mid.leaf  # reachable from roots[0] first
        roots[3].extra = shared  # ...and aliased under roots[3]
        tier = BlockTier(block_size=2)
        tier.partition(roots)
        assert shared._ckpt_info.block is tier.blocks[0]

    def test_default_block_size(self):
        assert BlockTier().block_size == DEFAULT_BLOCK_SIZE

    def test_flag_write_bumps_owning_block(self):
        roots = _population(4)
        tier = BlockTier(block_size=2)
        tier.partition(roots)
        for block in tier.blocks:
            tier.mark_committed(block)
        assert all(tier.is_clean(b) for b in tier.blocks)
        roots[2].mid.leaf.value = 99
        assert not tier.is_clean(tier.blocks[1])
        assert tier.is_clean(tier.blocks[0])

    def test_in_sync_requires_identical_roots(self):
        roots = _population(2)
        tier = BlockTier()
        tier.partition(roots)
        assert tier.in_sync(roots)
        assert not tier.in_sync(list(reversed(roots)))
        assert not tier.in_sync(roots[:1])

    def test_structural_mutation_desyncs(self):
        roots = _population(2)
        tier = BlockTier()
        tier.partition(roots)
        roots[0].extra = Leaf(value=5)
        assert not tier.in_sync(roots)


# Every honest mutation shape from tools/make_alias_fixture.py (the ones
# that raise a flag or tick the topology clock), applied against a live
# differential tier: the next commit must record exactly what the
# baseline flag walk records.


def _shape_scalar_write(roots):
    roots[4].mid.leaf.value = 41


def _shape_str_write(roots):
    roots[1].name = "renamed"


def _shape_tracked_scalar_list(roots):
    roots[3].mid.notes[1] = 77


def _shape_child_reassign(roots):
    roots[2].extra = Leaf(value=123, label="fresh")


def _shape_child_detach(roots):
    roots[5].extra = None


def _shape_child_list_append(roots):
    roots[0].kids.append(Leaf(value=9, label="appended"))


def _shape_child_list_assign(roots):
    roots[4].kids = [Leaf(value=1), Leaf(value=2)]


def _shape_shared_subtree_write(roots):
    # The aliased leaf lives in roots[0]'s block; the write must dirty
    # that block even though the alias was taken through roots[5].
    roots[5].extra._ckpt_info  # (alias established by the fixture setup)
    roots[0].mid.leaf.value = 1234


def _shape_thread_write(roots):
    def worker():
        roots[3].mid.leaf.value = 555

    thread = threading.Thread(target=worker)
    thread.start()
    thread.join()


def _shape_cross_block_reattach(roots):
    # Move a subtree from an early block to a late one: pure topology.
    moved = roots[0].mid
    roots[0].mid = None
    roots[5].mid = moved


MUTATION_SHAPES = {
    "scalar_write": _shape_scalar_write,
    "str_write": _shape_str_write,
    "tracked_scalar_list": _shape_tracked_scalar_list,
    "child_reassign": _shape_child_reassign,
    "child_detach": _shape_child_detach,
    "child_list_append": _shape_child_list_append,
    "child_list_assign": _shape_child_list_assign,
    "shared_subtree_write": _shape_shared_subtree_write,
    "thread_write": _shape_thread_write,
    "cross_block_reattach": _shape_cross_block_reattach,
}


class TestMutationShapesDirtyTheirBlock:
    @pytest.mark.parametrize("shape", sorted(MUTATION_SHAPES))
    def test_next_commit_matches_baseline(self, shape):
        roots = _population(6)
        # Alias one subtree across blocks before partitioning, so the
        # shared_subtree shape exercises a genuine cross-block alias.
        roots[5].extra = roots[0].mid.leaf
        reset_flags(roots[5])
        strategy = DifferentialStrategy(block_size=2)
        _strategy_bytes(strategy, roots)  # baseline commit: partition

        MUTATION_SHAPES[shape](roots)

        flags = _snapshot_flags(roots)
        expected = _generic_bytes(roots)
        _restore_flags(flags)
        assert _strategy_bytes(strategy, roots) == expected

    @pytest.mark.parametrize("shape", sorted(MUTATION_SHAPES))
    def test_mutation_is_visible_to_the_tier(self, shape):
        roots = _population(6)
        roots[5].extra = roots[0].mid.leaf
        reset_flags(roots[5])
        tier = BlockTier(block_size=2)
        tier.partition(roots)
        for block in tier.blocks:
            tier.mark_committed(block)
        mark = TOPOLOGY_CLOCK.value

        MUTATION_SHAPES[shape](roots)

        some_block_dirty = any(not tier.is_clean(b) for b in tier.blocks)
        desynced = TOPOLOGY_CLOCK.value != mark
        assert some_block_dirty or desynced, (
            f"mutation shape {shape!r} left every block clean and the "
            "topology clock untouched: a differential commit would skip it"
        )


class TestGenerationWrap:
    def test_dirty_bit_survives_a_full_counter_wrap(self):
        roots = _population(2)
        tier = BlockTier(block_size=2)
        tier.partition(roots)
        block = tier.blocks[0]
        tier.mark_committed(block)
        # Simulate 2**32 - 1 flag writes since the commit: one more bump
        # wraps the counter exactly back to its committed value.
        block.generation = (block.committed_generation - 1) & GENERATION_MASK
        block.dirty = False  # adversarial: only the counter would lie
        roots[0].mid.leaf.value = 1
        assert block.generation == block.committed_generation
        assert block.dirty  # the write re-raised the wrap-proof bit
        assert not tier.is_clean(block)

    def test_generation_masked_to_32_bits(self):
        roots = _population(1)
        tier = BlockTier()
        tier.partition(roots)
        block = tier.blocks[0]
        block.generation = GENERATION_MASK
        roots[0].mid.leaf.value = 2
        assert block.generation == 0


class TestHashCollisionFallback:
    def test_skip_mode_detects_size_change_despite_collision(self, monkeypatch):
        # Every digest collides; only the length half of the fingerprint
        # can tell content apart. A size-changing write must still be
        # recorded by the skip mode.
        monkeypatch.setattr(
            blocks_module, "content_fingerprint", lambda data: "collision"
        )
        roots = _population(4)
        strategy = DifferentialStrategy(block_size=2, hash_mode=HASH_SKIP)
        _strategy_bytes(strategy, roots)  # baseline: fingerprints stored
        roots[1].name = "a-much-longer-name-than-before"
        data = _strategy_bytes(strategy, roots)
        recorded = {entry.object_id for entry in decode_stream(data)}
        assert roots[1]._ckpt_info.object_id in recorded

    def test_verify_mode_heals_size_change_despite_collision(self, monkeypatch):
        monkeypatch.setattr(
            blocks_module, "content_fingerprint", lambda data: "collision"
        )
        roots = _population(4)
        strategy = DifferentialStrategy(block_size=2, hash_mode=HASH_VERIFY)
        _strategy_bytes(strategy, roots)
        # A flag-bypassing mutation that changes the wire length: the
        # generation says clean, the fingerprint length says otherwise.
        leaf = roots[2].mid.leaf
        leaf._f_label = leaf._f_label + "-grown"
        data = _strategy_bytes(strategy, roots)
        recorded = {entry.object_id for entry in decode_stream(data)}
        assert leaf._ckpt_info.object_id in recorded
        assert strategy.tier.hash_fallbacks == 1

    def test_verify_mode_heals_unflagged_value_change(self):
        # Real digests: any bypassed content change in a generation-clean
        # block is caught and the whole block re-flagged, never lost.
        roots = _population(4)
        strategy = DifferentialStrategy(block_size=2, hash_mode=HASH_VERIFY)
        _strategy_bytes(strategy, roots)
        leaf = roots[2].mid.leaf
        leaf._f_value = 4242  # the bug: descriptor never fires
        data = _strategy_bytes(strategy, roots)
        recorded = {entry.object_id for entry in decode_stream(data)}
        assert leaf._ckpt_info.object_id in recorded
        assert strategy.last_stats["healed"] == 1

    def test_skip_mode_elides_writeback(self):
        roots = _population(4)
        strategy = DifferentialStrategy(block_size=2, hash_mode=HASH_SKIP)
        _strategy_bytes(strategy, roots)
        leaf = roots[0].mid.leaf
        leaf.value = leaf.value  # flag raised, content unchanged
        data = _strategy_bytes(strategy, roots)
        assert data == b""
        assert not leaf._ckpt_info.modified  # flag consumed, not leaked
        assert strategy.last_stats["hash_skipped"] == 1


class TestStateSnapshot:
    def test_snapshot_restore_roundtrip(self):
        roots = _population(4)
        tier = BlockTier(block_size=2)
        tier.partition(roots)
        for block in tier.blocks:
            tier.mark_committed(block)
        saved = tier.snapshot_state()
        roots[0].mid.leaf.value = 5
        roots[3].name = "x"
        assert any(not tier.is_clean(b) for b in tier.blocks)
        tier.restore_state(saved)
        assert all(tier.is_clean(b) for b in tier.blocks)

    def test_reset_forgets_partition(self):
        roots = _population(2)
        tier = BlockTier()
        tier.partition(roots)
        tier.reset()
        assert not tier.partitioned
        assert not tier.in_sync(roots)


class TestOracleCrosscheck:
    """The block tier must not weaken the shadow-heap oracle's verdicts."""

    def _session(self, strategy_name):
        from repro.runtime.session import CheckpointSession
        from repro.runtime.sink import BufferSink
        from repro.sanitize.oracle import ShadowHeapOracle

        root = build_root()
        oracle = ShadowHeapOracle()
        session = CheckpointSession(
            roots=root, strategy=strategy_name, sink=BufferSink()
        )
        session.attach_oracle(oracle)
        session.base()
        return root, session, oracle

    @pytest.mark.parametrize(
        "strategy_name", ["differential", "differential-verify"]
    )
    def test_bypass_mutation_still_reported(self, strategy_name):
        root, session, oracle = self._session(strategy_name)
        root.mid.leaf._f_value = 41  # flag bypass under the block tier
        session.commit()
        session.close()
        under = oracle.under()
        assert under, "block tier suppressed the unflagged-mutation verdict"
        assert any(v.object_id == root.mid.leaf._ckpt_info.object_id
                   for v in under)

    @pytest.mark.parametrize(
        "strategy_name", ["differential", "differential-verify"]
    )
    def test_honest_mutations_stay_consistent(self, strategy_name):
        root, session, oracle = self._session(strategy_name)
        root.mid.leaf.value = 8
        root.kids.append(Leaf(value=3))
        session.commit()
        root.name = "after"
        root.mid = Mid(leaf=Leaf(value=0))
        session.commit()
        session.close()
        assert oracle.under() == []
