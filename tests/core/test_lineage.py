"""The epoch lineage graph: parents, branches, names, chains, protection."""

import pytest

from repro.core.errors import StorageError
from repro.core.lineage import AUTO, MAIN_BRANCH, Lineage, resolve_parent
from repro.core.storage import FULL, INCREMENTAL, FileStore, MemoryStore, compact

PAYLOAD = b"p" * 24


def _snapshot(roots, full):
    from repro.core.checkpoint import Checkpoint, FullCheckpoint

    driver = FullCheckpoint() if full else Checkpoint()
    for root in roots:
        driver.checkpoint(root)
    return driver.getvalue()


def linear_store(store, epochs=4):
    for index in range(epochs):
        store.append(FULL if index == 0 else INCREMENTAL, PAYLOAD)
    return store


def branched_store(store):
    """0 full -- 1 delta -- 2 delta(named mid) -- 3 delta   (main)
                              \\-- 4 delta -- 5 delta        (side)"""
    store.append(FULL, PAYLOAD)
    store.append(INCREMENTAL, PAYLOAD)
    store.append(INCREMENTAL, PAYLOAD, name="mid")
    store.append(INCREMENTAL, PAYLOAD)
    store.append(INCREMENTAL, PAYLOAD, parent=2, branch="side")
    store.append(INCREMENTAL, PAYLOAD, branch="side")
    return store


class TestLinearLineage:
    def test_implied_linear_parents(self):
        lineage = linear_store(MemoryStore()).lineage()
        assert lineage.epoch(0).parent is None
        assert [lineage.epoch(i).parent for i in (1, 2, 3)] == [0, 1, 2]
        assert all(
            lineage.epoch(i).branch == MAIN_BRANCH for i in range(4)
        )

    def test_chain_walks_back_to_full(self):
        lineage = linear_store(MemoryStore()).lineage()
        assert lineage.chain_indices(3) == [0, 1, 2, 3]
        assert lineage.chain_indices(0) == [0]

    def test_heads_and_branches(self):
        lineage = linear_store(MemoryStore()).lineage()
        assert lineage.heads() == [3]
        assert lineage.branches() == {MAIN_BRANCH: 3}


class TestBranchedLineage:
    def test_branch_tips(self):
        lineage = branched_store(MemoryStore()).lineage()
        assert lineage.branches() == {MAIN_BRANCH: 3, "side": 5}
        assert sorted(lineage.heads()) == [3, 5]

    def test_chains_cross_the_branch_point(self):
        lineage = branched_store(MemoryStore()).lineage()
        assert lineage.chain_indices(3) == [0, 1, 2, 3]
        assert lineage.chain_indices(5) == [0, 1, 2, 4, 5]

    def test_named_resolution(self):
        lineage = branched_store(MemoryStore()).lineage()
        assert lineage.named() == {"mid": 2}
        assert lineage.resolve("mid") == 2
        assert lineage.resolve(4) == 4

    def test_unknown_name_raises(self):
        lineage = branched_store(MemoryStore()).lineage()
        with pytest.raises(StorageError, match="no checkpoint named"):
            lineage.resolve("nope")

    def test_duplicate_name_rejected(self):
        store = branched_store(MemoryStore())
        with pytest.raises(StorageError, match="already pins epoch 2"):
            store.append(INCREMENTAL, PAYLOAD, name="mid")

    def test_explicit_parent_must_exist(self):
        store = MemoryStore()
        store.append(FULL, PAYLOAD)
        with pytest.raises(StorageError):
            store.append(INCREMENTAL, PAYLOAD, parent=7)

    def test_auto_parent_follows_last_branch(self):
        store = branched_store(MemoryStore())
        # no branch given: continue whatever branch was appended last
        index = store.append(INCREMENTAL, PAYLOAD)
        assert store.lineage().epoch(index).branch == "side"
        assert store.lineage().epoch(index).parent == 5

    def test_protected_covers_heads_and_names(self):
        lineage = branched_store(MemoryStore()).lineage()
        # chains of both heads plus the named epoch's chain
        assert lineage.protected() == {0, 1, 2, 3, 4, 5}


class TestResolveParent:
    def test_auto_on_empty_store(self):
        parent, branch = resolve_parent(AUTO, None, {}, lambda i: MAIN_BRANCH, None)
        assert parent is None
        assert branch == MAIN_BRANCH

    def test_explicit_parent_inherits_branch(self):
        parent, branch = resolve_parent(
            2, None, {MAIN_BRANCH: 3}, lambda i: "side", "side"
        )
        assert (parent, branch) == (2, "side")


class TestFileStoreLineage:
    def test_branched_lineage_survives_reopen(self, tmp_path):
        directory = str(tmp_path / "ckpts")
        branched_store(FileStore(directory))
        lineage = FileStore(directory).lineage()
        assert lineage.branches() == {MAIN_BRANCH: 3, "side": 5}
        assert lineage.named() == {"mid": 2}
        assert lineage.epoch(4).parent == 2

    def test_reopened_store_continues_last_branch(self, tmp_path):
        directory = str(tmp_path / "ckpts")
        branched_store(FileStore(directory))
        reopened = FileStore(directory)
        index = reopened.append(INCREMENTAL, PAYLOAD)
        assert reopened.lineage().epoch(index).branch == "side"

    def test_materialize_interior_epoch(self, tmp_path):
        from repro.synthetic.structures import build_structures, element_at

        directory = str(tmp_path / "ckpts")
        store = FileStore(directory)
        roots = build_structures(2, 2, 2, 1)
        store.append(FULL, _snapshot(roots, full=True))
        values = []
        for step in (1, 2):
            element_at(roots[0], 0, 0).v0 = step * 11
            values.append(step * 11)
            store.append(INCREMENTAL, _snapshot(roots, full=False))
        table = store.materialize(1)
        restored = table[roots[0]._ckpt_info.object_id]
        assert element_at(restored, 0, 0).v0 == values[0]


class TestCompactLineage:
    def test_compact_spares_other_branches(self, tmp_path):
        from repro.synthetic.structures import build_structures, element_at

        directory = str(tmp_path / "ckpts")
        store = FileStore(directory)
        roots = build_structures(2, 2, 2, 1)
        store.append(FULL, _snapshot(roots, full=True))
        for step in (1, 2):
            element_at(roots[0], 0, 0).v0 = step
            store.append(INCREMENTAL, _snapshot(roots, full=False))
        # fork a side branch off the full base
        element_at(roots[0], 0, 0).v0 = 99
        store.append(
            INCREMENTAL, _snapshot(roots, full=False), parent=0, branch="side"
        )

        compact(store, branch=MAIN_BRANCH)
        lineage = store.lineage()
        # the side branch and its base chain survive compaction
        assert 3 in lineage.indices()
        assert 0 in lineage.indices()  # epoch 3's base
        assert lineage.branches()[MAIN_BRANCH] > 3

    def test_compact_unknown_branch_raises(self):
        store = linear_store(MemoryStore())
        with pytest.raises(StorageError, match="unknown branch"):
            compact(store, branch="nope")

    def test_compact_never_deletes_named_chain(self, tmp_path):
        from repro.synthetic.structures import build_structures, element_at

        directory = str(tmp_path / "ckpts")
        store = FileStore(directory)
        roots = build_structures(2, 2, 2, 1)
        store.append(FULL, _snapshot(roots, full=True))
        for step, name in ((1, "keep"), (2, None)):
            element_at(roots[0], 0, 0).v0 = step
            store.append(INCREMENTAL, _snapshot(roots, full=False), name=name)
        compact(store)
        lineage = store.lineage()
        assert lineage.named() == {"keep": 1}
        # the named epoch's whole chain survives
        assert {0, 1}.issubset(set(lineage.indices()))
