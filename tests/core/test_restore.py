"""Unit tests for restore/replay and state comparison."""

import pytest

from repro.core.checkpoint import Checkpoint, FullCheckpoint, collect_objects, reset_flags
from repro.core.errors import RestoreError
from repro.core.restore import (
    ObjectTable,
    apply_incremental,
    replay,
    restore_full,
    state_digest,
    structurally_equal,
)
from repro.core.streams import DataOutputStream
from tests.conftest import Leaf, Mid, Root, build_root, make_class
from repro.core.fields import child


def _full_bytes(root):
    driver = FullCheckpoint()
    driver.checkpoint(root)
    return driver.getvalue()


def _delta_bytes(root):
    driver = Checkpoint()
    driver.checkpoint(root)
    return driver.getvalue()


class TestRestoreFull:
    def test_roundtrip_identity(self, root):
        base = _full_bytes(root)
        table = restore_full(base)
        recovered = table[root._ckpt_info.object_id]
        assert structurally_equal(root, recovered, compare_ids=True)
        assert type(recovered) is Root

    def test_all_objects_restored(self, root):
        table = restore_full(_full_bytes(root))
        assert len(table) == len(collect_objects(root))

    def test_restored_flags_are_clear(self, root):
        table = restore_full(_full_bytes(root))
        assert all(not o._ckpt_info.modified for o in table.objects())

    def test_forward_child_references_resolve(self, root):
        # Parent entries precede their children in the stream; restoration
        # must resolve the forward ids (two-pass).
        table = restore_full(_full_bytes(root))
        recovered = table[root._ckpt_info.object_id]
        assert recovered.mid.leaf.value == root.mid.leaf.value
        assert recovered.kids[1].label == root.kids[1].label

    def test_absent_child_stays_none(self):
        root = build_root(with_extra=False)
        table = restore_full(_full_bytes(root))
        assert table[root._ckpt_info.object_id].extra is None

    def test_empty_stream_restores_empty_table(self):
        table = restore_full(b"")
        assert len(table) == 0


class TestIncrementalReplay:
    def test_scalar_update_replayed(self, root):
        base = _full_bytes(root)
        root.mid.leaf.value = 123
        delta = _delta_bytes(root)
        table = replay(base, [delta])
        assert table[root._ckpt_info.object_id].mid.leaf.value == 123

    def test_pointer_update_replayed(self, root):
        base = _full_bytes(root)
        root.extra = root.kids[0]  # repoint child
        delta = _delta_bytes(root)
        recovered = replay(base, [delta])[root._ckpt_info.object_id]
        assert recovered.extra is recovered.kids[0]

    def test_new_object_in_delta_materialized(self, root):
        base = _full_bytes(root)
        newcomer = Leaf(value=55, label="new")
        root.kids.append(newcomer)
        delta = _delta_bytes(root)
        recovered = replay(base, [delta])[root._ckpt_info.object_id]
        assert recovered.kids[2].value == 55
        assert recovered.kids[2].label == "new"

    def test_multi_delta_chain(self, root):
        base = _full_bytes(root)
        deltas = []
        for value in (10, 20, 30):
            root.mid.leaf.value = value
            root.mid.notes.append(value)
            deltas.append(_delta_bytes(root))
        recovered = replay(base, deltas)[root._ckpt_info.object_id]
        assert recovered.mid.leaf.value == 30
        assert recovered.mid.notes.as_list() == [1, 2, 3, 10, 20, 30]
        assert structurally_equal(root, recovered, compare_ids=True)

    def test_later_entry_wins(self, root):
        base = _full_bytes(root)
        root.mid.leaf.value = 1
        first = _delta_bytes(root)
        root.mid.leaf.value = 2
        second = _delta_bytes(root)
        recovered = replay(base, [first, second])[root._ckpt_info.object_id]
        assert recovered.mid.leaf.value == 2

    def test_replay_equals_live_after_random_history(self, root):
        import random

        rng = random.Random(3)
        base = _full_bytes(root)
        deltas = []
        objects = collect_objects(root)
        leaves = [o for o in objects if isinstance(o, Leaf)]
        for _ in range(10):
            for __ in range(rng.randint(1, 4)):
                rng.choice(leaves).value = rng.randint(-100, 100)
            if rng.random() < 0.4:
                root.mid.notes.append(rng.randint(0, 9))
            deltas.append(_delta_bytes(root))
        recovered = replay(base, deltas)[root._ckpt_info.object_id]
        assert structurally_equal(root, recovered, compare_ids=True)


class TestErrors:
    def test_unknown_object_id(self):
        table = ObjectTable()
        with pytest.raises(RestoreError, match="unknown object id"):
            table[999999]

    def test_truncated_stream(self, root):
        base = _full_bytes(root)
        with pytest.raises(RestoreError):
            restore_full(base[: len(base) - 3])

    def test_unknown_serial(self):
        out = DataOutputStream()
        out.write_int32(1)
        out.write_int32(2**28)  # never allocated
        with pytest.raises(RestoreError, match="unknown class serial"):
            restore_full(out.getvalue())

    def test_class_mismatch_between_delta_and_table(self, root):
        base = _full_bytes(root)
        table = restore_full(base)
        out = DataOutputStream()
        out.write_int32(root._ckpt_info.object_id)
        out.write_int32(Leaf._ckpt_serial)  # but the table holds a Root
        Leaf().record(out)
        with pytest.raises(RestoreError, match="recorded as"):
            apply_incremental(table, out.getvalue())

    def test_missing_serial_translation(self, root):
        base = _full_bytes(root)
        with pytest.raises(RestoreError, match="missing from manifest"):
            restore_full(base, serial_translation={})


class TestStateDigest:
    def test_digest_stable(self, root):
        assert state_digest(root) == state_digest(root)

    def test_digest_differs_on_value_change(self, root):
        before = state_digest(root)
        root.mid.leaf.value += 1
        assert state_digest(root) != before

    def test_digest_differs_on_topology_change(self, root):
        before = state_digest(root)
        root.extra = None
        assert state_digest(root) != before

    def test_digest_ignores_ids_by_default(self):
        a = build_root()
        b = build_root()
        assert state_digest(a) == state_digest(b)
        assert state_digest(a, include_ids=True) != state_digest(b, include_ids=True)

    def test_digest_captures_sharing(self):
        holder_cls = make_class("DigestHolder", a=child(Leaf), b=child(Leaf))
        shared = holder_cls(a=Leaf(value=1))
        shared.b = shared.a
        separate = holder_cls(a=Leaf(value=1), b=Leaf(value=1))
        assert state_digest(shared) != state_digest(separate)

    def test_structurally_equal_flags_independent(self, root):
        twin = build_root()
        reset_flags(twin)
        assert structurally_equal(root, twin)  # flags don't affect state
