"""Unit tests for the class registry and cross-process serial translation."""

import pytest

from repro.core.checkpoint import FullCheckpoint
from repro.core.errors import RestoreError, SchemaError
from repro.core.registry import DEFAULT_REGISTRY, ClassRegistry
from repro.core.restore import restore_full, structurally_equal
from tests.conftest import Leaf, Mid, build_root


class TestSerialTranslation:
    def test_identity_translation(self):
        manifest = DEFAULT_REGISTRY.name_to_serial()
        translation = DEFAULT_REGISTRY.serial_translation(manifest)
        assert all(old == new for old, new in translation.items())

    def test_shifted_serials_translate(self):
        """Simulates recovery in a process that registered classes in a
        different order (different serials for the same class names)."""
        manifest = DEFAULT_REGISTRY.name_to_serial()
        # Pretend the writing process had every serial shifted by 1000.
        shifted = {name: serial + 1000 for name, serial in manifest.items()}
        translation = DEFAULT_REGISTRY.serial_translation(shifted)
        for name, old_serial in shifted.items():
            cls = DEFAULT_REGISTRY.class_by_name(name)
            assert translation[old_serial] == DEFAULT_REGISTRY.serial_of(cls)

    def test_unknown_class_in_manifest_rejected(self):
        with pytest.raises(RestoreError, match="not.*defined"):
            DEFAULT_REGISTRY.serial_translation({"ghosts.Phantom": 1})

    def test_restore_with_translation_end_to_end(self):
        root = build_root()
        driver = FullCheckpoint()
        driver.checkpoint(root)
        data = driver.getvalue()

        # Rewrite the stream's serials as a foreign process would have
        # written them, then restore with the matching translation.
        manifest = DEFAULT_REGISTRY.name_to_serial()
        shifted_manifest = {n: s + 7 for n, s in manifest.items()}
        serial_to_shifted = {s: s + 7 for s in manifest.values()}

        from repro.core.registry import DEFAULT_REGISTRY as reg
        from repro.core.restore import _skip_payload
        from repro.core.streams import DataInputStream, DataOutputStream

        inp = DataInputStream(data)
        out = DataOutputStream()
        while not inp.at_eof:
            out.write_int32(inp.read_int32())
            serial = inp.read_int32()
            out.write_int32(serial_to_shifted[serial])
            cls = reg.class_for(serial)
            start = inp.position
            _skip_payload(inp, reg.schema_of(cls))
            out.write_bytes(inp.read_bytes(0) or data[start : inp.position])
        foreign = out.getvalue()

        translation = reg.serial_translation(shifted_manifest)
        table = restore_full(foreign, serial_translation=translation)
        recovered = table[root._ckpt_info.object_id]
        assert structurally_equal(root, recovered, compare_ids=True)


class TestRegistryBasics:
    def test_class_by_name(self):
        name = f"{Leaf.__module__}.{Leaf.__qualname__}"
        assert DEFAULT_REGISTRY.class_by_name(name) is Leaf
        assert DEFAULT_REGISTRY.class_by_name("no.such.Class") is None

    def test_reregistration_is_idempotent(self):
        registry = ClassRegistry()
        first = registry.register(Leaf, Leaf._ckpt_schema)
        second = registry.register(Leaf, Leaf._ckpt_schema)
        assert first == second
        assert len(registry) == 1

    def test_len_and_contains(self):
        registry = ClassRegistry()
        registry.register(Mid, Mid._ckpt_schema)
        assert Mid in registry
        assert Leaf not in registry

    def test_class_for_unknown_serial(self):
        with pytest.raises(RestoreError):
            ClassRegistry().class_for(5)

    def test_schema_of_unregistered(self):
        with pytest.raises(SchemaError):
            ClassRegistry().schema_of(Leaf)
