"""Property-based tests of checkpoint/restore over random structures.

Random trees over a small family of checkpointable classes, random value
assignments, and random mutation histories: replaying the recorded
base + deltas must always reproduce the live state exactly.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.checkpoint import Checkpoint, FullCheckpoint, collect_objects
from repro.core.checkpointable import Checkpointable
from repro.core.fields import child, child_list, scalar, scalar_list
from repro.core.restore import replay, state_digest, structurally_equal


class PropLeaf(Checkpointable):
    number = scalar("int")
    weight = scalar("float")
    tag = scalar("str")
    active = scalar("bool")


class PropBranch(Checkpointable):
    left = child()
    right = child()
    notes = scalar_list("int")


class PropBag(Checkpointable):
    items = child_list()
    labels = scalar_list("str")
    size = scalar("int")


@st.composite
def tree(draw, depth=0):
    """A random structure over the three property classes."""
    kind = draw(st.sampled_from(["leaf", "branch", "bag"] if depth < 3 else ["leaf"]))
    if kind == "leaf":
        return PropLeaf(
            number=draw(st.integers(-10_000, 10_000)),
            weight=draw(st.floats(-1e6, 1e6, allow_nan=False)),
            tag=draw(st.text(max_size=12)),
            active=draw(st.booleans()),
        )
    if kind == "branch":
        branch = PropBranch(notes=draw(st.lists(st.integers(-99, 99), max_size=5)))
        if draw(st.booleans()):
            branch.left = draw(tree(depth=depth + 1))
        if draw(st.booleans()):
            branch.right = draw(tree(depth=depth + 1))
        return branch
    bag = PropBag(
        labels=draw(st.lists(st.text(max_size=6), max_size=4)),
        size=draw(st.integers(0, 50)),
    )
    for _ in range(draw(st.integers(0, 3))):
        bag.items.append(draw(tree(depth=depth + 1)))
    return bag


def _mutate(objects, choice: int, payload: int) -> None:
    target = objects[choice % len(objects)]
    if isinstance(target, PropLeaf):
        field = ("number", "weight", "tag", "active")[payload % 4]
        value = {
            "number": payload,
            "weight": payload / 3.0,
            "tag": f"t{payload}",
            "active": payload % 2 == 0,
        }[field]
        setattr(target, field, value)
    elif isinstance(target, PropBranch):
        if payload % 3 == 0:
            target.notes.append(payload)
        elif payload % 3 == 1:
            target.left = PropLeaf(number=payload)
        else:
            target.right = None
    else:
        if payload % 2 == 0:
            target.labels.append(f"l{payload}")
        else:
            target.items.append(PropLeaf(number=payload))


class TestRandomStructureRoundtrips:
    @settings(max_examples=60, deadline=None)
    @given(tree())
    def test_full_checkpoint_roundtrip(self, root):
        driver = FullCheckpoint()
        driver.checkpoint(root)
        table = replay(driver.getvalue(), [])
        recovered = table[root._ckpt_info.object_id]
        assert structurally_equal(root, recovered, compare_ids=True)

    @settings(max_examples=60, deadline=None)
    @given(
        tree(),
        st.lists(
            st.tuples(st.integers(0, 10_000), st.integers(0, 10_000)),
            max_size=12,
        ),
    )
    def test_mutation_history_replays(self, root, history):
        base_driver = FullCheckpoint()
        base_driver.checkpoint(root)
        base = base_driver.getvalue()
        deltas = []
        objects = collect_objects(root)
        for choice, payload in history:
            _mutate(objects, choice, payload)
            objects = collect_objects(root)  # mutations may add objects
            delta = Checkpoint()
            delta.checkpoint(root)
            deltas.append(delta.getvalue())
        recovered = replay(base, deltas)[root._ckpt_info.object_id]
        assert structurally_equal(root, recovered, compare_ids=True)

    @settings(max_examples=40, deadline=None)
    @given(tree(), st.integers(0, 10_000), st.integers(0, 10_000))
    def test_delta_records_only_dirty_objects(self, root, choice, payload):
        FullCheckpoint().checkpoint(root)  # clears all flags
        digest_before = state_digest(root)
        objects = collect_objects(root)
        before_ids = {o._ckpt_info.object_id for o in objects}
        _mutate(objects, choice, payload)
        delta = Checkpoint()
        delta.checkpoint(root)
        # Mutating anything changes either the digest or at least the
        # delta is bounded by the number of touched + created objects
        # (created = genuinely new ids; a replaced subtree may shrink the
        # reachable set while still adding fresh objects).
        created = sum(
            1
            for o in collect_objects(root)
            if o._ckpt_info.object_id not in before_ids
        )
        if delta.size == 0:
            assert state_digest(root) == digest_before
        else:
            from repro.core.inspect import decode_stream

            entries = decode_stream(delta.getvalue())
            assert len(entries) <= 1 + created
