"""Store thread-safety: concurrent append/epochs under a drain thread.

Before the locks, ``FileStore.epochs()`` iterated the verified-epoch
cache while the :class:`BackgroundWriter` drain thread seeded it
(``RuntimeError: dictionary changed size during iteration``), and two
racing appends could both scan the directory and claim the same epoch
index. These tests hammer exactly those interleavings.
"""

import threading

import pytest

from repro.core.storage import (
    FULL,
    INCREMENTAL,
    BackgroundWriter,
    FileStore,
    MemoryStore,
)

EPOCHS = 120
READ_ROUNDS = 400


def _hammer_epochs(store, stop, errors):
    while not stop.is_set():
        try:
            epochs = store.epochs()
            # indices of the intact prefix must be contiguous from 0
            for position, epoch in enumerate(epochs):
                assert epoch.index == position
        except Exception as exc:  # pragma: no cover - the failure we hunt
            errors.append(exc)
            return


class TestConcurrentReads:
    @pytest.mark.parametrize("make_store", [MemoryStore, None])
    def test_epochs_while_background_writer_drains(self, tmp_path, make_store):
        backing = (
            make_store() if make_store else FileStore(str(tmp_path / "store"))
        )
        writer = BackgroundWriter(backing, max_queued=16)
        stop = threading.Event()
        errors = []
        readers = [
            threading.Thread(
                target=_hammer_epochs, args=(backing, stop, errors)
            )
            for _ in range(2)
        ]
        for reader in readers:
            reader.start()
        try:
            writer.append(FULL, b"base")
            for step in range(1, EPOCHS):
                writer.append(INCREMENTAL, b"delta-%d" % step)
            writer.flush()
        finally:
            stop.set()
            for reader in readers:
                reader.join()
            writer.close()
        assert errors == []
        epochs = backing.epochs()
        assert len(epochs) == EPOCHS
        assert [epoch.index for epoch in epochs] == list(range(EPOCHS))

    def test_memory_store_concurrent_appends_assign_unique_indices(self):
        store = MemoryStore()
        barrier = threading.Barrier(4)
        indices = []
        lock = threading.Lock()

        def append_many():
            barrier.wait()
            for _ in range(50):
                index = store.append(INCREMENTAL, b"x")
                with lock:
                    indices.append(index)

        threads = [threading.Thread(target=append_many) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sorted(indices) == list(range(200))

    def test_file_store_concurrent_appends_assign_unique_indices(
        self, tmp_path
    ):
        store = FileStore(str(tmp_path / "store"))
        barrier = threading.Barrier(3)
        indices = []
        lock = threading.Lock()

        def append_many():
            barrier.wait()
            for _ in range(15):
                index = store.append(INCREMENTAL, b"x")
                with lock:
                    indices.append(index)

        threads = [threading.Thread(target=append_many) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sorted(indices) == list(range(45))

    def test_file_store_reads_while_another_thread_appends(self, tmp_path):
        store = FileStore(str(tmp_path / "store"))
        store.append(FULL, b"base")
        stop = threading.Event()
        errors = []
        reader = threading.Thread(
            target=_hammer_epochs, args=(store, stop, errors)
        )
        reader.start()
        try:
            for step in range(1, 60):
                store.append(INCREMENTAL, b"delta-%d" % step)
        finally:
            stop.set()
            reader.join()
        assert errors == []
        assert len(store.epochs()) == 60


class TestWriterInstrumentation:
    def test_drain_thread_emits_writer_events_and_metrics(self, tmp_path):
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.tracer import MemoryExporter, Tracer

        exporter = MemoryExporter()
        registry = MetricsRegistry()
        writer = BackgroundWriter(FileStore(str(tmp_path / "store")))
        writer.instrument(Tracer([exporter]), registry)
        writer.append(FULL, b"base")
        writer.append(INCREMENTAL, b"delta")
        writer.close()
        drains = exporter.of_type("writer.drain")
        assert len(drains) == 2
        assert drains[0]["kind"] == FULL
        assert drains[0]["wall_seconds"] >= 0.0
        snapshot = registry.snapshot()
        assert snapshot["counters"]["writer_drained_total"] == 2
        assert "writer_drain_seconds" in snapshot["histograms"]

    def test_degradation_is_traced(self, tmp_path):
        from repro.obs.tracer import MemoryExporter, Tracer

        exporter = MemoryExporter()
        writer = BackgroundWriter(FileStore(str(tmp_path / "store")))
        writer.instrument(Tracer([exporter]), writer.metrics)
        # simulate the writer thread dying outside the guarded write
        writer._queue.put(writer._STOP)
        writer._thread.join(timeout=5.0)
        writer._closed = False
        writer.append(FULL, b"sync")
        assert writer.degraded
        assert len(exporter.of_type("writer.degraded")) == 1

    def test_uninstrumented_writer_uses_the_null_singletons(self, tmp_path):
        from repro.obs.metrics import NULL_METRICS
        from repro.obs.tracer import NULL_TRACER

        writer = BackgroundWriter(FileStore(str(tmp_path / "store")))
        try:
            assert writer.tracer is NULL_TRACER
            assert writer.metrics is NULL_METRICS
        finally:
            writer.close()
