"""Unit tests for the typed binary streams."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import RestoreError, SerializationError
from repro.core.streams import (
    INT32_MAX,
    INT32_MIN,
    DataInputStream,
    DataOutputStream,
    NullOutputStream,
    PackedEncoder,
    utf8_length,
)


class TestDataOutputStream:
    def test_empty_stream(self):
        out = DataOutputStream()
        assert out.size == 0
        assert out.getvalue() == b""
        assert len(out) == 0

    def test_write_int32_size(self):
        out = DataOutputStream()
        out.write_int32(1)
        out.write_int32(-1)
        assert out.size == 8

    def test_write_int32_overflow_raises(self):
        out = DataOutputStream()
        with pytest.raises(Exception):
            out.write_int32(INT32_MAX + 1)
        with pytest.raises(Exception):
            out.write_int32(INT32_MIN - 1)

    def test_write_str_utf8(self):
        out = DataOutputStream()
        out.write_str("héllo")
        inp = DataInputStream(out.getvalue())
        assert inp.read_str() == "héllo"
        assert inp.at_eof

    def test_clear_resets(self):
        out = DataOutputStream()
        out.write_int64(5)
        out.clear()
        assert out.size == 0

    def test_write_bytes_raw(self):
        out = DataOutputStream()
        out.write_bytes(b"abc")
        assert out.getvalue() == b"abc"


class TestNullOutputStream:
    def test_counts_without_retaining(self):
        out = NullOutputStream()
        out.write_int32(1)
        out.write_int64(2)
        out.write_float64(3.0)
        out.write_bool(True)
        out.write_str("ab")
        out.write_bytes(b"xyz")
        assert out.size == 4 + 8 + 8 + 1 + (4 + 2) + 3
        # Write-side stream: misuse raises in the checkpoint (write)
        # error family, never the restore (decode) family.
        with pytest.raises(SerializationError):
            out.getvalue()

    def test_getvalue_error_is_not_restore_family(self):
        out = NullOutputStream()
        with pytest.raises(SerializationError) as excinfo:
            out.getvalue()
        assert not isinstance(excinfo.value, RestoreError)

    def test_write_str_counts_non_ascii_without_encoding(self):
        null = NullOutputStream()
        real = DataOutputStream()
        for text in ("héllo", "日本語", "aé€\U0001f600z", ""):
            null.clear()
            real.clear()
            null.write_str(text)
            real.write_str(text)
            assert null.size == real.size

    def test_clear(self):
        out = NullOutputStream()
        out.write_int32(1)
        out.clear()
        assert out.size == 0


class TestUtf8Length:
    @given(st.text(max_size=200))
    def test_matches_encoded_length(self, text):
        assert utf8_length(text) == len(text.encode("utf-8"))


class TestWriteStrLengthGuard:
    class _HugeStr(str):
        # Simulates a string whose encoding exceeds the int32 prefix
        # without allocating gigabytes.
        def encode(self, *args, **kwargs):
            return _FakeHugeBytes()

        def isascii(self):
            return True

        def __len__(self):
            return INT32_MAX + 1

    def test_data_output_stream_raises_typed_error(self):
        out = DataOutputStream()
        with pytest.raises(SerializationError, match="int32 length"):
            out.write_str(self._HugeStr())

    def test_null_output_stream_mirrors_the_guard(self):
        out = NullOutputStream()
        with pytest.raises(SerializationError, match="int32 length"):
            out.write_str(self._HugeStr())

    def test_packed_encoder_mirrors_the_guard(self):
        enc = PackedEncoder()
        with pytest.raises(SerializationError, match="int32 length"):
            enc.put_str(self._HugeStr())


class _FakeHugeBytes(bytes):
    def __len__(self):
        return INT32_MAX + 1


class TestDataInputStream:
    def test_truncated_read_raises(self):
        inp = DataInputStream(b"\x01\x02")
        with pytest.raises(RestoreError, match="truncated"):
            inp.read_int32()

    def test_negative_string_length_raises(self):
        out = DataOutputStream()
        out.write_int32(-5)
        inp = DataInputStream(out.getvalue())
        with pytest.raises(RestoreError, match="negative string length"):
            inp.read_str()

    def test_invalid_bool_raises(self):
        inp = DataInputStream(b"\x07")
        with pytest.raises(RestoreError, match="invalid boolean"):
            inp.read_bool()

    def test_base_offset_positions_bool_error_in_container(self):
        # One byte into a record that starts at offset 100 of a larger
        # recovery line: the message must name the containing-stream
        # offset, not the intra-record one.
        inp = DataInputStream(b"\x01\x07", base_offset=100)
        inp.read_bool()
        with pytest.raises(RestoreError, match="offset 101"):
            inp.read_bool()

    def test_base_offset_positions_truncation_error(self):
        inp = DataInputStream(b"\x01", base_offset=40)
        with pytest.raises(RestoreError, match="offset 40"):
            inp.read_int32()

    def test_absolute_position_tracks_base(self):
        inp = DataInputStream(b"\x00\x00\x00\x00", base_offset=12)
        assert inp.base_offset == 12
        inp.read_int32()
        assert inp.position == 4
        assert inp.absolute_position == 16

    def test_position_and_remaining(self):
        out = DataOutputStream()
        out.write_int32(1)
        out.write_int32(2)
        inp = DataInputStream(out.getvalue())
        assert inp.remaining == 8
        inp.read_int32()
        assert inp.position == 4
        assert inp.remaining == 4
        assert not inp.at_eof
        inp.read_int32()
        assert inp.at_eof


_SCALARS = st.one_of(
    st.tuples(st.just("int32"), st.integers(INT32_MIN, INT32_MAX)),
    st.tuples(st.just("int64"), st.integers(-(2**63), 2**63 - 1)),
    st.tuples(
        st.just("float64"),
        st.floats(allow_nan=False, allow_infinity=True, width=64),
    ),
    st.tuples(st.just("bool"), st.booleans()),
    st.tuples(st.just("str"), st.text(max_size=50)),
)


class TestRoundtripProperties:
    @given(st.lists(_SCALARS, max_size=60))
    def test_heterogeneous_roundtrip(self, values):
        out = DataOutputStream()
        for kind, value in values:
            getattr(out, f"write_{kind}")(value)
        inp = DataInputStream(out.getvalue())
        for kind, value in values:
            assert getattr(inp, f"read_{kind}")() == value
        assert inp.at_eof

    @given(st.lists(_SCALARS, max_size=30))
    def test_null_stream_size_matches_real(self, values):
        real = DataOutputStream()
        null = NullOutputStream()
        for kind, value in values:
            getattr(real, f"write_{kind}")(value)
            getattr(null, f"write_{kind}")(value)
        assert null.size == real.size
