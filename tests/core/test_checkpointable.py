"""Unit tests for Checkpointable: generated methods, registry, reflection tier."""

import pytest

from repro.core.checkpoint import Checkpoint, reset_flags
from repro.core.checkpointable import (
    Checkpointable,
    reflective_fold,
    reflective_record,
)
from repro.core.errors import SchemaError
from repro.core.registry import DEFAULT_REGISTRY
from repro.core.streams import DataInputStream, DataOutputStream
from tests.conftest import Leaf, Mid, Root, build_root, make_class
from repro.core.fields import child, scalar


class TestGeneratedMethods:
    def test_methods_are_generated(self):
        assert getattr(Leaf.record, "__ckpt_generated__", False)
        assert getattr(Leaf.fold, "__ckpt_generated__", False)
        assert getattr(Leaf.restore_local, "__ckpt_generated__", False)
        assert "write_int32" in Leaf.record.__ckpt_source__

    def test_record_payload_layout(self):
        leaf = Leaf(value=5, weight=2.0, label="x", flag=True)
        out = DataOutputStream()
        leaf.record(out)
        inp = DataInputStream(out.getvalue())
        assert inp.read_int32() == 5
        assert inp.read_float64() == 2.0
        assert inp.read_str() == "x"
        assert inp.read_bool() is True
        assert inp.at_eof

    def test_record_child_writes_id_or_minus_one(self):
        mid = Mid()
        out = DataOutputStream()
        mid.record(out)
        inp = DataInputStream(out.getvalue())
        assert inp.read_int32() == -1  # absent child
        assert inp.read_int32() == 0  # empty notes list

        leaf = Leaf()
        mid.leaf = leaf
        out = DataOutputStream()
        mid.record(out)
        inp = DataInputStream(out.getvalue())
        assert inp.read_int32() == leaf._ckpt_info.object_id

    def test_fold_visits_children_in_schema_order(self):
        root = build_root(kid_count=2)
        visited = []

        class Collector:
            def checkpoint(self, obj):
                visited.append(obj)

        root.fold(Collector())
        assert visited == [root.mid, root.extra, root.kids[0], root.kids[1]]

    def test_fold_skips_absent_child(self):
        root = build_root(with_extra=False, kid_count=0)
        visited = []

        class Collector:
            def checkpoint(self, obj):
                visited.append(obj)

        root.fold(Collector())
        assert visited == [root.mid]

    def test_manual_override_is_respected(self):
        sentinel = []

        class Custom(Checkpointable):
            __qualname__ = "CustomOverride_tm"
            x = scalar("int")

            def record(self, out):  # noqa: D102 - test double
                sentinel.append("called")
                out.write_int32(self.x * 2)

        instance = Custom(x=3)
        out = DataOutputStream()
        instance.record(out)
        assert sentinel == ["called"]
        assert DataInputStream(out.getvalue()).read_int32() == 6


class TestReflectiveTier:
    def test_reflective_record_matches_generated(self, root):
        for obj in (root, root.mid, root.extra, root.mid.leaf):
            generated = DataOutputStream()
            obj.record(generated)
            reflective = DataOutputStream()
            reflective_record(obj, reflective)
            assert generated.getvalue() == reflective.getvalue()

    def test_reflective_fold_matches_generated(self, root):
        class Collector:
            def __init__(self):
                self.seen = []

            def checkpoint(self, obj):
                self.seen.append(obj._ckpt_info.object_id)

        generated, reflective = Collector(), Collector()
        root.fold(generated)
        reflective_fold(root, reflective)
        assert generated.seen == reflective.seen


class TestRegistry:
    def test_classes_registered_with_serials(self):
        assert Leaf in DEFAULT_REGISTRY
        assert Root in DEFAULT_REGISTRY
        assert DEFAULT_REGISTRY.class_for(Leaf._ckpt_serial) is Leaf
        assert Leaf._ckpt_serial != Root._ckpt_serial

    def test_name_collision_rejected(self):
        def define():
            class Collider(Checkpointable):
                __qualname__ = "StableColliderName"
                x = scalar("int")

            return Collider

        define()
        with pytest.raises(SchemaError, match="share the name"):
            define()

    def test_schema_lookup(self):
        schema = DEFAULT_REGISTRY.schema_of(Mid)
        assert [spec.name for spec in schema] == ["leaf", "notes"]

    def test_unregistered_class_raises(self):
        class NotCheckpointable:
            pass

        with pytest.raises(SchemaError):
            DEFAULT_REGISTRY.serial_of(NotCheckpointable)


class TestBlankAndChildren:
    def test_blank_bypasses_init(self):
        blank = Leaf._blank(777)
        assert blank._ckpt_info.object_id == 777
        assert not blank._ckpt_info.modified
        assert blank.value == 0

    def test_children_reflects_structure(self, root):
        assert root.children() == [root.mid, root.extra, root.kids[0], root.kids[1]]
        assert root.mid.children() == [root.mid.leaf]
        assert root.mid.leaf.children() == []

    def test_get_checkpoint_info(self):
        leaf = Leaf()
        assert leaf.get_checkpoint_info() is leaf._ckpt_info


class TestInheritance:
    def test_subclass_records_parent_fields_first(self):
        base = make_class("RecBase", a=scalar("int"))
        derived = make_class("RecDerived", (base,), b=scalar("int"))
        instance = derived(a=1, b=2)
        out = DataOutputStream()
        instance.record(out)
        inp = DataInputStream(out.getvalue())
        assert inp.read_int32() == 1  # inherited field first
        assert inp.read_int32() == 2

    def test_abstract_entry_class_with_no_fields(self):
        entry = make_class("EmptyEntry")
        instance = entry()
        out = DataOutputStream()
        instance.record(out)
        assert out.size == 0
        instance.fold(Checkpoint())  # no children: no-op

    def test_new_object_is_captured_by_next_incremental(self):
        root = build_root()
        reset_flags(root)
        fresh = Leaf(value=99)
        root.kids.append(fresh)  # sets root's flag; fresh is born modified
        driver = Checkpoint()
        driver.checkpoint(root)
        data = driver.getvalue()
        inp = DataInputStream(data)
        recorded_ids = []
        while not inp.at_eof:
            recorded_ids.append(inp.read_int32())
            serial = inp.read_int32()
            cls = DEFAULT_REGISTRY.class_for(serial)
            from repro.core.restore import _skip_payload

            _skip_payload(inp, DEFAULT_REGISTRY.schema_of(cls))
        assert root._ckpt_info.object_id in recorded_ids
        assert fresh._ckpt_info.object_id in recorded_ids
