"""Unit tests for the checkpoint drivers (paper Figure 1 semantics)."""

import pytest

from repro.core.checkpoint import (
    CheckingCheckpoint,
    Checkpoint,
    FullCheckpoint,
    ReflectiveCheckpoint,
    collect_objects,
    reset_flags,
    set_all_flags,
)
from repro.core.errors import CycleError
from repro.core.streams import DataInputStream
from tests.conftest import Leaf, Mid, build_root, make_class
from repro.core.fields import child


def _entry_ids(data: bytes):
    """Object ids recorded in a checkpoint stream, in order."""
    from repro.core.registry import DEFAULT_REGISTRY
    from repro.core.restore import _skip_payload

    inp = DataInputStream(data)
    ids = []
    while not inp.at_eof:
        ids.append(inp.read_int32())
        cls = DEFAULT_REGISTRY.class_for(inp.read_int32())
        _skip_payload(inp, DEFAULT_REGISTRY.schema_of(cls))
    return ids


class TestIncremental:
    def test_fresh_structure_fully_recorded(self, root):
        driver = Checkpoint()
        driver.checkpoint(root)
        recorded = _entry_ids(driver.getvalue())
        expected = [o._ckpt_info.object_id for o in collect_objects(root)]
        assert sorted(recorded) == sorted(expected)

    def test_flags_cleared_after_checkpoint(self, root):
        driver = Checkpoint()
        driver.checkpoint(root)
        assert all(not o._ckpt_info.modified for o in collect_objects(root))

    def test_second_checkpoint_is_empty(self, root):
        Checkpoint().checkpoint(root)
        driver = Checkpoint()
        driver.checkpoint(root)
        assert driver.size == 0

    def test_only_modified_objects_recorded(self, clean_root):
        clean_root.mid.leaf.value = 99
        driver = Checkpoint()
        driver.checkpoint(clean_root)
        recorded = _entry_ids(driver.getvalue())
        assert recorded == [clean_root.mid.leaf._ckpt_info.object_id]

    def test_traversal_order_is_preorder(self, root):
        driver = Checkpoint()
        driver.checkpoint(root)
        recorded = _entry_ids(driver.getvalue())
        expected = [o._ckpt_info.object_id for o in collect_objects(root)]
        assert recorded == expected

    def test_shared_subobject_recorded_once(self):
        # A DAG: the same leaf reachable through two parents. The first
        # visit records and clears the flag; the second records nothing.
        holder_cls = make_class("Holder", a=child(Leaf), b=child(Leaf))
        shared = Leaf(value=1)
        holder = holder_cls(a=shared, b=shared)
        driver = Checkpoint()
        driver.checkpoint(holder)
        recorded = _entry_ids(driver.getvalue())
        assert recorded.count(shared._ckpt_info.object_id) == 1


class TestFull:
    def test_records_everything_regardless_of_flags(self, clean_root):
        driver = FullCheckpoint()
        driver.checkpoint(clean_root)
        recorded = _entry_ids(driver.getvalue())
        expected = [o._ckpt_info.object_id for o in collect_objects(clean_root)]
        assert recorded == expected

    def test_full_resets_flags_to_base_a_chain(self, root):
        FullCheckpoint().checkpoint(root)
        follow_up = Checkpoint()
        follow_up.checkpoint(root)
        assert follow_up.size == 0

    def test_full_larger_than_incremental_on_partial_modification(self, clean_root):
        clean_root.extra.value = 5
        incremental = Checkpoint()
        incremental.checkpoint(clean_root)
        clean_root.extra.value = 5
        full = FullCheckpoint()
        full.checkpoint(clean_root)
        assert full.size > incremental.size


class TestReflective:
    def test_bytes_identical_to_generated_driver(self, root):
        import copy

        twin = build_root()
        # Align ids by construction order: rebuild both from scratch with
        # the same flag state instead; simplest: same structure, fresh.
        generated = Checkpoint()
        generated.checkpoint(root)
        reflective = ReflectiveCheckpoint()
        reflective.checkpoint(twin)
        # ids differ between the two structures, so compare shapes:
        assert len(generated.getvalue()) == len(reflective.getvalue())

    def test_reflective_resets_flags(self, root):
        ReflectiveCheckpoint().checkpoint(root)
        assert all(not o._ckpt_info.modified for o in collect_objects(root))


class TestCycleDetection:
    def test_cycle_raises(self):
        node_cls = make_class("CycleNode", next=child())
        a = node_cls()
        b = node_cls()
        a.next = b
        b.next = a
        with pytest.raises(CycleError):
            CheckingCheckpoint().checkpoint(a)

    def test_acyclic_passes_and_matches_plain_driver(self, root):
        checking = CheckingCheckpoint()
        checking.checkpoint(root)
        assert len(checking.getvalue()) > 0

    def test_self_cycle(self):
        node_cls = make_class("SelfCycle", next=child())
        a = node_cls()
        a.next = a
        with pytest.raises(CycleError):
            CheckingCheckpoint().checkpoint(a)


class TestFlagHelpers:
    def test_reset_and_set_all(self, root):
        reset_flags(root)
        assert all(not o._ckpt_info.modified for o in collect_objects(root))
        set_all_flags(root)
        assert all(o._ckpt_info.modified for o in collect_objects(root))

    def test_collect_objects_counts(self, root):
        # root + mid + leaf + extra + 2 kids
        assert len(collect_objects(root)) == 6

    def test_collect_objects_handles_sharing(self):
        holder_cls = make_class("ShareHolder", a=child(Leaf), b=child(Leaf))
        shared = Leaf()
        holder = holder_cls(a=shared, b=shared)
        objects = collect_objects(holder)
        assert len(objects) == 2


class TestIterativeDriver:
    def test_bytes_identical_to_recursive(self, root):
        from repro.core.checkpoint import IterativeCheckpoint

        snapshot = [
            (o._ckpt_info, o._ckpt_info.modified) for o in collect_objects(root)
        ]
        recursive = Checkpoint()
        recursive.checkpoint(root)
        for info, modified in snapshot:
            info.modified = modified
        iterative = IterativeCheckpoint()
        iterative.checkpoint(root)
        assert iterative.getvalue() == recursive.getvalue()

    def test_deep_structure_beyond_recursion_limit(self):
        import sys

        from repro.core.checkpoint import IterativeCheckpoint
        from repro.synthetic.structures import build_structure

        depth = sys.getrecursionlimit() + 500
        deep = build_structure(num_lists=1, list_length=depth, ints_per_element=1)
        with pytest.raises(RecursionError):
            Checkpoint().checkpoint(deep)
        set_all_flags(deep)
        driver = IterativeCheckpoint()
        driver.checkpoint(deep)
        assert driver.size > depth * 8
        assert all(not o._ckpt_info.modified for o in collect_objects(deep))

    def test_deep_structure_restores(self):
        from repro.core.checkpoint import IterativeCheckpoint
        from repro.core.restore import restore_full, structurally_equal
        from repro.synthetic.structures import build_structure

        deep = build_structure(num_lists=1, list_length=3000, ints_per_element=1)
        driver = IterativeCheckpoint()
        driver.checkpoint(deep)
        # Restoration and comparison are also stack-based: no recursion.
        table = restore_full(driver.getvalue())
        recovered = table[deep._ckpt_info.object_id]
        assert structurally_equal(deep, recovered, compare_ids=True)
