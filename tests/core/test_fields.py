"""Unit tests for field descriptors, flag discipline, and TrackedList."""

import pytest

from repro.core.errors import SchemaError
from repro.core.fields import TrackedList, child, scalar, scalar_list
from tests.conftest import Leaf, Mid, Root, build_root, make_class


class TestFlagDiscipline:
    def test_scalar_assignment_sets_flag(self):
        leaf = Leaf()
        leaf._ckpt_info.modified = False
        leaf.value = 5
        assert leaf._ckpt_info.modified

    def test_child_assignment_sets_parent_flag_only(self):
        mid = Mid()
        leaf = Leaf()
        mid._ckpt_info.modified = False
        leaf._ckpt_info.modified = False
        mid.leaf = leaf
        assert mid._ckpt_info.modified
        assert not leaf._ckpt_info.modified  # the child itself is untouched

    def test_read_does_not_set_flag(self):
        leaf = Leaf(value=3)
        leaf._ckpt_info.modified = False
        _ = leaf.value
        _ = leaf.label
        assert not leaf._ckpt_info.modified

    def test_same_value_rewrite_still_sets_flag(self):
        # The framework is conservative, like the paper's: any assignment
        # marks the object; analyses that want tighter flags compare first.
        leaf = Leaf(value=3)
        leaf._ckpt_info.modified = False
        leaf.value = 3
        assert leaf._ckpt_info.modified


class TestTrackedList:
    def _fresh(self):
        mid = Mid()
        mid._ckpt_info.modified = False
        return mid

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda notes: notes.append(1),
            lambda notes: notes.extend([1, 2]),
            lambda notes: notes.insert(0, 9),
            lambda notes: notes.replace([5]),
            lambda notes: notes.clear(),
        ],
    )
    def test_mutations_set_owner_flag(self, mutate):
        mid = self._fresh()
        mutate(mid.notes)
        assert mid._ckpt_info.modified

    def test_item_mutations(self):
        mid = self._fresh()
        mid.notes.extend([1, 2, 3])
        mid._ckpt_info.modified = False
        mid.notes[1] = 9
        assert mid._ckpt_info.modified
        mid._ckpt_info.modified = False
        del mid.notes[0]
        assert mid._ckpt_info.modified
        mid._ckpt_info.modified = False
        assert mid.notes.pop() == 3
        assert mid._ckpt_info.modified
        mid._ckpt_info.modified = False
        mid.notes.remove(9)
        assert mid._ckpt_info.modified
        mid._ckpt_info.modified = False
        mid.notes.append(4)
        mid.notes.append(2)
        mid.notes.sort()
        assert mid._ckpt_info.modified

    def test_reads_do_not_set_flag(self):
        mid = self._fresh()
        mid.notes.extend([3, 1])
        mid._ckpt_info.modified = False
        assert len(mid.notes) == 2
        assert mid.notes[0] == 3
        assert 1 in mid.notes
        assert list(mid.notes) == [3, 1]
        assert mid.notes.as_list() == [3, 1]
        assert not mid._ckpt_info.modified

    def test_equality(self):
        mid = self._fresh()
        mid.notes.extend([1, 2])
        assert mid.notes == [1, 2]
        other = Mid()
        other.notes.extend([1, 2])
        assert mid.notes == other.notes

    def test_assignment_wraps_plain_list(self):
        mid = Mid()
        mid.notes = [4, 5]
        assert isinstance(mid.notes, TrackedList)
        assert mid.notes.as_list() == [4, 5]


class TestSchemaConstruction:
    def test_schema_order_follows_declaration(self):
        names = [spec.name for spec in Root._ckpt_schema]
        assert names == ["name", "mid", "extra", "kids"]

    def test_inherited_fields_come_first(self):
        base = make_class("Base", value=scalar("int"))
        derived = make_class("Derived", (base,), extra=scalar("float"))
        names = [spec.name for spec in derived._ckpt_schema]
        assert names == [[s.name for s in base._ckpt_schema][0], "extra"]

    def test_shadowing_inherited_field_rejected(self):
        base = make_class("Base", value=scalar("int"))
        with pytest.raises(SchemaError, match="shadows"):
            make_class("Derived", (base,), value=scalar("int"))

    def test_underscore_field_rejected(self):
        with pytest.raises(SchemaError, match="underscore"):
            make_class("Bad", _hidden=scalar("int"))

    def test_bad_scalar_kind_rejected(self):
        with pytest.raises(SchemaError, match="scalar kind"):
            scalar("complex")
        with pytest.raises(SchemaError, match="scalar_list kind"):
            scalar_list("complex")

    def test_field_defaults(self):
        leaf = Leaf()
        assert leaf.value == 0
        assert leaf.weight == 0.0
        assert leaf.label == ""
        assert leaf.flag is False
        mid = Mid()
        assert mid.leaf is None
        assert mid.notes.as_list() == []

    def test_unknown_init_kwarg_rejected(self):
        with pytest.raises(SchemaError, match="no checkpointable field"):
            Leaf(nonexistent=1)


class TestFieldSpec:
    def test_spec_metadata(self):
        by_name = {spec.name: spec for spec in Root._ckpt_schema}
        assert by_name["name"].role == "scalar"
        assert by_name["name"].kind == "str"
        assert by_name["mid"].role == "child"
        assert by_name["kids"].role == "child_list"
        assert by_name["mid"].slot == "_f_mid"

    def test_descriptor_outside_class_rejected(self):
        descriptor = scalar("int")
        with pytest.raises(SchemaError):
            descriptor.spec()


def test_build_root_structure():
    root = build_root()
    assert root.mid.leaf.value == 7
    assert root.mid.notes.as_list() == [1, 2, 3]
    assert root.extra.label == "extra"
    assert [k.value for k in root.kids] == [0, 1]
