"""The torn-write recovery matrix (satellite of the fault-injection PR).

A crash can leave the newest epoch file truncated at *any* byte. For
every boundary through the 14-byte header and well into the payload,
``epochs()`` must stop cleanly at the hole — no exception, no stale
``_verified`` cache entry — and ``recover()`` must rebuild exactly the
state of the intact prefix.
"""

import os
import shutil

from repro.core.storage import _HEADER, FileStore
from repro.faults.crashsim import table_fingerprint
from repro.runtime.session import CheckpointSession
from tests.conftest import build_root

EPOCHS = 4


def build_store(directory):
    """A real session history: one full epoch plus three deltas."""
    root = build_root()
    session = CheckpointSession(roots=root, sink=directory)
    session.base()
    for step in range(1, EPOCHS):
        root.mid.leaf.value = step * 11
        root.kids[step % 2].value = step * 7
        session.commit()
    return session


def last_epoch_path(directory):
    return os.path.join(directory, f"epoch-{EPOCHS - 1:06d}.ckpt")


def reference_fingerprint(directory, tmp_path):
    """Fingerprint of recovery over epochs 0..EPOCHS-2 only."""
    prefix_dir = str(tmp_path / "reference-prefix")
    shutil.copytree(directory, prefix_dir)
    os.remove(last_epoch_path(prefix_dir))
    return table_fingerprint(FileStore(prefix_dir).recover())


def test_truncation_at_every_boundary(tmp_path):
    directory = str(tmp_path / "ckpts")
    build_store(directory)
    expected = reference_fingerprint(directory, tmp_path)

    path = last_epoch_path(directory)
    original = open(path, "rb").read()
    size = len(original)
    assert size > _HEADER.size + 32

    # Every header boundary, the first payload bytes, and a spread of
    # positions through the rest of the payload (always < size: a cut at
    # the full size is not a torn write).
    cuts = list(range(0, _HEADER.size + 17))
    cuts += list(range(_HEADER.size + 17, size, max(1, (size - 30) // 16)))
    cuts = sorted({cut for cut in cuts if cut < size})
    assert len(cuts) >= 30

    store = FileStore(directory)
    prefix_indices = list(range(EPOCHS - 1))
    for cut in cuts:
        # Warm the cache with the intact file, then tear it.
        assert [e.index for e in store.epochs()] == list(range(EPOCHS))
        assert EPOCHS - 1 in store._verified
        with open(path, "rb+") as handle:
            handle.truncate(cut)

        survivors = store.epochs()
        assert [e.index for e in survivors] == prefix_indices, (
            f"cut at byte {cut} did not stop at the hole"
        )
        # The stale cache entry for the torn epoch must be gone.
        assert EPOCHS - 1 not in store._verified, f"stale cache at cut {cut}"

        recovered = store.recover()
        assert table_fingerprint(recovered) == expected, (
            f"cut at byte {cut} recovered divergent state"
        )

        # Heal the file for the next round; the cache must re-verify.
        with open(path, "wb") as handle:
            handle.write(original)


def test_truncated_middle_epoch_strands_the_tail(tmp_path):
    directory = str(tmp_path / "ckpts")
    build_store(directory)
    middle = os.path.join(directory, "epoch-000001.ckpt")
    with open(middle, "rb+") as handle:
        handle.truncate(7)
    store = FileStore(directory)
    assert [e.index for e in store.epochs()] == [0]
    # Recovery still works from the surviving base.
    assert store.recover() is not None


def test_empty_epoch_file_is_a_clean_stop(tmp_path):
    directory = str(tmp_path / "ckpts")
    build_store(directory)
    with open(last_epoch_path(directory), "wb"):
        pass  # zero bytes
    store = FileStore(directory)
    assert [e.index for e in store.epochs()] == list(range(EPOCHS - 1))
