"""ReplicatedStore: quorum writes, checksums, breaker, scrub, Scrubber."""

import threading

import pytest

from repro.core.errors import StorageError
from repro.core.replica import (
    FENCED,
    HEALTHY,
    SUSPECT,
    ChecksumError,
    ReplicatedStore,
    ScrubReport,
    Scrubber,
    frame_record,
    is_framed,
    unframe_record,
)
from repro.core.storage import (
    FULL,
    INCREMENTAL,
    BackgroundWriter,
    FileStore,
    MemoryStore,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import MemoryExporter, Tracer


class _DeadStore(MemoryStore):
    """A replica whose volume is gone: every operation raises OSError."""

    def __init__(self, dead=True):
        super().__init__()
        self.dead = dead

    def _check(self):
        if self.dead:
            raise OSError("volume pulled")

    def append(self, kind, data, **lineage):
        self._check()
        return super().append(kind, data, **lineage)

    def epoch_map(self):
        self._check()
        return super().epoch_map()

    def put_epoch(self, epoch, overwrite=False):
        self._check()
        return super().put_epoch(epoch, overwrite=overwrite)

    def quarantine_epoch(self, index, reason=""):
        self._check()
        return super().quarantine_epoch(index, reason)


def three_way(**kwargs):
    return ReplicatedStore(
        [MemoryStore(), MemoryStore(), MemoryStore()], **kwargs
    )


class TestFraming:
    def test_roundtrip(self):
        framed = frame_record(b"payload bytes")
        assert is_framed(framed)
        assert unframe_record(framed) == b"payload bytes"

    def test_unframed_rejected(self):
        with pytest.raises(ChecksumError):
            unframe_record(b"no header here")

    def test_corrupted_payload_rejected(self):
        framed = bytearray(frame_record(b"payload bytes"))
        framed[-1] ^= 0xFF
        with pytest.raises(ChecksumError):
            unframe_record(bytes(framed))

    def test_corrupted_digest_rejected(self):
        framed = bytearray(frame_record(b"payload bytes"))
        framed[10] ^= 0xFF  # inside the digest
        with pytest.raises(ChecksumError):
            unframe_record(bytes(framed))


class TestQuorumWrites:
    def test_append_fans_out_to_every_replica(self):
        store = three_way()
        assert store.append(FULL, b"base") == 0
        assert store.append(INCREMENTAL, b"delta") == 1
        for rep in store.replica_status():
            assert rep["acks"] == 2
        # the children hold framed records; the front unframes them
        epochs = store.epochs()
        assert [e.data for e in epochs] == [b"base", b"delta"]

    def test_children_store_framed_records(self):
        children = [MemoryStore(), MemoryStore(), MemoryStore()]
        store = ReplicatedStore(children)
        store.append(FULL, b"base")
        for child in children:
            raw = child.epoch_map()[0].data
            assert is_framed(raw)
            assert unframe_record(raw) == b"base"

    def test_default_quorum_is_majority(self):
        assert three_way().quorum == 2
        assert ReplicatedStore([MemoryStore()] * 5).quorum == 3

    def test_quorum_bounds_validated(self):
        with pytest.raises(StorageError):
            three_way(quorum=4)
        with pytest.raises(StorageError):
            three_way(quorum=0)
        with pytest.raises(StorageError):
            ReplicatedStore([])

    def test_commit_survives_one_dead_replica(self):
        store = ReplicatedStore([MemoryStore(), MemoryStore(), _DeadStore()])
        assert store.append(FULL, b"base") == 0
        last = store.last_commit
        assert last["acked"] == ["r0", "r1"]
        assert "r2" in last["degraded"]
        assert store.durability() == "quorum"

    def test_quorum_loss_raises(self):
        store = ReplicatedStore([MemoryStore(), _DeadStore(), _DeadStore()])
        with pytest.raises(StorageError, match="write quorum lost"):
            store.append(FULL, b"base")
        assert store.last_commit["index"] is None

    def test_all_ack_quorum_fails_on_single_death(self):
        store = ReplicatedStore(
            [MemoryStore(), MemoryStore(), _DeadStore()], quorum=3
        )
        with pytest.raises(StorageError, match="write quorum lost"):
            store.append(FULL, b"base")

    def test_durability_is_durable_when_all_ack(self):
        store = three_way()
        store.append(FULL, b"base")
        assert store.durability() == "durable"

    def test_invalid_kind_rejected(self):
        with pytest.raises(StorageError, match="unknown checkpoint kind"):
            three_way().append("exotic", b"x")


class TestQuorumReads:
    def test_divergent_copy_is_outvoted(self):
        children = [MemoryStore(), MemoryStore(), MemoryStore()]
        store = ReplicatedStore(children)
        store.append(FULL, b"base")
        store.append(INCREMENTAL, b"delta")
        # silently diverge one replica's record *through its framing*
        epoch = children[1].epoch_map()[1]
        rotten = bytearray(epoch.data)
        rotten[-1] ^= 0xFF
        children[1].put_epoch(epoch._replace(data=bytes(rotten)), overwrite=True)
        assert [e.data for e in store.epochs()] == [b"base", b"delta"]

    def test_chain_stops_at_first_unreadable_index(self):
        children = [MemoryStore(), MemoryStore(), MemoryStore()]
        store = ReplicatedStore(children)
        store.append(FULL, b"base")
        store.append(INCREMENTAL, b"delta")
        store.append(INCREMENTAL, b"tail")
        for child in children:
            epoch = child.epoch_map()[1]
            bad = bytearray(epoch.data)
            bad[-1] ^= 0xFF
            child.put_epoch(epoch._replace(data=bytes(bad)), overwrite=True)
        # index 1 has no checksum-valid copy anywhere: prefix semantics
        assert [e.data for e in store.epochs()] == [b"base"]

    def test_epoch_map_returns_unframed_quorum_view(self):
        store = three_way()
        store.append(FULL, b"base")
        store.append(INCREMENTAL, b"delta")
        mapping = store.epoch_map()
        assert mapping[0].data == b"base"
        assert mapping[1].data == b"delta"


class TestBreaker:
    def test_suspect_then_fence_then_probe_heals(self):
        dead = _DeadStore()
        store = ReplicatedStore(
            [MemoryStore(), MemoryStore(), dead],
            suspect_after=1,
            fence_after=2,
            probe_after=2,
            probe_jitter=0,
        )
        store.append(FULL, b"e0")
        states = {s["name"]: s for s in store.replica_status()}
        assert states["r2"]["state"] == SUSPECT
        store.append(INCREMENTAL, b"e1")
        states = {s["name"]: s for s in store.replica_status()}
        assert states["r2"]["state"] == FENCED
        assert states["r2"]["fences"] == 1
        # fenced: skipped while the probe countdown runs
        store.append(INCREMENTAL, b"e2")
        dead.dead = False  # the volume comes back
        store.append(INCREMENTAL, b"e3")  # probe fires here
        states = {s["name"]: s for s in store.replica_status()}
        assert states["r2"]["state"] == HEALTHY
        # the probe caught the replica up before handing it the append
        assert len(dead.epochs()) == 4
        assert [unframe_record(e.data) for e in dead.epochs()] == [
            b"e0", b"e1", b"e2", b"e3",
        ]

    def test_failed_probe_rearms_countdown(self):
        dead = _DeadStore()
        store = ReplicatedStore(
            [MemoryStore(), MemoryStore(), dead],
            suspect_after=1,
            fence_after=1,
            probe_after=1,
            probe_jitter=0,
        )
        store.append(FULL, b"e0")  # fence immediately
        store.append(INCREMENTAL, b"e1")  # probe, fails, re-arms
        states = {s["name"]: s for s in store.replica_status()}
        assert states["r2"]["state"] == FENCED
        assert states["r2"]["probe_in"] == 1

    def test_fenced_replica_never_blocks_commits(self):
        store = ReplicatedStore(
            [MemoryStore(), MemoryStore(), _DeadStore()],
            fence_after=1,
        )
        for step in range(10):
            kind = FULL if step == 0 else INCREMENTAL
            assert store.append(kind, b"x%d" % step) == step
        assert len(store.epochs()) == 10


class TestScrub:
    def test_scrub_clean_store(self):
        store = three_way()
        store.append(FULL, b"base")
        report = store.scrub()
        assert report.clean and report.healed
        assert report.epochs_checked == 1

    def test_scrub_repairs_divergence_and_quarantines(self):
        children = [MemoryStore(), MemoryStore(), MemoryStore()]
        store = ReplicatedStore(children)
        store.append(FULL, b"base")
        store.append(INCREMENTAL, b"delta")
        epoch = children[2].epoch_map()[1]
        bad = bytearray(epoch.data)
        bad[-2] ^= 0xFF
        children[2].put_epoch(epoch._replace(data=bytes(bad)), overwrite=True)
        report = store.scrub()
        assert not report.clean and report.healed
        assert report.repaired == [
            {"replica": "r2", "index": 1, "action": "replaced"}
        ]
        assert len(report.quarantined) == 1  # copied aside, never deleted
        assert children[2].quarantined[0][0] == 1
        # post-repair: byte-identical records everywhere
        assert (
            children[2].epoch_map()[1].data == children[0].epoch_map()[1].data
        )

    def test_scrub_copies_missing_epochs(self):
        children = [MemoryStore(), MemoryStore(), MemoryStore()]
        store = ReplicatedStore(children)
        store.append(FULL, b"base")
        fresh = MemoryStore()  # an empty replacement volume
        rebuilt = ReplicatedStore([children[0], children[1], fresh])
        report = rebuilt.scrub()
        assert report.repaired == [
            {"replica": "r2", "index": 0, "action": "copied"}
        ]
        assert unframe_record(fresh.epoch_map()[0].data) == b"base"

    def test_scrub_reports_unrepairable(self):
        children = [MemoryStore(), MemoryStore(), MemoryStore()]
        store = ReplicatedStore(children)
        store.append(FULL, b"base")
        for child in children:
            epoch = child.epoch_map()[0]
            bad = bytearray(epoch.data)
            bad[-1] ^= 0xFF
            child.put_epoch(epoch._replace(data=bytes(bad)), overwrite=True)
        report = store.scrub()
        assert report.unrepairable == [0]
        assert not report.healed

    def test_scrub_report_to_dict(self):
        report = ScrubReport(replicas=["r0"], epochs_checked=3)
        data = report.to_dict()
        assert data["clean"] is True
        assert data["healed"] is True


class TestFileStoreReplicas:
    def test_file_and_memory_mix(self, tmp_path):
        children = [
            FileStore(str(tmp_path / "r0")),
            FileStore(str(tmp_path / "r1")),
            MemoryStore(),
        ]
        store = ReplicatedStore(children)
        store.append(FULL, b"base")
        store.append(INCREMENTAL, b"delta")
        assert [e.data for e in store.epochs()] == [b"base", b"delta"]
        # repaired/replicated file stores hold byte-identical files
        a = (tmp_path / "r0" / "epoch-000001.ckpt").read_bytes()
        b = (tmp_path / "r1" / "epoch-000001.ckpt").read_bytes()
        assert a == b

    def test_scrub_quarantines_into_subdirectory(self, tmp_path):
        dirs = [str(tmp_path / f"r{i}") for i in range(3)]
        children = [FileStore(d) for d in dirs]
        store = ReplicatedStore(children)
        store.append(FULL, b"base")
        victim = FileStore(dirs[1])
        epoch = victim.epoch_map()[0]
        bad = bytearray(epoch.data)
        bad[0] ^= 0xFF
        victim.put_epoch(epoch._replace(data=bytes(bad)), overwrite=True)
        rebuilt = ReplicatedStore([FileStore(d) for d in dirs])
        report = rebuilt.scrub()
        assert report.healed and report.repaired
        quarantine = tmp_path / "r1" / "quarantine"
        assert quarantine.is_dir()
        assert list(quarantine.iterdir())  # the divergent record survives

    def test_recover_through_quorum(self, tmp_path):
        from repro.runtime.session import CheckpointSession
        from repro.runtime.sink import StoreSink
        from repro.synthetic.structures import build_structures, element_at

        dirs = [str(tmp_path / f"r{i}") for i in range(3)]
        store = ReplicatedStore([FileStore(d) for d in dirs])
        roots = build_structures(2, 2, 2, 1)
        session = CheckpointSession(roots=roots, sink=StoreSink(store))
        session.base()
        element_at(roots[0], 0, 1).v0 = 4242
        session.commit()
        table = ReplicatedStore([FileStore(d) for d in dirs]).recover()
        values = [
            getattr(table[i], "v0", None)
            for i in sorted(table.ids())
        ]
        assert 4242 in values


class TestObservability:
    def test_events_and_counters(self):
        exporter = MemoryExporter()
        tracer = Tracer([exporter])
        metrics = MetricsRegistry()
        store = ReplicatedStore(
            [MemoryStore(), MemoryStore(), _DeadStore()], fence_after=1
        )
        store.instrument(tracer, metrics)
        store.append(FULL, b"base")
        assert exporter.of_type("replica.append")
        assert exporter.of_type("replica.state")
        counters = metrics.snapshot()["counters"]
        assert counters.get("replica_acks_total{replica=r0}") == 1
        assert counters.get("replica_acks_total{replica=r1}") == 1
        assert (
            counters.get("replica_breaker_transitions_total{replica=r2,to=fenced}")
            == 1
        )

    def test_instrument_only_replaces_defaults(self):
        store = three_way()
        tracer = Tracer([MemoryExporter()])
        metrics = MetricsRegistry()
        store.instrument(tracer, metrics)
        other = Tracer([MemoryExporter()])
        store.instrument(other, MetricsRegistry())
        assert store.tracer is tracer
        assert store.metrics is metrics


class TestScrubber:
    def test_run_once_and_history_bound(self):
        store = three_way()
        store.append(FULL, b"base")
        scrubber = Scrubber(store, keep=2)
        for _ in range(5):
            scrubber.run_once()
        assert scrubber.runs == 5
        assert len(scrubber.reports) == 2

    def test_background_thread_scrubs(self):
        children = [MemoryStore(), MemoryStore(), MemoryStore()]
        store = ReplicatedStore(children)
        store.append(FULL, b"base")
        epoch = children[0].epoch_map()[0]
        bad = bytearray(epoch.data)
        bad[-1] ^= 0xFF
        children[0].put_epoch(epoch._replace(data=bytes(bad)), overwrite=True)
        with Scrubber(store, interval=0.01) as scrubber:
            deadline = threading.Event()
            for _ in range(200):
                if scrubber.runs:
                    break
                deadline.wait(0.01)
        assert scrubber.runs >= 1
        assert (
            children[0].epoch_map()[0].data == children[1].epoch_map()[0].data
        )

    def test_stop_is_idempotent(self):
        scrubber = Scrubber(three_way(), interval=60.0)
        scrubber.start()
        scrubber.stop(timeout=2.0)
        scrubber.stop(timeout=2.0)


class TestLifecycle:
    def test_flush_repairs_behind_replicas(self):
        dead = _DeadStore()
        store = ReplicatedStore(
            [MemoryStore(), MemoryStore(), dead], fence_after=1
        )
        store.append(FULL, b"e0")
        store.append(INCREMENTAL, b"e1")
        dead.dead = False
        store.flush()
        assert len(dead.epochs()) == 2
        states = {s["name"]: s for s in store.replica_status()}
        assert states["r2"]["state"] == HEALTHY

    def test_undurable_counts(self):
        dead = _DeadStore()
        store = ReplicatedStore(
            [MemoryStore(), MemoryStore(), dead], fence_after=1
        )
        store.append(FULL, b"e0")
        store.append(INCREMENTAL, b"e1")
        counts = store.undurable_counts()
        assert counts == {"r0": 0, "r1": 0, "r2": 2}

    def test_background_writer_flush_reaches_children(self):
        store = three_way()
        writer = BackgroundWriter(store)
        try:
            writer.append(FULL, b"base")
            writer.flush(timeout=5.0)
            assert len(store.epochs()) == 1
        finally:
            writer.close(timeout=5.0)

    def test_background_writer_error_names_undurable_replicas(self):
        dead = _DeadStore()
        store = ReplicatedStore(
            [MemoryStore(), MemoryStore(), dead], fence_after=1
        )
        writer = BackgroundWriter(store)
        try:
            writer.append(FULL, b"base")
            writer.flush(timeout=5.0)
        finally:
            writer.close(timeout=5.0)
        # the degraded replica is visible through undurable_counts even
        # though the quorum made the commit itself succeed
        assert store.undurable_counts()["r2"] == 1
