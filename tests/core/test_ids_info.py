"""Unit tests for identifier allocation and CheckpointInfo."""

import threading

from repro.core.ids import DEFAULT_ALLOCATOR, IdAllocator
from repro.core.info import CheckpointInfo


class TestIdAllocator:
    def test_monotonic(self):
        allocator = IdAllocator()
        ids = [allocator.allocate() for _ in range(100)]
        assert ids == sorted(ids)
        assert len(set(ids)) == 100
        assert allocator.last_allocated == ids[-1]

    def test_reset(self):
        allocator = IdAllocator(start=10)
        assert allocator.allocate() == 10
        allocator.reset(start=100)
        assert allocator.allocate() == 100

    def test_advance_past(self):
        allocator = IdAllocator()
        allocator.allocate()
        allocator.advance_past(500)
        assert allocator.allocate() == 501

    def test_advance_past_smaller_is_noop(self):
        allocator = IdAllocator(start=1000)
        allocator.allocate()
        allocator.advance_past(5)
        assert allocator.allocate() == 1001

    def test_thread_safety(self):
        allocator = IdAllocator()
        collected = []
        lock = threading.Lock()

        def worker():
            local = [allocator.allocate() for _ in range(500)]
            with lock:
                collected.extend(local)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(set(collected)) == 4000


class TestCheckpointInfo:
    def test_fresh_info_is_modified(self):
        info = CheckpointInfo()
        assert info.modified  # a new object must appear in the next checkpoint

    def test_explicit_id(self):
        info = CheckpointInfo(object_id=42, modified=False)
        assert info.object_id == 42
        assert not info.modified

    def test_paper_interface(self):
        info = CheckpointInfo()
        info.reset_modified()
        assert not info.modified
        info.set_modified()
        assert info.modified

    def test_allocates_from_default_allocator(self):
        before = DEFAULT_ALLOCATOR.last_allocated
        info = CheckpointInfo()
        assert info.object_id > before

    def test_custom_allocator(self):
        allocator = IdAllocator(start=7000)
        info = CheckpointInfo(allocator=allocator)
        assert info.object_id == 7000
