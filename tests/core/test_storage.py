"""Unit tests for the durable checkpoint stores (incl. failure injection)."""

import json
import os

import pytest

from repro.core.checkpoint import Checkpoint, FullCheckpoint
from repro.core.errors import StorageError
from repro.core.restore import structurally_equal
from repro.core.storage import FULL, INCREMENTAL, FileStore, MemoryStore
from tests.conftest import build_root


def _persist_history(store):
    """Build a root, persist a base + two deltas; returns the live root."""
    root = build_root()
    base = FullCheckpoint()
    base.checkpoint(root)
    store.append(FULL, base.getvalue())
    root.mid.leaf.value = 77
    delta = Checkpoint()
    delta.checkpoint(root)
    store.append(INCREMENTAL, delta.getvalue())
    root.extra.label = "patched"
    delta = Checkpoint()
    delta.checkpoint(root)
    store.append(INCREMENTAL, delta.getvalue())
    return root


class TestMemoryStore:
    def test_append_and_recover(self):
        store = MemoryStore()
        root = _persist_history(store)
        recovered = store.recover()[root._ckpt_info.object_id]
        assert recovered.mid.leaf.value == 77
        assert recovered.extra.label == "patched"
        assert structurally_equal(root, recovered, compare_ids=True)

    def test_epoch_indices(self):
        store = MemoryStore()
        _persist_history(store)
        assert [e.index for e in store.epochs()] == [0, 1, 2]
        assert [e.kind for e in store.epochs()] == [FULL, INCREMENTAL, INCREMENTAL]

    def test_unknown_kind_rejected(self):
        with pytest.raises(StorageError):
            MemoryStore().append("bogus", b"")

    def test_recover_without_full_raises(self):
        store = MemoryStore()
        store.append(INCREMENTAL, b"")
        with pytest.raises(StorageError, match="no full checkpoint"):
            store.recover()

    def test_recovery_line_starts_at_latest_full(self):
        store = MemoryStore()
        _persist_history(store)
        root = build_root()
        base = FullCheckpoint()
        base.checkpoint(root)
        store.append(FULL, base.getvalue())
        line = store.recovery_line()
        assert [e.index for e in line] == [3]


class TestFileStore:
    def test_roundtrip(self, tmp_path):
        store = FileStore(str(tmp_path / "ckpt"))
        root = _persist_history(store)
        fresh = FileStore(str(tmp_path / "ckpt"))
        recovered = fresh.recover()[root._ckpt_info.object_id]
        assert structurally_equal(root, recovered, compare_ids=True)

    def test_manifest_written(self, tmp_path):
        store = FileStore(str(tmp_path / "ckpt"))
        _persist_history(store)
        with open(store.manifest_path) as handle:
            manifest = json.load(handle)
        assert manifest["format_version"] == 2
        assert any(name.endswith("Root") or "Root" in name for name in manifest["classes"])
        # manifest v2 carries the lineage map, one entry per epoch
        assert set(manifest["lineage"]) == {"0", "1", "2"}
        assert manifest["lineage"]["1"]["parent"] == 0
        assert manifest["lineage"]["1"]["branch"] == "main"

    def test_torn_tail_discarded(self, tmp_path):
        store = FileStore(str(tmp_path / "ckpt"))
        root = _persist_history(store)
        # Simulate a crash mid-write of epoch 3.
        with open(os.path.join(store.directory, "epoch-000003.ckpt"), "wb") as fh:
            fh.write(b"RCKP\x01\x00\x10")
        fresh = FileStore(store.directory)
        assert len(fresh.epochs()) == 3
        recovered = fresh.recover()[root._ckpt_info.object_id]
        assert recovered.extra.label == "patched"

    def test_corrupt_payload_ends_sequence(self, tmp_path):
        store = FileStore(str(tmp_path / "ckpt"))
        _persist_history(store)
        path = os.path.join(store.directory, "epoch-000001.ckpt")
        data = bytearray(open(path, "rb").read())
        data[-1] ^= 0xFF  # flip a payload bit -> CRC mismatch
        with open(path, "wb") as fh:
            fh.write(data)
        fresh = FileStore(store.directory)
        # Epoch 1 is bad; 2 cannot be applied over a hole: only epoch 0 left.
        assert [e.index for e in fresh.epochs()] == [0]

    def test_bad_magic_rejected(self, tmp_path):
        store = FileStore(str(tmp_path / "ckpt"))
        _persist_history(store)
        path = os.path.join(store.directory, "epoch-000000.ckpt")
        data = bytearray(open(path, "rb").read())
        data[:4] = b"XXXX"
        with open(path, "wb") as fh:
            fh.write(data)
        assert FileStore(store.directory).epochs() == []

    def test_append_continues_numbering(self, tmp_path):
        store = FileStore(str(tmp_path / "ckpt"))
        _persist_history(store)
        fresh = FileStore(store.directory)
        index = fresh.append(INCREMENTAL, b"")
        assert index == 3

    def test_missing_manifest_raises_on_recover(self, tmp_path):
        store = FileStore(str(tmp_path / "ckpt"))
        _persist_history(store)
        os.remove(store.manifest_path)
        with pytest.raises(StorageError, match="missing manifest"):
            FileStore(store.directory).recover()

    def test_corrupt_manifest_raises(self, tmp_path):
        store = FileStore(str(tmp_path / "ckpt"))
        _persist_history(store)
        with open(store.manifest_path, "w") as fh:
            fh.write("{not json")
        with pytest.raises(StorageError, match="corrupt manifest"):
            FileStore(store.directory).recover()

    def test_stray_files_ignored(self, tmp_path):
        store = FileStore(str(tmp_path / "ckpt"))
        _persist_history(store)
        open(os.path.join(store.directory, "epoch-junk.ckpt"), "w").close()
        open(os.path.join(store.directory, "README"), "w").close()
        assert len(FileStore(store.directory).epochs()) == 3


class TestCompressedFileStore:
    def test_roundtrip_with_compression(self, tmp_path):
        store = FileStore(str(tmp_path / "ckpt"), compress=True)
        root = _persist_history(store)
        fresh = FileStore(str(tmp_path / "ckpt"))  # reader needs no flag
        recovered = fresh.recover()[root._ckpt_info.object_id]
        assert structurally_equal(root, recovered, compare_ids=True)

    def test_compression_shrinks_redundant_epochs(self, tmp_path):
        import os

        plain_dir = str(tmp_path / "plain")
        packed_dir = str(tmp_path / "packed")
        _persist_history(FileStore(plain_dir))
        _persist_history(FileStore(packed_dir, compress=True))

        def total(directory):
            return sum(
                os.path.getsize(os.path.join(directory, name))
                for name in os.listdir(directory)
                if name.endswith(".ckpt")
            )

        assert total(packed_dir) < total(plain_dir)

    def test_mixed_plain_and_compressed_chain(self, tmp_path):
        directory = str(tmp_path / "ckpt")
        plain = FileStore(directory)
        root = _persist_history(plain)  # plain epochs 0-2
        packed = FileStore(directory, compress=True)
        root.mid.leaf.value = 4242
        delta = Checkpoint()
        delta.checkpoint(root)
        packed.append(INCREMENTAL, delta.getvalue())  # compressed epoch 3
        recovered = FileStore(directory).recover()[root._ckpt_info.object_id]
        assert recovered.mid.leaf.value == 4242

    def test_corrupt_compressed_payload_rejected(self, tmp_path):
        import os
        import struct
        import zlib as _zlib

        store = FileStore(str(tmp_path / "ckpt"), compress=True)
        _persist_history(store)
        # Craft a frame whose CRC matches garbage that fails to inflate.
        garbage = b"not-deflate-data"
        header = struct.pack(
            "<4sBBII", b"RCKP", 1, 2, len(garbage), _zlib.crc32(garbage)
        )
        with open(os.path.join(store.directory, "epoch-000001.ckpt"), "wb") as fh:
            fh.write(header + garbage)
        fresh = FileStore(store.directory)
        assert [e.index for e in fresh.epochs()] == [0]


class TestFileStoreEpochCache:
    """epochs() must verify each epoch file at most once per content."""

    @staticmethod
    def _count_reads(monkeypatch):
        calls = {"n": 0}
        original = FileStore._read_epoch

        def counting(path):
            calls["n"] += 1
            return original(path)

        monkeypatch.setattr(FileStore, "_read_epoch", staticmethod(counting))
        return calls

    def test_repeated_epochs_read_each_file_once(self, tmp_path, monkeypatch):
        directory = str(tmp_path / "ckpt")
        _persist_history(FileStore(directory))
        reader = FileStore(directory)  # cold cache: knows nothing yet
        calls = self._count_reads(monkeypatch)
        first = reader.epochs()
        assert calls["n"] == 3
        second = reader.epochs()
        assert calls["n"] == 3  # all served from the verified cache
        assert second == first

    def test_writer_never_rereads_own_appends(self, tmp_path, monkeypatch):
        calls = self._count_reads(monkeypatch)
        store = FileStore(str(tmp_path / "ckpt"))
        root = _persist_history(store)
        epochs = store.epochs()
        assert calls["n"] == 0  # appends seeded the cache
        assert [e.kind for e in epochs] == [FULL, INCREMENTAL, INCREMENTAL]
        recovered = store.recover()[root._ckpt_info.object_id]
        assert structurally_equal(root, recovered, compare_ids=True)
        assert calls["n"] == 0

    def test_only_new_files_are_scanned(self, tmp_path, monkeypatch):
        directory = str(tmp_path / "ckpt")
        _persist_history(FileStore(directory))
        reader = FileStore(directory)
        reader.epochs()  # warm the cache on epochs 0-2
        writer = FileStore(directory)  # second handle appends epoch 3
        writer.append(INCREMENTAL, b"")
        calls = self._count_reads(monkeypatch)
        assert [e.index for e in reader.epochs()] == [0, 1, 2, 3]
        assert calls["n"] == 1  # only the new file was read

    def test_cached_payload_is_decompressed(self, tmp_path):
        store = FileStore(str(tmp_path / "ckpt"), compress=True)
        root = _persist_history(store)
        cold = FileStore(store.directory)
        assert store.epochs() == cold.epochs()
        recovered = store.recover()[root._ckpt_info.object_id]
        assert structurally_equal(root, recovered, compare_ids=True)

    def test_external_change_invalidates_entry(self, tmp_path):
        directory = str(tmp_path / "ckpt")
        store = FileStore(directory)
        _persist_history(store)
        assert len(store.epochs()) == 3  # cache is warm
        # Another process truncates the last epoch mid-write.
        path = os.path.join(directory, "epoch-000002.ckpt")
        with open(path, "wb") as handle:
            handle.write(b"RCKP")
        assert [e.index for e in store.epochs()] == [0, 1]

    def test_deleted_files_are_dropped_from_cache(self, tmp_path):
        directory = str(tmp_path / "ckpt")
        store = FileStore(directory)
        _persist_history(store)
        store.epochs()
        os.remove(os.path.join(directory, "epoch-000001.ckpt"))
        os.remove(os.path.join(directory, "epoch-000002.ckpt"))
        assert [e.index for e in store.epochs()] == [0]
        assert set(store._verified) == {0}

    def test_compaction_with_warm_cache(self, tmp_path):
        from repro.core.storage import compact

        directory = str(tmp_path / "ckpt")
        store = FileStore(directory)
        root = _persist_history(store)
        store.epochs()  # warm
        new_base = compact(store)
        epochs = store.epochs()
        assert [e.index for e in epochs] == [new_base]
        assert epochs[0].kind == FULL
        recovered = store.recover()[root._ckpt_info.object_id]
        assert structurally_equal(root, recovered, compare_ids=True)


class TestNextIndexCache:
    """Appends must not rescan the directory per epoch (was O(n²))."""

    def test_directory_scanned_once_across_appends(self, tmp_path, monkeypatch):
        import repro.core.storage as storage_module

        store = FileStore(str(tmp_path / "ckpt"))
        real_listdir = os.listdir
        calls = []

        def counting_listdir(path):
            calls.append(path)
            return real_listdir(path)

        monkeypatch.setattr(storage_module.os, "listdir", counting_listdir)
        for index in range(20):
            assert store.append(INCREMENTAL, b"x") == index
        # One scan to seat the counter; every later append uses the cache.
        scans = [path for path in calls if path == store.directory]
        assert len(scans) <= 1

    def test_cache_survives_compaction(self, tmp_path):
        from repro.core.storage import compact

        store = FileStore(str(tmp_path / "ckpt"))
        _persist_history(store)
        new_base = compact(store)  # removes epochs below the new base
        assert store.append(INCREMENTAL, b"after") == new_base + 1

    def test_fresh_store_continues_the_sequence(self, tmp_path):
        directory = str(tmp_path / "ckpt")
        first = FileStore(directory)
        first.append(FULL, b"a")
        first.append(INCREMENTAL, b"b")
        second = FileStore(directory)
        assert second.append(INCREMENTAL, b"c") == 2


class TestOrphanQuarantine:
    """Stranded ``*.tmp`` files are moved aside when the store opens."""

    def test_orphan_tmp_quarantined_on_init(self, tmp_path):
        directory = str(tmp_path / "ckpt")
        os.makedirs(directory)
        orphan = os.path.join(directory, "epoch-000004.ckpt.tmp")
        open(orphan, "wb").write(b"partial write")
        store = FileStore(directory)
        assert not os.path.exists(orphan)
        moved = os.path.join(store.quarantine_dir, "epoch-000004.ckpt.tmp")
        assert os.path.exists(moved)
        assert store.quarantined == [moved]
        assert open(moved, "rb").read() == b"partial write"

    def test_quarantine_collisions_get_suffixes(self, tmp_path):
        directory = str(tmp_path / "ckpt")
        os.makedirs(directory)
        name = "epoch-000001.ckpt.tmp"
        open(os.path.join(directory, name), "wb").write(b"first")
        FileStore(directory)
        open(os.path.join(directory, name), "wb").write(b"second")
        store = FileStore(directory)
        quarantined = sorted(os.listdir(store.quarantine_dir))
        assert quarantined == [name, f"{name}.0"]

    def test_clean_directory_gets_no_quarantine_dir(self, tmp_path):
        store = FileStore(str(tmp_path / "ckpt"))
        store.append(FULL, b"x")
        assert not os.path.exists(store.quarantine_dir)
        assert store.quarantined == []

    def test_quarantined_orphans_do_not_shadow_epochs(self, tmp_path):
        directory = str(tmp_path / "ckpt")
        store = FileStore(directory)
        store.append(FULL, b"base")
        open(os.path.join(directory, "epoch-000001.ckpt.tmp"), "wb").write(
            b"torn"
        )
        reopened = FileStore(directory)
        # The orphan index is reusable: nothing durable occupies it.
        assert reopened.append(INCREMENTAL, b"delta") == 1
        assert [e.data for e in reopened.epochs()] == [b"base", b"delta"]
