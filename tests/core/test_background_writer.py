"""Unit tests for the asynchronous stable-storage writer."""

import threading
import time

import pytest

from repro.core.checkpoint import Checkpoint, FullCheckpoint
from repro.core.errors import StorageError
from repro.core.restore import structurally_equal
from repro.core.storage import (
    FULL,
    INCREMENTAL,
    BackgroundWriter,
    FileStore,
    MemoryStore,
)
from tests.conftest import build_root


class _FailingStore(MemoryStore):
    def __init__(self, fail_on: int) -> None:
        super().__init__()
        self._fail_on = fail_on
        self._calls = 0

    def append(self, kind, data):
        self._calls += 1
        if self._calls == self._fail_on:
            raise OSError("disk full")
        return super().append(kind, data)


class _SlowStore(MemoryStore):
    def append(self, kind, data):
        time.sleep(0.01)
        return super().append(kind, data)


class TestBackgroundWriter:
    def test_epochs_written_in_order(self):
        backing = MemoryStore()
        with BackgroundWriter(backing) as writer:
            writer.append(FULL, b"base")
            writer.append(INCREMENTAL, b"d1")
            writer.append(INCREMENTAL, b"d2")
            writer.flush()
            assert [(e.kind, e.data) for e in backing.epochs()] == [
                (FULL, b"base"),
                (INCREMENTAL, b"d1"),
                (INCREMENTAL, b"d2"),
            ]

    def test_append_does_not_block_on_slow_store(self):
        backing = _SlowStore()
        with BackgroundWriter(backing) as writer:
            start = time.perf_counter()
            for _ in range(5):
                writer.append(INCREMENTAL, b"x" * 1000)
            queued_in = time.perf_counter() - start
            writer.flush()
        # Five 10ms writes would block 50ms synchronously.
        assert queued_in < 0.04
        assert len(backing.epochs()) == 5

    def test_write_failure_surfaces(self):
        writer = BackgroundWriter(_FailingStore(fail_on=2))
        writer.append(FULL, b"ok")
        writer.append(INCREMENTAL, b"boom")
        with pytest.raises(StorageError, match="disk full"):
            writer.flush()
        writer.close()

    def test_closed_writer_rejects_appends(self):
        writer = BackgroundWriter(MemoryStore())
        writer.close()
        with pytest.raises(StorageError, match="closed"):
            writer.append(FULL, b"")

    def test_close_is_idempotent(self):
        writer = BackgroundWriter(MemoryStore())
        writer.close()
        writer.close()

    def test_unknown_kind_rejected_synchronously(self):
        with BackgroundWriter(MemoryStore()) as writer:
            with pytest.raises(StorageError, match="unknown checkpoint kind"):
                writer.append("bogus", b"")

    def test_recover_flushes_first(self):
        root = build_root()
        base = FullCheckpoint()
        base.checkpoint(root)
        backing = MemoryStore()
        with BackgroundWriter(backing) as writer:
            writer.append(FULL, base.getvalue())
            root.mid.leaf.value = 9
            delta = Checkpoint()
            delta.checkpoint(root)
            writer.append(INCREMENTAL, delta.getvalue())
            table = writer.recover()  # implicit flush
            recovered = table[root._ckpt_info.object_id]
            assert structurally_equal(root, recovered, compare_ids=True)

    def test_file_backed_end_to_end(self, tmp_path):
        root = build_root()
        base = FullCheckpoint()
        base.checkpoint(root)
        with BackgroundWriter(FileStore(str(tmp_path / "ckpt"))) as writer:
            writer.append(FULL, base.getvalue())
            writer.flush()
        fresh = FileStore(str(tmp_path / "ckpt"))
        recovered = fresh.recover()[root._ckpt_info.object_id]
        assert structurally_equal(root, recovered, compare_ids=True)

    def test_concurrent_producers(self):
        backing = MemoryStore()
        with BackgroundWriter(backing, max_queued=8) as writer:
            errors = []

            def produce(tag):
                try:
                    for i in range(20):
                        writer.append(INCREMENTAL, f"{tag}-{i}".encode())
                except BaseException as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [
                threading.Thread(target=produce, args=(t,)) for t in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            writer.flush()
            assert not errors
            assert len(backing.epochs()) == 80


class _GatedFailingStore(MemoryStore):
    """Blocks every append on a gate; fails on the Nth call once released.

    Lets a test queue a known number of epochs *behind* the failing write
    before the writer thread processes any of them.
    """

    def __init__(self, fail_on: int) -> None:
        super().__init__()
        self.gate = threading.Event()
        self._fail_on = fail_on
        self._calls = 0

    def append(self, kind, data):
        assert self.gate.wait(5), "test gate never released"
        self._calls += 1
        if self._calls == self._fail_on:
            raise OSError("disk full")
        return super().append(kind, data)


class TestBackgroundWriterFailStop:
    def test_failure_mid_queue_counts_discarded_epochs(self):
        backing = _GatedFailingStore(fail_on=2)
        writer = BackgroundWriter(backing)
        for i in range(5):  # epoch 0 writes, 1 fails, 2-4 must be discarded
            writer.append(INCREMENTAL, b"epoch-%d" % i)
        backing.gate.set()
        with pytest.raises(StorageError, match=r"disk full.*3 queued epoch"):
            writer.flush()
        assert writer.dropped == 3
        writer.close()

    def test_nothing_written_past_the_hole(self):
        backing = _GatedFailingStore(fail_on=2)
        writer = BackgroundWriter(backing)
        for i in range(5):
            writer.append(INCREMENTAL, b"epoch-%d" % i)
        backing.gate.set()
        with pytest.raises(StorageError):
            writer.flush()
        # Only the pre-failure epoch is durable: an epoch written past the
        # failed one could never participate in a recovery line.
        assert [e.data for e in backing.epochs()] == [b"epoch-0"]
        writer.close()

    def test_append_raises_permanently_after_failure(self):
        writer = BackgroundWriter(_FailingStore(fail_on=1))
        writer.append(FULL, b"boom")
        writer._idle.wait(5)  # let the writer thread hit the failure
        with pytest.raises(StorageError, match="disk full"):
            writer.append(FULL, b"after")
        with pytest.raises(StorageError, match="disk full"):
            writer.append(FULL, b"after-again")
        writer.close()  # append already reported the error: close is clean

    def test_close_surfaces_failure_and_stops_thread(self):
        writer = BackgroundWriter(_FailingStore(fail_on=1))
        writer.append(FULL, b"boom")
        with pytest.raises(StorageError, match="disk full"):
            writer.close()
        assert not writer._thread.is_alive()
        writer.close()  # idempotent even after a surfaced failure

    def test_flush_then_close_raises_once(self):
        writer = BackgroundWriter(_FailingStore(fail_on=1))
        writer.append(FULL, b"boom")
        with pytest.raises(StorageError, match="disk full"):
            writer.flush()
        writer.close()  # error already surfaced: shutdown is clean
        assert not writer._thread.is_alive()


class _TransientStore(MemoryStore):
    """Every epoch's first ``failures`` append attempts raise OSError."""

    def __init__(self, failures: int = 2) -> None:
        super().__init__()
        self._failures = failures
        self._seen: dict = {}

    def append(self, kind, data):
        count = self._seen.get(data, 0)
        if count < self._failures:
            self._seen[data] = count + 1
            raise OSError(f"transient glitch {count + 1}")
        return super().append(kind, data)


class TestBackgroundWriterRetry:
    def test_transient_faults_lose_no_acknowledged_epochs(self):
        from repro.core.retry import RetryPolicy

        backing = _TransientStore(failures=2)
        writer = BackgroundWriter(
            backing, retry=RetryPolicy(max_attempts=4, base_delay=0.0)
        )
        payloads = [b"epoch-%d" % i for i in range(5)]
        for payload in payloads:
            writer.append(INCREMENTAL, payload)
        writer.flush()
        writer.close()
        assert [e.data for e in backing.epochs()] == payloads
        assert writer.dropped == 0
        assert writer.retry_stats.retries == 10  # 2 per epoch

    def test_exhausted_retry_is_still_fail_stop(self):
        from repro.core.retry import RetryPolicy

        backing = _TransientStore(failures=99)
        writer = BackgroundWriter(
            backing, retry=RetryPolicy(max_attempts=2, base_delay=0.0)
        )
        writer.append(INCREMENTAL, b"doomed")
        writer.append(INCREMENTAL, b"behind")
        with pytest.raises(StorageError, match="transient glitch"):
            writer.flush()
        assert backing.epochs() == []
        writer.close()

    def test_without_retry_first_transient_is_fatal(self):
        writer = BackgroundWriter(_TransientStore(failures=1))
        writer.append(INCREMENTAL, b"one-shot")
        with pytest.raises(StorageError, match="transient glitch"):
            writer.flush()
        writer.close()


@pytest.mark.filterwarnings(
    "ignore::pytest.PytestUnhandledThreadExceptionWarning"
)
class TestBackgroundWriterDegradation:
    """The writer *thread* dying must degrade, never silently drop.

    Each test kills the drain thread on purpose, so the unhandled-thread
    -exception warning is the expected signal, not a defect.
    """

    def kill_thread(self, writer):
        # An unpackable queue item escapes the drain loop's guarded
        # region, which is exactly the "writer thread died on a bug"
        # failure mode degradation exists for.
        writer._queue.put("garbage")
        writer._thread.join(5)
        assert not writer._thread.is_alive()

    def test_appends_degrade_to_synchronous_writes(self):
        backing = MemoryStore()
        writer = BackgroundWriter(backing)
        self.kill_thread(writer)
        index = writer.append(INCREMENTAL, b"sync-epoch")
        assert index == 0  # the real backing index, not a queue position
        assert writer.degraded
        assert writer.sync_writes == 1
        assert writer.degradation_events
        assert [e.data for e in backing.epochs()] == [b"sync-epoch"]
        writer.close()

    def test_queued_epochs_are_adopted_not_dropped(self):
        backing = _GatedFailingStore(fail_on=-1)  # gate only, never fails
        writer = BackgroundWriter(backing)
        writer.append(INCREMENTAL, b"a")  # thread takes it, blocks on gate
        writer._queue.put("garbage")  # thread will die after writing "a"
        writer.append(INCREMENTAL, b"b")
        writer.append(INCREMENTAL, b"c")
        backing.gate.set()
        writer._thread.join(5)
        assert not writer._thread.is_alive()
        writer.flush()  # adopts the orphaned queue on this thread
        assert writer.degraded
        assert writer.dropped == 0
        assert [e.data for e in backing.epochs()] == [b"a", b"b", b"c"]
        writer.close()

    def test_epochs_call_also_degrades(self):
        backing = MemoryStore()
        writer = BackgroundWriter(backing)
        writer.append(INCREMENTAL, b"x")
        writer.flush()
        self.kill_thread(writer)
        # stranded by the dead thread (queue items carry lineage kwargs)
        writer._queue.put(
            (INCREMENTAL, b"y", {"parent": None, "branch": None, "name": None})
        )
        assert [e.data for e in writer.epochs()] == [b"x", b"y"]
        assert writer.degraded
        writer.close()


class TestBackgroundWriterTimeouts:
    def test_flush_timeout_names_queued_count(self):
        backing = _GatedFailingStore(fail_on=-1)
        writer = BackgroundWriter(backing)
        for i in range(3):
            writer.append(INCREMENTAL, b"epoch-%d" % i)
        with pytest.raises(
            StorageError, match=r"3 epoch\(s\) still queued, not durable"
        ):
            writer.flush(timeout=0.05)
        backing.gate.set()
        writer.close()

    def test_close_timeout_names_queued_count(self):
        backing = _GatedFailingStore(fail_on=-1)
        writer = BackgroundWriter(backing)
        writer.append(INCREMENTAL, b"stuck")
        with pytest.raises(
            StorageError, match=r"1 epoch\(s\) still queued, not durable"
        ):
            writer.close(timeout=0.05)
        backing.gate.set()
        writer._thread.join(5)

    def test_flush_without_timeout_still_blocks_to_completion(self):
        backing = _SlowStore()
        writer = BackgroundWriter(backing)
        for i in range(3):
            writer.append(INCREMENTAL, b"epoch-%d" % i)
        writer.flush()  # no timeout: waits as long as it takes
        assert len(backing.epochs()) == 3
        writer.close()
