"""Unit tests for the asynchronous stable-storage writer."""

import threading
import time

import pytest

from repro.core.checkpoint import Checkpoint, FullCheckpoint
from repro.core.errors import StorageError
from repro.core.restore import structurally_equal
from repro.core.storage import (
    FULL,
    INCREMENTAL,
    BackgroundWriter,
    FileStore,
    MemoryStore,
)
from tests.conftest import build_root


class _FailingStore(MemoryStore):
    def __init__(self, fail_on: int) -> None:
        super().__init__()
        self._fail_on = fail_on
        self._calls = 0

    def append(self, kind, data):
        self._calls += 1
        if self._calls == self._fail_on:
            raise OSError("disk full")
        return super().append(kind, data)


class _SlowStore(MemoryStore):
    def append(self, kind, data):
        time.sleep(0.01)
        return super().append(kind, data)


class TestBackgroundWriter:
    def test_epochs_written_in_order(self):
        backing = MemoryStore()
        with BackgroundWriter(backing) as writer:
            writer.append(FULL, b"base")
            writer.append(INCREMENTAL, b"d1")
            writer.append(INCREMENTAL, b"d2")
            writer.flush()
            assert [(e.kind, e.data) for e in backing.epochs()] == [
                (FULL, b"base"),
                (INCREMENTAL, b"d1"),
                (INCREMENTAL, b"d2"),
            ]

    def test_append_does_not_block_on_slow_store(self):
        backing = _SlowStore()
        with BackgroundWriter(backing) as writer:
            start = time.perf_counter()
            for _ in range(5):
                writer.append(INCREMENTAL, b"x" * 1000)
            queued_in = time.perf_counter() - start
            writer.flush()
        # Five 10ms writes would block 50ms synchronously.
        assert queued_in < 0.04
        assert len(backing.epochs()) == 5

    def test_write_failure_surfaces(self):
        writer = BackgroundWriter(_FailingStore(fail_on=2))
        writer.append(FULL, b"ok")
        writer.append(INCREMENTAL, b"boom")
        with pytest.raises(StorageError, match="disk full"):
            writer.flush()
        writer.close()

    def test_closed_writer_rejects_appends(self):
        writer = BackgroundWriter(MemoryStore())
        writer.close()
        with pytest.raises(StorageError, match="closed"):
            writer.append(FULL, b"")

    def test_close_is_idempotent(self):
        writer = BackgroundWriter(MemoryStore())
        writer.close()
        writer.close()

    def test_unknown_kind_rejected_synchronously(self):
        with BackgroundWriter(MemoryStore()) as writer:
            with pytest.raises(StorageError, match="unknown checkpoint kind"):
                writer.append("bogus", b"")

    def test_recover_flushes_first(self):
        root = build_root()
        base = FullCheckpoint()
        base.checkpoint(root)
        backing = MemoryStore()
        with BackgroundWriter(backing) as writer:
            writer.append(FULL, base.getvalue())
            root.mid.leaf.value = 9
            delta = Checkpoint()
            delta.checkpoint(root)
            writer.append(INCREMENTAL, delta.getvalue())
            table = writer.recover()  # implicit flush
            recovered = table[root._ckpt_info.object_id]
            assert structurally_equal(root, recovered, compare_ids=True)

    def test_file_backed_end_to_end(self, tmp_path):
        root = build_root()
        base = FullCheckpoint()
        base.checkpoint(root)
        with BackgroundWriter(FileStore(str(tmp_path / "ckpt"))) as writer:
            writer.append(FULL, base.getvalue())
            writer.flush()
        fresh = FileStore(str(tmp_path / "ckpt"))
        recovered = fresh.recover()[root._ckpt_info.object_id]
        assert structurally_equal(root, recovered, compare_ids=True)

    def test_concurrent_producers(self):
        backing = MemoryStore()
        with BackgroundWriter(backing, max_queued=8) as writer:
            errors = []

            def produce(tag):
                try:
                    for i in range(20):
                        writer.append(INCREMENTAL, f"{tag}-{i}".encode())
                except BaseException as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [
                threading.Thread(target=produce, args=(t,)) for t in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            writer.flush()
            assert not errors
            assert len(backing.epochs()) == 80


class _GatedFailingStore(MemoryStore):
    """Blocks every append on a gate; fails on the Nth call once released.

    Lets a test queue a known number of epochs *behind* the failing write
    before the writer thread processes any of them.
    """

    def __init__(self, fail_on: int) -> None:
        super().__init__()
        self.gate = threading.Event()
        self._fail_on = fail_on
        self._calls = 0

    def append(self, kind, data):
        assert self.gate.wait(5), "test gate never released"
        self._calls += 1
        if self._calls == self._fail_on:
            raise OSError("disk full")
        return super().append(kind, data)


class TestBackgroundWriterFailStop:
    def test_failure_mid_queue_counts_discarded_epochs(self):
        backing = _GatedFailingStore(fail_on=2)
        writer = BackgroundWriter(backing)
        for i in range(5):  # epoch 0 writes, 1 fails, 2-4 must be discarded
            writer.append(INCREMENTAL, b"epoch-%d" % i)
        backing.gate.set()
        with pytest.raises(StorageError, match=r"disk full.*3 queued epoch"):
            writer.flush()
        assert writer.dropped == 3
        writer.close()

    def test_nothing_written_past_the_hole(self):
        backing = _GatedFailingStore(fail_on=2)
        writer = BackgroundWriter(backing)
        for i in range(5):
            writer.append(INCREMENTAL, b"epoch-%d" % i)
        backing.gate.set()
        with pytest.raises(StorageError):
            writer.flush()
        # Only the pre-failure epoch is durable: an epoch written past the
        # failed one could never participate in a recovery line.
        assert [e.data for e in backing.epochs()] == [b"epoch-0"]
        writer.close()

    def test_append_raises_permanently_after_failure(self):
        writer = BackgroundWriter(_FailingStore(fail_on=1))
        writer.append(FULL, b"boom")
        writer._idle.wait(5)  # let the writer thread hit the failure
        with pytest.raises(StorageError, match="disk full"):
            writer.append(FULL, b"after")
        with pytest.raises(StorageError, match="disk full"):
            writer.append(FULL, b"after-again")
        writer.close()  # append already reported the error: close is clean

    def test_close_surfaces_failure_and_stops_thread(self):
        writer = BackgroundWriter(_FailingStore(fail_on=1))
        writer.append(FULL, b"boom")
        with pytest.raises(StorageError, match="disk full"):
            writer.close()
        assert not writer._thread.is_alive()
        writer.close()  # idempotent even after a surfaced failure

    def test_flush_then_close_raises_once(self):
        writer = BackgroundWriter(_FailingStore(fail_on=1))
        writer.append(FULL, b"boom")
        with pytest.raises(StorageError, match="disk full"):
            writer.flush()
        writer.close()  # error already surfaced: shutdown is clean
        assert not writer._thread.is_alive()
