"""Unit tests for the cost profiles and their paper-calibrated behaviour."""

import pytest

from repro.vm.backends import (
    EPOCH_SCALE,
    HARISSA,
    HOTSPOT,
    JDK12_JIT,
    PROFILES,
    CostProfile,
    profile_by_name,
)
from repro.vm.ops import OpCounts


class TestCostProfile:
    def test_seconds_is_dot_product(self):
        profile = CostProfile("toy", {"test": 10.0, "vcall": 100.0})
        counts = OpCounts({"test": 3, "vcall": 2})
        assert profile.seconds(counts) == pytest.approx((30 + 200) * 1e-9)
        assert profile.nanoseconds(counts) == pytest.approx(230.0)

    def test_unknown_op_rejected(self):
        with pytest.raises(KeyError):
            CostProfile("bad", {"hyperjump": 1.0})

    def test_missing_ops_priced_zero(self):
        profile = CostProfile("sparse", {"test": 1.0})
        assert profile.costs["vcall"] == 0.0

    def test_lookup_by_name(self):
        assert profile_by_name("harissa") is HARISSA
        assert profile_by_name("hotspot") is HOTSPOT
        assert profile_by_name("jdk") is JDK12_JIT
        with pytest.raises(KeyError):
            profile_by_name("v8")

    def test_all_profiles_exported(self):
        assert set(PROFILES) == {JDK12_JIT, HOTSPOT, HARISSA}
        assert EPOCH_SCALE > 1


class TestCalibratedOrderings:
    """The qualitative relations the paper reports must hold by construction."""

    def test_virtual_call_dearer_than_field_read_everywhere(self):
        for profile in PROFILES:
            assert profile.costs["vcall"] > profile.costs["getfield"]

    def test_hotspot_inlines_accessors(self):
        # HotSpot: accessor ~ field read. JDK 1.2: accessors stay calls.
        assert HOTSPOT.costs["acc"] <= 2 * HOTSPOT.costs["getfield"]
        assert JDK12_JIT.costs["acc"] >= JDK12_JIT.costs["getfield"]

    def test_jdk_slowest_on_generic_code(self):
        generic_mix = OpCounts(
            {"vcall": 5, "acc": 5, "getfield": 4, "test": 2, "write_int": 4}
        )
        times = {p.name: p.seconds(generic_mix) for p in PROFILES}
        assert times["JDK 1.2 JIT"] > times["Harissa"]
        assert times["JDK 1.2 + HotSpot"] < times["Harissa"]

    def test_hotspot_unspec_can_beat_harissa_spec_relation(self):
        # The paper's Table 2 observation requires HotSpot generic code to
        # run at roughly half Harissa's generic speed or better.
        generic_mix = OpCounts(
            {"vcall": 5, "acc": 7, "getfield": 4, "test": 2, "write_int": 13}
        )
        assert HOTSPOT.seconds(generic_mix) < 0.7 * HARISSA.seconds(generic_mix)

    def test_pack_and_hash_priced_consistently(self):
        for profile in PROFILES:
            # one batched store costs slightly more than one typed write,
            # so batching wins exactly when it replaces several writes
            assert profile.costs["write_int"] < profile.costs["pack"]
            assert profile.costs["pack"] < 2 * profile.costs["write_int"]
            # fingerprinting an object is far dearer than one store —
            # verify mode must cost more than the walk it replaces
            assert profile.costs["hash"] > 2 * profile.costs["pack"]
