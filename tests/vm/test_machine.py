"""Unit tests for the metered abstract machine.

The machine's credibility rests on byte-identity with the production
implementations: whatever it counts, it must have *actually executed* the
same algorithm. These tests pin that down for every variant.
"""

import pytest

from repro.core.checkpoint import (
    Checkpoint,
    FullCheckpoint,
    collect_objects,
    reset_flags,
    set_all_flags,
)
from repro.core.streams import DataOutputStream
from repro.spec.modpattern import ModificationPattern
from repro.spec.shape import Shape
from repro.spec.specclass import SpecClass, SpecializedCheckpointer
from repro.synthetic.structures import build_structure, element_at
from repro.vm.machine import MeteredMachine
from repro.vm.ops import OpCounts
from tests.conftest import build_root


def _snapshot(root):
    return [(o._ckpt_info, o._ckpt_info.modified) for o in collect_objects(root)]


def _restore(snapshot):
    for info, modified in snapshot:
        info.modified = modified


@pytest.fixture
def dirty_root():
    root = build_root()
    reset_flags(root)
    root.mid.leaf.value = 3
    root.kids[0].value = 4
    return root


class TestByteIdentity:
    def test_incremental_matches_driver(self, dirty_root):
        snapshot = _snapshot(dirty_root)
        machine = MeteredMachine(DataOutputStream())
        machine.run_incremental(dirty_root)
        _restore(snapshot)
        driver = Checkpoint()
        driver.checkpoint(dirty_root)
        assert machine.out.getvalue() == driver.getvalue()

    def test_full_matches_driver(self, dirty_root):
        snapshot = _snapshot(dirty_root)
        machine = MeteredMachine(DataOutputStream())
        machine.run_full(dirty_root)
        _restore(snapshot)
        driver = FullCheckpoint()
        driver.checkpoint(dirty_root)
        assert machine.out.getvalue() == driver.getvalue()

    def test_residual_matches_compiled_function(self, dirty_root):
        shape = Shape.of(dirty_root)
        fn = SpecializedCheckpointer(SpecClass(shape, name="machine_eq"))
        snapshot = _snapshot(dirty_root)
        machine = MeteredMachine(DataOutputStream())
        machine.run_residual(fn.residual_ir, dirty_root)
        _restore(snapshot)
        out = DataOutputStream()
        fn(dirty_root, out)
        assert machine.out.getvalue() == out.getvalue()

    def test_machine_resets_flags_like_driver(self, dirty_root):
        machine = MeteredMachine()
        machine.run_incremental(dirty_root)
        assert all(not o._ckpt_info.modified for o in collect_objects(dirty_root))


class TestAccounting:
    def test_residual_has_no_vcalls(self, dirty_root):
        shape = Shape.of(dirty_root)
        fn = SpecializedCheckpointer(SpecClass(shape, name="machine_counts"))
        machine = MeteredMachine()
        machine.run_residual(fn.residual_ir, dirty_root)
        assert machine.counts["vcall"] == 0
        assert machine.counts["acc"] == 0
        assert machine.counts["call"] >= 1

    def test_generic_has_no_direct_calls(self, dirty_root):
        machine = MeteredMachine()
        machine.run_incremental(dirty_root)
        assert machine.counts["call"] == 0
        assert machine.counts["vcall"] > 0
        assert machine.counts["acc"] > 0

    def test_full_counts_dominate_incremental(self):
        root = build_root()
        reset_flags(root)
        incremental = MeteredMachine()
        incremental.run_incremental(root)
        reset_flags(root)
        full = MeteredMachine()
        full.run_full(root)
        assert full.counts["write_int"] > incremental.counts["write_int"]

    def test_write_counts_match_stream_size(self, dirty_root):
        machine = MeteredMachine(DataOutputStream())
        machine.run_incremental(dirty_root)
        counts = machine.counts
        expected = (
            4 * counts["write_int"]
            + 8 * counts["write_float"]
            + 1 * counts["write_bool"]
        )
        # strings add 4 + utf8 length each; recompute exactly:
        size_without_strings = machine.out.size
        assert counts["write_str"] == 2  # name + label of the two dirty leaves? no:
        # mid.leaf and kids[0] are Leaf objects, each with one str field.
        assert size_without_strings >= expected

    def test_quiescent_pattern_reduces_ops(self):
        compound = build_structure(num_lists=3, list_length=4, ints_per_element=1)
        shape = Shape.of(compound)
        reset_flags(compound)
        element_at(compound, 0, 3).v0 = 1

        all_dynamic = SpecializedCheckpointer(SpecClass(shape, name="machine_ad"))
        restricted = SpecializedCheckpointer(
            SpecClass(
                shape,
                ModificationPattern.restricted_to_lists(shape, ["list0"]),
                name="machine_restricted",
            )
        )
        snapshot = _snapshot(compound)
        machine_a = MeteredMachine()
        machine_a.run_residual(all_dynamic.residual_ir, compound)
        _restore(snapshot)
        machine_b = MeteredMachine()
        machine_b.run_residual(restricted.residual_ir, compound)
        assert machine_b.counts.total() < machine_a.counts.total()
        assert machine_b.counts["test"] < machine_a.counts["test"]

    def test_incremental_on_clean_structure_writes_nothing(self):
        root = build_root()
        reset_flags(root)
        machine = MeteredMachine(DataOutputStream())
        machine.run_incremental(root)
        assert machine.out.size == 0
        assert machine.counts["test"] > 0  # but it still traversed and tested


class TestOpCounts:
    def test_add_and_scale(self):
        a = OpCounts({"vcall": 2, "test": 3})
        b = OpCounts({"vcall": 1})
        merged = a + b
        assert merged["vcall"] == 3
        assert merged["test"] == 3
        scaled = merged.scaled(2.0)
        assert scaled["vcall"] == 6
        a += b
        assert a["vcall"] == 3

    def test_unknown_op_rejected(self):
        with pytest.raises(KeyError):
            OpCounts({"warp_drive": 1})

    def test_total_and_nonzero(self):
        counts = OpCounts({"test": 2, "iter": 5})
        assert counts.total() == 7
        assert counts.nonzero() == {"test": 2, "iter": 5}

    def test_sum(self):
        total = OpCounts.sum([OpCounts({"test": 1}), OpCounts({"test": 2})])
        assert total["test"] == 3

    def test_equality(self):
        assert OpCounts({"test": 1}) == OpCounts({"test": 1})
        assert OpCounts({"test": 1}) != OpCounts({"test": 2})
