"""Unit tests for the metered abstract machine.

The machine's credibility rests on byte-identity with the production
implementations: whatever it counts, it must have *actually executed* the
same algorithm. These tests pin that down for every variant.
"""

import pytest

from repro.core.checkpoint import (
    Checkpoint,
    FullCheckpoint,
    collect_objects,
    reset_flags,
    set_all_flags,
)
from repro.core.streams import DataOutputStream
from repro.spec.modpattern import ModificationPattern
from repro.spec.shape import Shape
from repro.spec.specclass import SpecClass, SpecializedCheckpointer
from repro.synthetic.structures import build_structure, element_at
from repro.vm.machine import MeteredMachine
from repro.vm.ops import OpCounts
from tests.conftest import build_root


def _snapshot(root):
    return [(o._ckpt_info, o._ckpt_info.modified) for o in collect_objects(root)]


def _restore(snapshot):
    for info, modified in snapshot:
        info.modified = modified


@pytest.fixture
def dirty_root():
    root = build_root()
    reset_flags(root)
    root.mid.leaf.value = 3
    root.kids[0].value = 4
    return root


class TestByteIdentity:
    def test_incremental_matches_driver(self, dirty_root):
        snapshot = _snapshot(dirty_root)
        machine = MeteredMachine(DataOutputStream())
        machine.run_incremental(dirty_root)
        _restore(snapshot)
        driver = Checkpoint()
        driver.checkpoint(dirty_root)
        assert machine.out.getvalue() == driver.getvalue()

    def test_full_matches_driver(self, dirty_root):
        snapshot = _snapshot(dirty_root)
        machine = MeteredMachine(DataOutputStream())
        machine.run_full(dirty_root)
        _restore(snapshot)
        driver = FullCheckpoint()
        driver.checkpoint(dirty_root)
        assert machine.out.getvalue() == driver.getvalue()

    def test_residual_matches_compiled_function(self, dirty_root):
        shape = Shape.of(dirty_root)
        fn = SpecializedCheckpointer(SpecClass(shape, name="machine_eq"))
        snapshot = _snapshot(dirty_root)
        machine = MeteredMachine(DataOutputStream())
        machine.run_residual(fn.residual_ir, dirty_root)
        _restore(snapshot)
        out = DataOutputStream()
        fn(dirty_root, out)
        assert machine.out.getvalue() == out.getvalue()

    def test_machine_resets_flags_like_driver(self, dirty_root):
        machine = MeteredMachine()
        machine.run_incremental(dirty_root)
        assert all(not o._ckpt_info.modified for o in collect_objects(dirty_root))


class TestAccounting:
    def test_residual_has_no_vcalls(self, dirty_root):
        shape = Shape.of(dirty_root)
        fn = SpecializedCheckpointer(SpecClass(shape, name="machine_counts"))
        machine = MeteredMachine()
        machine.run_residual(fn.residual_ir, dirty_root)
        assert machine.counts["vcall"] == 0
        assert machine.counts["acc"] == 0
        assert machine.counts["call"] >= 1

    def test_generic_has_no_direct_calls(self, dirty_root):
        machine = MeteredMachine()
        machine.run_incremental(dirty_root)
        assert machine.counts["call"] == 0
        assert machine.counts["vcall"] > 0
        assert machine.counts["acc"] > 0

    def test_full_counts_dominate_incremental(self):
        root = build_root()
        reset_flags(root)
        incremental = MeteredMachine()
        incremental.run_incremental(root)
        reset_flags(root)
        full = MeteredMachine()
        full.run_full(root)
        assert full.counts["write_int"] > incremental.counts["write_int"]

    def test_write_counts_match_stream_size(self, dirty_root):
        machine = MeteredMachine(DataOutputStream())
        machine.run_incremental(dirty_root)
        counts = machine.counts
        expected = (
            4 * counts["write_int"]
            + 8 * counts["write_float"]
            + 1 * counts["write_bool"]
        )
        # strings add 4 + utf8 length each; recompute exactly:
        size_without_strings = machine.out.size
        assert counts["write_str"] == 2  # name + label of the two dirty leaves? no:
        # mid.leaf and kids[0] are Leaf objects, each with one str field.
        assert size_without_strings >= expected

    def test_quiescent_pattern_reduces_ops(self):
        compound = build_structure(num_lists=3, list_length=4, ints_per_element=1)
        shape = Shape.of(compound)
        reset_flags(compound)
        element_at(compound, 0, 3).v0 = 1

        all_dynamic = SpecializedCheckpointer(SpecClass(shape, name="machine_ad"))
        restricted = SpecializedCheckpointer(
            SpecClass(
                shape,
                ModificationPattern.restricted_to_lists(shape, ["list0"]),
                name="machine_restricted",
            )
        )
        snapshot = _snapshot(compound)
        machine_a = MeteredMachine()
        machine_a.run_residual(all_dynamic.residual_ir, compound)
        _restore(snapshot)
        machine_b = MeteredMachine()
        machine_b.run_residual(restricted.residual_ir, compound)
        assert machine_b.counts.total() < machine_a.counts.total()
        assert machine_b.counts["test"] < machine_a.counts["test"]

    def test_incremental_on_clean_structure_writes_nothing(self):
        root = build_root()
        reset_flags(root)
        machine = MeteredMachine(DataOutputStream())
        machine.run_incremental(root)
        assert machine.out.size == 0
        assert machine.counts["test"] > 0  # but it still traversed and tested


class TestOpCounts:
    def test_add_and_scale(self):
        a = OpCounts({"vcall": 2, "test": 3})
        b = OpCounts({"vcall": 1})
        merged = a + b
        assert merged["vcall"] == 3
        assert merged["test"] == 3
        scaled = merged.scaled(2.0)
        assert scaled["vcall"] == 6
        a += b
        assert a["vcall"] == 3

    def test_unknown_op_rejected(self):
        with pytest.raises(KeyError):
            OpCounts({"warp_drive": 1})

    def test_total_and_nonzero(self):
        counts = OpCounts({"test": 2, "iter": 5})
        assert counts.total() == 7
        assert counts.nonzero() == {"test": 2, "iter": 5}

    def test_sum(self):
        total = OpCounts.sum([OpCounts({"test": 1}), OpCounts({"test": 2})])
        assert total["test"] == 3

    def test_equality(self):
        assert OpCounts({"test": 1}) == OpCounts({"test": 1})
        assert OpCounts({"test": 1}) != OpCounts({"test": 2})


class TestPackedAndDifferential:
    """The two new drivers obey the same credo: count only what ran."""

    def test_packed_matches_generic_driver(self, dirty_root):
        snapshot = _snapshot(dirty_root)
        machine = MeteredMachine()
        enc = machine.run_packed(dirty_root)
        _restore(snapshot)
        driver = Checkpoint()
        driver.checkpoint(dirty_root)
        assert enc.getvalue() == driver.getvalue()

    def test_packed_batches_fixed_size_fields(self, dirty_root):
        machine = MeteredMachine()
        machine.run_packed(dirty_root)
        counts = machine.counts
        # fixed-size runs are single pack_into calls, never typed writes
        assert counts["pack"] > 0
        assert counts["write_int"] == 0
        assert counts["write_float"] == 0
        assert counts["write_bool"] == 0
        # strings stay on the variable-size path
        assert counts["write_str"] == 2

    def test_packed_resets_flags_like_driver(self, dirty_root):
        machine = MeteredMachine()
        machine.run_packed(dirty_root)
        assert all(not o._ckpt_info.modified for o in collect_objects(dirty_root))

    def _committed_tier(self, roots, **tier_kwargs):
        from repro.core.blocks import BlockTier

        tier = BlockTier(**tier_kwargs)
        tier.partition(roots)
        for block in tier.blocks:
            tier.mark_committed(block)  # as if the baseline commit ran
        return tier

    def test_differential_matches_generic_driver(self):
        roots = [build_root() for _ in range(6)]
        for root in roots:
            reset_flags(root)
        tier = self._committed_tier(roots, block_size=2)
        roots[0].mid.leaf.value = 3
        roots[5].kids[0].value = 4
        snapshots = [_snapshot(root) for root in roots]
        machine = MeteredMachine()
        enc = machine.run_differential(tier)
        for snapshot in snapshots:
            _restore(snapshot)
        out = DataOutputStream()
        driver = Checkpoint(out)
        for root in roots:
            driver.checkpoint(root)
        assert enc.getvalue() == out.getvalue()

    def test_differential_clean_blocks_cost_one_test_each(self):
        roots = [build_root() for _ in range(6)]
        for root in roots:
            reset_flags(root)
        tier = self._committed_tier(roots, block_size=2)
        machine = MeteredMachine()
        enc = machine.run_differential(tier)
        # every block is clean: one skip decision per block, no traversal
        assert enc.size == 0
        assert machine.counts["test"] == len(tier.blocks)
        assert machine.counts["vcall"] == 0
        assert machine.counts["getfield"] == 0
        assert machine.counts["pack"] == 0
        assert machine.counts["hash"] == 0

    def test_differential_dirty_block_pays_packed_walk_only_there(self):
        roots = [build_root() for _ in range(6)]
        for root in roots:
            reset_flags(root)
        tier = self._committed_tier(roots, block_size=2)
        roots[0].mid.leaf.value = 3
        snapshots = [_snapshot(root) for root in roots]
        machine = MeteredMachine()
        machine.run_differential(tier)
        for snapshot in snapshots:
            _restore(snapshot)
        reference = MeteredMachine()
        for root in roots[:2]:  # the dirty block's two roots
            reference.run_packed(root)
        # the differential run = per-block tests + the dirty block's walk
        expected = reference.counts + OpCounts({"test": len(tier.blocks)})
        assert machine.counts == expected

    def test_verify_mode_hashes_clean_blocks(self):
        from repro.core.blocks import HASH_VERIFY

        roots = [build_root() for _ in range(4)]
        for root in roots:
            reset_flags(root)
        tier = self._committed_tier(roots, block_size=2, hash_mode=HASH_VERIFY)
        machine = MeteredMachine()
        enc = machine.run_differential(tier)
        assert enc.size == 0
        # every member of every clean block was re-fingerprinted
        assert machine.counts["hash"] == sum(
            1 for block in tier.blocks for _ in tier.members(block)
        )

    def test_skip_mode_hashes_flagged_blocks_and_elides_writeback(self):
        from repro.core.blocks import HASH_SKIP

        roots = [build_root() for _ in range(4)]
        for root in roots:
            reset_flags(root)
        tier = self._committed_tier(roots, block_size=2, hash_mode=HASH_SKIP)
        # write-back: flag raised, content unchanged
        roots[0].mid.leaf.value = roots[0].mid.leaf.value
        machine = MeteredMachine()
        enc = machine.run_differential(tier)
        assert enc.size == 0  # unchanged fingerprint: nothing recorded
        assert machine.counts["hash"] > 0
        assert machine.counts["flag_reset"] > 0  # flags still cleared
        assert all(
            not o._ckpt_info.modified
            for root in roots
            for o in collect_objects(root)
        )

    def test_differential_requires_partitioned_tier(self):
        from repro.core.blocks import BlockTier
        from repro.core.errors import CheckpointError

        with pytest.raises(CheckpointError):
            MeteredMachine().run_differential(BlockTier())
