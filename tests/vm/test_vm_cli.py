"""Tests for the ``python -m repro.vm`` op-breakdown command line."""

from repro.vm.__main__ import main


class TestVmCli:
    def test_breakdown_output(self, capsys):
        assert main(["--structures", "30", "--percent", "50"]) == 0
        out = capsys.readouterr().out
        assert "vcall" in out
        assert "bytes" in out
        assert "speedup vs incremental on Harissa" in out
        # Specialized code performs no virtual or accessor calls.
        for line in out.splitlines():
            if line.startswith("vcall") or line.startswith("acc "):
                columns = line.split()
                assert columns[-1] == "0" and columns[-2] == "0"

    def test_last_only_flag(self, capsys):
        assert (
            main(
                [
                    "--structures",
                    "30",
                    "--modified-lists",
                    "1",
                    "--last-only",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "last element only" in out

    def test_incremental_and_spec_bytes_match(self, capsys):
        main(["--structures", "25"])
        out = capsys.readouterr().out
        byte_line = next(l for l in out.splitlines() if l.startswith("bytes"))
        values = byte_line.split()[1:]
        assert values[1] == values[2] == values[3]  # inc == spec == spec_mod
