"""Shadow-heap dirtiness oracle: byte-level ground truth for the flags.

The guarantees pinned here:

- on honest workloads (every write through a descriptor or tracked
  list) the flag-predicted dirty set equals the byte diff **exactly**,
  across every built-in strategy tier and the synthetic benchmark's
  variant tiers (including the specialized routines);
- flag-bypassing writes surface as ``unflagged-mutation`` naming the
  class and field;
- the ``none`` tier, which never clears flags, accumulates benign
  over-approximation — and nothing worse;
- the degraded-fallback commit path (a specialized routine dying
  mid-commit) stays oracle-clean: the fallback loses no bytes;
- ``restore()`` resyncs the shadow to the materialized epoch;
- violations are reported once per (kind, class, field) through the
  obs seam.
"""

import pytest

from repro.core.storage import FULL, INCREMENTAL
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import MemoryExporter, Tracer
from repro.runtime.session import CheckpointSession
from repro.runtime.sink import BufferSink
from repro.runtime.strategy import Strategy
from repro.sanitize.oracle import OVER, UNDER, ShadowHeapOracle
from tests.conftest import build_root

#: the tiers that clear flags as they record (exact agreement expected)
CLEARING_TIERS = ("full", "incremental", "reflective", "iterative", "checking")


def oracle_session(strategy="incremental", root=None):
    root = root if root is not None else build_root()
    oracle = ShadowHeapOracle()
    session = CheckpointSession(
        roots=root, strategy=strategy, sink=BufferSink()
    )
    session.attach_oracle(oracle)
    return session, oracle, root


class TestHonestWorkloads:
    @pytest.mark.parametrize("tier", CLEARING_TIERS)
    def test_flags_equal_byte_diff(self, tier):
        session, oracle, root = oracle_session(strategy=tier)
        session.base()
        # two objects mutated, both through descriptors
        root.mid.leaf.value = 1234
        root.kids[0].label = "renamed"
        session.commit(kind=FULL if tier == "full" else INCREMENTAL)
        report = oracle.reports[-1]
        assert report.predicted == 2
        assert report.changed == 2
        assert report.exact
        assert oracle.violations == []
        session.close()

    @pytest.mark.parametrize("tier", CLEARING_TIERS)
    def test_quiescent_commit_is_empty_both_ways(self, tier):
        session, oracle, root = oracle_session(strategy=tier)
        session.base()
        session.commit(kind=FULL if tier == "full" else INCREMENTAL)
        report = oracle.reports[-1]
        assert report.predicted == 0
        assert report.changed == 0
        assert oracle.violations == []
        session.close()

    def test_none_tier_only_overapproximates(self):
        session, oracle, root = oracle_session(strategy="none")
        session.base()
        root.mid.leaf.value = 9
        session.commit(kind=INCREMENTAL)  # writes nothing, clears nothing
        assert oracle.under() == []
        session.commit(kind=INCREMENTAL)
        # the stale flag is now set over unchanged bytes: benign waste
        assert oracle.under() == []
        assert any(v.kind == OVER for v in oracle.over())
        session.close()


class TestSyntheticVariants:
    @pytest.mark.parametrize(
        "variant",
        ("full", "incremental", "reflective", "spec_struct", "spec_struct_mod"),
    )
    def test_variant_tiers_agree_with_byte_diff(self, variant):
        from repro.synthetic.runner import (
            SyntheticConfig,
            SyntheticWorkload,
            variant_strategy,
        )
        from repro.synthetic.workload import (
            apply_modifications,
            draw_modified_positions,
        )

        workload = SyntheticWorkload(
            SyntheticConfig(
                num_structures=6,
                num_lists=2,
                list_length=3,
                percent_modified=0.5,
                seed=23,
            )
        )
        oracle = ShadowHeapOracle()
        session = CheckpointSession(
            roots=workload.structures,
            strategy=variant_strategy(workload, variant),
            sink=BufferSink(),
        )
        session.attach_oracle(oracle)
        session.base()
        positions = draw_modified_positions(
            len(workload.structures), workload.eligible, 0.5, seed=99
        )
        modified = apply_modifications(workload.structures, positions)
        assert modified > 0
        session.commit(kind=FULL if variant == "full" else INCREMENTAL)
        report = oracle.reports[-1]
        assert report.predicted == modified
        assert report.changed == modified
        assert oracle.violations == []
        session.close()


class TestBypassDetection:
    def test_slot_write_is_an_unflagged_mutation(self):
        session, oracle, root = oracle_session()
        session.base()
        root.mid.leaf._f_value = 4242  # bypasses the descriptor
        session.commit()
        keys = oracle.violation_keys()
        assert ("Leaf", "value") in keys
        [violation] = oracle.under()
        assert violation.kind == UNDER
        assert violation.commit_kind == INCREMENTAL
        session.close()

    def test_raw_list_mutation_is_caught(self):
        session, oracle, root = oracle_session()
        session.base()
        root.kids._items.append(root.extra)  # never touches the flag
        session.commit()
        assert ("Root", "kids") in oracle.violation_keys()
        session.close()

    def test_measure_sees_the_bypass_without_advancing(self):
        session, oracle, root = oracle_session()
        session.base()
        shadow_before = oracle.shadow_size()
        root.mid.leaf._f_value = 7007
        session.measure(phase="probe")
        assert ("Leaf", "value") in oracle.violation_keys()
        assert oracle.shadow_size() == shadow_before
        session.close()

    def test_full_commit_adopts_instead_of_accusing(self):
        from repro.core.checkpoint import reset_flags

        session, oracle, root = oracle_session(strategy="full")
        session.base()
        root.mid.leaf._f_value = 31
        reset_flags(root)
        # a full epoch rewrites every object, so nothing can be lost;
        # the oracle adopts the state rather than reporting
        session.commit(kind=FULL)
        assert oracle.violations == []
        # and the adopted bytes are the new baseline: an honest write
        # afterwards diffs against them exactly
        root.mid.leaf.value = 32
        session.commit(kind=INCREMENTAL)
        assert oracle.violations == []
        session.close()


class _DyingSpecialized(Strategy):
    """A specialized routine that partially records, then raises."""

    name = "dying_spec"

    def __init__(self):
        self.calls = 0

    def write(self, roots, out):
        from repro.core.checkpoint import Checkpoint

        self.calls += 1
        if self.calls == 1:
            if roots:
                Checkpoint(out).checkpoint(roots[0])
            raise RuntimeError("unproved shape")


class TestDegradedFallback:
    def test_fallback_path_is_oracle_clean(self):
        root = build_root()
        oracle = ShadowHeapOracle()
        session = CheckpointSession(
            roots=root, strategy=_DyingSpecialized(), sink=BufferSink()
        )
        session.attach_oracle(oracle)
        session.base()
        root.mid.leaf.value = 4321
        degraded = session.commit()  # specialized dies -> checked full
        assert degraded.receipt.degraded
        escalated = session.commit()  # chain repair
        assert escalated.kind == FULL
        assert oracle.violations == []
        # the folded shadow matches the durable state: a quiescent
        # commit diffs empty
        session.commit(kind=INCREMENTAL)
        assert oracle.reports[-1].changed == 0
        assert oracle.violations == []
        session.close()


class TestRestoreResync:
    def test_restore_rebaselines_the_shadow(self):
        session, oracle, root = oracle_session()
        session.base()
        root.mid.leaf.value = 777
        session.commit()
        table = session.restore(0)
        restored = table[root._ckpt_info.object_id]
        assert restored.mid.leaf.value != 777
        # the shadow follows the restored epoch: an honest write on the
        # restored graph commits clean
        restored.mid.leaf.value = 888
        session.commit()
        report = oracle.reports[-1]
        assert report.predicted == report.changed == 1
        assert oracle.violations == []
        session.close()


class TestReporting:
    def test_reported_once_per_site_through_obs(self):
        exporter = MemoryExporter()
        tracer = Tracer([exporter])
        metrics = MetricsRegistry()
        root = build_root()
        oracle = ShadowHeapOracle()
        session = CheckpointSession(
            roots=root, sink=BufferSink(), tracer=tracer, metrics=metrics
        )
        session.attach_oracle(oracle)
        session.base()
        root.mid.leaf._f_value = 1
        session.commit()
        root.mid.leaf._f_value = 2
        session.commit()  # same (kind, class, field): not re-reported
        events = [
            r for r in exporter.records if r["type"] == "oracle.violation"
        ]
        assert len(events) == 1
        assert events[0]["class"] == "Leaf"
        assert events[0]["field"] == "value"
        assert events[0]["kind"] == UNDER
        counters = metrics.snapshot()["counters"]
        assert any("oracle.violations" in key for key in counters)
        assert sum(
            v for k, v in counters.items() if "oracle.violations" in k
        ) == 1
        session.close()

    def test_detach_and_reset(self):
        session, oracle, root = oracle_session()
        session.base()
        assert session.detach_oracle() is oracle
        root.mid.leaf._f_value = 3
        session.commit()  # no oracle attached: nothing observed
        assert oracle.violations == []
        oracle.reset()
        assert oracle.shadow_size() == 0
        assert oracle.reports == []
        session.close()
