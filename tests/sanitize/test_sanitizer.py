"""Dynamic lockset sanitizer: Eraser state machine, weaving, obs wiring."""

import threading

import pytest

from repro.sanitize import (
    SanitizedLock,
    Sanitizer,
    current_held,
    unweave_all,
    weave,
)


@pytest.fixture(autouse=True)
def _clean_weaves():
    yield
    unweave_all()


def make_racy():
    class Racy:
        def __init__(self):
            self.lock = threading.Lock()
            self.count = 0
            self.safe = 0

        def bump_bare(self):
            self.count += 1

        def bump_locked(self):
            with self.lock:
                self.safe += 1

    return Racy


def hammer(fn, threads=4, iters=100):
    barrier = threading.Barrier(threads)

    def go():
        barrier.wait()
        for _ in range(iters):
            fn()

    workers = [threading.Thread(target=go) for _ in range(threads)]
    for t in workers:
        t.start()
    for t in workers:
        t.join()


class TestSanitizedLock:
    def test_held_set_tracks_acquire_and_release(self):
        sanitizer = Sanitizer()
        lock = SanitizedLock(threading.Lock(), "T.lock", sanitizer)
        assert current_held() == ()
        with lock:
            assert current_held() == ("T.lock",)
        assert current_held() == ()

    def test_rlock_reentry_is_tracked_per_acquisition(self):
        sanitizer = Sanitizer()
        lock = SanitizedLock(threading.RLock(), "T.mutex", sanitizer)
        with lock:
            with lock:
                assert current_held() == ("T.mutex", "T.mutex")
            assert current_held() == ("T.mutex",)
        assert current_held() == ()


class TestEraserStates:
    def test_single_thread_writes_stay_exclusive(self):
        Racy = make_racy()
        sanitizer = Sanitizer()
        weave(Racy, sanitizer)
        obj = Racy()
        for _ in range(100):
            obj.bump_bare()
        assert sanitizer.violations == []

    def test_unguarded_shared_write_is_reported_once(self):
        Racy = make_racy()
        sanitizer = Sanitizer()
        weave(Racy, sanitizer)
        obj = Racy()
        hammer(obj.bump_bare)
        rules = [v.rule for v in sanitizer.violations]
        assert rules == ["unguarded-shared-write"]
        violation = sanitizer.violations[0]
        assert (violation.cls, violation.field) == ("Racy", "count")
        assert violation.threads >= 2

    def test_consistently_locked_writes_are_clean(self):
        Racy = make_racy()
        sanitizer = Sanitizer()
        weave(Racy, sanitizer)
        obj = Racy()
        hammer(obj.bump_locked)
        assert sanitizer.violations == []
        assert obj.safe == 400  # the lock actually excluded

    def test_lock_order_inversion_is_reported(self):
        class Two:
            def __init__(self):
                self.a = threading.Lock()
                self.b = threading.Lock()

        sanitizer = Sanitizer()
        weave(Two, sanitizer)
        obj = Two()
        with obj.a:
            with obj.b:
                pass
        with obj.b:
            with obj.a:
                pass
        assert [v.rule for v in sanitizer.violations] == [
            "lock-order-inversion"
        ]

    def test_id_reuse_does_not_leak_state_across_instances(self):
        Racy = make_racy()
        sanitizer = Sanitizer()
        weave(Racy, sanitizer)

        def construct_and_write():
            for _ in range(25):
                local = Racy()
                local.bump_bare()

        hammer(construct_and_write, threads=4, iters=1)
        assert sanitizer.violations == []


class TestWeaving:
    def test_weave_is_idempotent_and_unweave_restores(self):
        Racy = make_racy()
        original_init = Racy.__init__
        original_setattr = Racy.__setattr__
        sanitizer = Sanitizer()
        assert weave(Racy, sanitizer) is Racy
        weave(Racy, sanitizer)  # second weave is a no-op
        assert Racy.__init__ is not original_init
        unweave_all()
        assert Racy.__init__ is original_init
        assert Racy.__setattr__ is original_setattr

    def test_unwoven_class_is_untouched(self):
        # the zero-disabled-cost contract: no weave, no wrapper, no
        # proxy — plain attribute semantics
        Racy = make_racy()
        obj = Racy()
        assert type(obj.lock).__module__ == "_thread"

    def test_woven_instances_get_proxied_locks(self):
        Racy = make_racy()
        weave(Racy, Sanitizer())
        obj = Racy()
        assert isinstance(obj.lock, SanitizedLock)
        assert obj.lock.name == "Racy.lock"

    def test_weave_runtime_covers_the_shared_state_classes(self):
        from repro.sanitize import weave_runtime

        woven = weave_runtime(Sanitizer())
        names = {cls.__name__ for cls in woven}
        assert {
            "BackgroundWriter",
            "CheckpointSession",
            "IdAllocator",
            "MemoryStore",
            "FileStore",
            "ReplicatedStore",
            "Scrubber",
            "Tracer",
        } <= names


class TestObsIntegration:
    def test_violation_emits_tracer_event_and_metric(self):
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.tracer import MemoryExporter, Tracer

        exporter = MemoryExporter()
        registry = MetricsRegistry()
        sanitizer = Sanitizer()
        sanitizer.instrument(Tracer([exporter]), registry)
        Racy = make_racy()
        weave(Racy, sanitizer)
        obj = Racy()
        hammer(obj.bump_bare)
        events = exporter.of_type("sanitizer.violation")
        assert len(events) == 1
        assert events[0]["rule"] == "unguarded-shared-write"
        assert events[0]["class"] == "Racy"
        assert events[0]["field"] == "count"
        snapshot = registry.snapshot()
        assert any(
            name.startswith("sanitizer.violations")
            for name in snapshot["counters"]
        )

    def test_reset_forgets_everything(self):
        Racy = make_racy()
        sanitizer = Sanitizer()
        weave(Racy, sanitizer)
        obj = Racy()
        hammer(obj.bump_bare)
        assert sanitizer.violations
        sanitizer.reset()
        assert sanitizer.violations == []
        assert sanitizer.violation_keys() == set()


class TestCrosscheckContract:
    def test_dynamic_violations_are_statically_predicted(self):
        """static ⊇ dynamic on the canonical racy class."""
        import inspect
        import textwrap

        from repro.spec.effects.concurrency import analyze_source

        Racy = make_racy()
        # the fixture factory's body is the program text the static
        # pass sees; the woven run is the dynamic observation
        source = textwrap.dedent(inspect.getsource(make_racy))
        report = analyze_source("<racy>", source)
        static = report.unguarded_fields()
        sanitizer = Sanitizer()
        weave(Racy, sanitizer)
        obj = Racy()
        hammer(obj.bump_bare)
        hammer(obj.bump_locked)
        dynamic = sanitizer.violation_keys()
        assert dynamic  # the race actually fired
        assert dynamic <= static
