"""Tracer invariants: record shape, exporter failure isolation, null tracer."""

import json

import pytest

from repro.core.storage import MemoryStore
from repro.obs.tracer import (
    NULL_TRACER,
    Exporter,
    JsonlExporter,
    MemoryExporter,
    NullTracer,
    Tracer,
    tracer_or_null,
)
from repro.runtime.session import CheckpointSession
from tests.conftest import build_root


class _ExplodingExporter(Exporter):
    def __init__(self, fail_close=False):
        self.fail_close = fail_close

    def export(self, record):
        raise RuntimeError("exporter down")

    def close(self):
        if self.fail_close:
            raise RuntimeError("close failed")


class TestEventRecords:
    def test_events_carry_type_ts_and_monotonic_seq(self):
        exporter = MemoryExporter()
        tracer = Tracer([exporter])
        tracer.event("a", x=1)
        tracer.event("b")
        first, second = exporter.records
        assert first["type"] == "a" and first["x"] == 1
        assert second["type"] == "b"
        assert second["seq"] == first["seq"] + 1
        assert second["ts"] >= first["ts"]

    def test_span_emits_start_and_end_with_wall_seconds(self):
        exporter = MemoryExporter()
        tracer = Tracer([exporter])
        with tracer.span("phase", phase="SE") as span:
            span.add(iterations=3)
        start, end = exporter.records
        assert start["type"] == "phase.start"
        assert end["type"] == "phase.end"
        assert end["iterations"] == 3
        assert end["wall_seconds"] >= 0.0

    def test_span_records_the_exception(self):
        exporter = MemoryExporter()
        tracer = Tracer([exporter])
        with pytest.raises(ValueError):
            with tracer.span("work"):
                raise ValueError("boom")
        end = exporter.of_type("work.end")[0]
        assert "ValueError" in end["error"]


class TestExporterFailureIsolation:
    def test_raising_exporter_only_increments_dropped(self):
        tracer = Tracer([_ExplodingExporter()])
        tracer.event("a")
        tracer.event("b")
        assert tracer.dropped == 2

    def test_one_bad_exporter_does_not_starve_the_others(self):
        good = MemoryExporter()
        tracer = Tracer([_ExplodingExporter(), good])
        tracer.event("a")
        assert len(good.records) == 1
        assert tracer.dropped == 1

    def test_exporter_failure_does_not_fail_a_commit(self):
        tracer = Tracer([_ExplodingExporter()])
        session = CheckpointSession(
            roots=build_root(), sink=MemoryStore(), tracer=tracer
        )
        result = session.base()
        assert result.receipt.durability == "durable"
        assert session.commit().epoch_index == 1
        assert tracer.dropped > 0

    def test_close_swallows_exporter_close_errors(self):
        tracer = Tracer([_ExplodingExporter(fail_close=True)])
        tracer.close()
        assert tracer.dropped == 1


class TestJsonlExporter:
    def test_round_trip_through_the_reader(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = Tracer([JsonlExporter(path)])
        tracer.event("commit.end", phase="hot", bytes=12)
        tracer.event("commit.end", phase="tail", bytes=3)
        tracer.close()

        from repro.obs.report import read_trace

        records = read_trace(path)
        assert [r["phase"] for r in records] == ["hot", "tail"]
        assert all(r["type"] == "commit.end" for r in records)

    def test_each_line_is_one_compact_json_object(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = Tracer([JsonlExporter(path)])
        tracer.event("a", n=1)
        tracer.close()
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["n"] == 1


class TestNullTracer:
    def test_disabled_tracer_is_the_shared_singleton(self):
        # the acceptance invariant: an uninstrumented session carries the
        # process-wide no-op tracer, not a fresh instance per session
        session = CheckpointSession(roots=build_root(), sink=MemoryStore())
        assert session.tracer is NULL_TRACER
        assert CheckpointSession().tracer is NULL_TRACER
        assert not NULL_TRACER.enabled

    def test_null_span_is_a_shared_no_op(self):
        span_a = NULL_TRACER.span("x")
        span_b = NULL_TRACER.span("y", field=1)
        assert span_a is span_b
        with span_a as entered:
            entered.add(anything=True)

    def test_null_tracer_event_allocates_no_records(self):
        tracer = NullTracer()
        tracer.event("a", huge_field=object())
        assert tracer.exporters == []
        assert tracer.dropped == 0

    def test_tracer_or_null_normalizes_none(self):
        assert tracer_or_null(None) is NULL_TRACER
        real = Tracer()
        assert tracer_or_null(real) is real
