"""MetricsRegistry: instrument identity, histogram buckets, percentiles."""

import json

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    NULL_METRICS,
    MetricsRegistry,
    metric_key,
)


class TestInstrumentIdentity:
    def test_same_name_and_labels_return_the_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("c", phase="BTA") is registry.counter(
            "c", phase="BTA"
        )
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_different_labels_are_different_instruments(self):
        registry = MetricsRegistry()
        assert registry.counter("c", phase="BTA") is not registry.counter(
            "c", phase="ETA"
        )

    def test_metric_key_sorts_labels(self):
        assert metric_key("c", {"b": 1, "a": 2}) == "c{a=2,b=1}"
        assert metric_key("c", {}) == "c"


class TestCounterGauge:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("commits_total")
        counter.inc()
        counter.inc(4)
        assert registry.snapshot()["counters"]["commits_total"] == 5

    def test_gauge_set_and_add(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(3.0)
        gauge.add(-1.0)
        assert registry.snapshot()["gauges"]["depth"] == 2.0


class TestHistogramBuckets:
    def test_value_on_the_bound_lands_in_that_bucket(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(1.0, 2.0, 4.0))
        hist.observe(1.0)  # == first bound -> bucket 0
        hist.observe(1.0000001)  # just past -> bucket 1
        hist.observe(4.0)  # == last bound -> bucket 2
        assert hist.counts == [1, 1, 1, 0]

    def test_overflow_bucket_catches_values_past_the_last_bound(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(1.0, 2.0))
        hist.observe(100.0)
        assert hist.counts == [0, 0, 1]
        assert hist.max == 100.0

    def test_min_max_sum_count(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(1.0, 2.0))
        for value in (0.5, 1.5, 3.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.min == 0.5
        assert hist.max == 3.0
        assert hist.sum == 5.0

    def test_buckets_are_sorted_on_construction(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(4.0, 1.0, 2.0))
        assert hist.buckets == (1.0, 2.0, 4.0)


class TestHistogramPercentiles:
    def test_empty_histogram_has_no_percentiles(self):
        registry = MetricsRegistry()
        assert registry.histogram("h").percentile(0.5) is None

    def test_percentile_interpolates_within_the_bucket(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(10.0, 20.0))
        for _ in range(10):
            hist.observe(15.0)  # all in bucket (10, 20]
        p50 = hist.percentile(0.5)
        assert 10.0 < p50 <= 20.0

    def test_percentile_in_overflow_bucket_reports_the_max(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(1.0,))
        hist.observe(7.0)
        hist.observe(9.0)
        assert hist.percentile(0.99) == 9.0

    def test_snapshot_reports_p50_p90_p99(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h")
        hist.observe(0.001)
        data = registry.snapshot()["histograms"]["h"]
        for key in ("p50", "p90", "p99"):
            assert key in data
            assert data[key] is not None


class TestSnapshot:
    def test_snapshot_is_json_serializable(self):
        registry = MetricsRegistry()
        registry.counter("c", phase="hot").inc()
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(0.002)
        parsed = json.loads(registry.to_json())
        assert parsed["counters"] == {"c{phase=hot}": 1}

    def test_default_buckets_cover_microseconds_to_seconds(self):
        assert DEFAULT_LATENCY_BUCKETS[0] <= 0.0001
        assert DEFAULT_LATENCY_BUCKETS[-1] >= 1.0


class TestNullMetrics:
    def test_disabled_registry_is_a_shared_singleton(self):
        from repro.obs import metrics as module

        assert module.NULL_METRICS is NULL_METRICS
        assert not NULL_METRICS.enabled

    def test_null_instruments_are_shared_no_ops(self):
        counter = NULL_METRICS.counter("c", phase="x")
        gauge = NULL_METRICS.gauge("g")
        hist = NULL_METRICS.histogram("h")
        # every identity resolves to the same do-nothing instrument
        assert counter is gauge is hist
        counter.inc()
        gauge.set(3.0)
        hist.observe(1.0)
        assert NULL_METRICS.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
