"""The observability package must pass the soundness linter (selfcheck)."""

import json
from pathlib import Path

import repro
from repro.lint.cli import main
from repro.obs import selfcheck


def _obs_dir() -> str:
    return str(Path(repro.__file__).parent / "obs")


class TestLintOverObs:
    def test_obs_package_is_clean(self, capsys):
        assert main([_obs_dir(), "--strict"]) == 0
        out = capsys.readouterr().out
        assert "error" not in out
        assert "warning" not in out

    def test_traced_probe_is_analyzed(self, capsys):
        assert main([_obs_dir(), "--format", "json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["targets"] >= 1
        assert report["counts"]["error"] == 0

    def test_default_paths_cover_the_obs_package(self):
        from repro.lint.cli import discover

        files = discover([str(Path(repro.__file__).parent)])
        names = {str(f) for f in files}
        assert any(
            "obs" in name and name.endswith("selfcheck.py") for name in names
        )


class TestTracedProbe:
    def test_probe_phase_conforms_to_its_pattern(self):
        from repro.core.checkpoint import reset_flags

        root = selfcheck.traced_prototype()
        reset_flags(root)
        selfcheck.traced_phase(root)
        selfcheck.TRACED_PATTERN.validate_against(root)

    def test_probe_driver_runs_against_a_real_session(self):
        from repro.core.storage import MemoryStore
        from repro.runtime.session import CheckpointSession

        root = selfcheck.traced_prototype()
        session = CheckpointSession(roots=[root], sink=MemoryStore())
        selfcheck.traced_driver(root, session)
        assert session.commits == 2  # base + the traced record commit
