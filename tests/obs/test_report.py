"""Trace aggregation: per-phase tables, torn-line tolerance, the CLI."""

import json

from repro.obs.report import (
    UNLABELED,
    aggregate,
    read_trace,
    report_file,
    save_json,
)


def _commit(phase, wall, nbytes, **extra):
    record = {
        "type": "commit.end",
        "phase": phase,
        "wall_seconds": wall,
        "bytes": nbytes,
        "kind": "incremental",
        "strategy": "incremental",
    }
    record.update(extra)
    return record


class TestReadTrace:
    def test_skips_blank_torn_and_non_json_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            '{"type": "commit.end", "phase": "hot"}\n'
            "\n"
            "not json at all\n"
            '[1, 2, 3]\n'
            '{"type": "commit.end", "phase": "tail"'  # torn tail, no \n
        )
        records = read_trace(str(path))
        assert len(records) == 1
        assert records[0]["phase"] == "hot"


class TestAggregate:
    def test_groups_commits_by_phase(self):
        report = aggregate(
            [
                _commit("hot", 0.2, 100),
                _commit("hot", 0.4, 50),
                _commit("tail", 0.1, 10),
            ]
        )
        assert set(report.phases) == {"hot", "tail"}
        hot = report.phases["hot"].to_dict()
        assert hot["commits"] == 2
        assert hot["bytes"] == 150
        assert abs(hot["wall_total"] - 0.6) < 1e-9

    def test_unlabeled_commits_get_the_sentinel_phase(self):
        report = aggregate([_commit(None, 0.1, 1)])
        assert list(report.phases) == [UNLABELED]

    def test_counts_fallbacks_retries_escalations(self):
        report = aggregate(
            [
                _commit("hot", 0.1, 1, degraded=True, retries=2),
                _commit("hot", 0.1, 1, escalated=True, compacted=True),
            ]
        )
        hot = report.phases["hot"].to_dict()
        assert hot["fallbacks"] == 1
        assert hot["retries"] == 2
        assert hot["escalations"] == 1
        assert hot["compactions"] == 1

    def test_writer_and_fsck_events_are_counted(self):
        report = aggregate(
            [
                {"type": "writer.drain", "kind": "full"},
                {"type": "writer.drain", "kind": "incremental"},
                {"type": "fsck.repair", "quarantined": 1},
            ]
        )
        assert report.writer_drains == 2
        assert report.fsck_repairs == 1
        assert report.event_counts["writer.drain"] == 2

    def test_percentiles_are_ordered(self):
        records = [_commit("hot", wall / 100.0, 1) for wall in range(1, 101)]
        hot = aggregate(records).phases["hot"].to_dict()
        assert hot["wall_p50"] <= hot["wall_p90"] <= hot["wall_p99"]
        assert hot["wall_p99"] <= hot["wall_max"] == 1.0

    def test_render_mentions_every_phase(self):
        report = aggregate([_commit("hot", 0.1, 1), _commit("tail", 0.1, 1)])
        text = report.render()
        assert "hot" in text and "tail" in text


class TestReplicationAggregate:
    def _records(self):
        return [
            {
                "type": "replica.append",
                "acked": ["r0", "r1"],
                "degraded": ["r2"],
                "quorum": 2,
            },
            {
                "type": "replica.append",
                "acked": ["r0"],
                "degraded": ["r1", "r2"],
                "quorum": 2,
            },
            {"type": "replica.state", "replica": "r2", "old": "healthy", "new": "suspect"},
            {"type": "replica.state", "replica": "r2", "old": "suspect", "new": "fenced"},
            {"type": "replica.probe", "replica": "r2"},
            {"type": "scrub.repair", "replica": "r2", "index": 3},
            {"type": "scrub.repair", "replica": "r2", "index": 4},
            {"type": "scrub.done", "quarantined": 2, "unrepairable": 0},
        ]

    def test_folds_replication_events(self):
        report = aggregate(self._records())
        repl = report.replication
        assert not repl.empty
        assert repl.acks == {"r0": 2, "r1": 1}
        assert repl.degraded_commits == 2
        assert repl.quorum_losses == 1  # the single-ack commit
        assert repl.transitions == {
            "r2 healthy->suspect": 1,
            "r2 suspect->fenced": 1,
        }
        assert repl.probes == {"r2": 1}
        assert repl.scrub_repairs == {"r2": 2}
        assert repl.scrub_runs == 1
        assert repl.scrub_quarantined == 2

    def test_to_dict_and_render(self):
        report = aggregate(self._records())
        data = report.to_dict()["replication"]
        assert data["acks"] == {"r0": 2, "r1": 1}
        text = report.render()
        assert "replication:" in text
        assert "breaker r2 suspect->fenced" in text
        assert "scrub: 1 run(s)" in text

    def test_empty_replication_is_omitted_from_render(self):
        report = aggregate([_commit("hot", 0.1, 1)])
        assert report.replication.empty
        assert "replication:" not in report.render()


class TestReportFiles:
    def test_report_file_and_save_json_round_trip(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        with open(trace, "w", encoding="utf-8") as handle:
            for record in (_commit("hot", 0.2, 64), _commit("hot", 0.1, 32)):
                handle.write(json.dumps(record) + "\n")
        report = report_file(str(trace))
        out = tmp_path / "report.json"
        save_json(report, str(out))
        parsed = json.loads(out.read_text())
        assert parsed["records"] == 2
        assert parsed["phases"]["hot"]["commits"] == 2


class TestCli:
    def test_report_command_renders_a_trace(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        trace = tmp_path / "trace.jsonl"
        trace.write_text(json.dumps(_commit("hot", 0.1, 10)) + "\n")
        assert main(["report", str(trace)]) == 0
        assert "hot" in capsys.readouterr().out

    def test_report_command_fails_on_an_empty_trace(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        trace = tmp_path / "empty.jsonl"
        trace.write_text("")
        assert main(["report", str(trace)]) == 1

    def test_workload_command_produces_a_parsable_trace(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.json"
        assert (
            main(
                [
                    "workload",
                    "--structures",
                    "4",
                    "--epochs",
                    "6",
                    "--out",
                    str(trace),
                    "--metrics-out",
                    str(metrics),
                ]
            )
            == 0
        )
        records = read_trace(str(trace))
        commits = [r for r in records if r["type"] == "commit.end"]
        assert len(commits) == 6  # base + 5 steps
        snapshot = json.loads(metrics.read_text())
        assert any(
            key.startswith("commit_seconds") for key in snapshot["histograms"]
        )
        assert any(
            key.startswith("commits_total") for key in snapshot["counters"]
        )
