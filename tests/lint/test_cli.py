"""Tests for the ``python -m repro.lint`` command line."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint.cli import main

FIXTURES = Path(__file__).resolve().parent / "fixtures"
REPO = Path(__file__).resolve().parents[2]


def run_cli(argv, capsys):
    code = main(argv)
    return code, capsys.readouterr().out


class TestInProcess:
    def test_unsound_fixture_is_an_error(self, capsys):
        code, out = run_cli([str(FIXTURES / "unsound_pattern.py")], capsys)
        assert code == 1
        assert "unsound-pattern" in out
        assert "('right',)" in out
        # the finding points at the violating write, with a line number
        assert "unsound_pattern.py" in out

    def test_overwide_fixture_is_a_hint(self, capsys):
        code, out = run_cli([str(FIXTURES / "overwide_pattern.py")], capsys)
        assert code == 0
        assert "overwide-pattern" in out
        assert "unsound" not in out

    def test_json_output(self, capsys):
        code, out = run_cli([str(FIXTURES), "--format", "json"], capsys)
        assert code == 1
        data = json.loads(out)
        assert data["targets"] == 2
        codes = {finding["code"] for finding in data["findings"]}
        assert "unsound-pattern" in codes
        assert "overwide-pattern" in codes
        assert data["counts"]["error"] >= 1
        assert data["counts"]["hint"] >= 1

    def test_no_import_skips_target_checks(self, capsys):
        code, out = run_cli(
            ["--no-import", str(FIXTURES / "unsound_pattern.py")], capsys
        )
        assert code == 0
        assert "unsound-pattern" not in out

    def test_source_rules_flag_protocol_bypasses(self, tmp_path, capsys):
        bad = tmp_path / "bypasses.py"
        bad.write_text(
            "def mutate(obj):\n"
            "    obj._f_value = 1\n"
            "    obj._ckpt_info.modified = True\n"
        )
        code, out = run_cli([str(bad)], capsys)
        assert code == 0  # warnings alone do not fail
        assert "slot-write" in out
        assert "flag-write" in out

    def test_strict_promotes_warnings(self, tmp_path, capsys):
        bad = tmp_path / "bypasses.py"
        bad.write_text("def mutate(obj):\n    obj._f_value = 1\n")
        code, _out = run_cli(["--strict", str(bad)], capsys)
        assert code == 1

    def test_syntax_error_is_reported(self, tmp_path, capsys):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n")
        code, out = run_cli(["--no-import", str(bad)], capsys)
        assert code == 1
        assert "syntax-error" in out

    def test_missing_path_exits_2(self, capsys):
        code = main([str(FIXTURES / "does_not_exist.py")])
        assert code == 2

    def test_import_failure_is_reported(self, tmp_path, capsys):
        bad = tmp_path / "unimportable.py"
        bad.write_text("raise RuntimeError('boom at import time')\n")
        code, out = run_cli([str(bad)], capsys)
        assert code == 1
        assert "import-error" in out
        assert "boom at import time" in out

    def test_repeated_runs_share_the_module_cache(self, capsys):
        # importing the same fixture twice must not re-register its
        # checkpointable classes (the registry rejects duplicates)
        first, _ = run_cli([str(FIXTURES / "overwide_pattern.py")], capsys)
        second, _ = run_cli([str(FIXTURES / "overwide_pattern.py")], capsys)
        assert first == 0 and second == 0


class TestRaceRules:
    def test_racy_file_fails_the_lint(self, tmp_path, capsys):
        racy = tmp_path / "racy.py"
        racy.write_text(
            "import threading\n"
            "\n"
            "class Tally:\n"
            "    def __init__(self):\n"
            "        self.lock = threading.Lock()\n"
            "        self.count = 0\n"
            "\n"
            "    def bump(self):\n"
            "        self.count += 1\n"
        )
        code, out = run_cli(["--no-import", str(racy)], capsys)
        assert code == 1
        assert "unguarded-shared-write" in out

    def test_no_races_flag_skips_the_pass(self, tmp_path, capsys):
        racy = tmp_path / "racy.py"
        racy.write_text(
            "import threading\n"
            "\n"
            "class Tally:\n"
            "    def __init__(self):\n"
            "        self.lock = threading.Lock()\n"
            "        self.count = 0\n"
            "\n"
            "    def bump(self):\n"
            "        self.count += 1\n"
        )
        code, out = run_cli(["--no-import", "--no-races", str(racy)], capsys)
        assert code == 0
        assert "unguarded-shared-write" not in out

    def test_race_ok_annotation_suppresses_with_provenance(
        self, tmp_path, capsys
    ):
        racy = tmp_path / "annotated.py"
        racy.write_text(
            "import threading\n"
            "\n"
            "class Tally:\n"
            "    def __init__(self):\n"
            "        self.lock = threading.Lock()\n"
            "        self.count = 0\n"
            "\n"
            "    def bump(self):\n"
            "        self.count += 1  # race-ok: approximate counter\n"
        )
        code, out = run_cli(["--no-import", str(racy)], capsys)
        assert code == 0
        assert "unguarded-shared-write" not in out


_ALIASED = (
    "from repro.core.checkpointable import Checkpointable\n"
    "from repro.core.fields import child, scalar\n"
    "\n"
    "class AliasLeafL(Checkpointable):\n"
    "    value = scalar('int')\n"
    "\n"
    "class AliasNodeL(Checkpointable):\n"
    "    kid = child(AliasLeafL)\n"
    "\n"
    "def poke(node: AliasNodeL):\n"
    "    node.kid._f_value = 5\n"
)


class TestAliasRules:
    def test_alias_bug_fails_the_lint(self, tmp_path, capsys):
        bad = tmp_path / "aliased.py"
        bad.write_text(_ALIASED)
        code, out = run_cli(["--no-import", str(bad)], capsys)
        assert code == 1
        assert "alias-write-bypasses-flag" in out

    def test_no_aliases_flag_skips_the_pass(self, tmp_path, capsys):
        bad = tmp_path / "aliased.py"
        bad.write_text(_ALIASED)
        code, out = run_cli(
            ["--no-import", "--no-aliases", str(bad)], capsys
        )
        assert code == 0
        assert "alias-write-bypasses-flag" not in out

    def test_alias_ok_annotation_suppresses(self, tmp_path, capsys):
        bad = tmp_path / "annotated_alias.py"
        bad.write_text(
            _ALIASED.replace(
                "    node.kid._f_value = 5\n",
                "    # alias-ok: exercised by the suppression test\n"
                "    node.kid._f_value = 5\n",
            )
        )
        code, out = run_cli(["--no-import", str(bad)], capsys)
        assert code == 0
        assert "alias-write-bypasses-flag" not in out

    def test_identical_findings_are_deduped(self, tmp_path, capsys):
        from repro.lint.findings import Finding, dedupe_findings

        findings = [
            Finding("error", "x-code", "same message", "f.py", 3),
            Finding("error", "x-code", "same message", "f.py", 3),
            Finding("error", "x-code", "other message", "f.py", 3),
        ]
        assert len(dedupe_findings(findings)) == 2
        # and the CLI output carries no duplicate rows
        bad = tmp_path / "aliased.py"
        bad.write_text(_ALIASED)
        code, out = run_cli(
            ["--no-import", "--format", "json", str(bad)], capsys
        )
        assert code == 1
        data = json.loads(out)
        rows = [
            (f["code"], f["file"], f["line"], f["message"])
            for f in data["findings"]
        ]
        assert len(rows) == len(set(rows))


class TestRelativePaths:
    def test_json_paths_under_cwd_are_relative(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO)
        code, out = run_cli(
            [str(FIXTURES / "unsound_pattern.py"), "--format", "json"],
            capsys,
        )
        assert code == 1
        data = json.loads(out)
        files = [f["file"] for f in data["findings"] if f["file"]]
        assert files, "expected findings with file locations"
        assert all(not f.startswith("/") for f in files)
        assert any(f.startswith("tests/lint/fixtures") for f in files)

    def test_paths_outside_cwd_stay_absolute(self, tmp_path, capsys):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n")
        code, out = run_cli(
            ["--no-import", str(bad), "--format", "json"], capsys
        )
        assert code == 1
        data = json.loads(out)
        files = [f["file"] for f in data["findings"] if f["file"]]
        assert files == [str(bad)]


class TestSubprocess:
    def _run(self, *args):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src")
        return subprocess.run(
            [sys.executable, "-m", "repro.lint", *args],
            capture_output=True,
            text=True,
            env=env,
            cwd=str(REPO),
        )

    def test_unsound_fixture_exits_nonzero(self):
        result = self._run(str(FIXTURES / "unsound_pattern.py"))
        assert result.returncode == 1
        assert "unsound-pattern" in result.stdout

    def test_overwide_fixture_exits_zero(self):
        result = self._run(str(FIXTURES / "overwide_pattern.py"))
        assert result.returncode == 0
        assert "overwide-pattern" in result.stdout

    def test_src_and_examples_are_clean(self):
        # the exact invocation CI runs
        result = self._run("src", "examples")
        assert result.returncode == 0, result.stdout + result.stderr
