"""Tests for whole-program lint targets (``LINT_PROGRAMS`` / ProgramTarget)."""

import json
from pathlib import Path

import pytest

from repro.core.checkpointable import Checkpointable
from repro.core.errors import SpecializationError
from repro.core.fields import child, scalar
from repro.lint import ProgramTarget
from repro.lint.cli import main
from repro.lint.targets import programs_of
from repro.spec import ModificationPattern, Shape

FIXTURES = Path(__file__).resolve().parent / "fixtures"


def run_cli(argv, capsys):
    code = main(argv)
    return code, capsys.readouterr().out


class TestProgramFixtures:
    def test_clean_program_exits_zero_with_redundancy_hint(self, capsys):
        code, out = run_cli([str(FIXTURES / "program_clean.py")], capsys)
        assert code == 0
        assert "pattern-redundant" in out
        assert "1 program(s)" in out
        assert "error" not in out and "warning" not in out

    def test_violations_trip_every_whole_program_rule(self, capsys):
        code, out = run_cli(
            [str(FIXTURES / "program_violations.py")], capsys
        )
        assert code == 1
        assert "unsound-pattern" in out
        assert "escape-to-unknown" in out
        assert "commit-outside-phase" in out
        # the unsound finding points at the violating write's line
        assert "('right',)" in out

    def test_json_counts_programs_separately(self, capsys):
        code, out = run_cli([str(FIXTURES), "--format", "json"], capsys)
        assert code == 1
        data = json.loads(out)
        assert data["programs"] == 2
        assert data["targets"] == 2  # the per-phase fixtures, unchanged
        codes = {finding["code"] for finding in data["findings"]}
        assert "escape-to-unknown" in codes
        assert "commit-outside-phase" in codes

    def test_no_import_skips_program_checks(self, capsys):
        code, out = run_cli(
            ["--no-import", str(FIXTURES / "program_violations.py")], capsys
        )
        assert code == 0
        assert "escape-to-unknown" not in out


class _PTLeaf(Checkpointable):
    value = scalar("int")


class _PTRoot(Checkpointable):
    leaf = child(_PTLeaf)


def _driver(root, session):
    session.commit(phase="p", roots=[root])


class TestProgramTargetValidation:
    def _shape(self):
        return Shape.of(_PTRoot(leaf=_PTLeaf(value=0)))

    def test_exactly_one_of_shape_and_prototype(self):
        shape = self._shape()
        with pytest.raises(SpecializationError, match="exactly one"):
            ProgramTarget("bad", driver=_driver)
        with pytest.raises(SpecializationError, match="exactly one"):
            ProgramTarget(
                "bad",
                shape=shape,
                prototype=_PTRoot(leaf=_PTLeaf(value=0)),
                driver=_driver,
            )

    def test_driver_is_required(self):
        with pytest.raises(SpecializationError, match="driver"):
            ProgramTarget("bad", shape=self._shape())

    def test_declared_pattern_must_share_the_shape_object(self):
        shape = self._shape()
        other = self._shape()
        with pytest.raises(SpecializationError, match="different shape"):
            ProgramTarget(
                "bad",
                shape=shape,
                driver=_driver,
                declared={"p": ModificationPattern.all_dynamic(other)},
            )

    def test_prototype_convenience_derives_the_shape(self):
        target = ProgramTarget(
            "ok", prototype=_PTRoot(leaf=_PTLeaf(value=0)), driver=_driver
        )
        assert isinstance(target.shape, Shape)


class TestProgramsOf:
    def test_reads_lint_programs(self):
        class FakeModule:
            LINT_PROGRAMS = [
                ProgramTarget(
                    "ok",
                    prototype=_PTRoot(leaf=_PTLeaf(value=0)),
                    driver=_driver,
                )
            ]

        targets = programs_of(FakeModule)
        assert [t.name for t in targets] == ["ok"]

    def test_missing_attribute_means_no_programs(self):
        class Empty:
            pass

        assert programs_of(Empty) == []

    def test_wrong_type_is_rejected(self):
        class Bad:
            LINT_PROGRAMS = ["not a target"]

        with pytest.raises(SpecializationError):
            programs_of(Bad)
