"""Lint fixture: a whole-program target the analysis proves clean.

The driver labels its single commit, the declared pattern matches the
inferred one exactly, and nothing escapes the analysis — linting this
file must exit 0, count one program, and emit only a
``pattern-redundant`` hint (the declaration is provably unnecessary).
"""

from repro.core.checkpointable import Checkpointable
from repro.core.fields import child, scalar
from repro.lint import ProgramTarget
from repro.spec import ModificationPattern, Shape


class PCLeaf(Checkpointable):
    value = scalar("int")


class PCRoot(Checkpointable):
    tick = scalar("int")
    leaf = child(PCLeaf)


PROTO = PCRoot(tick=0, leaf=PCLeaf(value=1))
SHAPE = Shape.of(PROTO)


def driver(root: PCRoot, session) -> None:
    session.base(roots=[root])
    root.leaf.value += 1
    session.commit(phase="bump", roots=[root])


LINT_PROGRAMS = [
    ProgramTarget(
        "clean-driver",
        shape=SHAPE,
        driver=driver,
        roots=["root"],
        declared={"bump": ModificationPattern.only(SHAPE, [("leaf",)])},
    ),
]
