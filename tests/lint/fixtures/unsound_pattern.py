"""Lint fixture: a declared pattern the static analysis proves UNSOUND.

The phase writes both children, but the pattern only admits ``left`` —
compiled unguarded, the specialization would silently drop every write to
``right`` from every checkpoint. ``python -m repro.lint`` on this file
must report an ``unsound-pattern`` error and exit nonzero.
"""

from repro.core.checkpointable import Checkpointable
from repro.core.fields import child, scalar
from repro.lint import LintTarget
from repro.spec import ModificationPattern, Shape


class USLeaf(Checkpointable):
    value = scalar("int")


class USRoot(Checkpointable):
    counter = scalar("int")
    left = child(USLeaf)
    right = child(USLeaf)


PROTO = USRoot(counter=0, left=USLeaf(value=1), right=USLeaf(value=2))
SHAPE = Shape.of(PROTO)


def phase(root: USRoot) -> None:
    root.left.value += 1
    root.right.value += 1  # not covered by DECLARED: the unsound write


DECLARED = ModificationPattern.only(SHAPE, [("left",)])

LINT_TARGETS = [
    LintTarget("unsound-demo", shape=SHAPE, phases=[phase], pattern=DECLARED),
]
