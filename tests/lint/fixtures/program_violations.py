"""Lint fixture: one driver tripping every whole-program rule.

- ``copy.deepcopy(root.left)`` escapes the analysis → ``escape-to-unknown``
- an unlabeled ``session.commit()`` among several → ``commit-outside-phase``
- the pattern declared for ``tail`` misses the ``right`` write →
  ``unsound-pattern`` (error: linting this file must exit nonzero)
"""

import copy

from repro.core.checkpointable import Checkpointable
from repro.core.fields import child, scalar
from repro.lint import ProgramTarget
from repro.spec import ModificationPattern, Shape


class PVLeaf(Checkpointable):
    value = scalar("int")


class PVRoot(Checkpointable):
    counter = scalar("int")
    left = child(PVLeaf)
    right = child(PVLeaf)


PROTO = PVRoot(counter=0, left=PVLeaf(value=1), right=PVLeaf(value=2))
SHAPE = Shape.of(PROTO)


def driver(root: PVRoot, session) -> None:
    session.base(roots=[root])
    copy.deepcopy(root.left)  # escapes: the left subtree is widened
    session.commit(phase="fuzzy", roots=[root])
    root.counter += 1
    session.commit(roots=[root])  # unlabeled: no phase can own this epoch
    root.right.value += 1
    session.commit(phase="tail", roots=[root])


LINT_PROGRAMS = [
    ProgramTarget(
        "violating-driver",
        shape=SHAPE,
        driver=driver,
        roots=["root"],
        # unsound: the tail region writes ('right',), not ('left',)
        declared={"tail": ModificationPattern.only(SHAPE, [("left",)])},
    ),
]
