"""Lint fixture: a sound but OVER-WIDE pattern declaration.

The phase only writes ``left``, yet the pattern declares every position
dynamic. That is safe — every write is covered — but slower than needed:
the specializer keeps tests and record blocks for positions the analysis
proves quiescent. ``python -m repro.lint`` on this file must report
``overwide-pattern`` hints and exit 0.
"""

from repro.core.checkpointable import Checkpointable
from repro.core.fields import child, scalar
from repro.lint import LintTarget
from repro.spec import ModificationPattern, Shape


class OWLeaf(Checkpointable):
    value = scalar("int")


class OWRoot(Checkpointable):
    counter = scalar("int")
    left = child(OWLeaf)
    right = child(OWLeaf)


PROTO = OWRoot(counter=0, left=OWLeaf(value=1), right=OWLeaf(value=2))
SHAPE = Shape.of(PROTO)


def phase(root: OWRoot) -> None:
    root.left.value += 1


DECLARED = ModificationPattern.all_dynamic(SHAPE)

LINT_TARGETS = [
    LintTarget("overwide-demo", shape=SHAPE, phases=[phase], pattern=DECLARED),
]
