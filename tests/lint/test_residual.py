"""Tests for the residual-program verifier.

The verifier must accept everything the real specializer emits (it runs
on every compile) and reject hand-broken residual programs — each broken
program models one way a specializer bug could silently drop data or
corrupt the checkpoint stream.
"""

import pytest

from repro.core.errors import ResidualVerificationError
from repro.spec import (
    ModificationPattern,
    Shape,
    SpecClass,
    SpecializedCheckpointer,
    ir,
    verify_residual,
)
from repro.spec.pe import Specializer
from tests.conftest import build_root


@pytest.fixture(scope="module")
def shape():
    return Shape.of(build_root())


def _patterns(shape):
    return {
        "all_dynamic": ModificationPattern.all_dynamic(shape),
        "none": ModificationPattern.none_modified(shape),
        "leaf_only": ModificationPattern.only(shape, [("mid", "leaf")]),
        "kids": ModificationPattern.only(
            shape, [(("kids", 0),), (("kids", 1),)]
        ),
        "subtree": ModificationPattern.subtrees(shape, [("mid",)]),
    }


def _residual(shape, pattern, guards=False):
    return Specializer(shape, pattern, guards=guards).specialize()


def _record_if_indices(residual):
    return [
        index
        for index, stmt in enumerate(residual.stmts)
        if isinstance(stmt, ir.If)
    ]


class TestAcceptsSpecializerOutput:
    @pytest.mark.parametrize("guards", [False, True])
    @pytest.mark.parametrize(
        "name", ["all_dynamic", "none", "leaf_only", "kids", "subtree"]
    )
    def test_verifies_and_reports_recorded_paths(self, shape, name, guards):
        pattern = _patterns(shape)[name]
        residual = _residual(shape, pattern, guards=guards)
        recorded = verify_residual(residual, shape, pattern, guards)
        assert set(recorded) == set(pattern.may_modify_paths())

    def test_none_pattern_pairs_with_cleanup_off(self, shape):
        # cleanup=False keeps dead bindings; the verifier only demands
        # single assignment and use-before-def, not minimality
        pattern = _patterns(shape)["leaf_only"]
        residual = Specializer(shape, pattern, cleanup=False).specialize()
        recorded = verify_residual(residual, shape, pattern, guards=False)
        assert set(recorded) == {("mid", "leaf")}

    def test_compiler_hook_exposes_recorded_paths(self, shape):
        pattern = _patterns(shape)["kids"]
        compiled = SpecializedCheckpointer(
            SpecClass(shape, pattern, name="verify_hook")
        )
        assert set(compiled.recorded_paths) == set(pattern.may_modify_paths())


class TestRejectsBrokenResiduals:
    def test_dropped_record_block(self, shape):
        pattern = _patterns(shape)["all_dynamic"]
        residual = _residual(shape, pattern)
        index = _record_if_indices(residual)[-1]
        broken = ir.Seq(
            residual.stmts[:index] + residual.stmts[index + 1 :]
        )
        with pytest.raises(ResidualVerificationError, match="dropped subtree"):
            verify_residual(broken, shape, pattern, guards=False)

    def test_missing_flag_reset(self, shape):
        pattern = _patterns(shape)["leaf_only"]
        residual = _residual(shape, pattern)
        index = _record_if_indices(residual)[0]
        block = residual.stmts[index]
        truncated = ir.If(block.cond, ir.Seq(block.then.stmts[:-1]))
        broken = ir.Seq(
            residual.stmts[:index]
            + [truncated]
            + residual.stmts[index + 1 :]
        )
        with pytest.raises(
            ResidualVerificationError, match="resetting the flag"
        ):
            verify_residual(broken, shape, pattern, guards=False)

    def test_wrong_id_write_kind(self, shape):
        pattern = _patterns(shape)["leaf_only"]
        residual = _residual(shape, pattern)
        index = _record_if_indices(residual)[0]
        block = residual.stmts[index]
        body = list(block.then.stmts)
        body[0] = ir.Write("float", body[0].expr)
        broken = ir.Seq(
            residual.stmts[:index]
            + [ir.If(block.cond, ir.Seq(body))]
            + residual.stmts[index + 1 :]
        )
        with pytest.raises(ResidualVerificationError):
            verify_residual(broken, shape, pattern, guards=False)

    def test_record_block_on_quiescent_position(self, shape):
        wide = _patterns(shape)["all_dynamic"]
        narrow = _patterns(shape)["leaf_only"]
        residual = _residual(shape, wide)
        with pytest.raises(ResidualVerificationError, match="quiescent"):
            verify_residual(residual, shape, narrow, guards=False)

    def test_guard_in_unguarded_compile(self, shape):
        pattern = _patterns(shape)["leaf_only"]
        residual = _residual(shape, pattern, guards=True)
        with pytest.raises(ResidualVerificationError, match="unguarded"):
            verify_residual(residual, shape, pattern, guards=False)

    def test_surviving_unspecialized_construct(self, shape):
        pattern = _patterns(shape)["leaf_only"]
        residual = _residual(shape, pattern)
        broken = ir.Seq(
            list(residual.stmts) + [ir.FoldChildren(ir.Var("root"))]
        )
        with pytest.raises(
            ResidualVerificationError, match="unspecialized construct"
        ):
            verify_residual(broken, shape, pattern, guards=False)

    def test_variable_bound_twice(self, shape):
        pattern = _patterns(shape)["leaf_only"]
        residual = _residual(shape, pattern)
        broken = ir.Seq(
            [ir.Assign("root", ir.Const(1))] + list(residual.stmts)
        )
        with pytest.raises(ResidualVerificationError, match="bound twice"):
            verify_residual(broken, shape, pattern, guards=False)

    def test_use_before_assignment(self, shape):
        pattern = _patterns(shape)["leaf_only"]
        broken = ir.Seq([ir.Write("int", ir.Var("n99"))])
        with pytest.raises(
            ResidualVerificationError, match="before assignment"
        ):
            verify_residual(broken, shape, pattern, guards=False)

    def test_stray_flag_reset_outside_record_block(self, shape):
        pattern = _patterns(shape)["leaf_only"]
        residual = _residual(shape, pattern)
        stray = ir.SetAttr(
            ir.FieldGet(ir.Var("root"), "_ckpt_info"),
            "modified",
            ir.Const(False),
        )
        broken = ir.Seq(list(residual.stmts) + [stray])
        with pytest.raises(ResidualVerificationError, match="stray"):
            verify_residual(broken, shape, pattern, guards=False)
