"""Tests for the source-rule exemption list (path-component matching).

``repro/core`` implements the tracking protocol, so its own flag and
slot writes are exempt from the bypass rules — but the exemption must
match *path components*, not substrings: a user package named
``myrepro/core`` or a file called ``repro_core.py`` is not the framework.
"""

from repro.lint.rules import is_exempt


class TestExemptPaths:
    def test_framework_package_is_exempt(self):
        assert is_exempt("src/repro/core/info.py")
        assert is_exempt("repro/core/checkpoint.py")
        assert is_exempt("/abs/path/src/repro/core/fields.py")

    def test_leading_dot_segments_are_ignored(self):
        assert is_exempt("./src/repro/core/info.py")

    def test_windows_separators_are_normalized(self):
        assert is_exempt("src\\repro\\core\\info.py")

    def test_lookalike_packages_are_not_exempt(self):
        assert not is_exempt("myrepro/core/info.py")
        assert not is_exempt("src/repro_core/info.py")
        assert not is_exempt("repro/coreutils/info.py")

    def test_component_order_matters(self):
        assert not is_exempt("core/repro/info.py")

    def test_the_components_must_be_adjacent(self):
        assert not is_exempt("repro/other/core/info.py")

    def test_filename_is_not_a_directory_component(self):
        # 'core' here is the file, not a package directory
        assert not is_exempt("repro/core.py")

    def test_other_repro_modules_are_not_exempt(self):
        assert not is_exempt("src/repro/runtime/session.py")
        assert not is_exempt("src/repro/lint/rules.py")
