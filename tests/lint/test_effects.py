"""Unit tests for the static modification-effect analysis + soundness diff."""

import copy

import pytest

from repro.core.errors import EffectAnalysisError, SpecializationError
from repro.spec import ModificationPattern, Shape, analyze_effects, check_pattern
from tests.conftest import Mid, Root, build_root


@pytest.fixture(scope="module")
def shape():
    return Shape.of(build_root())


# -- phases under analysis (module level: the analyzer needs their source) --


def phase_direct(root: Root):
    root.mid.leaf.value += 1


def phase_alias(root: Root):
    m = root.mid
    leaf = m.leaf
    leaf.value = 3


def phase_loop(root: Root):
    for kid in root.kids:
        kid.value += 1


def phase_scalar_list(root: Root):
    root.mid.notes.append(4)


def _helper(mid: Mid):
    mid.leaf.value = 0


def phase_interproc(root: Root):
    _helper(root.mid)


def phase_opaque(root: Root):
    copy.deepcopy(root)


def phase_pure(root: Root):
    total = root.mid.leaf.value + len(root.kids._items)
    return total


def phase_unannotated(structure, rounds):
    structure.extra.value = rounds


def phase_conditional(root: Root):
    if root.mid.leaf.flag:
        root.extra.value = 1
    else:
        root.name = "off"


class TestAnalysis:
    def test_direct_write(self, shape):
        report = analyze_effects(shape, [phase_direct])
        assert report.may_write == {("mid", "leaf")}
        assert report.is_exact()

    def test_alias_chain(self, shape):
        report = analyze_effects(shape, [phase_alias])
        assert report.may_write == {("mid", "leaf")}

    def test_list_iteration(self, shape):
        report = analyze_effects(shape, [phase_loop])
        assert report.may_write == {(("kids", 0),), (("kids", 1),)}

    def test_scalar_list_mutation_flags_owner(self, shape):
        report = analyze_effects(shape, [phase_scalar_list])
        assert report.may_write == {("mid",)}

    def test_interprocedural(self, shape):
        report = analyze_effects(shape, [phase_interproc])
        assert report.may_write == {("mid", "leaf")}
        assert report.is_exact()

    def test_opaque_call_taints_subtree(self, shape):
        report = analyze_effects(shape, [phase_opaque])
        assert not report.is_exact()
        # the root escaped, so every reachable position may be written
        assert report.may_write == frozenset(shape.paths())

    def test_pure_reads_leave_no_effects(self, shape):
        report = analyze_effects(shape, [phase_pure])
        assert report.may_write == frozenset()
        assert report.proves_quiescent(("mid", "leaf"))

    def test_conditional_joins_branches(self, shape):
        report = analyze_effects(shape, [phase_conditional])
        assert report.may_write == {("extra",), ()}

    def test_multiple_phases_union(self, shape):
        report = analyze_effects(shape, [phase_direct, phase_loop])
        assert report.may_write == {
            ("mid", "leaf"),
            (("kids", 0),),
            (("kids", 1),),
        }

    def test_roots_parameter_binding(self, shape):
        report = analyze_effects(
            shape, [phase_unannotated], roots=["structure"]
        )
        assert report.may_write == {("extra",)}

    def test_single_parameter_fallback(self, shape):
        def_only = analyze_effects(shape, [phase_direct])
        assert def_only.may_write == {("mid", "leaf")}

    def test_unbindable_root_raises(self, shape):
        with pytest.raises(EffectAnalysisError):
            analyze_effects(shape, [phase_unannotated])

    def test_source_unavailable_raises(self, shape):
        with pytest.raises(EffectAnalysisError):
            analyze_effects(shape, [len])

    def test_evidence_has_locations(self, shape):
        report = analyze_effects(shape, [phase_direct])
        sites = report.evidence(("mid", "leaf"))
        assert sites
        assert sites[0].filename.endswith("test_effects.py")
        assert sites[0].lineno > 0
        assert "value" in sites[0].reason

    def test_inferred_pattern_is_usable(self, shape):
        report = analyze_effects(shape, [phase_direct])
        pattern = report.pattern()
        assert pattern.may_modify_paths() == {("mid", "leaf")}
        assert pattern.shape is shape


class TestSoundness:
    def test_sound_and_exact(self, shape):
        report = analyze_effects(shape, [phase_direct])
        declared = ModificationPattern.only(shape, [("mid", "leaf")])
        verdict = check_pattern(declared, report)
        assert verdict.sound
        assert verdict.exact
        assert verdict.unsound == []
        assert verdict.overwide == []

    def test_unsound_with_evidence(self, shape):
        report = analyze_effects(shape, [phase_direct, phase_loop])
        declared = ModificationPattern.only(shape, [("mid", "leaf")])
        verdict = check_pattern(declared, report)
        assert not verdict.sound
        missed = {path for path, _ in verdict.unsound}
        assert missed == {(("kids", 0),), (("kids", 1),)}
        for _path, site in verdict.unsound:
            assert site is not None and site.lineno > 0

    def test_overwide_is_sound(self, shape):
        report = analyze_effects(shape, [phase_direct])
        declared = ModificationPattern.all_dynamic(shape)
        verdict = check_pattern(declared, report)
        assert verdict.sound
        assert not verdict.exact
        assert set(verdict.overwide) == set(shape.paths()) - {("mid", "leaf")}

    def test_widened_covers_every_write(self, shape):
        report = analyze_effects(shape, [phase_direct, phase_loop])
        declared = ModificationPattern.none_modified(shape)
        verdict = check_pattern(declared, report)
        widened = verdict.widened()
        assert report.may_write <= widened.may_modify_paths()
        # the original declaration is untouched
        assert declared.may_modify_paths() == frozenset()

    def test_shape_mismatch_rejected(self, shape):
        other_shape = Shape.of(build_root())
        report = analyze_effects(shape, [phase_direct])
        declared = ModificationPattern.all_dynamic(other_shape)
        with pytest.raises(SpecializationError):
            check_pattern(declared, report)
