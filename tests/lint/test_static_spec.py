"""End-to-end tests for statically-derived unguarded specialization.

``SpecClass.from_static_analysis`` is the static counterpart of the
dynamic :class:`~repro.spec.autospec.AutoSpecializer`: the pattern comes
from the effect analysis instead of run-time observation, and because the
analysis over-approximates, the result is compiled **without guards** —
yet must produce byte-identical checkpoints.
"""

import pytest

from repro.core.checkpoint import Checkpoint, collect_objects, reset_flags
from repro.core.errors import UnsoundPatternError
from repro.core.streams import DataOutputStream
from repro.spec import ModificationPattern, Shape, SpecClass, SpecCompiler
from repro.synthetic.structures import build_structure
from tests.conftest import Root, build_root


def phase_writes(root: Root):
    root.mid.leaf.value += 10
    root.kids[1].value = 99
    root.name = "renamed"


def _generic(root):
    driver = Checkpoint()
    driver.checkpoint(root)
    return driver.getvalue()


def _run(fn, root):
    out = DataOutputStream()
    fn(root, out)
    return out.getvalue()


def _snapshot_flags(root):
    return [
        (o._ckpt_info, o._ckpt_info.modified) for o in collect_objects(root)
    ]


def _restore_flags(snapshot):
    for info, modified in snapshot:
        if modified:
            info.set_modified()
        else:
            info.reset_modified()


class TestFromStaticAnalysis:
    def test_infers_exact_pattern_and_drops_guards(self):
        shape = Shape.of(build_root())
        spec = SpecClass.from_static_analysis(
            shape, [phase_writes], name="static_infer"
        )
        assert spec.guards is False
        assert spec.pattern.may_modify_paths() == {
            (),
            ("mid", "leaf"),
            (("kids", 1),),
        }
        assert spec.static_report is not None
        assert spec.static_report.is_exact()

    def test_bytes_identical_to_generic(self):
        root = build_root()
        shape = Shape.of(root)
        reset_flags(root)
        phase_writes(root)

        spec = SpecClass.from_static_analysis(
            shape, [phase_writes], name="static_generic_eq"
        )
        fn = SpecCompiler().compile(spec)

        snapshot = _snapshot_flags(root)
        expected = _generic(root)
        _restore_flags(snapshot)
        assert _run(fn, root) == expected

    def test_bytes_identical_to_guarded_dynamic_path(self):
        root = build_root()
        shape = Shape.of(root)
        reset_flags(root)
        phase_writes(root)

        static_spec = SpecClass.from_static_analysis(
            shape, [phase_writes], name="static_vs_guarded"
        )
        compiler = SpecCompiler()
        unguarded = compiler.compile(static_spec)
        guarded = compiler.compile(
            SpecClass(
                shape, static_spec.pattern, name="guarded_twin", guards=True
            )
        )
        assert "Guard" not in type(unguarded).__name__  # sanity only
        snapshot = _snapshot_flags(root)
        guarded_bytes = _run(guarded, root)
        _restore_flags(snapshot)
        assert _run(unguarded, root) == guarded_bytes
        # and the unguarded source really carries no runtime checks
        assert "PatternViolationError" not in unguarded.source
        assert "PatternViolationError" in guarded.source

    def test_unsound_declared_pattern_raises(self):
        shape = Shape.of(build_root())
        declared = ModificationPattern.only(shape, [("mid", "leaf")])
        with pytest.raises(UnsoundPatternError) as exc:
            SpecClass.from_static_analysis(
                shape, [phase_writes], name="static_unsound", declared=declared
            )
        assert "kids" in str(exc.value)

    def test_sound_declared_pattern_is_kept(self):
        shape = Shape.of(build_root())
        declared = ModificationPattern.all_dynamic(shape)
        spec = SpecClass.from_static_analysis(
            shape, [phase_writes], name="static_sound", declared=declared
        )
        assert spec.pattern is declared


def synthetic_phase(structure):
    structure.list0.v0 += 1
    structure.list1.v0 += 2


class TestSyntheticStructures:
    """The paper's benchmark layout, specialized from the analysis."""

    def test_byte_identical_on_synthetic_structure(self):
        structure = build_structure(num_lists=3, list_length=4, ints_per_element=2)
        shape = Shape.of(structure)
        reset_flags(structure)
        synthetic_phase(structure)

        spec = SpecClass.from_static_analysis(
            shape,
            [synthetic_phase],
            name="static_synth",
            roots=["structure"],
        )
        # only the two touched list heads are in the pattern
        assert spec.pattern.may_modify_paths() == {("list0",), ("list1",)}
        fn = SpecCompiler().compile(spec)

        snapshot = _snapshot_flags(structure)
        expected = _generic(structure)
        _restore_flags(snapshot)
        assert _run(fn, structure) == expected

    def test_untouched_list_traversal_is_eliminated(self):
        structure = build_structure(num_lists=3, list_length=4, ints_per_element=2)
        shape = Shape.of(structure)
        spec = SpecClass.from_static_analysis(
            shape,
            [synthetic_phase],
            name="static_synth_elim",
            roots=["structure"],
        )
        fn = SpecCompiler().compile(spec)
        # list2 is never written: no residual code mentions its slot
        assert "_f_list2" not in fn.source
        assert "_f_list0" in fn.source
