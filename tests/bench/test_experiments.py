"""Smoke/shape tests for the experiment harness (tiny populations)."""

import pytest

from repro.bench import experiments
from repro.bench.reporting import ExperimentResult, format_table, megabytes

TINY = 40


@pytest.fixture(autouse=True)
def _small_meter_sample(monkeypatch):
    monkeypatch.setattr(experiments, "METER_SAMPLE", TINY)


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(("a", "bb"), [(1, 2.5), ("xx", 0.001)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_experiment_result_render(self):
        result = ExperimentResult("T", "title", ("x",))
        result.add_row(1.0)
        result.add_note("hello")
        rendered = result.render()
        assert "T: title" in rendered and "hello" in rendered

    def test_megabytes(self):
        assert megabytes(2_500_000) == 2.5


class TestSyntheticExperiments:
    def test_fig7_shape(self):
        result = experiments.fig7(structures=TINY)
        assert len(result.rows) == 12  # 2 ints x 2 lengths x 3 percents
        by_label = {row[0]: row[1] for row in result.rows}
        # 100%-modified speedups sit near 1; 25% with 10 ints exceeds 2.
        assert by_label["10 int/elt, len 5, 100% modified"] < 1.3
        assert by_label["10 int/elt, len 5, 25% modified"] > 2.0

    def test_fig8_shape(self):
        result = experiments.fig8(structures=TINY)
        by_label = {row[0]: row[1] for row in result.rows}
        assert 1.1 < by_label["10 int/elt, len 5, 100% modified"] < 2.2
        assert by_label["1 int/elt, len 5, 25% modified"] > 2.0

    def test_fig9_monotone_in_restricted_lists(self):
        result = experiments.fig9(structures=TINY)
        by_label = {row[0]: row[1] for row in result.rows}
        one = by_label["1 int/elt, 1 modifiable lists, 25% modified"]
        five = by_label["1 int/elt, 5 modifiable lists, 25% modified"]
        assert one > five > 1.0

    def test_fig10_exceeds_fig9(self):
        fig9 = experiments.fig9(structures=TINY)
        fig10 = experiments.fig10(structures=TINY)
        nine = {row[0]: row[1] for row in fig9.rows}[
            "1 int/elt, 1 modifiable lists, 25% modified"
        ]
        ten = {row[0]: row[1] for row in fig10.rows}[
            "1 int/elt, len 5, 1 lists, 25% modified"
        ]
        assert ten > nine

    def test_fig11_backend_ordering(self):
        result = experiments.fig11(structures=TINY)
        for row in result.rows:
            label, jdk, hotspot, harissa, _wall = row
            if "1 lists, 25%" in label:
                assert harissa > hotspot > jdk > 1.0

    def test_table2_magnitudes(self):
        result = experiments.table2(structures=TINY)
        assert len(result.rows) == 12  # 3 VMs x 2 codes x 2 list counts
        rows = {(r[0], r[1], r[2]): r[3:] for r in result.rows}
        unspec = rows[("Harissa", "unspecialized", 5)]
        spec = rows[("Harissa", "specialized", 5)]
        assert all(u > s for u, s in zip(unspec, spec))
        # Paper epoch: Harissa unspecialized at 100% in the low seconds.
        assert 1.0 < unspec[0] < 20.0


class TestTable1Experiment:
    def test_table1_rows_and_speedup(self):
        result = experiments.table1()
        assert len(result.rows) == 6
        by_key = {(r[0], r[1]): r for r in result.rows}
        for phase in ("BTA", "ETA"):
            full_row = by_key[(phase, "full")]
            incremental_row = by_key[(phase, "incremental")]
            specialized_row = by_key[(phase, "specialized")]
            assert full_row[3] > incremental_row[3]  # max ckp size
            assert float(specialized_row[7]) > 1.0  # wall speedup
            assert float(specialized_row[8]) > 1.0  # simulated JDK speedup
            # Simulated JDK seconds: full > incremental > specialized.
            assert full_row[6] > incremental_row[6] > specialized_row[6]


class TestPhaseInference:
    def test_inferred_tier_matches_incremental_bytes(self):
        result = experiments.phase_inference(structures=20)
        assert len(result.rows) == 6  # 2 phases x 3 variants
        assert all(row[-1] for row in result.rows)  # byte-identical

    def test_inferred_tier_skips_quiescent_subtrees(self):
        result = experiments.phase_inference(structures=20)
        inferred = [row for row in result.rows if row[1] == "inferred"]
        assert len(inferred) == 2
        assert all(row[4] >= 1 for row in inferred)

    def test_variant_sizes_agree_per_phase(self):
        result = experiments.phase_inference(structures=20)
        for phase in ("hot", "tail"):
            sizes = {row[2] for row in result.rows if row[0] == phase}
            assert len(sizes) == 1
