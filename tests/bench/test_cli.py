"""Tests for the ``python -m repro.bench`` command line."""

import pytest

from repro.bench.__main__ import main


class TestCli:
    def test_single_experiment(self, capsys, monkeypatch):
        from repro.bench import experiments

        monkeypatch.setattr(experiments, "METER_SAMPLE", 20)
        assert main(["fig7", "--structures", "20"]) == 0
        out = capsys.readouterr().out
        assert "Figure 7" in out
        assert "sim speedup" in out
        assert "completed in" in out

    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig99"])
        assert "unknown experiments" in capsys.readouterr().err

    def test_all_expands(self, monkeypatch):
        calls = []
        from repro.bench import __main__ as cli

        class _Fake:
            def __init__(self, name):
                self.name = name

            def __call__(self, paper_scale=False, structures=None):
                calls.append((self.name, paper_scale, structures))
                from repro.bench.reporting import ExperimentResult

                return ExperimentResult(self.name, "t", ("x",))

        monkeypatch.setattr(
            cli, "ALL_EXPERIMENTS", {"a": _Fake("a"), "b": _Fake("b")}
        )
        assert main(["all", "--paper-scale"]) == 0
        assert calls == [("a", True, None), ("b", True, None)]

    def test_structures_override_passed(self, monkeypatch):
        seen = {}
        from repro.bench import __main__ as cli
        from repro.bench.reporting import ExperimentResult

        def fake(paper_scale=False, structures=None):
            seen["structures"] = structures
            return ExperimentResult("x", "t", ("c",))

        monkeypatch.setattr(cli, "ALL_EXPERIMENTS", {"x": fake})
        main(["x", "--structures", "123"])
        assert seen["structures"] == 123

    def test_json_dir_writes_bench_files(self, tmp_path, monkeypatch):
        import json

        from repro.bench import __main__ as cli
        from repro.bench.reporting import ExperimentResult

        def fake(paper_scale=False, structures=None):
            result = ExperimentResult("Table 9", "t", ("c", "d"))
            result.add_row(1, 2.5)
            result.add_note("n")
            return result

        monkeypatch.setattr(cli, "ALL_EXPERIMENTS", {"x": fake})
        assert main(["x", "--json-dir", str(tmp_path)]) == 0
        path = tmp_path / "BENCH_table_9.json"
        assert path.exists()
        data = json.loads(path.read_text())
        assert data["experiment_id"] == "Table 9"
        assert data["headers"] == ["c", "d"]
        assert data["rows"] == [[1, 2.5]]
        assert data["notes"] == ["n"]

    def test_kernels_forwarded_when_given(self, monkeypatch):
        seen = {}
        from repro.bench import __main__ as cli
        from repro.bench.reporting import ExperimentResult

        def fake(paper_scale=False, structures=None, kernels=None):
            seen["kernels"] = kernels
            return ExperimentResult("x", "t", ("c",))

        monkeypatch.setattr(cli, "ALL_EXPERIMENTS", {"x": fake})
        main(["x", "--kernels", "2"])
        assert seen["kernels"] == 2

    def test_table1_smoke_with_reduced_kernels(self, tmp_path, monkeypatch, capsys):
        # The CI smoke invocation, at test scale: must produce a populated
        # machine-readable report.
        import json

        assert main(["table1", "--kernels", "2", "--json-dir", str(tmp_path)]) == 0
        data = json.loads((tmp_path / "BENCH_table_1.json").read_text())
        assert len(data["rows"]) == 6  # 2 phases x 3 strategies
        assert "Table 1" in capsys.readouterr().out
