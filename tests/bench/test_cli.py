"""Tests for the ``python -m repro.bench`` command line."""

import pytest

from repro.bench.__main__ import main


class TestCli:
    def test_single_experiment(self, capsys, monkeypatch):
        from repro.bench import experiments

        monkeypatch.setattr(experiments, "METER_SAMPLE", 20)
        assert main(["fig7", "--structures", "20"]) == 0
        out = capsys.readouterr().out
        assert "Figure 7" in out
        assert "sim speedup" in out
        assert "completed in" in out

    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig99"])
        assert "unknown experiments" in capsys.readouterr().err

    def test_all_expands(self, monkeypatch):
        calls = []
        from repro.bench import __main__ as cli

        class _Fake:
            def __init__(self, name):
                self.name = name

            def __call__(self, paper_scale=False, structures=None):
                calls.append((self.name, paper_scale, structures))
                from repro.bench.reporting import ExperimentResult

                return ExperimentResult(self.name, "t", ("x",))

        monkeypatch.setattr(
            cli, "ALL_EXPERIMENTS", {"a": _Fake("a"), "b": _Fake("b")}
        )
        assert main(["all", "--paper-scale"]) == 0
        assert calls == [("a", True, None), ("b", True, None)]

    def test_structures_override_passed(self, monkeypatch):
        seen = {}
        from repro.bench import __main__ as cli
        from repro.bench.reporting import ExperimentResult

        def fake(paper_scale=False, structures=None):
            seen["structures"] = structures
            return ExperimentResult("x", "t", ("c",))

        monkeypatch.setattr(cli, "ALL_EXPERIMENTS", {"x": fake})
        main(["x", "--structures", "123"])
        assert seen["structures"] == 123
