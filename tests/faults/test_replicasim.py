"""Replica-targeted fault injection and the ReplicaSim matrix."""

import pytest

from repro.core.errors import StorageError
from repro.core.replica import ReplicatedStore, unframe_record
from repro.core.storage import FULL, INCREMENTAL, FileStore, MemoryStore
from repro.faults.inject import FaultyStore, ReplicaFaultStore
from repro.faults.plan import (
    CORRUPT_REPLICA,
    CRASH_AFTER,
    CRASH_RESTORE,
    KILL_REPLICA,
    TORN_REPLICA,
    FaultPlan,
    FaultSpec,
)
from repro.faults.replicasim import (
    REPLICA_PATH,
    ReplicaScenario,
    ReplicaSim,
    build_replica_matrix,
)


def replicated_with_faults(plan, replicas=3, **kwargs):
    children = [
        ReplicaFaultStore(MemoryStore(), plan, ordinal)
        for ordinal in range(replicas)
    ]
    return ReplicatedStore(children, **kwargs), children


class TestReplicaFaultStore:
    def test_kill_makes_replica_raise_oserror(self):
        plan = FaultPlan.single(FaultSpec(1, KILL_REPLICA, replica=0))
        wrapped = ReplicaFaultStore(MemoryStore(), plan, 0)
        wrapped.append(FULL, b"e0")
        with pytest.raises(OSError, match="replica death"):
            wrapped.append(INCREMENTAL, b"e1")
        with pytest.raises(OSError):
            wrapped.epochs()

    def test_spec_only_fires_on_matching_ordinal(self):
        plan = FaultPlan.single(FaultSpec(0, KILL_REPLICA, replica=2))
        bystander = ReplicaFaultStore(MemoryStore(), plan, 0)
        bystander.append(FULL, b"e0")
        assert bystander.injected == []

    def test_corrupt_damages_through_child_framing(self):
        plan = FaultPlan.single(
            FaultSpec(1, CORRUPT_REPLICA, param=7, replica=1)
        )
        store, children = replicated_with_faults(plan)
        store.append(FULL, b"base")
        store.append(INCREMENTAL, b"delta")
        # the damaged copy is readable by the child (its CRC was
        # recomputed by put_epoch) but fails the end-to-end sha256
        raw = children[1].backing.epoch_map()[1].data
        with pytest.raises(Exception):
            unframe_record(raw)
        # the quorum outvotes it
        assert [e.data for e in store.epochs()] == [b"base", b"delta"]

    def test_torn_write_truncates_acked_record(self, tmp_path):
        plan = FaultPlan.single(
            FaultSpec(1, TORN_REPLICA, param=4, replica=0)
        )
        child = FileStore(str(tmp_path / "r0"))
        wrapped = ReplicaFaultStore(child, plan, 0)
        wrapped.append(FULL, b"e0" * 50)
        wrapped.append(INCREMENTAL, b"e1" * 50)
        assert any("tore epoch 1" in note for note in wrapped.injected)
        path = tmp_path / "r0" / "epoch-000001.ckpt"
        assert path.stat().st_size <= 4

    def test_faulty_store_rejects_replica_kinds(self):
        plan = FaultPlan.single(FaultSpec(0, KILL_REPLICA, replica=0))
        with pytest.raises(Exception, match="ReplicaFaultStore"):
            FaultyStore(MemoryStore(), plan)


class TestReplicaScenario:
    def test_session_kinds_rejected(self):
        with pytest.raises(StorageError):
            ReplicaScenario(
                name="bad",
                plan=FaultPlan.single(FaultSpec(0, CRASH_RESTORE)),
            )

    def test_out_of_range_replica_rejected(self):
        with pytest.raises(StorageError, match="targets replica 5"):
            ReplicaScenario(
                name="bad",
                plan=FaultPlan.single(FaultSpec(0, KILL_REPLICA, replica=5)),
            )

    def test_quorum_survival_accounting(self):
        lossy = ReplicaScenario(
            name="x",
            plan=FaultPlan(
                [
                    FaultSpec(0, KILL_REPLICA, replica=0),
                    FaultSpec(1, KILL_REPLICA, replica=2),
                ]
            ),
        )
        assert lossy.killed == 2
        assert lossy.quorum_size == 2
        assert not lossy.quorum_survives
        wide = ReplicaScenario(name="y", plan=lossy.plan, replicas=5)
        assert wide.quorum_survives


class TestBuildReplicaMatrix:
    def test_shape(self):
        scenarios = build_replica_matrix(epochs=6)
        assert len(scenarios) >= 20
        names = [s.name for s in scenarios]
        assert len(set(names)) == len(names)
        assert all(s.path == REPLICA_PATH for s in scenarios)
        assert "replica-quorum-loss" in names
        assert "replica-allack-kill" in names
        assert any(s.replicas == 5 for s in scenarios)

    def test_quorum_survivors_dominate(self):
        scenarios = build_replica_matrix(epochs=6)
        survivors = [s for s in scenarios if s.quorum_survives]
        assert len(survivors) >= len(scenarios) - 2


class TestReplicaSim:
    def run_one(self, tmp_path, scenario):
        sim = ReplicaSim(str(tmp_path))
        return sim.run_scenario(scenario)

    def test_single_kill_recovers_identically(self, tmp_path):
        result = self.run_one(
            tmp_path,
            ReplicaScenario(
                name="kill-mid",
                plan=FaultPlan.single(FaultSpec(3, KILL_REPLICA, replica=1)),
            ),
        )
        assert result.ok, result.detail
        assert not result.crashed  # a pulled volume never stalls commits
        assert result.path == REPLICA_PATH

    def test_corruption_scrubbed_and_identical(self, tmp_path):
        result = self.run_one(
            tmp_path,
            ReplicaScenario(
                name="rot-mid",
                plan=FaultPlan.single(
                    FaultSpec(2, CORRUPT_REPLICA, param=33, replica=2)
                ),
            ),
        )
        assert result.ok, result.detail
        assert any("scrub repaired" in note for note in result.injected)

    def test_quorum_loss_recovers_surviving_prefix(self, tmp_path):
        result = self.run_one(
            tmp_path,
            ReplicaScenario(
                name="double-kill",
                plan=FaultPlan(
                    [
                        FaultSpec(1, KILL_REPLICA, replica=0),
                        FaultSpec(2, KILL_REPLICA, replica=1),
                    ]
                ),
            ),
        )
        assert result.crashed  # commits must stop at quorum loss
        assert result.ok, result.detail  # ...but the prefix recovers

    def test_process_crash_on_fanout_stream(self, tmp_path):
        result = self.run_one(
            tmp_path,
            ReplicaScenario(
                name="crash-after",
                plan=FaultPlan.single(FaultSpec(2, CRASH_AFTER)),
            ),
        )
        assert result.crashed
        assert result.ok, result.detail
