"""The crash-simulation acceptance matrix.

This is the headline robustness test: every seeded scenario runs a real
checkpoint session under injected faults, "crashes" it, repairs the
store, and demands the recovered heap be byte-identical to a fault-free
run at the same durable epoch count. The full matrix runs in well under
a second, so the suite runs it wholesale rather than sampling.
"""

import pytest

from repro.faults import CrashSim, FaultPlan, FaultSpec, Scenario, build_matrix
from repro.faults.crashsim import PATHS, default_workload, run
from repro.faults.plan import CRASH_KINDS, TRANSIENT


@pytest.fixture(scope="module")
def matrix_summary(tmp_path_factory):
    workdir = tmp_path_factory.mktemp("crashsim")
    return run(str(workdir))


class TestMatrix:
    def test_meets_scenario_floor(self, matrix_summary):
        assert matrix_summary["total"] >= 50

    def test_every_scenario_recovers_byte_identically(self, matrix_summary):
        failed = [
            entry["name"]
            for entry in matrix_summary["scenarios"]
            if not entry["ok"]
        ]
        assert failed == []
        assert matrix_summary["failures"] == 0

    def test_matrix_actually_crashes_runs(self, matrix_summary):
        crashed = [
            entry for entry in matrix_summary["scenarios"] if entry["crashed"]
        ]
        assert len(crashed) >= 20

    def test_matrix_covers_every_write_path(self, matrix_summary):
        assert {
            entry["path"] for entry in matrix_summary["scenarios"]
        } == set(PATHS)

    def test_durable_prefixes_span_the_run(self, matrix_summary):
        durable = {
            entry["durable_epochs"] for entry in matrix_summary["scenarios"]
        }
        # Crashes at different ops must strand the store at different
        # points, including "nothing durable" and "everything durable".
        assert 0 in durable
        assert matrix_summary["epochs"] in durable
        assert len(durable) >= 4

    def test_faults_were_injected_not_just_planned(self, matrix_summary):
        injected = [
            entry
            for entry in matrix_summary["scenarios"]
            if entry["injected"]
        ]
        assert len(injected) >= 40


class TestDeterminism:
    def test_build_matrix_is_seed_stable(self):
        first = build_matrix(seed=7)
        second = build_matrix(seed=7)
        assert [s.name for s in first] == [s.name for s in second]
        assert [s.plan.specs() for s in first] == [
            s.plan.specs() for s in second
        ]

    def test_single_scenario_repeats_identically(self, tmp_path):
        scenario = Scenario(
            name="repeat-torn",
            plan=FaultPlan.single(FaultSpec(2, "torn", param=9)),
            path="store",
        )
        sim = CrashSim(str(tmp_path))
        first = sim.run_scenario(scenario)
        second = sim.run_scenario(scenario)
        assert first.ok and second.ok
        assert first.durable_epochs == second.durable_epochs
        assert first.injected == second.injected


class TestWorkload:
    def test_default_workload_mutates_between_epochs(self):
        from repro.synthetic.structures import element_at

        workload = default_workload()
        roots = workload.build()
        target = element_at(roots[1 % len(roots)], 1, 1)
        before = target.v0
        workload.mutate(roots, 1)
        assert target.v0 == 1007
        assert target.v0 != before

    def test_fault_free_reference_is_cached(self, tmp_path):
        sim = CrashSim(str(tmp_path))
        first = sim.reference()
        second = sim.reference()
        assert first is second
        # One fingerprint per durable prefix, plus the empty store.
        assert set(first) == set(range(0, sim.workload.epochs + 1))
        assert first[0] == b""
        assert len(set(first.values())) == len(first)


class TestScenarioShapes:
    def test_matrix_exercises_crash_and_transient_kinds(self):
        kinds = set()
        for scenario in build_matrix():
            for spec in scenario.plan:
                kinds.add(spec.kind)
        assert TRANSIENT in kinds
        assert kinds.issuperset(CRASH_KINDS)

    def test_unknown_path_rejected(self):
        with pytest.raises(Exception, match="unknown scenario path"):
            Scenario(name="bad", plan=FaultPlan(), path="carrier-pigeon")
