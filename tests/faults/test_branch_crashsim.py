"""Crash simulation over the branching (time-travel) script.

The linear matrix proves commits survive crashes; this suite proves the
*lineage* does: named pins, auto-fork restores, and explicit forks all
recover byte-identically per branch after every injected crash —
including crashes inside ``restore()`` and ``fork()`` themselves.
"""

import pytest

from repro.faults import (
    BranchSim,
    FaultPlan,
    FaultSpec,
    Scenario,
    build_branch_matrix,
    default_branch_script,
)
from repro.faults.crashsim import BRANCH_PATH, BRANCH_SCRIPT_EPOCHS, CrashSim
from repro.faults.plan import (
    CRASH_BEFORE,
    CRASH_FORK,
    CRASH_RESTORE,
    SESSION_KINDS,
)


@pytest.fixture(scope="module")
def branch_results(tmp_path_factory):
    workdir = tmp_path_factory.mktemp("branchsim")
    sim = BranchSim(str(workdir))
    return sim.run_matrix(build_branch_matrix())


class TestReferenceRun:
    def test_reference_covers_every_epoch(self, tmp_path):
        sim = BranchSim(str(tmp_path))
        reference = sim.reference()
        assert sorted(reference) == list(range(BRANCH_SCRIPT_EPOCHS))

    def test_reference_branches_diverge(self, tmp_path):
        """Epochs 4 (main@2 fork) and 3 (main head) hold different state."""
        sim = BranchSim(str(tmp_path))
        reference = sim.reference()
        assert reference[3] != reference[4]
        assert reference[5] != reference[6]


class TestBranchMatrix:
    def test_every_scenario_recovers_per_branch(self, branch_results):
        failed = [r.scenario.name for r in branch_results if not r.ok]
        assert failed == []

    def test_matrix_is_deterministic(self):
        first = [s.name for s in build_branch_matrix()]
        second = [s.name for s in build_branch_matrix()]
        assert first == second

    def test_matrix_covers_session_crash_points(self):
        kinds = {
            spec.kind
            for scenario in build_branch_matrix()
            for spec in scenario.plan
        }
        assert set(SESSION_KINDS) <= kinds

    def test_all_scenarios_ride_the_branch_path(self):
        assert {s.path for s in build_branch_matrix()} == {BRANCH_PATH}

    def test_session_crashes_lose_nothing_durable(self, branch_results):
        """restore()/fork() write nothing durable, so crashing inside
        them must leave every previously committed epoch recoverable."""
        by_name = {r.name: r for r in branch_results}
        for kind in (CRASH_RESTORE, CRASH_FORK):
            for label in ("enter", "exit"):
                result = by_name[f"branch-{kind}-{label}"]
                assert result.crashed
                assert result.ok
                assert result.durable_epochs >= 4

    def test_shared_ancestor_corruption_strands_both_branches(
        self, branch_results
    ):
        by_name = {r.name: r for r in branch_results}
        result = by_name["branch-bitflip-op1-b3"]
        # epoch 1 is an ancestor of the pin, both branch heads, and the
        # alt branch root's siblings: only epoch 0 can survive its loss
        assert result.ok
        assert result.durable_epochs <= 2


class TestBranchSimGuards:
    def test_crashsim_rejects_branch_path(self, tmp_path):
        from repro.core.errors import StorageError

        sim = CrashSim(str(tmp_path))
        scenario = Scenario(
            name="bad",
            plan=FaultPlan.single(FaultSpec(0, CRASH_BEFORE)),
            path=BRANCH_PATH,
        )
        with pytest.raises(StorageError, match="BranchSim"):
            sim._make_sink(scenario, str(tmp_path / "run-bad"))

    def test_script_is_replayable(self, tmp_path):
        """Two fault-free runs of the script produce identical stores."""
        sim_a = BranchSim(str(tmp_path / "a"))
        sim_b = BranchSim(str(tmp_path / "b"))
        assert sim_a.reference() == sim_b.reference()
