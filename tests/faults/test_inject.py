"""Per-kind behaviour of the fault-injecting store wrapper."""

import os

import pytest

from repro.core.errors import CheckpointError
from repro.core.retry import RetryPolicy
from repro.core.storage import FULL, INCREMENTAL, FileStore, MemoryStore
from repro.faults import (
    BITFLIP,
    CRASH_AFTER,
    CRASH_BEFORE,
    CRASH_TMP,
    STALL,
    TORN,
    TRANSIENT,
    FaultPlan,
    FaultSpec,
    FaultySink,
    FaultyStore,
    InjectedCrash,
    TransientFault,
)

PAYLOAD = b"payload-bytes-for-fault-injection"


def make_store(tmp_path, spec):
    backing = FileStore(str(tmp_path / "store"))
    return backing, FaultyStore(backing, FaultPlan.single(spec))


class TestTransient:
    def test_raises_then_succeeds(self, tmp_path):
        backing, store = make_store(tmp_path, FaultSpec(0, TRANSIENT, attempts=2))
        with pytest.raises(TransientFault):
            store.append(FULL, PAYLOAD)
        with pytest.raises(TransientFault):
            store.append(FULL, PAYLOAD)
        assert store.append(FULL, PAYLOAD) == 0
        assert [epoch.data for epoch in backing.epochs()] == [PAYLOAD]
        assert store.ops == 1
        assert len(store.injected) == 2

    def test_is_an_oserror(self):
        assert issubclass(TransientFault, OSError)


class TestStall:
    def test_sleeps_then_appends(self, tmp_path):
        naps = []
        backing = FileStore(str(tmp_path / "store"))
        store = FaultyStore(
            backing,
            FaultPlan.single(FaultSpec(0, STALL, param=0.25)),
            sleep=naps.append,
        )
        assert store.append(FULL, PAYLOAD) == 0
        assert naps == [0.25]
        assert backing.epochs()[0].data == PAYLOAD


class TestCrashPoints:
    def test_crash_before_leaves_nothing(self, tmp_path):
        backing, store = make_store(tmp_path, FaultSpec(0, CRASH_BEFORE))
        with pytest.raises(InjectedCrash):
            store.append(FULL, PAYLOAD)
        assert backing.epochs() == []

    def test_crash_after_leaves_durable_epoch(self, tmp_path):
        backing, store = make_store(tmp_path, FaultSpec(0, CRASH_AFTER))
        with pytest.raises(InjectedCrash):
            store.append(FULL, PAYLOAD)
        assert [epoch.data for epoch in backing.epochs()] == [PAYLOAD]

    def test_crash_tmp_leaves_partial_tmp_file(self, tmp_path):
        backing, store = make_store(tmp_path, FaultSpec(1, CRASH_TMP))
        store.append(FULL, PAYLOAD)
        with pytest.raises(InjectedCrash):
            store.append(INCREMENTAL, PAYLOAD)
        tmps = [
            name
            for name in os.listdir(backing.directory)
            if name.endswith(".tmp")
        ]
        assert tmps == ["epoch-000001.ckpt.tmp"]
        # The durable prefix is untouched.
        assert [epoch.index for epoch in backing.epochs()] == [0]

    def test_injected_crash_is_not_an_exception(self):
        assert not issubclass(InjectedCrash, Exception)

    def test_crash_is_not_retried(self, tmp_path):
        backing, store = make_store(tmp_path, FaultSpec(0, CRASH_BEFORE))
        policy = RetryPolicy(max_attempts=5, base_delay=0.0)
        with pytest.raises(InjectedCrash):
            policy.run(lambda: store.append(FULL, PAYLOAD))
        assert backing.epochs() == []


class TestByteDamage:
    def test_torn_truncates_at_requested_byte(self, tmp_path):
        backing, store = make_store(tmp_path, FaultSpec(0, TORN, param=9))
        with pytest.raises(InjectedCrash):
            store.append(FULL, PAYLOAD)
        path = backing._epoch_path(0)
        assert os.path.getsize(path) == 9
        assert backing.epochs() == []

    def test_torn_never_leaves_whole_file(self, tmp_path):
        backing, store = make_store(tmp_path, FaultSpec(0, TORN, param=10 ** 6))
        with pytest.raises(InjectedCrash):
            store.append(FULL, PAYLOAD)
        intact_size = 14 + len(PAYLOAD)
        assert os.path.getsize(backing._epoch_path(0)) < intact_size

    def test_bitflip_is_silent_but_detected_on_read(self, tmp_path):
        backing, store = make_store(tmp_path, FaultSpec(0, BITFLIP, param=130))
        assert store.append(FULL, PAYLOAD) == 0  # caller sees success
        # The CRC catches the flip on read and discards the epoch.
        assert backing.epochs() == []

    def test_byte_faults_require_file_store(self):
        store = FaultyStore(
            MemoryStore(), FaultPlan.single(FaultSpec(0, TORN, param=3))
        )
        with pytest.raises(CheckpointError, match="FileStore"):
            store.append(FULL, PAYLOAD)


class TestPassthrough:
    def test_no_fault_ops_pass_straight_through(self, tmp_path):
        backing, store = make_store(tmp_path, FaultSpec(5, CRASH_BEFORE))
        for step in range(3):
            assert store.append(FULL, PAYLOAD) == step
        assert store.ops == 3
        assert store.injected == []
        assert store.epochs() == backing.epochs()


class TestFaultySink:
    def test_wraps_store_and_exposes_it(self, tmp_path):
        backing = FileStore(str(tmp_path / "store"))
        sink = FaultySink(
            backing,
            FaultPlan.single(FaultSpec(0, TRANSIENT, attempts=1)),
            retry=RetryPolicy(max_attempts=3, base_delay=0.0),
        )
        assert isinstance(sink.faulty, FaultyStore)
        sink.put(FULL, PAYLOAD)
        # The retry policy absorbed the single transient fault.
        assert sink.retry_stats.retries == 1
        assert [epoch.data for epoch in backing.epochs()] == [PAYLOAD]
