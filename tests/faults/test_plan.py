"""Unit tests for deterministic fault plans."""

import pytest

from repro.core.errors import CheckpointError
from repro.faults.plan import (
    ALL_KINDS,
    CRASH_BEFORE,
    CRASH_KINDS,
    TORN,
    TRANSIENT,
    FaultPlan,
    FaultSpec,
)


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(CheckpointError, match="unknown fault kind"):
            FaultSpec(0, "meteor-strike")

    def test_negative_op_rejected(self):
        with pytest.raises(CheckpointError, match="op must be >= 0"):
            FaultSpec(-1, TORN)

    def test_zero_attempts_rejected(self):
        with pytest.raises(CheckpointError, match="attempts must be >= 1"):
            FaultSpec(0, TRANSIENT, attempts=0)

    def test_crash_kinds(self):
        assert FaultSpec(0, TORN).crashes
        assert FaultSpec(0, CRASH_BEFORE).crashes
        assert not FaultSpec(0, TRANSIENT).crashes

    def test_describe_mentions_op(self):
        assert "op 3" in FaultSpec(3, TORN, param=7).describe()


class TestFaultPlan:
    def test_lookup_by_op(self):
        spec = FaultSpec(2, TORN, param=5)
        plan = FaultPlan([spec])
        assert plan.for_op(2) is spec
        assert plan.for_op(0) is None

    def test_duplicate_op_rejected(self):
        with pytest.raises(CheckpointError, match="already has a fault"):
            FaultPlan([FaultSpec(1, TORN), FaultSpec(1, CRASH_BEFORE)])

    def test_specs_sorted_by_op(self):
        plan = FaultPlan([FaultSpec(4, TORN), FaultSpec(1, TRANSIENT)])
        assert [spec.op for spec in plan] == [1, 4]

    def test_describe_empty(self):
        assert FaultPlan().describe() == "no faults"


class TestGenerate:
    def test_same_seed_same_plan(self):
        first = FaultPlan.generate(42, ops=10)
        second = FaultPlan.generate(42, ops=10)
        assert first.specs() == second.specs()

    def test_different_seeds_diverge_somewhere(self):
        plans = [FaultPlan.generate(seed, ops=10).specs() for seed in range(20)]
        assert len({tuple(plan) for plan in plans}) > 1

    def test_nothing_scheduled_after_a_crash(self):
        for seed in range(50):
            plan = FaultPlan.generate(seed, ops=10)
            specs = plan.specs()
            crash_positions = [
                position
                for position, spec in enumerate(specs)
                if spec.kind in CRASH_KINDS
            ]
            if crash_positions:
                assert crash_positions[0] == len(specs) - 1

    def test_all_kinds_reachable(self):
        seen = set()
        for seed in range(300):
            for spec in FaultPlan.generate(seed, ops=8, max_faults=3):
                seen.add(spec.kind)
        assert seen == set(ALL_KINDS)

    def test_kind_restriction_respected(self):
        for seed in range(30):
            plan = FaultPlan.generate(seed, ops=6, kinds=(TRANSIENT,))
            assert all(spec.kind == TRANSIENT for spec in plan)
