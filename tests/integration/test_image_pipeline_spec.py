"""Integration: specialize the paper-scale workload's own program family.

The generated image pipeline is both the analysis engine's checkpointing
workload (Table 1) and a real program; here the full loop runs on it:
analyze with incremental checkpoints, specialize against the kernel
coefficients, and certify residual-vs-original equivalence with the
reference interpreter.
"""

import pytest

from repro.analysis.engine import AnalysisEngine
from repro.analysis.interp import run_program
from repro.analysis.programs import (
    image_pipeline_source,
    specialization_division,
)
from repro.analysis.specializer import specialize_program

KERNELS = 2


@pytest.fixture(scope="module")
def engine():
    built = AnalysisEngine(
        image_pipeline_source(kernels=KERNELS),
        division=specialization_division(kernels=KERNELS),
        strategy="incremental",
    )
    built.run()
    return built


@pytest.fixture(scope="module")
def residual(engine):
    return specialize_program(engine)


class TestImagePipelineSpecialization:
    def test_kernels_folded(self, residual):
        for index in range(KERNELS):
            # No kernel array accesses and no init calls remain (residual
            # version names like apply_kernel0__s5 are expected).
            assert f"kernel{index}[" not in residual.source
            assert f"init_kernel{index}()" not in residual.source
            assert f"kdiv{index}" not in residual.source

    def test_pixel_loops_survive(self, residual):
        assert "while" in residual.source or "for" in residual.source
        assert "y < height" in residual.source

    def test_convolution_unrolled(self, residual):
        # Each convolution's 3x3 loop unrolls to nine accumulations.
        assert residual.source.count("acc = acc +") == 9 * KERNELS
        assert "dy" not in residual.source

    def test_equivalence_on_the_test_image(self, engine, residual):
        source = image_pipeline_source(kernels=KERNELS)
        fuel = 80_000_000
        original = run_program(source, fuel=fuel)
        specialized = run_program(residual.source, fuel=fuel)
        for name in ("img", "out", "hist", "total_luma", "min_value", "max_value"):
            assert original[name] == specialized[name]

    def test_checkpointing_unaffected_by_specialization(self, engine):
        # The engine checkpointed during analysis; the report must show the
        # usual convergence shape regardless of the division used.
        report = engine.report
        for phase in ("SE", "BTA", "ETA"):
            sizes = [r.checkpoint_bytes for r in report.phase_records(phase)]
            assert sizes[-1] == 0

    def test_residual_is_reanalyzable(self, residual):
        check = AnalysisEngine(residual.source, strategy="none")
        check.run()
