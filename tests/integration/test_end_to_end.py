"""Integration tests spanning the whole stack.

These exercise realistic end-to-end flows: the analysis engine persisting
to a durable store across a crash, specialized checkpoints feeding the
recovery path, and the synthetic population surviving a full
checkpoint/delta/restore cycle driven by compiled specialized routines.
"""

import os

import pytest

from repro.analysis.engine import AnalysisEngine
from repro.analysis.programs import image_division, image_pipeline_source
from repro.core.checkpoint import FullCheckpoint, collect_objects, reset_flags
from repro.core.restore import replay, state_digest, structurally_equal
from repro.core.storage import FileStore, MemoryStore
from repro.core.streams import DataOutputStream
from repro.spec.modpattern import ModificationPattern
from repro.spec.shape import Shape
from repro.spec.specclass import SpecClass, SpecializedCheckpointer
from repro.synthetic.structures import build_structures, element_at


@pytest.fixture(scope="module")
def source():
    return image_pipeline_source(kernels=2)


class TestEngineCrashRecovery:
    def test_crash_after_partial_run_recovers_and_resumes(self, source, tmp_path):
        store = FileStore(str(tmp_path / "ckpt"))
        engine = AnalysisEngine(source, division=image_division(), store=store)

        # Crash after the SE phase: run only side effects with checkpoints.
        engine._base_checkpoint()
        engine.side_effects.run(
            lambda i: engine._iteration_checkpoint("SE", i)
        )
        partial_digest = state_digest(engine.attributes, include_ids=True)

        # Tear a trailing epoch as a crash would.
        count = len(store.epochs())
        torn = os.path.join(store.directory, f"epoch-{count:06d}.ckpt")
        with open(torn, "wb") as handle:
            handle.write(b"RCKP\x01")

        recovered = AnalysisEngine.recover(
            source, FileStore(store.directory), division=image_division()
        )
        assert (
            state_digest(recovered.attributes, include_ids=True) == partial_digest
        )

        # Resuming completes all phases; results equal an uninterrupted run.
        recovered.run()
        reference = AnalysisEngine(source, division=image_division(), strategy="none")
        reference.run()
        assert state_digest(recovered.attributes) == state_digest(
            reference.attributes
        )

    def test_specialized_strategy_recovery_equivalence(self, source):
        """A store written by specialized checkpoints recovers identically."""
        digests = {}
        for strategy in ("incremental", "specialized"):
            store = MemoryStore()
            engine = AnalysisEngine(
                source, division=image_division(), strategy=strategy, store=store
            )
            engine.run()
            recovered_table = store.recover()
            restored = [
                o
                for o in recovered_table.objects()
                if type(o).__name__ == "AttributesTable"
            ][0]
            digests[strategy] = state_digest(restored)
            assert state_digest(restored) == state_digest(engine.attributes)
        assert digests["incremental"] == digests["specialized"]


class TestSyntheticRecoveryChain:
    def test_spec_written_deltas_replay_to_live_state(self):
        population = build_structures(25, 3, 4, 2)
        shape = Shape.of(population[0])
        pattern = ModificationPattern.restricted_to_lists(shape, ["list0", "list1"])
        fn = SpecializedCheckpointer(SpecClass(shape, pattern, name="e2e_spec"))

        base_driver = FullCheckpoint()
        for compound in population:
            base_driver.checkpoint(compound)
        base = base_driver.getvalue()

        deltas = []
        for round_index in range(5):
            for compound_index in range(0, 25, 3):
                element = element_at(population[compound_index], round_index % 2, 1)
                element.v0 = round_index * 100 + compound_index
            out = DataOutputStream()
            for compound in population:
                fn(compound, out)
            deltas.append(out.getvalue())

        table = replay(base, deltas)
        for compound in population:
            recovered = table[compound._ckpt_info.object_id]
            assert structurally_equal(compound, recovered, compare_ids=True)

    def test_mixed_driver_chain(self):
        """Generic and specialized epochs interleave in one recovery line."""
        from repro.core.checkpoint import Checkpoint

        population = build_structures(10, 2, 3, 1)
        shape = Shape.of(population[0])
        fn = SpecializedCheckpointer(SpecClass(shape, name="e2e_mixed"))

        base_driver = FullCheckpoint()
        for compound in population:
            base_driver.checkpoint(compound)
        deltas = []

        population[0].list0.v0 = 1
        generic = Checkpoint()
        for compound in population:
            generic.checkpoint(compound)
        deltas.append(generic.getvalue())

        population[5].list1.next.v0 = 2
        out = DataOutputStream()
        for compound in population:
            fn(compound, out)
        deltas.append(out.getvalue())

        table = replay(base_driver.getvalue(), deltas)
        assert table[population[0]._ckpt_info.object_id].list0.v0 == 1
        assert table[population[5]._ckpt_info.object_id].list1.next.v0 == 2


class TestWholeStackConsistency:
    def test_flags_clean_after_any_full_pipeline(self, source):
        engine = AnalysisEngine(source, division=image_division())
        engine.run()
        for attrs in engine.attributes.entries:
            for obj in collect_objects(attrs):
                assert not obj._ckpt_info.modified

    def test_engine_reports_sum_to_store_content(self, source):
        store = MemoryStore()
        engine = AnalysisEngine(source, division=image_division(), store=store)
        report = engine.run()
        delta_bytes = sum(
            len(e.data) for e in store.epochs() if e.kind == "incremental"
        )
        assert delta_bytes == report.total_checkpoint_bytes()
        base = next(e for e in store.epochs() if e.kind == "full")
        assert len(base.data) == report.base_bytes
