"""Integration: the engine persisting through the asynchronous writer."""

from repro.analysis.engine import AnalysisEngine
from repro.analysis.programs import image_division, tiny_source
from repro.core.restore import state_digest
from repro.core.storage import BackgroundWriter, FileStore, MemoryStore


class TestEngineWithBackgroundWriter:
    def test_async_persistence_recovers_identically(self, tmp_path):
        backing = FileStore(str(tmp_path / "ckpt"))
        writer = BackgroundWriter(backing)
        engine = AnalysisEngine(
            tiny_source(),
            division=image_division(),
            strategy="incremental",
            store=writer,
        )
        engine.run()
        writer.close()

        fresh = FileStore(backing.directory)
        assert len(fresh.epochs()) == 1 + len(engine.report.records)
        recovered = AnalysisEngine.recover(
            tiny_source(), fresh, division=image_division()
        )
        assert state_digest(recovered.attributes, include_ids=True) == state_digest(
            engine.attributes, include_ids=True
        )

    def test_async_epochs_ordered_full_then_deltas(self):
        backing = MemoryStore()
        with BackgroundWriter(backing) as writer:
            engine = AnalysisEngine(
                tiny_source(),
                division=image_division(),
                strategy="specialized",
                store=writer,
            )
            engine.run()
            writer.flush()
            kinds = [e.kind for e in backing.epochs()]
            assert kinds[0] == "full"
            assert set(kinds[1:]) == {"incremental"}

    def test_multiple_engines_share_one_process(self):
        """Distinct engines (distinct programs) coexist: shared class
        registry, separate attribute populations and spec routines."""
        from repro.analysis.programs import image_pipeline_source

        first = AnalysisEngine(tiny_source(), division=image_division())
        second = AnalysisEngine(
            image_pipeline_source(kernels=1), division=image_division()
        )
        first.run()
        second.run()
        assert first.program.node_count != second.program.node_count
        assert len(first.attributes.entries) == first.program.node_count
        assert len(second.attributes.entries) == second.program.node_count
        # Specialized routines are engine-local but structurally identical.
        assert (
            first.specialized_for("BTA").source
            == second.specialized_for("BTA").source
        )
