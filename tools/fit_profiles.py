"""Calibration of the VM cost profiles (repro/vm/backends.py).

Reproducible record of how the JDK 1.2 JIT / HotSpot / Harissa profiles
were obtained:

1. op-count vectors are measured (via the metered abstract machine) for
   the eleven synthetic configurations whose speedups the paper reports;
2. per-op costs are searched (random-restart hill climbing in log space,
   within physically motivated bounds) to minimize the squared log-error
   against the paper's target ratios;
3. cross-backend absolute-time ratios (Table 2) anchor the Sun VM
   profiles relative to Harissa.

Run:  python tools/fit_profiles.py
Prints fitted costs and the target-vs-fit table; backends.py holds the
(rounded) committed values.
"""

import math
import random

from repro.synthetic.runner import SyntheticConfig, SyntheticWorkload, run_variant

POPULATION = 300

CONFIGS = {
    "f7_25_10": (SyntheticConfig(POPULATION, 5, 5, 10, 0.25), ("full", "incremental")),
    "f7_100_10": (SyntheticConfig(POPULATION, 5, 5, 10, 1.0), ("full", "incremental")),
    "f8_100_10": (SyntheticConfig(POPULATION, 5, 5, 10, 1.0), ("incremental", "spec_struct")),
    "f8_25_1": (SyntheticConfig(POPULATION, 5, 5, 1, 0.25), ("incremental", "spec_struct")),
    "f9_L1_25_1": (SyntheticConfig(POPULATION, 5, 5, 1, 0.25, modified_lists=1), ("incremental", "spec_struct_mod")),
    "f9_L5_100_1": (SyntheticConfig(POPULATION, 5, 5, 1, 1.0, modified_lists=5), ("incremental", "spec_struct_mod")),
    "f10_L1_25_1": (SyntheticConfig(POPULATION, 5, 5, 1, 0.25, modified_lists=1, last_only=True), ("incremental", "spec_struct_mod")),
    "f10_L5_100_1": (SyntheticConfig(POPULATION, 5, 5, 1, 1.0, modified_lists=5, last_only=True), ("incremental", "spec_struct_mod")),
    "f10_L1_25_10": (SyntheticConfig(POPULATION, 5, 5, 10, 0.25, modified_lists=1, last_only=True), ("incremental", "spec_struct_mod")),
    "f10_L5_100_10": (SyntheticConfig(POPULATION, 5, 5, 10, 1.0, modified_lists=5, last_only=True), ("incremental", "spec_struct_mod")),
}

HARISSA_TARGETS = [
    ("f7_25_10", "full", "incremental", 3.2, 1.2),
    ("f7_100_10", "full", "incremental", 1.0, 1.0),
    ("f8_100_10", "incremental", "spec_struct", 1.5, 1.5),
    ("f8_25_1", "incremental", "spec_struct", 3.5, 1.5),
    ("f9_L1_25_1", "incremental", "spec_struct_mod", 8.5, 1.0),
    ("f9_L5_100_1", "incremental", "spec_struct_mod", 2.0, 1.0),
    ("f10_L1_25_1", "incremental", "spec_struct_mod", 15.0, 1.5),
    ("f10_L5_100_1", "incremental", "spec_struct_mod", 5.0, 1.0),
    ("f10_L1_25_10", "incremental", "spec_struct_mod", 11.0, 1.0),
    ("f10_L5_100_10", "incremental", "spec_struct_mod", 2.0, 1.0),
]
HARISSA_BOUNDS = {
    "vcall": (15, 120), "acc": (8, 80), "getfield": (3, 30), "test": (2, 12),
    "write_int": (8, 60), "call": (4, 160), "flag_reset": (2, 12), "iter": (2, 12),
}

JDK_TARGETS = [
    ("f10_L1_25_10", "incremental", "spec_struct_mod", 6.0, 1.5),
    ("f10_L5_100_10", "incremental", "spec_struct_mod", 1.8, 1.0),
    ("f10_L1_25_1", "incremental", "spec_struct_mod", 6.5, 1.0),
    ("f10_L5_100_1", "incremental", "spec_struct_mod", 2.5, 1.0),
    ("f8_100_10", "incremental", "spec_struct", 1.4, 0.5),
]
JDK_CROSS = [("f10_L5_100_10", "incremental", 2.5, 1.5), ("f10_L1_25_10", "incremental", 2.5, 0.8)]
JDK_BOUNDS = {
    "vcall": (80, 400), "acc": (50, 300), "getfield": (10, 60), "test": (5, 40),
    "write_int": (40, 250), "call": (20, 450), "flag_reset": (5, 40), "iter": (5, 40),
}

HOTSPOT_TARGETS = [
    ("f10_L1_25_1", "incremental", "spec_struct_mod", 12.0, 1.5),
    ("f10_L5_100_1", "incremental", "spec_struct_mod", 4.0, 1.0),
    ("f10_L1_25_10", "incremental", "spec_struct_mod", 9.0, 1.0),
    ("f10_L5_100_10", "incremental", "spec_struct_mod", 2.0, 1.0),
    ("f8_100_10", "incremental", "spec_struct", 1.3, 0.5),
]
HOTSPOT_CROSS = [("f10_L5_100_10", "incremental", 0.55, 1.5), ("f10_L1_25_1", "incremental", 0.55, 0.8)]
HOTSPOT_BOUNDS = {
    "vcall": (15, 120), "acc": (2, 20), "getfield": (2, 20), "test": (1, 10),
    "write_int": (6, 60), "call": (4, 160), "flag_reset": (1, 10), "iter": (2, 12),
}


def measure_counts():
    data = {}
    for key, (config, variants) in CONFIGS.items():
        workload = SyntheticWorkload(config)
        data[key] = {
            variant: run_variant(workload, variant, meter_sample=POPULATION).counts.counts
            for variant in variants
        }
        print(f"measured {key}")
    return data


def seconds(counts, costs):
    return sum(counts[op] * costs.get(op, 0.0) for op in counts)


def fit(data, targets, bounds, cross=(), reference=None, seeds=range(3), iters=60000):
    def error(costs):
        total = 0.0
        for key, base, cand, paper, weight in targets:
            ratio = seconds(data[key][base], costs) / seconds(data[key][cand], costs)
            total += weight * math.log(ratio / paper) ** 2
        for key, variant, target_ratio, weight in cross:
            ratio = seconds(data[key][variant], costs) / seconds(data[key][variant], reference)
            total += weight * math.log(ratio / target_ratio) ** 2
        total += 0.3 * max(0.0, math.log(costs["getfield"] / (0.5 * costs["vcall"]))) ** 2
        total += 0.3 * max(0.0, math.log(costs["acc"] / (1.1 * costs["vcall"]))) ** 2
        return total

    best = None
    for seed in seeds:
        rng = random.Random(seed)
        current = {op: rng.uniform(*limits) for op, limits in bounds.items()}
        current_error = error(current)
        for _ in range(iters):
            candidate = dict(current)
            op = rng.choice(list(bounds))
            low, high = bounds[op]
            candidate[op] = min(high, max(low, candidate[op] * math.exp(rng.uniform(-0.3, 0.3))))
            candidate_error = error(candidate)
            if candidate_error < current_error:
                current, current_error = candidate, candidate_error
        if best is None or current_error < best[1]:
            best = (current, current_error)
    return best


def report(name, data, costs, err, targets, cross=(), reference=None):
    print(f"\n{name}: error {err:.4f}")
    print("  " + ", ".join(f"{op}={value:.1f}" for op, value in sorted(costs.items())))
    for key, base, cand, paper, _ in targets:
        ratio = seconds(data[key][base], costs) / seconds(data[key][cand], costs)
        print(f"  {key:16s} paper={paper:5.1f} fit={ratio:6.2f}")
    for key, variant, target_ratio, _ in cross:
        ratio = seconds(data[key][variant], costs) / seconds(data[key][variant], reference)
        print(f"  cross {key:14s} want={target_ratio:5.2f} got={ratio:5.2f}")


def main():
    data = measure_counts()
    harissa, err = fit(data, HARISSA_TARGETS, HARISSA_BOUNDS)
    report("HARISSA", data, harissa, err, HARISSA_TARGETS)
    jdk, err = fit(data, JDK_TARGETS, JDK_BOUNDS, JDK_CROSS, harissa)
    report("JDK 1.2 JIT", data, jdk, err, JDK_TARGETS, JDK_CROSS, harissa)
    hotspot, err = fit(data, HOTSPOT_TARGETS, HOTSPOT_BOUNDS, HOTSPOT_CROSS, harissa)
    report("HOTSPOT", data, hotspot, err, HOTSPOT_TARGETS, HOTSPOT_CROSS, harissa)


if __name__ == "__main__":
    main()
