#!/usr/bin/env python
"""Build a deliberately damaged checkpoint directory (fsck CI fixture).

Writes a real session history into ``OUT_DIR`` and then damages it the
way crashes do:

- tears the newest epoch mid-payload (truncated file),
- flips one bit in a middle epoch (CRC-detectable corruption),
- strands a partial ``epoch-*.ckpt.tmp`` (crash between write and
  rename).

The result: ``python -m repro.fsck OUT_DIR`` must report the directory
inconsistent, and ``--repair`` must quarantine exactly the damaged
files and leave a consistent, recoverable prefix.

With ``--replicas N`` the history is committed through a
:class:`~repro.core.replica.ReplicatedStore` into ``OUT_DIR/r0..rN-1``
and the damage is replica-scoped instead:

- one replica holds a *diverged* record — rewritten through its own
  framing, so its CRC is valid and only the end-to-end sha256 (or a
  byte-compare against the quorum copy) can tell;
- one replica is missing an epoch file entirely (a lost write);
- one replica's manifest is stale (rolled back to a mid-run snapshot).

A ``damage.json`` manifest listing every seeded defect is written to
``OUT_DIR`` for the fsck/scrub tests and the CI gate, which require
``python -m repro.fsck r0 r1 ... --scrub`` to detect and repair all of
it — quarantining, never deleting.

Usage::

    PYTHONPATH=src python tools/make_corrupt_fixture.py OUT_DIR [--epochs N]
    PYTHONPATH=src python tools/make_corrupt_fixture.py OUT_DIR --replicas 3
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core.replica import ReplicatedStore  # noqa: E402
from repro.core.storage import FileStore  # noqa: E402
from repro.runtime.session import CheckpointSession  # noqa: E402
from repro.runtime.sink import StoreSink  # noqa: E402
from repro.synthetic.structures import build_structures, element_at  # noqa: E402


def build_fixture(directory: str, epochs: int = 8) -> dict:
    """Create the damaged store; returns what was damaged (for asserts)."""
    roots = build_structures(3, 2, 3, 1)
    session = CheckpointSession(roots=roots, sink=directory)
    session.base()
    for step in range(1, epochs):
        element_at(roots[step % 3], step % 2, step % 3).v0 = step * 100 + 1
        session.commit()

    def epoch_path(index: int) -> str:
        return os.path.join(directory, f"epoch-{index:06d}.ckpt")

    # Torn tail: the newest epoch stops mid-payload.
    torn = epoch_path(epochs - 1)
    with open(torn, "rb+") as handle:
        handle.truncate(os.path.getsize(torn) // 2)

    # Silent corruption: one flipped bit in a middle epoch's payload.
    flipped = epoch_path(epochs // 2)
    data = bytearray(open(flipped, "rb").read())
    data[-1] ^= 0x10
    with open(flipped, "wb") as handle:
        handle.write(bytes(data))

    # Crash between the tmp write and the atomic rename.
    orphan = epoch_path(epochs) + ".tmp"
    with open(orphan, "wb") as handle:
        handle.write(b"partial frame, never renamed")

    return {
        "directory": directory,
        "epochs": epochs,
        "torn": os.path.basename(torn),
        "corrupt": os.path.basename(flipped),
        "orphan": os.path.basename(orphan),
        # Everything before the flipped epoch survives repair.
        "expected_durable": list(range(epochs // 2)),
    }


def build_replica_fixture(directory: str, replicas: int = 3, epochs: int = 8) -> dict:
    """A replicated history with per-replica damage; writes damage.json."""
    dirs = [os.path.join(directory, f"r{i}") for i in range(replicas)]
    store = ReplicatedStore([FileStore(d) for d in dirs])
    roots = build_structures(3, 2, 3, 1)
    session = CheckpointSession(roots=roots, sink=StoreSink(store))
    session.base()
    manifest_snapshot = None
    snapshot_at = max(1, epochs // 2)
    pin_at = snapshot_at + 1  # named AFTER the snapshot, so the stale
    # manifest forgets the name — divergence only the lineage metadata
    # (not the payload bytes) carries, which the vote key must catch
    for step in range(1, epochs):
        element_at(roots[step % 3], step % 2, step % 3).v0 = step * 100 + 1
        if step == pin_at:
            session.checkpoint("fixture-pin")
        else:
            session.commit()
        if step == snapshot_at:
            # mid-run manifest image, restored below as the "stale" copy
            with open(os.path.join(dirs[0], "manifest.json"), "rb") as handle:
                manifest_snapshot = handle.read()

    def epoch_path(replica: int, index: int) -> str:
        return os.path.join(dirs[replica], f"epoch-{index:06d}.ckpt")

    damage = {
        "directory": directory,
        "replicas": [os.path.basename(d) for d in dirs],
        "epochs": epochs,
        "seeded": [],
    }

    # Diverged record on r1: rewritten through the store's own framing,
    # so the child CRC is recomputed and only sha256/byte-compare sees it.
    victim = FileStore(dirs[1])
    diverged_index = epochs // 2
    epoch = victim.epoch_map()[diverged_index]
    payload = bytearray(epoch.data)
    payload[len(payload) // 2] ^= 0xFF
    victim.put_epoch(epoch._replace(data=bytes(payload)), overwrite=True)
    damage["seeded"].append(
        {
            "replica": "r1",
            "mode": "diverged-record",
            "epoch": diverged_index,
            "file": os.path.basename(epoch_path(1, diverged_index)),
        }
    )

    # Missing epoch file on r2: a write the volume simply lost.
    missing_index = epochs - 2
    os.unlink(epoch_path(2 % replicas, missing_index))
    damage["seeded"].append(
        {
            "replica": f"r{2 % replicas}",
            "mode": "missing-epoch",
            "epoch": missing_index,
            "file": os.path.basename(epoch_path(2 % replicas, missing_index)),
        }
    )

    # Stale manifest on r0: rolled back to the mid-run snapshot, which
    # predates the named checkpoint — r0 now reads epoch ``pin_at``
    # without its name, diverging from the quorum copy in lineage
    # metadata only (the payload bytes are identical).
    if manifest_snapshot is not None:
        with open(os.path.join(dirs[0], "manifest.json"), "wb") as handle:
            handle.write(manifest_snapshot)
        damage["seeded"].append(
            {
                "replica": "r0",
                "mode": "stale-manifest",
                "epoch": pin_at,
                "file": "manifest.json",
            }
        )

    with open(os.path.join(directory, "damage.json"), "w") as handle:
        json.dump(damage, handle, indent=2, sort_keys=True)
    return damage


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("out_dir", help="directory to create the fixture in")
    parser.add_argument("--epochs", type=int, default=8)
    parser.add_argument(
        "--replicas",
        type=int,
        default=0,
        metavar="N",
        help=(
            "build a replicated fixture with N replica subdirectories "
            "(r0..rN-1) and replica-scoped damage instead"
        ),
    )
    args = parser.parse_args(argv)
    if os.path.exists(args.out_dir) and os.listdir(args.out_dir):
        parser.error(f"{args.out_dir} exists and is not empty")
    if args.replicas:
        if args.replicas < 3:
            parser.error("--replicas needs at least 3 for a healing quorum")
        damage = build_replica_fixture(
            args.out_dir, replicas=args.replicas, epochs=args.epochs
        )
    else:
        damage = build_fixture(args.out_dir, epochs=args.epochs)
    for key, value in damage.items():
        print(f"{key}: {value}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
