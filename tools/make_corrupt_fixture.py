#!/usr/bin/env python
"""Build a deliberately damaged checkpoint directory (fsck CI fixture).

Writes a real session history into ``OUT_DIR`` and then damages it the
way crashes do:

- tears the newest epoch mid-payload (truncated file),
- flips one bit in a middle epoch (CRC-detectable corruption),
- strands a partial ``epoch-*.ckpt.tmp`` (crash between write and
  rename).

The result: ``python -m repro.fsck OUT_DIR`` must report the directory
inconsistent, and ``--repair`` must quarantine exactly the damaged
files and leave a consistent, recoverable prefix.

Usage::

    PYTHONPATH=src python tools/make_corrupt_fixture.py OUT_DIR [--epochs N]
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.runtime.session import CheckpointSession  # noqa: E402
from repro.synthetic.structures import build_structures, element_at  # noqa: E402


def build_fixture(directory: str, epochs: int = 8) -> dict:
    """Create the damaged store; returns what was damaged (for asserts)."""
    roots = build_structures(3, 2, 3, 1)
    session = CheckpointSession(roots=roots, sink=directory)
    session.base()
    for step in range(1, epochs):
        element_at(roots[step % 3], step % 2, step % 3).v0 = step * 100 + 1
        session.commit()

    def epoch_path(index: int) -> str:
        return os.path.join(directory, f"epoch-{index:06d}.ckpt")

    # Torn tail: the newest epoch stops mid-payload.
    torn = epoch_path(epochs - 1)
    with open(torn, "rb+") as handle:
        handle.truncate(os.path.getsize(torn) // 2)

    # Silent corruption: one flipped bit in a middle epoch's payload.
    flipped = epoch_path(epochs // 2)
    data = bytearray(open(flipped, "rb").read())
    data[-1] ^= 0x10
    with open(flipped, "wb") as handle:
        handle.write(bytes(data))

    # Crash between the tmp write and the atomic rename.
    orphan = epoch_path(epochs) + ".tmp"
    with open(orphan, "wb") as handle:
        handle.write(b"partial frame, never renamed")

    return {
        "directory": directory,
        "epochs": epochs,
        "torn": os.path.basename(torn),
        "corrupt": os.path.basename(flipped),
        "orphan": os.path.basename(orphan),
        # Everything before the flipped epoch survives repair.
        "expected_durable": list(range(epochs // 2)),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("out_dir", help="directory to create the fixture in")
    parser.add_argument("--epochs", type=int, default=8)
    args = parser.parse_args(argv)
    if os.path.exists(args.out_dir) and os.listdir(args.out_dir):
        parser.error(f"{args.out_dir} exists and is not empty")
    damage = build_fixture(args.out_dir, epochs=args.epochs)
    for key, value in damage.items():
        print(f"{key}: {value}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
