#!/usr/bin/env python
"""Generate seeded aliasing-bug fixture programs.

Each fixture is a small standalone module seeded with exactly one alias
bug shape the static escape/alias analysis
(``repro.spec.effects.aliasing``) must flag:

``slot_bypass``
    A raw ``_f_<field>`` store through an alias — the field descriptor
    never fires, the modified flag never moves.
``setattr_bypass``
    The same bug via ``setattr(obj, "_f_<field>", v)``.
``raw_items``
    The ``TrackedList._items`` backing list captured and mutated.
``dict_bypass``
    A slot store through ``vars(obj)``.
``shared_subtree``
    One fresh object attached under two recorded roots: either root's
    commit clears the other's dirty flags.
``thread_capture``
    A recorded reference handed to ``threading.Thread``, whose worker
    bypasses the flag.
``escape_global``
    A recorded reference stashed in a module-level container
    (static-only: the escape is the bug, no workload trips it).

Runnable fixtures expose ``run()``, which drives the bug through a real
:class:`~repro.runtime.session.CheckpointSession` with a
:class:`~repro.sanitize.oracle.ShadowHeapOracle` attached and returns
the oracle — the dynamic half of ``python -m repro.spec.effects.aliasing
--crosscheck`` asserts every oracle-observed unflagged mutation was
statically predicted.

Identifiers are drawn from a seeded RNG so repeated generations (and the
process-wide class registry) never collide.

Usage: ``python tools/make_alias_fixture.py --out DIR [--seed N]``
"""

from __future__ import annotations

import argparse
import json
import random
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

#: fixture stem -> the rule code the static pass must report
RULES = {
    "slot_bypass": "alias-write-bypasses-flag",
    "setattr_bypass": "alias-write-bypasses-flag",
    "raw_items": "alias-write-bypasses-flag",
    "dict_bypass": "alias-write-bypasses-flag",
    "shared_subtree": "shared-subtree-alias",
    "thread_capture": "alias-captured-by-thread",
    "escape_global": "reference-escapes-recorded-graph",
}

#: fixtures whose ``run()`` trips the bug dynamically under the oracle
RUNNABLE = {
    "slot_bypass",
    "setattr_bypass",
    "raw_items",
    "dict_bypass",
    "shared_subtree",
    "thread_capture",
}

_ADJECTIVES = [
    "Brisk", "Calm", "Dusty", "Eager", "Faint", "Grand", "Hazy",
    "Irate", "Jolly", "Keen", "Lucid", "Mellow", "Noble", "Odd",
]
_NOUNS = [
    "Ledger", "Basin", "Switch", "Portal", "Relay", "Vault", "Meter",
    "Roster", "Crate", "Signal", "Tally", "Anchor", "Prism", "Gauge",
]
_FIELDS = [
    "amount", "weight", "height", "count", "score", "level", "grade",
    "total", "index", "depth",
]


def _names(rng: random.Random) -> Tuple[str, str, str]:
    """(root class, leaf class, scalar field) — collision-free per draw."""
    adjective = rng.choice(_ADJECTIVES)
    noun = rng.choice(_NOUNS)
    other = rng.choice([n for n in _NOUNS if n != noun])
    suffix = rng.randrange(10_000)
    root_cls = f"{adjective}{noun}{suffix}"
    leaf_cls = f"{adjective}{other}{suffix}"
    field = rng.choice(_FIELDS)
    return root_cls, leaf_cls, field


_PRELUDE = """\
from repro.core.checkpointable import Checkpointable
from repro.core.fields import child, child_list, scalar
from repro.runtime.session import CheckpointSession
from repro.runtime.sink import BufferSink
from repro.sanitize.oracle import ShadowHeapOracle


class {leaf}(Checkpointable):
    {field} = scalar("int")


class {root}(Checkpointable):
    label = scalar("str")
    kid = child({leaf})
    kids = child_list({leaf})


def _session(root):
    oracle = ShadowHeapOracle()
    session = CheckpointSession(roots=root, sink=BufferSink())
    session.attach_oracle(oracle)
    session.base()
    return session, oracle
"""


def make_slot_bypass(rng: random.Random) -> Tuple[str, str, str]:
    root, leaf, field = _names(rng)
    source = _PRELUDE.format(root=root, leaf=leaf, field=field) + f"""

def run():
    tree = {root}()
    tree.kid = {leaf}()
    session, oracle = _session(tree)
    alias = tree.kid
    alias._f_{field} = 41  # the bug: the descriptor never fires
    session.commit()
    session.close()
    return oracle
"""
    return source, leaf, field


def make_setattr_bypass(rng: random.Random) -> Tuple[str, str, str]:
    root, leaf, field = _names(rng)
    source = _PRELUDE.format(root=root, leaf=leaf, field=field) + f"""

def run():
    tree = {root}()
    tree.kid = {leaf}()
    session, oracle = _session(tree)
    setattr(tree.kid, "_f_{field}", 57)  # the bug: raw slot store
    session.commit()
    session.close()
    return oracle
"""
    return source, leaf, field


def make_raw_items(rng: random.Random) -> Tuple[str, str, str]:
    root, leaf, field = _names(rng)
    source = _PRELUDE.format(root=root, leaf=leaf, field=field) + f"""

def run():
    tree = {root}()
    tree.kids.append({leaf}())
    session, oracle = _session(tree)
    backing = tree.kids._items
    backing.append({leaf}())  # the bug: the tracked list never touches
    session.commit()
    session.close()
    return oracle
"""
    return source, root, "kids"


def make_dict_bypass(rng: random.Random) -> Tuple[str, str, str]:
    root, leaf, field = _names(rng)
    source = _PRELUDE.format(root=root, leaf=leaf, field=field) + f"""

def run():
    tree = {root}()
    tree.kid = {leaf}()
    session, oracle = _session(tree)
    vars(tree.kid)["_f_{field}"] = 7  # the bug: __dict__ store
    session.commit()
    session.close()
    return oracle
"""
    return source, leaf, field


def make_shared_subtree(rng: random.Random) -> Tuple[str, str, str]:
    root, leaf, field = _names(rng)
    source = _PRELUDE.format(root=root, leaf=leaf, field=field) + f"""

def run():
    shared = {leaf}()
    left = {root}()
    left.kid = shared
    right = {root}()
    right.kid = shared  # the bug: one subtree under two recorded roots
    left_session = CheckpointSession(roots=left, sink=BufferSink())
    left_session.base()
    session, oracle = _session(right)
    shared.{field} = shared.{field} + 1  # honest descriptor write
    left_session.commit()  # left's commit clears the shared flag...
    session.commit()  # ...so right's delta silently skips it
    left_session.close()
    session.close()
    return oracle
"""
    return source, leaf, field


def make_thread_capture(rng: random.Random) -> Tuple[str, str, str]:
    root, leaf, field = _names(rng)
    source = (
        "import threading\n\n"
        + _PRELUDE.format(root=root, leaf=leaf, field=field)
        + f"""

def _worker(kid):
    kid._f_{field} = 99  # bypass inside the thread body


def run():
    tree = {root}()
    tree.kid = {leaf}()
    session, oracle = _session(tree)
    worker = threading.Thread(target=_worker, args=(tree.kid,))
    worker.start()
    worker.join()
    session.commit()
    session.close()
    return oracle
"""
    )
    return source, leaf, field


def make_escape_global(rng: random.Random) -> Tuple[str, str, str]:
    root, leaf, field = _names(rng)
    source = (
        _PRELUDE.format(root=root, leaf=leaf, field=field)
        + f"""

STASH = []


def remember(tree: {root}):
    STASH.append(tree.kid)  # the bug: outlives the commit discipline
"""
    )
    return source, leaf, field


GENERATORS: Dict[str, Callable[[random.Random], Tuple[str, str, str]]] = {
    "slot_bypass": make_slot_bypass,
    "setattr_bypass": make_setattr_bypass,
    "raw_items": make_raw_items,
    "dict_bypass": make_dict_bypass,
    "shared_subtree": make_shared_subtree,
    "thread_capture": make_thread_capture,
    "escape_global": make_escape_global,
}


def generate(out_dir, seed: int = 0) -> List[dict]:
    """Write every fixture into ``out_dir``; return the manifest."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    rng = random.Random(seed)
    manifest: List[dict] = []
    for stem, generator in GENERATORS.items():
        source, cls, field = generator(rng)
        filename = f"{stem}.py"
        (out / filename).write_text(source, encoding="utf-8")
        manifest.append(
            {
                "file": filename,
                "class": cls,
                "field": field,
                "rule": RULES[stem],
                "runnable": stem in RUNNABLE,
            }
        )
    (out / "manifest.json").write_text(
        json.dumps(manifest, indent=2), encoding="utf-8"
    )
    return manifest


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="generate seeded aliasing-bug fixtures"
    )
    parser.add_argument("--out", required=True, help="output directory")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    manifest = generate(args.out, seed=args.seed)
    for entry in manifest:
        print(
            f"{entry['file']}: {entry['rule']} "
            f"({'runnable' if entry['runnable'] else 'static-only'})"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
