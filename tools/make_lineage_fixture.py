#!/usr/bin/env python
"""Build a branched checkpoint directory for lineage-aware fsck (CI fixture).

Writes a real time-travel session history — a main branch, a named
checkpoint, and a forked side branch — into ``OUT_DIR``, then optionally
damages it the way crashes and version skew do:

- ``--damage none``            intact branched store (fsck must pass);
- ``--damage orphan-branch``   deletes the side branch's fork-point
  delta, so the branch survives on disk but its base chain is broken
  (fsck must classify it unreachable/orphaned, repair must quarantine —
  never delete — it);
- ``--damage unknown-version`` bumps the manifest ``format_version`` to
  a number this tool's fsck does not understand (fsck must fail
  gracefully: classified finding + nonzero exit, and repair must refuse
  to move files);
- ``--damage torn-head``       truncates the main branch head
  mid-payload (fsck must drop exactly that epoch and keep both
  branches' bases).

Usage::

    PYTHONPATH=src python tools/make_lineage_fixture.py OUT_DIR \
        [--damage MODE]
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.runtime.session import CheckpointSession  # noqa: E402
from repro.synthetic.structures import build_structures, element_at  # noqa: E402

DAMAGE_MODES = ("none", "orphan-branch", "unknown-version", "torn-head")


def build_store(directory: str) -> dict:
    """A branched history: main 0-1-2-3 (2 named "pin"), side 4-5 off 2.

    Epoch indices::

        0 full -- 1 -- 2 ("pin") -- 3          main
                        \\-- 4 -- 5             side
    """
    roots = build_structures(3, 2, 3, 1)
    session = CheckpointSession(roots=roots, sink=directory)
    session.base()
    for step in (1, 2):
        element_at(roots[0], 0, 0).v0 = step * 100 + 1
        session.checkpoint("pin") if step == 2 else session.commit()
    element_at(roots[1], 1, 0).v0 = 301
    session.commit()
    session.fork(at="pin", branch="side")
    for step in (4, 5):
        element_at(roots[2], 0, 1).v0 = step * 100 + 1
        session.commit()
    session.flush()
    return {
        "main_head": 3,
        "side_head": 5,
        "named": {"pin": 2},
        "fork_point": 2,
    }


def apply_damage(directory: str, mode: str, layout: dict) -> dict:
    def epoch_path(index: int) -> str:
        return os.path.join(directory, f"epoch-{index:06d}.ckpt")

    if mode == "none":
        return {"expected_consistent": True, "expected_durable": [0, 1, 2, 3, 4, 5]}
    if mode == "orphan-branch":
        # The side branch's first delta: epochs above it lose their base.
        os.remove(epoch_path(4))
        return {
            "removed": os.path.basename(epoch_path(4)),
            "expected_consistent": False,
            "expected_durable": [0, 1, 2, 3],
            "expected_orphan_branches": ["side"],
        }
    if mode == "unknown-version":
        manifest_path = os.path.join(directory, "manifest.json")
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
        manifest["format_version"] = 99
        with open(manifest_path, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
        return {
            "format_version": 99,
            "expected_consistent": False,
            "expected_manifest_supported": False,
        }
    if mode == "torn-head":
        torn = epoch_path(layout["main_head"])
        with open(torn, "rb+") as handle:
            handle.truncate(os.path.getsize(torn) // 2)
        return {
            "torn": os.path.basename(torn),
            "expected_consistent": False,
            "expected_durable": [0, 1, 2, 4, 5],
        }
    raise ValueError(f"unknown damage mode {mode!r}")


def build_fixture(directory: str, damage: str = "none") -> dict:
    layout = build_store(directory)
    result = {"directory": directory, "damage": damage}
    result.update(layout)
    result.update(apply_damage(directory, damage, layout))
    return result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("out_dir", help="directory to create the fixture in")
    parser.add_argument("--damage", choices=DAMAGE_MODES, default="none")
    args = parser.parse_args(argv)
    if os.path.exists(args.out_dir) and os.listdir(args.out_dir):
        parser.error(f"{args.out_dir} exists and is not empty")
    summary = build_fixture(args.out_dir, damage=args.damage)
    for key, value in summary.items():
        print(f"{key}: {value}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
