#!/usr/bin/env python
"""Generate seeded-racy fixture programs for the concurrency analysis.

Each fixture is a small self-contained module seeded with exactly one
race pattern from the static rule family
(:mod:`repro.spec.effects.concurrency`):

- ``unguarded-shared-write`` — a concurrent class whose counter field is
  hammered bare from spawned threads;
- ``inconsistent-guard`` — a field written under its lock on one path
  and bare on another;
- ``lock-order-inversion`` — two locks taken in opposite orders by two
  methods;
- ``lock-held-across-blocking-call`` — ``time.sleep`` inside a critical
  section;
- ``flag-mutation-outside-commit`` — a direct ``_ckpt_info.modified``
  poke from a thread-reachable method.

The first three are *runnable*: each module exposes ``run()`` driving
barrier-synchronized threads through the racy code, so the dynamic
sanitizer (:mod:`repro.sanitize`) can observe the race the static pass
predicts.  That pairing is what ``python -m
repro.spec.effects.concurrency --crosscheck`` exercises: for every
runnable fixture, dynamic violations must be a subset of the static
findings.

The ``--seed`` flag perturbs identifiers and iteration counts so the
rule tests cannot accidentally pass by string-matching one frozen
program text.

Run:  python tools/make_race_fixture.py --out DIR [--seed N]
Writes one ``.py`` per pattern plus ``manifest.json`` describing the
expected finding for each (file, class, field, rule, runnable).
"""

import argparse
import json
import random
from pathlib import Path

#: the rule each generated module must trip, keyed by fixture stem
RULES = {
    "unguarded_write": "unguarded-shared-write",
    "inconsistent_guard": "inconsistent-guard",
    "lock_order": "lock-order-inversion",
    "blocking_under_lock": "lock-held-across-blocking-call",
    "flag_outside_commit": "flag-mutation-outside-commit",
}

#: fixtures whose race the dynamic sanitizer can observe at runtime
RUNNABLE = {"unguarded_write", "inconsistent_guard", "lock_order"}

_ADJECTIVES = ["Busy", "Shared", "Hot", "Racy", "Split", "Torn"]
_NOUNS = ["Counter", "Ledger", "Buffer", "Meter", "Tally"]
_FIELDS = ["total", "count", "balance", "hits", "acc"]


def _names(rng):
    """One seeded (class, field) identifier pair."""
    cls = rng.choice(_ADJECTIVES) + rng.choice(_NOUNS)
    field = rng.choice(_FIELDS)
    return cls, field


def make_unguarded_write(rng):
    cls, field = _names(rng)
    iters = rng.randrange(200, 400)
    source = f'''"""Seeded race: {field} written bare from spawned threads."""

import threading


class {cls}:
    def __init__(self):
        self.lock = threading.Lock()
        self.{field} = 0

    def work(self):
        for _ in range({iters}):
            self.{field} += 1  # bare: the declared lock is never taken


def run(threads=4):
    obj = {cls}()
    barrier = threading.Barrier(threads)

    def go():
        barrier.wait()
        obj.work()

    workers = [threading.Thread(target=go) for _ in range(threads)]
    for t in workers:
        t.start()
    for t in workers:
        t.join()
    return obj
'''
    return source, cls, field


def make_inconsistent_guard(rng):
    cls, field = _names(rng)
    iters = rng.randrange(200, 400)
    source = f'''"""Seeded race: {field} guarded on one path, bare on the other."""

import threading


class {cls}:
    def __init__(self):
        self.lock = threading.Lock()
        self.{field} = 0

    def safe_add(self):
        with self.lock:
            self.{field} += 1

    def fast_add(self):
        self.{field} += 1  # bare: races every safe_add


def run(threads=4):
    obj = {cls}()
    barrier = threading.Barrier(threads)

    def go(use_lock):
        barrier.wait()
        for _ in range({iters}):
            if use_lock:
                obj.safe_add()
            else:
                obj.fast_add()

    workers = [
        threading.Thread(target=go, args=(i % 2 == 0,))
        for i in range(threads)
    ]
    for t in workers:
        t.start()
    for t in workers:
        t.join()
    return obj
'''
    return source, cls, field


def make_lock_order(rng):
    cls, field = _names(rng)
    source = f'''"""Seeded inversion: two locks taken in opposite orders."""

import threading


class {cls}:
    def __init__(self):
        self.alpha = threading.Lock()
        self.beta = threading.Lock()
        self.{field} = 0

    def forward(self):
        with self.alpha:
            with self.beta:
                self.{field} += 1

    def backward(self):
        with self.beta:
            with self.alpha:
                self.{field} += 1


def run(threads=2):
    obj = {cls}()
    # sequential on purpose: the *order edges* are the bug being
    # detected; interleaving them for real would deadlock the fixture
    obj.forward()
    obj.backward()
    return obj
'''
    return source, cls, "beta"


def make_blocking_under_lock(rng):
    cls, field = _names(rng)
    source = f'''"""Seeded stall: a sleep inside the critical section."""

import threading
import time


class {cls}:
    def __init__(self):
        self.lock = threading.Lock()
        self.{field} = 0

    def slow_update(self):
        with self.lock:
            time.sleep(0.01)  # every contender stalls behind this
            self.{field} += 1
'''
    return source, cls, field


def make_flag_outside_commit(rng):
    cls, field = _names(rng)
    source = f'''"""Seeded protocol bypass: direct dirty-flag mutation off-thread."""

import threading


class {cls}:
    def __init__(self, target):
        self.lock = threading.Lock()
        self.target = target
        self._worker = threading.Thread(target=self.poke)

    def poke(self):
        # the write barrier owns this flag; poking it from a thread
        # races the commit path's record-and-clear
        self.target._ckpt_info.modified = True
'''
    return source, cls, "modified"


GENERATORS = {
    "unguarded_write": make_unguarded_write,
    "inconsistent_guard": make_inconsistent_guard,
    "lock_order": make_lock_order,
    "blocking_under_lock": make_blocking_under_lock,
    "flag_outside_commit": make_flag_outside_commit,
}


def generate(out_dir, seed=0):
    """Write every fixture into ``out_dir``; return the manifest list."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    rng = random.Random(seed)
    manifest = []
    for stem, build in GENERATORS.items():
        source, cls, field = build(rng)
        path = out / f"{stem}.py"
        path.write_text(source, encoding="utf-8")
        manifest.append(
            {
                "file": path.name,
                "class": cls,
                "field": field,
                "rule": RULES[stem],
                "runnable": stem in RUNNABLE,
            }
        )
    (out / "manifest.json").write_text(
        json.dumps(manifest, indent=2) + "\n", encoding="utf-8"
    )
    return manifest


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default="build/race_fixtures",
        help="directory the fixture modules are written into",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="identifier/iteration seed"
    )
    args = parser.parse_args(argv)
    manifest = generate(args.out, seed=args.seed)
    for entry in manifest:
        flag = "runnable" if entry["runnable"] else "static-only"
        print(
            f"{entry['file']}: {entry['rule']} on "
            f"{entry['class']}.{entry['field']} ({flag})"
        )
    print(f"{len(manifest)} fixture(s) -> {args.out}/manifest.json")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
