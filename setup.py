"""Legacy setup shim.

The primary metadata lives in pyproject.toml; this file exists so that
``pip install -e .`` works in offline environments that lack the
``wheel`` package (pip falls back to ``setup.py develop`` with
``--no-use-pep517``).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
