"""repro — Efficient incremental checkpointing of object graphs via program specialization.

Reproduction of "Efficient Incremental Checkpointing of Java Programs"
(Julia L. Lawall and Gilles Muller, DSN 2000), ported from Java to Python.

The package provides:

- :mod:`repro.core` — the language-level checkpointing framework: per-class
  generated ``record``/``fold``/``restore`` methods, per-object identity and
  modification flags, incremental and full checkpoint drivers, a binary wire
  format, restore/replay, and durable checkpoint stores.
- :mod:`repro.spec` — an offline program specializer (the JSpec/Tempo analog):
  the generic checkpoint algorithm is expressed in a small imperative IR,
  binding-time analysed, and partially evaluated against declared structural
  facts (:class:`~repro.spec.shape.Shape`) and modification-pattern facts
  (:class:`~repro.spec.modpattern.ModificationPattern`), emitting monolithic
  specialized checkpoint functions as compiled Python.
- :mod:`repro.runtime` — the unified checkpoint runtime: a
  :class:`~repro.runtime.session.CheckpointSession` owning root objects, a
  pluggable :class:`~repro.runtime.strategy.StrategyRegistry` of
  checkpointing tiers with per-phase overrides, an
  :class:`~repro.runtime.policy.EpochPolicy` for full-vs-delta cadence and
  automatic compaction, and :class:`~repro.runtime.sink.Sink` targets
  unifying byte buffers, durable stores, and asynchronous writers behind
  one ``commit()`` path.
- :mod:`repro.vm` — a metered abstract machine: exact operation-count models
  of every checkpointing variant plus cost profiles standing in for the
  paper's three execution environments (JDK 1.2 JIT, HotSpot, Harissa).
- :mod:`repro.analysis` — the paper's realistic application: a program
  analysis engine (side-effect, binding-time and evaluation-time analyses)
  for a simplified C, whose per-node ``Attributes`` results are checkpointed
  after every analysis iteration.
- :mod:`repro.synthetic` — the paper's synthetic benchmark: compound
  structures of linked lists with controllable modification patterns.
- :mod:`repro.bench` — the experiment harness regenerating every table and
  figure of the paper's evaluation section.
"""

from repro.core.checkpoint import (
    Checkpoint,
    FullCheckpoint,
    ReflectiveCheckpoint,
)
from repro.core.checkpointable import Checkpointable
from repro.core.errors import (
    CheckpointError,
    CycleError,
    EffectAnalysisError,
    PatternViolationError,
    ResidualVerificationError,
    RestoreError,
    SchemaError,
    SpecializationError,
    StorageError,
    UnsoundPatternError,
)
from repro.core.fields import child, child_list, scalar, scalar_list
from repro.core.info import CheckpointInfo
from repro.core.replica import ReplicatedStore, Scrubber
from repro.core.restore import apply_incremental, replay, restore_full
from repro.core.storage import FileStore, MemoryStore
from repro.core.streams import DataInputStream, DataOutputStream
from repro.core.retry import RetryPolicy, RetryStats
from repro.runtime import (
    DEFAULT_STRATEGIES,
    AutoSpecStrategy,
    BufferSink,
    CheckpointSession,
    CommitReceipt,
    CommitResult,
    DriverStrategy,
    EpochPolicy,
    NullSink,
    Sink,
    SpecializedStrategy,
    StoreSink,
    Strategy,
    StrategyRegistry,
)
from repro.spec.autospec import AutoSpecializer, PatternObserver
from repro.spec.effects import (
    EffectReport,
    PatternVerdict,
    WriteSite,
    analyze_effects,
    check_pattern,
    verify_residual,
)
from repro.spec.modpattern import ModificationPattern
from repro.spec.shape import Shape
from repro.spec.specclass import SpecClass, SpecCompiler

__version__ = "1.0.0"

__all__ = [
    "Checkpoint",
    "FullCheckpoint",
    "ReflectiveCheckpoint",
    "Checkpointable",
    "CheckpointInfo",
    "CheckpointError",
    "CycleError",
    "EffectAnalysisError",
    "PatternViolationError",
    "ResidualVerificationError",
    "RestoreError",
    "SchemaError",
    "SpecializationError",
    "StorageError",
    "UnsoundPatternError",
    "scalar",
    "scalar_list",
    "child",
    "child_list",
    "DataOutputStream",
    "DataInputStream",
    "restore_full",
    "apply_incremental",
    "replay",
    "MemoryStore",
    "FileStore",
    "ReplicatedStore",
    "Scrubber",
    "CheckpointSession",
    "CommitReceipt",
    "CommitResult",
    "EpochPolicy",
    "RetryPolicy",
    "RetryStats",
    "Sink",
    "NullSink",
    "BufferSink",
    "StoreSink",
    "Strategy",
    "DriverStrategy",
    "SpecializedStrategy",
    "AutoSpecStrategy",
    "StrategyRegistry",
    "DEFAULT_STRATEGIES",
    "Shape",
    "ModificationPattern",
    "SpecClass",
    "SpecCompiler",
    "PatternObserver",
    "AutoSpecializer",
    "EffectReport",
    "WriteSite",
    "analyze_effects",
    "PatternVerdict",
    "check_pattern",
    "verify_residual",
    "__version__",
]
