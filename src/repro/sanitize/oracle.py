"""Shadow-heap dirtiness oracle — the dynamic half of the alias analysis.

:mod:`repro.spec.effects.aliasing` proves statically that no write can
bypass the per-object modified flag; this module *checks* the same
property at runtime, by brute force. The oracle keeps a **shadow heap**:
a full, field-by-field serialization of every object reachable from the
session's bound roots, keyed by object id. Around each commit it
re-serializes the live graph and byte-diffs it against the shadow:

- an object whose bytes changed (or that is newly reachable) while its
  modified flag is **clear** is an **under-approximation**
  (``unflagged-mutation``) — the soundness violation the paper's scheme
  cannot tolerate: the next delta would skip the object and restore
  would resurrect stale bytes;
- an object whose flag is **set** while its bytes are unchanged is an
  **over-approximation** (``overapproximated-flag``) — benign (a
  same-value store through a descriptor), but measurable waste the
  report surfaces.

Like the lockset sanitizer, the oracle observes and never perturbs:
serialization reads raw ``_f_*`` slots (no descriptor fires, no flag
moves), violations are reported once per ``(kind, class, field)``
through the obs seam (``oracle.violation`` events + an
``oracle.violations`` counter), and workloads run to completion.

Hook points on :class:`~repro.runtime.session.CheckpointSession`
(installed by ``session.attach_oracle(oracle)``):

``measure()``  → :meth:`ShadowHeapOracle.observe`
    Diff without advancing the shadow — measurement must stay pure.
``_commit()``  → :meth:`before_commit` / :meth:`after_commit`
    The diff is staged before the drivers run (they clear flags) and
    folded into the shadow only after the epoch persists, so a failed
    commit leaves the shadow on the last durable state.
``restore()``  → :meth:`resync`
    Restore rewrites object state wholesale; the shadow follows.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Set, Tuple

from repro.obs.metrics import NULL_METRICS
from repro.obs.tracer import NULL_TRACER

__all__ = [
    "OracleReport",
    "OracleViolation",
    "ShadowHeapOracle",
    "UNDER",
    "OVER",
]

#: violation kinds
UNDER = "unflagged-mutation"
OVER = "overapproximated-flag"

_tls = threading.local()

#: field snapshot: tuple of (field name, serialized bytes)
FieldImage = Tuple[Tuple[str, bytes], ...]


def serialize_fields(obj) -> FieldImage:
    """A faithful per-field image of one object, mirroring the wire format.

    Reads raw ``_f_*`` slots so no descriptor fires — serialization is
    side-effect-free, exactly like the generated ``record()`` methods
    (scalar value / scalar_list values / child id / child_list ids).
    """
    image = []
    for spec in obj._ckpt_schema:
        value = getattr(obj, spec.slot)
        if spec.role == "scalar":
            encoded = repr(value).encode("utf-8", "backslashreplace")
        elif spec.role == "scalar_list":
            encoded = repr(value._items).encode("utf-8", "backslashreplace")
        elif spec.role == "child":
            child_id = value._ckpt_info.object_id if value is not None else -1
            encoded = str(child_id).encode("ascii")
        else:  # child_list
            encoded = ",".join(
                str(c._ckpt_info.object_id) for c in value._items
            ).encode("ascii")
        image.append((spec.name, encoded))
    return tuple(image)


class OracleViolation:
    """One observed disagreement between the flags and the bytes."""

    __slots__ = (
        "kind", "cls", "field", "object_id", "phase", "commit_kind", "detail"
    )

    def __init__(
        self,
        kind: str,
        cls: str,
        field: str,
        object_id: int,
        phase: str,
        commit_kind: str,
        detail: str,
    ) -> None:
        self.kind = kind
        self.cls = cls
        self.field = field
        self.object_id = object_id
        #: session phase label the check ran under
        self.phase = phase
        #: ``full`` / ``delta`` / ``measure`` / ``resync``
        self.commit_kind = commit_kind
        self.detail = detail

    def key(self) -> Tuple[str, str, str]:
        return (self.kind, self.cls, self.field)

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "class": self.cls,
            "field": self.field,
            "object_id": self.object_id,
            "phase": self.phase,
            "commit_kind": self.commit_kind,
            "detail": self.detail,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<OracleViolation {self.kind} {self.cls}.{self.field}>"


class OracleReport:
    """The outcome of one oracle pass over the reachable graph."""

    __slots__ = ("phase", "commit_kind", "objects", "predicted", "changed",
                 "under", "over")

    def __init__(self, phase: str, commit_kind: str) -> None:
        self.phase = phase
        self.commit_kind = commit_kind
        #: reachable objects walked
        self.objects = 0
        #: objects the flags predicted dirty
        self.predicted = 0
        #: objects whose bytes actually differ from the shadow (or are new)
        self.changed = 0
        self.under: List[OracleViolation] = []
        self.over: List[OracleViolation] = []

    @property
    def consistent(self) -> bool:
        """No under-approximation: flags ⊇ bytes (the soundness direction)."""
        return not self.under

    @property
    def exact(self) -> bool:
        """Flags == bytes: neither direction disagrees."""
        return not self.under and not self.over

    def as_dict(self) -> dict:
        return {
            "phase": self.phase,
            "commit_kind": self.commit_kind,
            "objects": self.objects,
            "predicted": self.predicted,
            "changed": self.changed,
            "under": [v.as_dict() for v in self.under],
            "over": [v.as_dict() for v in self.over],
        }


class ShadowHeapOracle:
    """Byte-level ground truth for the modified-flag discipline.

    One oracle serves one session (its shadow tracks that session's
    roots), but the class is internally synchronized so background
    drains and test threads may race it safely.
    """

    def __init__(self, tracer=NULL_TRACER, metrics=NULL_METRICS) -> None:
        self.tracer = tracer
        self.metrics = metrics
        self.violations: List[OracleViolation] = []
        self.reports: List[OracleReport] = []
        #: object_id -> (class name, field image)
        self._shadow: Dict[int, Tuple[str, FieldImage]] = {}
        self._staged: Optional[Dict[int, Tuple[str, FieldImage]]] = None
        self._reported: Set[Tuple[str, str, str]] = set()
        self._mutex = threading.RLock()

    def instrument(self, tracer, metrics) -> None:
        """Attach obs hooks (only replaces the no-op defaults)."""
        with self._mutex:
            if self.tracer is NULL_TRACER:
                self.tracer = tracer
            if self.metrics is NULL_METRICS:
                self.metrics = metrics

    # -- the diff ----------------------------------------------------------

    def _walk(self, roots) -> List:
        from repro.core.checkpoint import collect_objects

        objects: List = []
        seen: Set[int] = set()
        for root in roots:
            for obj in collect_objects(root):
                oid = obj._ckpt_info.object_id
                if oid not in seen:
                    seen.add(oid)
                    objects.append(obj)
        return objects

    def _diff(
        self, roots, phase: str, commit_kind: str, stage: bool
    ) -> OracleReport:
        report = OracleReport(phase, commit_kind)
        # A full commit writes every object regardless of flags, so
        # flag/byte disagreement there cannot lose bytes — and clearing
        # flags ahead of a base (``reset_flags``) is a legitimate
        # pattern. Only measure and delta kinds carry verdicts; a full
        # commit just adopts the live state into the shadow.
        enforce = commit_kind != "full"
        staged: Dict[int, Tuple[str, FieldImage]] = {}
        for obj in self._walk(roots):
            info = obj._ckpt_info
            oid = info.object_id
            cls_name = type(obj).__name__
            image = serialize_fields(obj)
            staged[oid] = (cls_name, image)
            report.objects += 1
            flagged = info.modified
            if flagged:
                report.predicted += 1
            prior = self._shadow.get(oid)
            if prior is None:
                # newly reachable: must be flag-predicted (fresh objects
                # construct with modified=True; a clear flag means it was
                # wiped through a bypass)
                report.changed += 1
                if not flagged and enforce:
                    self._violate(
                        report, UNDER, cls_name, "<new-object>", oid,
                        phase, commit_kind,
                        f"new reachable {cls_name}#{oid} has a clear "
                        "modified flag: it would never be written",
                    )
                continue
            prior_cls, prior_image = prior
            changed_fields = [
                name
                for (name, encoded), (_, prior_encoded) in zip(
                    image, prior_image
                )
                if encoded != prior_encoded
            ] if prior_cls == cls_name else ["<class-changed>"]
            if changed_fields:
                report.changed += 1
                if not flagged and enforce:
                    self._violate(
                        report, UNDER, cls_name, changed_fields[0], oid,
                        phase, commit_kind,
                        f"{cls_name}#{oid}.{changed_fields[0]} bytes "
                        "changed with a clear modified flag: a delta "
                        "commit would skip it",
                    )
            elif flagged and enforce:
                self._violate(
                    report, OVER, cls_name, "<unchanged>", oid,
                    phase, commit_kind,
                    f"{cls_name}#{oid} flagged modified but every field "
                    "is byte-identical to the shadow (benign "
                    "over-approximation)",
                )
        if stage:
            self._staged = staged
        self.reports.append(report)
        return report

    # -- session hooks -----------------------------------------------------

    def observe(self, roots, phase: str = "measure") -> OracleReport:
        """Diff without advancing the shadow (``measure()`` must stay pure)."""
        with self._mutex:
            return self._diff(roots, phase, "measure", stage=False)

    def before_commit(
        self, roots, phase: str = "", commit_kind: str = "delta"
    ) -> OracleReport:
        """Diff and stage the new images before the drivers clear flags."""
        with self._mutex:
            return self._diff(roots, phase, commit_kind, stage=True)

    def after_commit(self) -> None:
        """Fold the staged images in — the epoch is durable now."""
        with self._mutex:
            if self._staged is not None:
                self._shadow.update(self._staged)
                self._staged = None

    def resync(self, roots, phase: str = "restore") -> None:
        """Rebuild the shadow from live state (after ``restore()``)."""
        with self._mutex:
            self._staged = None
            self._shadow = {
                obj._ckpt_info.object_id: (
                    type(obj).__name__,
                    serialize_fields(obj),
                )
                for obj in self._walk(roots)
            }

    # -- reporting ---------------------------------------------------------

    def _violate(
        self,
        report: OracleReport,
        kind: str,
        cls: str,
        field: str,
        object_id: int,
        phase: str,
        commit_kind: str,
        detail: str,
    ) -> None:
        violation = OracleViolation(
            kind, cls, field, object_id, phase, commit_kind, detail
        )
        (report.under if kind == UNDER else report.over).append(violation)
        key = violation.key()
        if key in self._reported:
            return
        self._reported.add(key)
        self.violations.append(violation)
        if getattr(_tls, "in_oracle", False):
            return
        _tls.in_oracle = True
        try:
            self.tracer.event(
                "oracle.violation",
                kind=kind,
                **{"class": cls},
                field=field,
                object_id=object_id,
                phase=phase,
                commit_kind=commit_kind,
                detail=detail,
            )
            self.metrics.counter("oracle.violations", kind=kind).inc()
        finally:
            _tls.in_oracle = False

    # -- queries -----------------------------------------------------------

    def under(self) -> List[OracleViolation]:
        with self._mutex:
            return [v for v in self.violations if v.kind == UNDER]

    def over(self) -> List[OracleViolation]:
        with self._mutex:
            return [v for v in self.violations if v.kind == OVER]

    def violation_keys(self) -> Set[Tuple[str, str]]:
        """``(class, field)`` pairs with a soundness verdict (crosscheck key)."""
        with self._mutex:
            return {(v.cls, v.field) for v in self.violations if v.kind == UNDER}

    def shadow_size(self) -> int:
        with self._mutex:
            return len(self._shadow)

    def reset(self) -> None:
        """Forget all state (between workloads in one process)."""
        with self._mutex:
            self.violations.clear()
            self.reports.clear()
            self._shadow.clear()
            self._staged = None
            self._reported.clear()
