"""Dynamic lockset sanitizer — the runtime half of the race analysis.

:mod:`repro.spec.effects.concurrency` proves lock discipline statically;
this package *watches* it at runtime, Eraser-style.  Weaving a class
(:func:`weave` / :func:`weave_runtime`) does two things:

- every ``threading.Lock``/``RLock`` attribute created by ``__init__``
  is wrapped in a :class:`SanitizedLock` proxy that maintains a
  per-thread held-lock set and feeds the global lock-order graph;
- the class's ``__setattr__`` is replaced with a shim that reports each
  attribute write — together with the writing thread and its held set —
  to the :class:`Sanitizer`'s per-field state machine.

The state machine is the classic Eraser lattice: a field is *virgin*
until written, *exclusive* while only its first thread touches it, and
*shared* once a second thread writes.  From then on the field's
candidate lockset is the running intersection of the locks held at each
write; an empty intersection is a data race, reported **once** per
``(class, field)`` as an obs event (``sanitizer.violation``) and a
metrics counter — never an exception, because a sanitizer must observe,
not perturb.

Zero disabled cost: nothing here touches a class until it is explicitly
woven, so the default runtime pays no import-time or call-time overhead
(the same contract as :data:`repro.obs.tracer.NULL_TRACER`).  Weaving is
reversible (:func:`unweave_all`) so tests can sandwich workloads.

The static analysis is write-centric, so the sanitizer is too: bare
*reads* of shared state are not tracked.  That keeps the crosscheck
(``python -m repro.spec.effects.concurrency --crosscheck``) sound:
every dynamic violation corresponds to an unguarded written field the
static pass must also have flagged (static ⊇ dynamic).
"""

from __future__ import annotations

import threading
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.obs.metrics import NULL_METRICS
from repro.obs.tracer import NULL_TRACER
from repro.sanitize.oracle import (
    OracleReport,
    OracleViolation,
    ShadowHeapOracle,
)

__all__ = [
    "OracleReport",
    "OracleViolation",
    "SanitizedLock",
    "Sanitizer",
    "ShadowHeapOracle",
    "Violation",
    "current_held",
    "get_sanitizer",
    "unweave_all",
    "weave",
    "weave_runtime",
]

#: raw lock types as returned by the factories (``_thread.LockType`` etc.)
_LOCK_TYPES = (type(threading.Lock()), type(threading.RLock()))

_tls = threading.local()


def current_held() -> Tuple[str, ...]:
    """The names of the locks the calling thread currently holds."""
    return tuple(getattr(_tls, "held", ()))


def _push_held(name: str) -> None:
    held = getattr(_tls, "held", None)
    if held is None:
        held = []
        _tls.held = held
    held.append(name)


def _pop_held(name: str) -> None:
    held = getattr(_tls, "held", None)
    if held and name in held:
        # remove the most recent acquisition of this lock (RLock reentry)
        for i in range(len(held) - 1, -1, -1):
            if held[i] == name:
                del held[i]
                break


class SanitizedLock:
    """Proxy around a raw lock that tracks the holder thread's held set.

    Behaves like the wrapped lock (context manager, ``acquire`` /
    ``release``, ``locked``) and additionally:

    - pushes/pops its name on the calling thread's held-lock stack;
    - reports each acquisition to the sanitizer's lock-order graph
      (an edge *held → acquired* for every lock already held).
    """

    __slots__ = ("_lock", "name", "_sanitizer")

    def __init__(self, lock, name: str, sanitizer: "Sanitizer") -> None:
        self._lock = lock
        self.name = name
        self._sanitizer = sanitizer

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        self._sanitizer.note_acquire(self.name, current_held())
        acquired = self._lock.acquire(blocking, timeout)
        if acquired:
            _push_held(self.name)
        return acquired

    def release(self) -> None:
        self._lock.release()
        _pop_held(self.name)

    def locked(self) -> bool:
        return self._lock.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SanitizedLock {self.name} wrapping {self._lock!r}>"


class Violation:
    """One dynamic race observation (reported once per class/field)."""

    __slots__ = ("rule", "cls", "field", "threads", "detail")

    def __init__(
        self, rule: str, cls: str, field: str, threads: int, detail: str
    ) -> None:
        self.rule = rule
        self.cls = cls
        self.field = field
        self.threads = threads
        self.detail = detail

    def key(self) -> Tuple[str, str, str]:
        return (self.rule, self.cls, self.field)

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "class": self.cls,
            "field": self.field,
            "threads": self.threads,
            "detail": self.detail,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Violation {self.rule} {self.cls}.{self.field}>"


class _FieldState:
    """Eraser lattice state for one ``(instance, field)`` pair."""

    __slots__ = ("owner", "shared", "candidates", "writer_threads")

    def __init__(self, owner: int) -> None:
        self.owner = owner
        self.shared = False
        #: None until the field goes shared; then the running intersection
        self.candidates: Optional[FrozenSet[str]] = None
        self.writer_threads: Set[int] = {owner}


class Sanitizer:
    """Global dynamic-lockset checker fed by woven classes.

    One process-wide instance (``get_sanitizer()``) so locks wrapped in
    one class and state written from another share a single lock-order
    graph and violation sink.  Internally synchronized — the sanitizer
    watches races, it must not have any.
    """

    def __init__(self, tracer=NULL_TRACER, metrics=NULL_METRICS) -> None:
        self.tracer = tracer
        self.metrics = metrics
        self.violations: List[Violation] = []
        self._states: Dict[Tuple[int, str], _FieldState] = {}
        #: lock-order edges observed at runtime: held -> acquired
        self._order: Set[Tuple[str, str]] = set()
        self._reported: Set[Tuple[str, str, str]] = set()
        # RLock + a thread-local reentrancy flag: reporting a violation
        # goes through the (possibly woven) Tracer, whose own attribute
        # writes must not re-enter the checker
        self._mutex = threading.RLock()

    def instrument(self, tracer, metrics) -> None:
        """Attach obs hooks (only replaces the no-op defaults)."""
        with self._mutex:
            if self.tracer is NULL_TRACER:
                self.tracer = tracer
            if self.metrics is NULL_METRICS:
                self.metrics = metrics

    # -- event intake ----------------------------------------------------

    def note_acquire(self, name: str, held: Tuple[str, ...]) -> None:
        """Record *held → name* order edges; flag inversions."""
        with self._mutex:
            for h in held:
                if h == name:
                    continue  # RLock reentry is not an ordering edge
                self._order.add((h, name))
                if (name, h) in self._order:
                    self._report(
                        "lock-order-inversion",
                        *_split_lock_name(h),
                        threads=2,
                        detail=f"{h} -> {name} observed after {name} -> {h}",
                    )

    def note_write(self, obj, cls_name: str, field: str) -> None:
        """Feed one attribute write into the per-field state machine."""
        if getattr(_tls, "in_sanitizer", False):
            return
        thread_id = threading.get_ident()
        held = frozenset(current_held())
        key = (id(obj), field)
        with self._mutex:
            state = self._states.get(key)
            if state is None:
                self._states[key] = _FieldState(thread_id)
                return
            if not state.shared and thread_id == state.owner:
                return  # still exclusive to the constructing thread
            state.shared = True
            state.writer_threads.add(thread_id)
            if state.candidates is None:
                state.candidates = held
            else:
                state.candidates &= held
            if not state.candidates:
                self._report(
                    "unguarded-shared-write",
                    cls_name,
                    field,
                    threads=len(state.writer_threads),
                    detail=(
                        f"{cls_name}.{field} written by "
                        f"{len(state.writer_threads)} threads with no "
                        "common lock held"
                    ),
                )

    # -- reporting -------------------------------------------------------

    def _report(
        self, rule: str, cls: str, field: str, threads: int, detail: str
    ) -> None:
        # caller holds self._mutex
        key = (rule, cls, field)
        if key in self._reported:
            return
        self._reported.add(key)
        violation = Violation(rule, cls, field, threads, detail)
        self.violations.append(violation)
        _tls.in_sanitizer = True
        try:
            self.tracer.event(
                "sanitizer.violation",
                rule=rule,
                **{"class": cls},
                field=field,
                threads=threads,
                detail=detail,
            )
            self.metrics.counter("sanitizer.violations", rule=rule).inc()
        finally:
            _tls.in_sanitizer = False

    def violation_keys(self) -> Set[Tuple[str, str]]:
        """``(class, field)`` pairs with a race verdict (crosscheck key)."""
        with self._mutex:
            return {
                (v.cls, v.field)
                for v in self.violations
                if v.rule == "unguarded-shared-write"
            }

    def forget_instance(self, obj) -> None:
        """Drop per-field state for ``obj`` (called when ``__init__`` runs).

        CPython reuses ``id()`` values after collection; without this, a
        fresh object constructed on another thread would inherit a dead
        object's Eraser state and report a phantom race.
        """
        key_id = id(obj)
        with self._mutex:
            stale = [k for k in self._states if k[0] == key_id]
            for k in stale:
                del self._states[k]

    def reset(self) -> None:
        """Forget all state (between workloads in one process)."""
        with self._mutex:
            self.violations.clear()
            self._states.clear()
            self._order.clear()
            self._reported.clear()


_sanitizer: Optional[Sanitizer] = None
_sanitizer_guard = threading.Lock()


def get_sanitizer() -> Sanitizer:
    """The process-wide sanitizer (created on first use)."""
    global _sanitizer
    with _sanitizer_guard:
        if _sanitizer is None:
            _sanitizer = Sanitizer()
        return _sanitizer


def _split_lock_name(name: str) -> Tuple[str, str]:
    cls, _, attr = name.partition(".")
    return (cls, attr or name)


# -- weaving -------------------------------------------------------------

#: classes currently woven: cls -> (original __init__, original __setattr__)
_woven: Dict[type, Tuple[object, object]] = {}


def weave(cls: type, sanitizer: Optional[Sanitizer] = None) -> type:
    """Weave the sanitizer into ``cls`` (idempotent; returns ``cls``).

    After weaving, instances created by ``cls.__init__`` get their raw
    lock attributes wrapped in :class:`SanitizedLock` proxies, and every
    attribute write on any instance is reported to the sanitizer.
    """
    if cls in _woven:
        return cls
    san = sanitizer or get_sanitizer()
    orig_init = cls.__init__
    orig_setattr = cls.__setattr__

    def woven_setattr(self, name, value):
        # lock installation and proxy replacement are bookkeeping, not
        # shared-state writes; everything else goes through the checker
        if not isinstance(value, (SanitizedLock, *_LOCK_TYPES)):
            san.note_write(self, type(self).__name__, name)
        orig_setattr(self, name, value)

    def woven_init(self, *args, **kwargs):
        san.forget_instance(self)
        orig_init(self, *args, **kwargs)
        for attr, value in list(vars(self).items()):
            if isinstance(value, _LOCK_TYPES):
                proxy = SanitizedLock(
                    value, f"{type(self).__name__}.{attr}", san
                )
                orig_setattr(self, attr, proxy)

    _woven[cls] = (orig_init, orig_setattr)
    cls.__init__ = woven_init
    cls.__setattr__ = woven_setattr
    return cls


def unweave(cls: type) -> None:
    """Restore ``cls`` to its pre-weave behavior."""
    originals = _woven.pop(cls, None)
    if originals is not None:
        cls.__init__, cls.__setattr__ = originals


def unweave_all() -> None:
    """Restore every woven class (test teardown)."""
    for cls in list(_woven):
        unweave(cls)


def weave_runtime(sanitizer: Optional[Sanitizer] = None) -> List[type]:
    """Weave the checkpoint runtime's shared-state classes.

    The set mirrors the classes the static analysis treats as
    *concurrent* (they declare locks or spawn threads): the stores, the
    background writer, the session, the id allocator, and the obs
    primitives.  Returns the woven classes so callers can unweave.
    """
    from repro.core.ids import IdAllocator
    from repro.core.replica import ReplicatedStore, Scrubber
    from repro.core.storage import BackgroundWriter, FileStore, MemoryStore
    from repro.obs.tracer import Tracer
    from repro.runtime.session import CheckpointSession

    targets = [
        MemoryStore,
        FileStore,
        BackgroundWriter,
        ReplicatedStore,
        Scrubber,
        CheckpointSession,
        IdAllocator,
        Tracer,
    ]
    for cls in targets:
        weave(cls, sanitizer)
    return targets
