"""Lint targets: a module's declaration of what to analyse.

A module opts into the semantic checks by exporting a module-level
``LINT_TARGETS`` list::

    from repro.lint import LintTarget

    PROTO = Root(mid=Mid(leaf=Leaf(value=0), tag=0), extra=0)
    SHAPE = Shape.of(PROTO)

    def phase(root: Root):
        root.mid.leaf.value += 1

    LINT_TARGETS = [
        LintTarget(
            "root-phase",
            shape=SHAPE,
            phases=[phase],
            pattern=ModificationPattern.only(SHAPE, [("mid", "leaf")]),
        ),
    ]

For each target the linter runs the static modification-effect analysis
over the phases, diffs the declared pattern (if any) against it, and
compiles the specialization so the residual verifier checks the output.

A module can also export ``LINT_PROGRAMS`` — a list of
:class:`ProgramTarget` — to run *whole-program* phase inference over a
driver function: the linter discovers its ``session.commit(phase=...)``
sites, infers one pattern per inter-commit region, reports precision
losses (``escape-to-unknown``) and unattributable commits
(``commit-outside-phase``), diffs any declared per-phase patterns against
the inferred ones, and compiles each inferred phase through the residual
verifier.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.core.checkpointable import Checkpointable
from repro.core.errors import SpecializationError
from repro.spec.modpattern import ModificationPattern
from repro.spec.shape import Shape


class LintTarget:
    """One structure + phase set to check.

    Parameters
    ----------
    name:
        Label used in findings (and as the compiled function name).
    shape:
        The structure's :class:`~repro.spec.shape.Shape`. Exactly one of
        ``shape`` and ``prototype`` must be given.
    prototype:
        Convenience: a prototype instance to derive the shape from.
    phases:
        The functions executed between checkpoints (analysed together).
    pattern:
        The declared :class:`~repro.spec.modpattern.ModificationPattern`
        to check for soundness, built against the same ``shape`` object.
        ``None`` means "derive the pattern from the analysis".
    roots:
        Optional parameter names binding each phase's root argument, for
        phases whose parameters are not annotated with the root class.
    """

    def __init__(
        self,
        name: str,
        shape: Optional[Shape] = None,
        prototype: Optional[Checkpointable] = None,
        phases: Iterable[Callable] = (),
        pattern: Optional[ModificationPattern] = None,
        roots: Optional[Iterable[str]] = None,
    ) -> None:
        if (shape is None) == (prototype is None):
            raise SpecializationError(
                f"lint target {name!r}: give exactly one of shape= and "
                "prototype="
            )
        self.name = name
        self.shape = shape if shape is not None else Shape.of(prototype)
        self.phases: List[Callable] = list(phases)
        if not self.phases:
            raise SpecializationError(f"lint target {name!r} declares no phases")
        if pattern is not None and pattern.shape is not self.shape:
            raise SpecializationError(
                f"lint target {name!r}: the pattern was built for a "
                "different shape object"
            )
        self.pattern = pattern
        self.roots = list(roots) if roots is not None else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LintTarget({self.name!r}, {len(self.phases)} phase(s))"


class ProgramTarget:
    """One driver function to run whole-program phase inference over.

    Parameters
    ----------
    name:
        Label used in findings.
    shape:
        The checkpointed structure's :class:`~repro.spec.shape.Shape`.
        Exactly one of ``shape`` and ``prototype`` must be given.
    prototype:
        Convenience: a prototype instance to derive the shape from.
    driver:
        The program's driver function: takes the root structure(s) and a
        :class:`~repro.runtime.session.CheckpointSession`, and commits at
        its phase boundaries via ``session.commit(phase=...)``.
    roots:
        Optional parameter names binding the driver's root argument(s),
        for drivers whose parameters are not annotated with a root class.
    session_params:
        Parameter names carrying the session (default ``("session",)``).
    declared:
        Optional mapping of phase label to the programmer-declared
        :class:`~repro.spec.modpattern.ModificationPattern` for that
        phase, each built against the same ``shape`` object. The linter
        diffs every declaration against the inferred pattern.
    """

    def __init__(
        self,
        name: str,
        shape: Optional[Shape] = None,
        prototype: Optional[Checkpointable] = None,
        driver: Optional[Callable] = None,
        roots: Optional[Iterable[str]] = None,
        session_params: Sequence[str] = ("session",),
        declared: Optional[Dict[str, ModificationPattern]] = None,
    ) -> None:
        if (shape is None) == (prototype is None):
            raise SpecializationError(
                f"program target {name!r}: give exactly one of shape= and "
                "prototype="
            )
        if driver is None:
            raise SpecializationError(
                f"program target {name!r} declares no driver"
            )
        self.name = name
        self.shape = shape if shape is not None else Shape.of(prototype)
        self.driver = driver
        self.roots = list(roots) if roots is not None else None
        self.session_params = tuple(session_params)
        self.declared = dict(declared or {})
        for label, pattern in self.declared.items():
            if pattern.shape is not self.shape:
                raise SpecializationError(
                    f"program target {name!r}: the pattern declared for "
                    f"phase {label!r} was built for a different shape object"
                )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProgramTarget({self.name!r}, driver={self.driver.__name__!r})"


def targets_of(module) -> List[LintTarget]:
    """The validated ``LINT_TARGETS`` declaration of a module."""
    declared = getattr(module, "LINT_TARGETS", None)
    if declared is None:
        return []
    targets: List[LintTarget] = []
    for entry in declared:
        if not isinstance(entry, LintTarget):
            raise SpecializationError(
                f"module {module.__name__!r}: LINT_TARGETS entries must be "
                f"LintTarget instances, got {entry!r}"
            )
        targets.append(entry)
    return targets


def programs_of(module) -> List[ProgramTarget]:
    """The validated ``LINT_PROGRAMS`` declaration of a module."""
    declared = getattr(module, "LINT_PROGRAMS", None)
    if declared is None:
        return []
    programs: List[ProgramTarget] = []
    for entry in declared:
        if not isinstance(entry, ProgramTarget):
            raise SpecializationError(
                f"module {module.__name__!r}: LINT_PROGRAMS entries must be "
                f"ProgramTarget instances, got {entry!r}"
            )
        programs.append(entry)
    return programs
