"""The ``repro.lint`` command line: soundness linting for checkpointed code.

Usage::

    python -m repro.lint [PATH ...] [--format human|json]
                         [--strict] [--no-import] [--no-races] [--no-aliases]

With no paths, the installed ``repro`` package itself is linted (which
covers every built-in module, ``repro.runtime`` included). For every
``.py`` file under the given paths the linter

1. runs the pure-AST source rules (:mod:`repro.lint.rules`) — no import
   needed, so even broken files are checked;
2. unless ``--no-import``, imports the module and collects its
   ``LINT_TARGETS`` declarations (:mod:`repro.lint.targets`);
3. for each target, runs the static modification-effect analysis over the
   declared phases, diffs the declared pattern against the inferred
   effects (unsound → *error*, over-wide → *hint*), and compiles the
   specialization so the residual verifier checks the specializer's
   output end to end;
4. unless ``--no-races``, runs the interprocedural lockset analysis
   (:mod:`repro.spec.effects.concurrency`) over all discovered files as
   one program, emitting the race rule family (``unguarded-shared-write``,
   ``inconsistent-guard``, ``lock-order-inversion``,
   ``lock-held-across-blocking-call``, ``flag-mutation-outside-commit``);
5. unless ``--no-aliases``, runs the interprocedural escape/alias
   analysis (:mod:`repro.spec.effects.aliasing`), emitting the alias
   rule family (``alias-write-bypasses-flag``, ``shared-subtree-alias``,
   ``reference-escapes-recorded-graph``, ``alias-captured-by-thread``).

Findings identical in (code, file, line, target, message) are reported
once, even when several passes flag the same site. Exit status is 1
when any *error* finding was produced (with
``--strict``, also when any *warning* was), else 0. Finding paths under
the working directory are reported repo-relative, so JSON artifacts
diff cleanly across CI runners.

Modules inside a package (an ``__init__.py`` chain) are imported under
their canonical dotted name, so linting ``src`` never re-executes already
imported framework modules. Loose files (the examples) are imported once
per process under a deterministic path-derived name — re-running
:func:`main` in the same process reuses the cached module, which keeps
the class registry free of duplicate registrations.
"""

from __future__ import annotations

import argparse
import hashlib
import importlib
import importlib.util
import sys
import traceback
from pathlib import Path
from types import ModuleType
from typing import List, Optional, Tuple

from repro.core.errors import (
    CheckpointError,
    EffectAnalysisError,
    ResidualVerificationError,
)
from repro.lint.findings import (
    Finding,
    dedupe_findings,
    exit_code,
    relativize_findings,
    render_human,
    render_json,
)
from repro.lint.rules import check_source
from repro.lint.targets import LintTarget, ProgramTarget, programs_of, targets_of
from repro.spec.effects.analysis import analyze_effects
from repro.spec.effects.soundness import check_pattern
from repro.spec.effects.wholeprogram import infer_phases
from repro.spec.specclass import SpecClass, SpecCompiler

_SKIP_DIRS = {"__pycache__", ".git", ".hg", ".venv", "node_modules"}


def discover(paths: List[str]) -> List[Path]:
    """The ``.py`` files under the given files/directories, deduplicated."""
    seen = set()
    found: List[Path] = []

    def add(candidate: Path) -> None:
        resolved = candidate.resolve()
        if resolved not in seen:
            seen.add(resolved)
            found.append(resolved)

    for raw in paths:
        path = Path(raw)
        if path.is_file():
            if path.suffix == ".py":
                add(path)
            continue
        if not path.is_dir():
            raise FileNotFoundError(f"no such file or directory: {raw}")
        for candidate in sorted(path.rglob("*.py")):
            parts = set(candidate.parts)
            if parts & _SKIP_DIRS or any(
                part.endswith(".egg-info") for part in candidate.parts
            ):
                continue
            add(candidate)
    return found


# -- importing ---------------------------------------------------------------


def _package_root(file: Path) -> Optional[Tuple[Path, str]]:
    """(sys.path entry, dotted name) when ``file`` lives inside a package."""
    if file.name == "__init__.py":
        module_parts: List[str] = []
        directory = file.parent
    else:
        module_parts = [file.stem]
        directory = file.parent
    if not (directory / "__init__.py").exists():
        return None
    while (directory / "__init__.py").exists():
        module_parts.insert(0, directory.name)
        directory = directory.parent
    return directory, ".".join(module_parts)


def import_file(file: Path) -> ModuleType:
    """Import one discovered file, reusing ``sys.modules`` caches."""
    packaged = _package_root(file)
    if packaged is not None:
        root, dotted = packaged
        cached = sys.modules.get(dotted)
        if cached is not None:
            return cached
        if str(root) not in sys.path:
            sys.path.insert(0, str(root))
        return importlib.import_module(dotted)
    # Loose file: deterministic name so the same path imports exactly once
    # per process (duplicate imports would re-register checkpointable
    # classes under fresh module names). The file's own directory goes on
    # sys.path so sibling imports (e.g. a benchmark's conftest) resolve,
    # as they would under pytest.
    digest = hashlib.sha1(str(file).encode("utf-8")).hexdigest()[:12]
    name = f"_repro_lint_{digest}"
    cached = sys.modules.get(name)
    if cached is not None:
        return cached
    if str(file.parent) not in sys.path:
        sys.path.insert(0, str(file.parent))
    spec = importlib.util.spec_from_file_location(name, file)
    if spec is None or spec.loader is None:
        raise ImportError(f"cannot load {file}")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    try:
        spec.loader.exec_module(module)
    except BaseException:
        del sys.modules[name]
        raise
    return module


# -- semantic checks over declared targets -----------------------------------


def _phase_location(target: LintTarget) -> Tuple[Optional[str], Optional[int]]:
    code = getattr(target.phases[0], "__code__", None)
    if code is None:
        return None, None
    return code.co_filename, code.co_firstlineno


def check_target(target: LintTarget, filename: str) -> List[Finding]:
    """Analysis + soundness diff + compile-and-verify for one target."""
    findings: List[Finding] = []
    phase_file, phase_line = _phase_location(target)
    try:
        report = analyze_effects(target.shape, target.phases, roots=target.roots)
    except EffectAnalysisError as exc:
        findings.append(
            Finding(
                "error",
                "analysis-error",
                str(exc),
                filename=phase_file or filename,
                lineno=phase_line,
                target=target.name,
            )
        )
        return findings

    for site in report.fallbacks:
        findings.append(
            Finding(
                "info",
                "analysis-fallback",
                f"opaque call widened the analysis: {site.reason}",
                filename=site.filename,
                lineno=site.lineno,
                target=target.name,
            )
        )
    for site in report.cautions:
        findings.append(
            Finding(
                "info",
                "analysis-caution",
                site.reason,
                filename=site.filename,
                lineno=site.lineno,
                target=target.name,
            )
        )

    if target.pattern is not None:
        verdict = check_pattern(target.pattern, report)
        for path, site in verdict.unsound:
            where = f", first written at {site.location()}" if site else ""
            findings.append(
                Finding(
                    "error",
                    "unsound-pattern",
                    f"pattern declares {path!r} quiescent but the phases "
                    f"may modify it{where}: an unguarded specialization "
                    "would drop the data from every checkpoint",
                    filename=(site.filename if site else phase_file) or filename,
                    lineno=site.lineno if site else phase_line,
                    target=target.name,
                )
            )
        for path in verdict.overwide:
            findings.append(
                Finding(
                    "hint",
                    "overwide-pattern",
                    f"pattern declares {path!r} dynamic but the analysis "
                    "proves it is never written: the pattern can be "
                    "tightened for a faster specialization",
                    filename=phase_file or filename,
                    lineno=phase_line,
                    target=target.name,
                )
            )
        if verdict.sound and not verdict.overwide and report.is_exact():
            findings.append(
                Finding(
                    "hint",
                    "pattern-redundant",
                    "the declared pattern matches the inferred one exactly "
                    "and the analysis lost no precision: the declaration "
                    "can be dropped in favor of static inference",
                    filename=phase_file or filename,
                    lineno=phase_line,
                    target=target.name,
                )
            )
        # Compile the minimal *sound* pattern so the residual verifier
        # still runs end to end even when the declaration was unsound.
        pattern = target.pattern if verdict.sound else verdict.widened()
    else:
        pattern = report.pattern()

    # target names are free-form labels; the compiled function name must
    # be a Python identifier
    fn_name = "lint_" + "".join(
        c if c.isalnum() or c == "_" else "_" for c in target.name
    )
    try:
        compiler = SpecCompiler()
        compiler.compile(SpecClass(target.shape, pattern, name=fn_name))
    except ResidualVerificationError as exc:
        findings.append(
            Finding(
                "error",
                "residual-verification",
                str(exc),
                filename=phase_file or filename,
                lineno=phase_line,
                target=target.name,
            )
        )
    except CheckpointError as exc:
        findings.append(
            Finding(
                "error",
                "target-error",
                f"cannot compile specialization: {exc}",
                filename=phase_file or filename,
                lineno=phase_line,
                target=target.name,
            )
        )
    return findings


# -- whole-program checks over declared drivers ------------------------------


def _driver_location(
    target: ProgramTarget,
) -> Tuple[Optional[str], Optional[int]]:
    code = getattr(target.driver, "__code__", None)
    if code is None:
        return None, None
    return code.co_filename, code.co_firstlineno


def check_program(target: ProgramTarget, filename: str) -> List[Finding]:
    """Phase inference + per-phase soundness + compile for one driver.

    Emits the whole-program rules:

    ``escape-to-unknown`` (warning)
        A call inside an inter-commit region escaped the analysis (opaque
        callee), so the whole reachable subtree was widened: the inferred
        pattern is still sound but the specialization lost its precision.
    ``commit-outside-phase`` (warning)
        A commit that cannot be attributed to a phase — an unlabeled
        ``session.commit()`` in a driver with several commits, or writes
        after the final commit that no checkpoint will ever record.
    ``pattern-redundant`` (hint)
        A declared per-phase pattern that matches the inferred one
        exactly: static inference already derives it.
    """
    findings: List[Finding] = []
    driver_file, driver_line = _driver_location(target)
    try:
        report = infer_phases(
            target.shape,
            target.driver,
            roots=target.roots,
            session_params=target.session_params,
        )
    except EffectAnalysisError as exc:
        findings.append(
            Finding(
                "error",
                "analysis-error",
                str(exc),
                filename=driver_file or filename,
                lineno=driver_line,
                target=target.name,
            )
        )
        return findings

    seen_escapes = set()
    seen_cautions = set()
    for phase in report.phases:
        for site in phase.report.fallbacks:
            key = (site.filename, site.lineno)
            if key in seen_escapes:
                continue
            seen_escapes.add(key)
            findings.append(
                Finding(
                    "warning",
                    "escape-to-unknown",
                    f"call escapes the analysis in phase {phase.name!r}: "
                    f"{site.reason} — the whole reachable subtree was "
                    "widened to dynamic, so the inferred specialization "
                    "loses its precision here",
                    filename=site.filename,
                    lineno=site.lineno,
                    target=target.name,
                )
            )
        for site in phase.report.cautions:
            key = (site.filename, site.lineno, site.reason)
            if key in seen_cautions:
                continue
            seen_cautions.add(key)
            findings.append(
                Finding(
                    "info",
                    "analysis-caution",
                    site.reason,
                    filename=site.filename,
                    lineno=site.lineno,
                    target=target.name,
                )
            )

    commit_count = sum(
        1 for site in report.commit_sites if site.method == "commit"
    )
    if commit_count > 1:
        for site in report.unlabeled_commits():
            findings.append(
                Finding(
                    "warning",
                    "commit-outside-phase",
                    "unlabeled session.commit() in a driver with "
                    f"{commit_count} commits: the epoch cannot be "
                    "attributed to a phase, so no per-phase specialization "
                    "applies to it (label it with commit(phase=...))",
                    filename=site.filename,
                    lineno=site.lineno,
                    target=target.name,
                )
            )
    for phase in report.phases:
        if phase.kind == "epilogue" and phase.report.may_write:
            positions = sorted(phase.report.may_write, key=repr)
            findings.append(
                Finding(
                    "warning",
                    "commit-outside-phase",
                    f"the driver modifies {positions!r} after its final "
                    "commit: no checkpoint records these writes (commit "
                    "once more before returning)",
                    filename=driver_file or filename,
                    lineno=driver_line,
                    target=target.name,
                )
            )

    bindable = report.bindable()
    for label, declared in sorted(target.declared.items()):
        phase = bindable.get(label)
        if phase is None:
            findings.append(
                Finding(
                    "error",
                    "unknown-phase",
                    f"a pattern is declared for phase {label!r} but the "
                    "driver has no commit(phase=...) site with that label; "
                    f"inferred phases: {', '.join(sorted(bindable)) or 'none'}",
                    filename=driver_file or filename,
                    lineno=driver_line,
                    target=target.name,
                )
            )
            continue
        verdict = check_pattern(declared, phase.report)
        for path, site in verdict.unsound:
            where = f", first written at {site.location()}" if site else ""
            findings.append(
                Finding(
                    "error",
                    "unsound-pattern",
                    f"pattern declared for phase {label!r} marks {path!r} "
                    f"quiescent but the region may modify it{where}: an "
                    "unguarded specialization would drop the data from "
                    "every checkpoint",
                    filename=(site.filename if site else driver_file)
                    or filename,
                    lineno=site.lineno if site else driver_line,
                    target=target.name,
                )
            )
        for path in verdict.overwide:
            findings.append(
                Finding(
                    "hint",
                    "overwide-pattern",
                    f"pattern declared for phase {label!r} marks {path!r} "
                    "dynamic but the analysis proves the region never "
                    "writes it",
                    filename=driver_file or filename,
                    lineno=driver_line,
                    target=target.name,
                )
            )
        if verdict.sound and not verdict.overwide and phase.exact:
            findings.append(
                Finding(
                    "hint",
                    "pattern-redundant",
                    f"the pattern declared for phase {label!r} matches the "
                    "inferred one exactly and the analysis lost no "
                    "precision: bind_program derives it automatically",
                    filename=driver_file or filename,
                    lineno=driver_line,
                    target=target.name,
                )
            )

    for label, phase in sorted(bindable.items()):
        try:
            compiler = SpecCompiler()
            compiler.compile(
                phase.spec(
                    name="lint_"
                    + "".join(
                        c if c.isalnum() or c == "_" else "_"
                        for c in f"{target.name}_{label}"
                    )
                )
            )
        except ResidualVerificationError as exc:
            findings.append(
                Finding(
                    "error",
                    "residual-verification",
                    str(exc),
                    filename=driver_file or filename,
                    lineno=driver_line,
                    target=target.name,
                )
            )
        except CheckpointError as exc:
            findings.append(
                Finding(
                    "error",
                    "target-error",
                    f"cannot compile inferred specialization for phase "
                    f"{label!r}: {exc}",
                    filename=driver_file or filename,
                    lineno=driver_line,
                    target=target.name,
                )
            )
    return findings


# -- entry point -------------------------------------------------------------


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "Soundness linter for checkpointed programs: static "
            "modification-effect analysis, pattern soundness checking, and "
            "residual-program verification."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit nonzero on warnings too",
    )
    parser.add_argument(
        "--no-import",
        action="store_true",
        help="run only the source rules; skip imports and target checks",
    )
    parser.add_argument(
        "--no-races",
        action="store_true",
        help="skip the static lockset/race analysis pass",
    )
    parser.add_argument(
        "--no-aliases",
        action="store_true",
        help="skip the static escape/alias analysis pass",
    )
    options = parser.parse_args(argv)

    paths = options.paths
    if not paths:
        import repro

        paths = [str(Path(repro.__file__).parent)]

    try:
        files = discover(paths)
    except FileNotFoundError as exc:
        print(f"repro.lint: {exc}", file=sys.stderr)
        return 2

    findings: List[Finding] = []
    target_count = 0
    program_count = 0
    for file in files:
        filename = str(file)
        try:
            source = file.read_text(encoding="utf-8")
        except OSError as exc:
            findings.append(
                Finding("error", "read-error", str(exc), filename=filename)
            )
            continue
        findings.extend(check_source(filename, source))

        if options.no_import or file.name == "__main__.py":
            # importing a __main__ module runs it; the AST pass above is
            # the only check such files get
            continue
        try:
            module = import_file(file)
        except BaseException as exc:  # import errors of any stripe
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            detail = traceback.format_exception_only(type(exc), exc)[-1].strip()
            findings.append(
                Finding(
                    "error",
                    "import-error",
                    f"cannot import: {detail}",
                    filename=filename,
                )
            )
            continue
        try:
            targets = targets_of(module)
            programs = programs_of(module)
        except CheckpointError as exc:
            findings.append(
                Finding(
                    "error", "bad-targets", str(exc), filename=filename
                )
            )
            continue
        for target in targets:
            target_count += 1
            findings.extend(check_target(target, filename))
        for program in programs:
            program_count += 1
            findings.extend(check_program(program, filename))

    if not options.no_races:
        # lazy import: concurrency pulls in repro.lint.rules, and this
        # module is imported by the package __init__ — importing it at
        # the top would cycle
        from repro.spec.effects.concurrency import analyze_files

        findings.extend(analyze_files(files).findings)

    if not options.no_aliases:
        # lazy for the same cycle reason as the concurrency pass
        from repro.spec.effects.aliasing import analyze_files as analyze_aliases

        findings.extend(analyze_aliases(files).findings)

    findings = dedupe_findings(findings)
    relativize_findings(findings)
    if options.format == "json":
        print(render_json(findings, len(files), target_count, program_count))
    else:
        print(render_human(findings, len(files), target_count, program_count))
    return exit_code(findings, strict=options.strict)
