"""Source-level lint rules (pure AST, no import required).

These rules flag constructs that undermine the incremental-checkpointing
invariant — that every mutation of checkpointed state sets the owner's
modification flag:

``flag-write``
    A direct assignment to a ``.modified`` attribute. The flag protocol
    owns that bit (:meth:`repro.core.info.CheckpointInfo.set_modified` and
    the generated checkpointers reset it); writing it by hand can hide a
    real modification from every later incremental checkpoint.
``slot-write``
    A direct assignment to a ``._f_<name>`` slot. Slots are the storage
    behind the flagging field descriptors; writing one bypasses
    ``__set__`` and the owner stays clean while its state changed.

The framework core (``repro/core``) implements the protocol and is
exempt; everything else — user programs, examples, the synthetic
workloads — is checked.
"""

from __future__ import annotations

import ast
from pathlib import PurePosixPath
from typing import List

from repro.lint.findings import Finding

#: directory chains whose files implement the flag protocol itself
_EXEMPT_PACKAGES = (("repro", "core"),)


def is_exempt(filename: str) -> bool:
    """Whether ``filename`` lives under an exempt package directory.

    Matching is on normalized path *components*, not raw substrings:
    ``src/repro/core/info.py`` is exempt, but ``myrepro/core/x.py`` (a
    different package whose name merely ends the same way) and a file
    named e.g. ``repro/core.py`` are not. Windows separators are
    normalized first so the same files are exempt on every platform.
    """
    parts = tuple(
        part
        for part in PurePosixPath(filename.replace("\\", "/")).parts
        if part != "."
    )
    directories = parts[:-1]  # the last component is the file itself
    for package in _EXEMPT_PACKAGES:
        span = len(package)
        for start in range(len(directories) - span + 1):
            if directories[start : start + span] == package:
                return True
    return False


def check_source(filename: str, source: str) -> List[Finding]:
    """Run every source rule over one file's text."""
    findings: List[Finding] = []
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        findings.append(
            Finding(
                "error",
                "syntax-error",
                f"cannot parse: {exc.msg}",
                filename=filename,
                lineno=exc.lineno or 1,
            )
        )
        return findings
    if is_exempt(filename):
        return findings

    for node in ast.walk(tree):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            findings.extend(_check_target(filename, target))
    return findings


def _check_target(filename: str, target: ast.expr) -> List[Finding]:
    findings: List[Finding] = []
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            findings.extend(_check_target(filename, element))
        return findings
    if not isinstance(target, ast.Attribute):
        return findings
    if target.attr == "modified":
        findings.append(
            Finding(
                "warning",
                "flag-write",
                "direct write to a .modified flag bypasses the flagging "
                "protocol (use CheckpointInfo.set_modified, or let field "
                "descriptors flag the owner)",
                filename=filename,
                lineno=target.lineno,
            )
        )
    elif target.attr.startswith("_f_"):
        findings.append(
            Finding(
                "warning",
                "slot-write",
                f"direct write to slot {target.attr!r} bypasses the "
                "flagging descriptor: the owner is not marked modified and "
                "incremental checkpoints will miss the change",
                filename=filename,
                lineno=target.lineno,
            )
        )
    return findings
