"""Findings: what the linter reports, and how it is rendered.

A :class:`Finding` is one diagnostic — a severity, a stable machine
code, a message, and (when known) a ``file:line`` location. The CLI
collects findings from the source rules (:mod:`repro.lint.rules`) and the
semantic checks over declared lint targets (:mod:`repro.lint.cli`), then
renders them for humans or as JSON and converts them into an exit code.

Severities
----------
``error``
    The declaration is wrong: an unsound pattern, a residual program that
    failed verification, a module that cannot be imported. Errors make the
    linter exit nonzero.
``warning``
    Suspicious but not proven wrong: direct modification-flag writes,
    raw ``_f_*`` slot writes that bypass the dirty-flag descriptor.
    Nonzero only under ``--strict``.
``hint``
    Optimization opportunities: an over-wide pattern declaring dynamic
    positions the analysis proves quiescent.
``info``
    Context: opaque-call fallbacks that widened the analysis, analysis
    cautions.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional

#: recognised severities, most severe first
SEVERITIES = ("error", "warning", "hint", "info")

_RANK = {severity: rank for rank, severity in enumerate(SEVERITIES)}


class Finding:
    """One linter diagnostic."""

    __slots__ = ("severity", "code", "message", "filename", "lineno", "target")

    def __init__(
        self,
        severity: str,
        code: str,
        message: str,
        filename: Optional[str] = None,
        lineno: Optional[int] = None,
        target: Optional[str] = None,
    ) -> None:
        if severity not in _RANK:
            raise ValueError(f"unknown severity {severity!r}")
        self.severity = severity
        #: stable machine-readable code, e.g. ``unsound-pattern``
        self.code = code
        self.message = message
        self.filename = filename
        self.lineno = lineno
        #: the :class:`~repro.lint.targets.LintTarget` name, when applicable
        self.target = target

    def location(self) -> str:
        if self.filename is None:
            return "<no file>"
        if self.lineno is None:
            return self.filename
        return f"{self.filename}:{self.lineno}"

    def to_dict(self) -> Dict:
        return {
            "severity": self.severity,
            "code": self.code,
            "message": self.message,
            "file": self.filename,
            "line": self.lineno,
            "target": self.target,
        }

    def format_human(self) -> str:
        where = f" [{self.target}]" if self.target else ""
        return (
            f"{self.location()}: {self.severity}: {self.code}: "
            f"{self.message}{where}"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Finding({self.severity}, {self.code}, {self.location()})"


def relativize_findings(
    findings: List[Finding], base: Optional[str] = None
) -> List[Finding]:
    """Rewrite finding paths under ``base`` (default: cwd) as relative.

    CI runners check the repository out under different absolute
    prefixes; repo-relative paths keep JSON artifacts diffable across
    runs.  Files outside ``base`` (e.g. tmp-dir fixtures) keep their
    absolute paths — a relative path that escapes the base would be
    *less* stable, not more.
    """
    root = Path(base) if base is not None else Path.cwd()
    root = root.resolve()
    for finding in findings:
        if not finding.filename:
            continue
        try:
            relative = Path(finding.filename).resolve().relative_to(root)
        except (ValueError, OSError):
            continue
        finding.filename = str(relative)
    return findings


def sort_findings(findings: List[Finding]) -> List[Finding]:
    """Most severe first, then by location, for stable output."""
    return sorted(
        findings,
        key=lambda f: (
            _RANK[f.severity],
            f.filename or "",
            f.lineno or 0,
            f.code,
            f.message,
        ),
    )


def dedupe_findings(findings: List[Finding]) -> List[Finding]:
    """Drop findings identical in (code, file, line, target, message).

    Several passes can flag the same site — the structural checks and
    the alias analysis both dislike a raw ``_f_*`` store, and a shared
    helper analyzed from two call sites replays the same summary.
    First occurrence wins, so severity ordering upstream is preserved.
    """
    seen = set()
    unique: List[Finding] = []
    for finding in findings:
        key = (
            finding.code,
            finding.filename,
            finding.lineno,
            finding.target,
            finding.message,
        )
        if key in seen:
            continue
        seen.add(key)
        unique.append(finding)
    return unique


def count_by_severity(findings: List[Finding]) -> Dict[str, int]:
    counts = {severity: 0 for severity in SEVERITIES}
    for finding in findings:
        counts[finding.severity] += 1
    return counts


def render_human(
    findings: List[Finding],
    checked_files: int,
    targets: int,
    programs: int = 0,
) -> str:
    lines = [finding.format_human() for finding in sort_findings(findings)]
    counts = count_by_severity(findings)
    summary = ", ".join(
        f"{counts[severity]} {severity}{'s' if counts[severity] != 1 else ''}"
        for severity in SEVERITIES
        if counts[severity]
    ) or "clean"
    checked = f"{checked_files} file(s), {targets} target(s)"
    if programs:
        checked += f", {programs} program(s)"
    lines.append(f"repro.lint: {checked}: {summary}")
    return "\n".join(lines)


def render_json(
    findings: List[Finding],
    checked_files: int,
    targets: int,
    programs: int = 0,
) -> str:
    counts = count_by_severity(findings)
    return json.dumps(
        {
            "files": checked_files,
            "targets": targets,
            "programs": programs,
            "counts": counts,
            "findings": [f.to_dict() for f in sort_findings(findings)],
        },
        indent=2,
    )


def exit_code(findings: List[Finding], strict: bool = False) -> int:
    """1 when any error (or, under ``strict``, any warning) was found."""
    worst = {"error"} if not strict else {"error", "warning"}
    return 1 if any(f.severity in worst for f in findings) else 0
