"""Soundness linter for checkpointed programs (``python -m repro.lint``).

The linter is the CLI front-end of :mod:`repro.spec.effects`: it runs the
static modification-effect analysis over the phases a module declares in
``LINT_TARGETS``, diffs declared
:class:`~repro.spec.modpattern.ModificationPattern` promises against the
inferred effects (unsound declarations are errors, over-wide ones are
hints), compiles each target so the residual verifier checks the
specializer's output, and applies pure-AST source rules that catch writes
bypassing the modification-flag protocol.

See :mod:`repro.lint.cli` for the command line and
:mod:`repro.lint.targets` for the ``LINT_TARGETS`` declaration format.
"""

from repro.lint.cli import main
from repro.lint.findings import SEVERITIES, Finding
from repro.lint.targets import LintTarget

__all__ = ["main", "Finding", "SEVERITIES", "LintTarget"]
