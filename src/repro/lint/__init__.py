"""Soundness linter for checkpointed programs (``python -m repro.lint``).

The linter is the CLI front-end of :mod:`repro.spec.effects`: it runs the
static modification-effect analysis over the phases a module declares in
``LINT_TARGETS``, diffs declared
:class:`~repro.spec.modpattern.ModificationPattern` promises against the
inferred effects (unsound declarations are errors, over-wide ones are
hints), compiles each target so the residual verifier checks the
specializer's output, and applies pure-AST source rules that catch writes
bypassing the modification-flag protocol.

Modules can additionally declare whole driver functions in
``LINT_PROGRAMS``: the linter runs phase inference over each one
(:func:`repro.spec.effects.infer_phases`), warns where precision was lost
to escaping calls (``escape-to-unknown``) or commits cannot be attributed
to a phase (``commit-outside-phase``), diffs declared per-phase patterns
against the inferred ones (``pattern-redundant`` when inference already
proves the declaration), and compiles every inferred phase through the
residual verifier.

See :mod:`repro.lint.cli` for the command line and
:mod:`repro.lint.targets` for the ``LINT_TARGETS`` / ``LINT_PROGRAMS``
declaration formats.
"""

from repro.lint.cli import main
from repro.lint.findings import SEVERITIES, Finding
from repro.lint.targets import LintTarget, ProgramTarget

__all__ = ["main", "Finding", "SEVERITIES", "LintTarget", "ProgramTarget"]
