"""Durable checkpoint stores.

The paper writes checkpoints to an output stream drained to stable storage;
this module supplies that substrate. A store holds a sequence of *epochs*,
each either a full checkpoint (a recovery base) or an incremental delta.
Recovery replays the most recent full checkpoint plus every delta after it.

:class:`FileStore` is crash-tolerant: each epoch file carries a magic
number, a length and a CRC-32, and recovery silently discards a torn tail
(a partially written final epoch), which is exactly the state a crash
mid-checkpoint leaves behind.

:class:`BackgroundWriter` implements the paper's "written from the output
stream to stable storage asynchronously": the application thread enqueues
epoch bytes and continues; a writer thread drains them to the underlying
store in order. Write failures are surfaced on the next ``append``,
``flush`` or ``close``.
"""

from __future__ import annotations

import json
import os
import queue
import struct
import threading
import time
import zlib
from typing import Dict, List, NamedTuple, Optional

from repro.core.errors import StorageError
from repro.core.lineage import (
    AUTO,
    MAIN_BRANCH,
    EpochRef,
    Lineage,
    resolve_parent,
)
from repro.core.registry import DEFAULT_REGISTRY, ClassRegistry
from repro.core.restore import ObjectTable, replay_epochs
from repro.core.retry import RetryPolicy, RetryStats
from repro.obs.metrics import NULL_METRICS
from repro.obs.tracer import NULL_TRACER

FULL = "full"
INCREMENTAL = "incremental"

_MAGIC = b"RCKP"
_VERSION = 1
#: manifest format: 1 = classes only (implied-linear lineage),
#: 2 = classes + explicit epoch lineage map
MANIFEST_VERSION = 2
_SUPPORTED_MANIFESTS = (1, MANIFEST_VERSION)
_KIND_CODES = {FULL: 0, INCREMENTAL: 1}
_KIND_NAMES = {0: FULL, 1: INCREMENTAL}
# Compressed variants share the kind space; readers handle both
# transparently, so compressed and plain epochs can coexist in one store.
_COMPRESSED_CODES = {FULL: 2, INCREMENTAL: 3}
_COMPRESSED_NAMES = {2: FULL, 3: INCREMENTAL}
_HEADER = struct.Struct("<4sBBII")  # magic, version, kind, length, crc32


class Epoch(NamedTuple):
    """One stored checkpoint, with its place in the lineage graph.

    ``parent`` is the epoch this one's delta applies on top of (``None``
    for a root epoch); ``branch`` labels its line of descent; ``name``
    is an optional human-readable pin. Lineage lives *on the epoch
    record* — there is no separate branch table to keep crash-consistent.
    """

    index: int
    kind: str
    data: bytes
    parent: Optional[int] = None
    branch: str = MAIN_BRANCH
    name: Optional[str] = None


def _implied_lineage(index: int) -> dict:
    """Lineage of an epoch a manifest-v1 store wrote: strictly linear."""
    return {
        "parent": index - 1 if index > 0 else None,
        "branch": MAIN_BRANCH,
        "kind": None,
        "name": None,
    }


class CheckpointStore:
    """Interface shared by the in-memory and file-backed stores."""

    def append(
        self,
        kind: str,
        data: bytes,
        *,
        parent=AUTO,
        branch: Optional[str] = None,
        name: Optional[str] = None,
    ) -> int:
        """Store one checkpoint; returns its epoch index.

        ``parent=AUTO`` (the default) chains the epoch onto the head of
        ``branch`` (or of the newest epoch's branch), which reproduces
        the old linear behaviour exactly. An explicit parent index pins
        the epoch into the graph — the first commit after a session
        restore or fork does this. ``name`` pins the epoch under a
        store-unique checkpoint name.
        """
        raise NotImplementedError

    def epochs(self) -> List[Epoch]:
        """All intact epochs, oldest first."""
        raise NotImplementedError

    def epoch_map(self) -> Dict[int, Epoch]:
        """Every *individually* intact epoch, keyed by index.

        Unlike :meth:`epochs` this view does not stop at the first
        damaged or missing epoch — replica repair needs to see the
        intact epochs on the far side of a hole, because a peer may
        supply the missing link. The default derives the map from
        :meth:`epochs`; file-backed stores override it with a
        per-file tolerant read.
        """
        return {epoch.index: epoch for epoch in self.epochs()}

    def put_epoch(self, epoch: Epoch, overwrite: bool = False) -> None:
        """Write ``epoch`` at *its own* index (the read-repair primitive).

        Unlike :meth:`append`, which assigns the next index, this places
        a known epoch — copied byte-for-byte from a healthy replica —
        into its slot, lineage metadata included. ``overwrite`` allows
        replacing an existing (quarantined-first) divergent record.
        """
        raise StorageError(
            f"{type(self).__name__} does not support epoch repair"
        )

    def quarantine_epoch(self, index: int, reason: str = "") -> Optional[str]:
        """Move epoch ``index`` aside (never delete) before a repair.

        Returns a human-readable token for what was quarantined, or
        ``None`` when there was nothing at that index.
        """
        raise StorageError(
            f"{type(self).__name__} does not support epoch quarantine"
        )

    def lineage(self) -> Lineage:
        """The epoch graph of everything currently in the store."""
        return Lineage(self.epochs())

    def recovery_line(self, at: Optional[EpochRef] = None) -> List[Epoch]:
        """The base chain of ``at`` (default: the newest epoch).

        For a linear store this is exactly the old "most recent full
        checkpoint plus every delta after it"; with branches it is the
        full-base-to-target chain resolved through the lineage graph.
        """
        lineage = Lineage(self.epochs())
        if at is None:
            at = lineage.newest()
        return lineage.chain(at)

    def recover(
        self,
        registry: Optional[ClassRegistry] = None,
        at: Optional[EpochRef] = None,
    ) -> ObjectTable:
        """Rebuild the object table live at ``at`` (default: newest epoch)."""
        registry = registry or DEFAULT_REGISTRY
        translation = self._serial_translation(registry)
        return replay_epochs(self.recovery_line(at), registry, translation)

    def materialize(
        self, target: EpochRef, registry: Optional[ClassRegistry] = None
    ) -> ObjectTable:
        """The object table exactly as it was live at ``target``.

        ``target`` is an epoch index or a checkpoint name; the epoch's
        base chain is resolved through the lineage graph and replayed.
        """
        return self.recover(registry, at=target)

    def _serial_translation(
        self, registry: ClassRegistry
    ) -> Optional[Dict[int, int]]:
        return None

    def __len__(self) -> int:
        return len(self.epochs())


class MemoryStore(CheckpointStore):
    """Volatile store for tests and examples within one process.

    ``append`` and ``epochs`` are safe to call concurrently — a
    :class:`BackgroundWriter` drains into this store from its own thread
    while the committing thread reads it, so index assignment and the
    epoch list are guarded by a lock.
    """

    def __init__(self) -> None:
        self._epochs: List[Epoch] = []
        # branch -> newest index, name -> index, branch of the newest
        # epoch; all guarded by _lock alongside the epoch list itself
        self._branch_tips: Dict[str, int] = {}
        self._names: Dict[str, int] = {}
        self._last_branch: Optional[str] = None
        #: divergent epochs set aside by :meth:`quarantine_epoch`
        self.quarantined: List[tuple] = []
        self._lock = threading.Lock()

    def append(
        self,
        kind: str,
        data: bytes,
        *,
        parent=AUTO,
        branch: Optional[str] = None,
        name: Optional[str] = None,
    ) -> int:
        if kind not in _KIND_CODES:
            raise StorageError(f"unknown checkpoint kind {kind!r}")
        with self._lock:
            index = len(self._epochs)
            parent, branch = resolve_parent(
                parent,
                branch,
                self._branch_tips,
                self._branch_of,
                self._last_branch,
            )
            if parent is not None and not 0 <= parent < index:
                raise StorageError(
                    f"parent epoch {parent} does not exist in the store"
                )
            if name is not None and name in self._names:
                raise StorageError(
                    f"checkpoint name {name!r} already pins epoch "
                    f"{self._names[name]}"
                )
            self._epochs.append(
                Epoch(index, kind, bytes(data), parent, branch, name)
            )
            self._branch_tips[branch] = index
            self._last_branch = branch
            if name is not None:
                self._names[name] = index
        return index

    def _branch_of(self, index: int) -> str:
        # caller holds _lock; a MemoryStore never deletes, so index is
        # also the list position
        if not 0 <= index < len(self._epochs):
            raise StorageError(
                f"parent epoch {index} does not exist in the store"
            )
        return self._epochs[index].branch

    def epochs(self) -> List[Epoch]:
        with self._lock:
            return list(self._epochs)

    def epoch_map(self) -> Dict[int, Epoch]:
        with self._lock:
            return {epoch.index: epoch for epoch in self._epochs}

    def put_epoch(self, epoch: Epoch, overwrite: bool = False) -> None:
        if epoch.kind not in _KIND_CODES:
            raise StorageError(f"unknown checkpoint kind {epoch.kind!r}")
        with self._lock:
            if epoch.index > len(self._epochs):
                raise StorageError(
                    f"cannot repair epoch {epoch.index}: store holds "
                    f"{len(self._epochs)} epoch(s) and a memory store "
                    "cannot represent a hole"
                )
            if epoch.index == len(self._epochs):
                self._epochs.append(epoch)
            else:
                if not overwrite:
                    raise StorageError(
                        f"epoch {epoch.index} already exists "
                        "(overwrite=True replaces it)"
                    )
                self._epochs[epoch.index] = epoch
            self._rebuild_maps()

    def quarantine_epoch(self, index: int, reason: str = "") -> Optional[str]:
        """Keep a copy of the divergent record aside; the slot stays.

        A list-backed store cannot hole, so quarantine preserves the
        record in :attr:`quarantined` and leaves the slot for the
        ``put_epoch(..., overwrite=True)`` repair that follows.
        """
        with self._lock:
            if not 0 <= index < len(self._epochs):
                return None
            self.quarantined.append((index, reason, self._epochs[index]))
            return f"epoch-{index:06d} (copy kept in memory)"

    def _rebuild_maps(self) -> None:
        # caller holds _lock
        self._branch_tips = {}
        self._names = {}
        self._last_branch = None
        for epoch in self._epochs:
            self._branch_tips[epoch.branch] = epoch.index
            if epoch.name is not None:
                self._names[epoch.name] = epoch.index
            self._last_branch = epoch.branch


class FileStore(CheckpointStore):
    """Directory-backed store: one framed file per epoch plus a manifest.

    The manifest records the ``{class qualname: serial}`` map of the writing
    process, so a *different* process (after a crash) can translate the
    serials in the stored streams to its own registry.

    Epochs are verified (frame + CRC) at most once per file: verified
    payloads are cached against the file's stat signature, so repeated
    :meth:`epochs` / :meth:`recovery_line` calls on a long-lived store only
    read files that are new or have changed on disk.
    """

    def __init__(
        self,
        directory: str,
        registry: Optional[ClassRegistry] = None,
        compress: bool = False,
    ) -> None:
        self.directory = directory
        self._registry = registry or DEFAULT_REGISTRY
        #: zlib-compress epoch payloads on write (reads are transparent)
        self.compress = compress
        #: index -> (stat signature, verified Epoch)
        self._verified: Dict[int, tuple] = {}
        #: next epoch index to assign; None until the first append scans
        self._next: Optional[int] = None
        # Guards ``_verified``, ``_next`` and the lineage maps: a
        # BackgroundWriter appends from its drain thread while the
        # committing thread reads ``epochs()``; unguarded, the verified-
        # cache dict mutates under iteration and two appends can claim
        # the same index.
        self._lock = threading.RLock()
        #: orphaned ``*.tmp`` files moved aside by this instance
        self.quarantined: List[str] = []
        #: index -> {"parent", "branch", "kind", "name"} (manifest v2)
        self._lineage: Dict[int, dict] = {}
        self._branch_tips: Dict[str, int] = {}
        self._names: Dict[str, int] = {}
        self._last_branch: Optional[str] = None
        os.makedirs(directory, exist_ok=True)
        self._quarantine_orphans()
        self._load_lineage()

    def _load_lineage(self) -> None:
        """Load (and prune) the manifest's lineage map.

        A crash between the manifest write and the epoch write leaves a
        lineage entry with no epoch file; such entries are dropped here
        (they describe nothing durable). Epoch files with no entry — a
        manifest-v1 store written before lineage existed — get implied
        linear lineage when read.
        """
        try:
            with open(self.manifest_path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return  # fresh store, or damage _serial_translation reports
        version = manifest.get("format_version")
        if version not in _SUPPORTED_MANIFESTS:
            raise StorageError(
                f"unsupported manifest format_version {version!r} in "
                f"{self.directory!r} (this build supports "
                f"{list(_SUPPORTED_MANIFESTS)}); refusing to guess at "
                "the epoch lineage"
            )
        raw = manifest.get("lineage")
        if not isinstance(raw, dict):
            raw = {}
        present = {index for index, _ in self._epoch_files()}
        for key, entry in raw.items():
            try:
                index = int(key)
            except (TypeError, ValueError):
                continue
            if index not in present or not isinstance(entry, dict):
                continue
            self._lineage[index] = {
                "parent": entry.get("parent"),
                "branch": entry.get("branch") or MAIN_BRANCH,
                "kind": entry.get("kind"),
                "name": entry.get("name"),
            }
        for index in sorted(present):
            meta = self._lineage.get(index) or _implied_lineage(index)
            branch = meta["branch"]
            tip = self._branch_tips.get(branch)
            if tip is None or index > tip:
                self._branch_tips[branch] = index
            if meta.get("name") is not None:
                self._names[meta["name"]] = index
            self._last_branch = branch

    # -- paths --------------------------------------------------------------

    def _epoch_path(self, index: int) -> str:
        return os.path.join(self.directory, f"epoch-{index:06d}.ckpt")

    @property
    def manifest_path(self) -> str:
        return os.path.join(self.directory, "manifest.json")

    @property
    def quarantine_dir(self) -> str:
        return os.path.join(self.directory, "quarantine")

    def _quarantine_orphans(self) -> None:
        """Move aside ``*.tmp`` leftovers of a crashed append.

        A crash between writing ``epoch-N.ckpt.tmp`` and the atomic
        ``os.replace`` leaves the temporary behind forever: it is never
        read (only ``*.ckpt`` files are), but it accumulates and shadows
        the real durability story. Opening the store quarantines such
        orphans instead of silently coexisting with them.
        """
        try:
            names = os.listdir(self.directory)
        except OSError:
            return
        for name in sorted(names):
            if not name.endswith(".tmp"):
                continue
            source = os.path.join(self.directory, name)
            target = os.path.join(self.quarantine_dir, name)
            try:
                os.makedirs(self.quarantine_dir, exist_ok=True)
                if os.path.exists(target):
                    stem = 0
                    while os.path.exists(f"{target}.{stem}"):
                        stem += 1
                    target = f"{target}.{stem}"
                os.replace(source, target)
            except OSError:
                continue  # a locked/vanished orphan is not worth failing for
            self.quarantined.append(target)

    # -- writing --------------------------------------------------------------

    def append(
        self,
        kind: str,
        data: bytes,
        *,
        parent=AUTO,
        branch: Optional[str] = None,
        name: Optional[str] = None,
    ) -> int:
        if kind not in _KIND_CODES:
            raise StorageError(f"unknown checkpoint kind {kind!r}")
        with self._lock:
            index = self._next_index()
            # An explicit parent must exist on disk; AUTO-resolved
            # parents come from the branch-tip map and always do.
            if parent is not AUTO and parent is not None:
                if parent not in {i for i, _ in self._epoch_files()}:
                    raise StorageError(
                        f"parent epoch {parent} does not exist in the store"
                    )
            parent, branch = resolve_parent(
                parent,
                branch,
                self._branch_tips,
                self._branch_of,
                self._last_branch,
            )
            if name is not None and name in self._names:
                raise StorageError(
                    f"checkpoint name {name!r} already pins epoch "
                    f"{self._names[name]}"
                )
            entry = {
                "parent": parent,
                "branch": branch,
                "kind": kind,
                "name": name,
            }
            # Lineage first, epoch second: every durable epoch then has
            # a durable lineage entry. The reverse order could leave an
            # epoch whose place in the graph nobody knows; this order
            # merely leaves a stale entry a reopen prunes.
            self._lineage[index] = entry
            self._write_manifest()
            plain = bytes(data)
            if self.compress:
                payload = zlib.compress(plain, level=6)
                code = _COMPRESSED_CODES[kind]
            else:
                payload = plain
                code = _KIND_CODES[kind]
            header = _HEADER.pack(
                _MAGIC, _VERSION, code, len(payload), zlib.crc32(payload)
            )
            path = self._epoch_path(index)
            tmp_path = path + ".tmp"
            try:
                with open(tmp_path, "wb") as handle:
                    handle.write(header)
                    handle.write(payload)
                    handle.flush()
                    # The index counter, the durable file, and the
                    # verified-cache entry must appear atomically or a
                    # concurrent append could reuse the index of a
                    # not-yet-durable epoch.
                    # race-ok: fsync under _lock is deliberate (see above)
                    os.fsync(handle.fileno())
                os.replace(tmp_path, path)
            except BaseException:
                # The epoch never became durable; its lineage entry must
                # not pollute AUTO resolution for the retrying caller.
                self._lineage.pop(index, None)
                raise
            self._next = index + 1
            # We just wrote and framed this payload: it is verified by
            # construction, so seed the cache with the pre-compression bytes.
            signature = self._stat_signature(path)
            if signature is not None:
                self._verified[index] = (
                    signature,
                    Epoch(index, kind, plain, parent, branch, name),
                )
            self._branch_tips[branch] = index
            self._last_branch = branch
            if name is not None:
                self._names[name] = index
        return index

    def _branch_of(self, index: int) -> str:
        # caller holds _lock
        meta = self._lineage.get(index)
        if meta is not None:
            return meta["branch"]
        return _implied_lineage(index)["branch"]

    def _next_index(self) -> int:
        """The index the next append will use.

        The directory is scanned once; afterwards the counter advances in
        memory. Compaction only ever *removes* epochs below the newest
        index, so the cached counter stays correct across it — rescanning
        the directory on every append made long runs O(n²) in ``listdir``.
        """
        with self._lock:
            if self._next is None:
                used = [epoch_index for epoch_index, _ in self._epoch_files()]
                self._next = (max(used) + 1) if used else 0
            return self._next

    def _write_manifest(self) -> None:
        manifest = {
            "format_version": MANIFEST_VERSION,
            "classes": self._registry.name_to_serial(),
            "lineage": {
                str(index): entry
                for index, entry in sorted(self._lineage.items())
            },
        }
        tmp_path = self.manifest_path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
        os.replace(tmp_path, self.manifest_path)

    def remove(self, indices) -> None:
        """Delete the given epochs (compaction's deletion primitive).

        Removes the files, drops their verified-cache and lineage
        entries, rewrites the manifest, and rebuilds the branch-tip and
        name maps. The next-index counter is *not* rewound: indices are
        never reused, so lineage references stay unambiguous forever.
        """
        doomed = set(indices)
        if not doomed:
            return
        with self._lock:
            for index in sorted(doomed):
                try:
                    os.remove(self._epoch_path(index))
                except OSError:
                    pass  # a leftover file only wastes space, never safety
                self._verified.pop(index, None)
                self._lineage.pop(index, None)
            self._rebuild_maps()
            self._write_manifest()

    def _rebuild_maps(self) -> None:
        """Recompute branch tips / names from the files on disk.

        Caller holds ``_lock``. Used after any operation that changes
        the epoch set out of append order (compaction, epoch repair).
        """
        self._branch_tips = {}
        self._names = {}
        last = None
        for index, _ in self._epoch_files():
            meta = self._lineage.get(index) or _implied_lineage(index)
            self._branch_tips[meta["branch"]] = index
            if meta.get("name") is not None:
                self._names[meta["name"]] = index
            last = meta["branch"]
        self._last_branch = last

    # -- reading --------------------------------------------------------------

    def _epoch_files(self) -> List[tuple]:
        found = []
        for name in os.listdir(self.directory):
            if name.startswith("epoch-") and name.endswith(".ckpt"):
                try:
                    index = int(name[len("epoch-") : -len(".ckpt")])
                except ValueError:
                    continue
                found.append((index, os.path.join(self.directory, name)))
        found.sort()
        return found

    def epochs(self) -> List[Epoch]:
        """Read intact epochs; a torn or corrupt epoch ends the sequence.

        Everything from the first unreadable epoch onward is ignored: a
        delta chain cannot be applied across a hole. An epoch already
        verified by this store (appended or read earlier) is served from
        the cache unless its file changed on disk since.
        """
        with self._lock:
            result: List[Epoch] = []
            files = self._epoch_files()
            live = {index for index, _ in files}
            # Compaction (or external cleanup) removed the files; the cache
            # must not outlive them.
            for index in [i for i in self._verified if i not in live]:
                del self._verified[index]
            for index, path in files:
                signature = self._stat_signature(path)
                cached = self._verified.get(index)
                if (
                    cached is not None
                    and signature is not None
                    and cached[0] == signature
                ):
                    result.append(cached[1])
                    continue
                self._verified.pop(index, None)
                data = self._read_epoch(path)
                if data is None:
                    break
                meta = self._lineage.get(index) or _implied_lineage(index)
                epoch = Epoch(
                    index,
                    data[0],
                    data[1],
                    meta["parent"],
                    meta["branch"],
                    meta.get("name"),
                )
                if signature is not None:
                    self._verified[index] = (signature, epoch)
                result.append(epoch)
            return result

    def epoch_map(self) -> Dict[int, Epoch]:
        """Every individually intact epoch, keyed by index.

        Unlike :meth:`epochs` this does not stop at the first damaged or
        missing file — a replica with a hole still exposes the intact
        epochs past it, so a peer-driven repair of the hole makes the
        whole suffix readable again without rewriting it.
        """
        with self._lock:
            result: Dict[int, Epoch] = {}
            for index, path in self._epoch_files():
                signature = self._stat_signature(path)
                cached = self._verified.get(index)
                if (
                    cached is not None
                    and signature is not None
                    and cached[0] == signature
                ):
                    result[index] = cached[1]
                    continue
                self._verified.pop(index, None)
                data = self._read_epoch(path)
                if data is None:
                    continue  # damaged: skip it, keep scanning
                meta = self._lineage.get(index) or _implied_lineage(index)
                epoch = Epoch(
                    index,
                    data[0],
                    data[1],
                    meta["parent"],
                    meta["branch"],
                    meta.get("name"),
                )
                if signature is not None:
                    self._verified[index] = (signature, epoch)
                result[index] = epoch
            return result

    def put_epoch(self, epoch: Epoch, overwrite: bool = False) -> None:
        """Place ``epoch`` at its own index — the read-repair primitive.

        Writes the same frame :meth:`append` would have written (so a
        repaired replica is byte-identical to a healthy one when both
        use the same compression setting) plus the epoch's lineage
        entry, and refreshes the branch-tip/name maps and the next-index
        counter. ``overwrite=False`` refuses to touch an existing file.
        """
        if epoch.kind not in _KIND_CODES:
            raise StorageError(f"unknown checkpoint kind {epoch.kind!r}")
        with self._lock:
            path = self._epoch_path(epoch.index)
            if os.path.exists(path) and not overwrite:
                raise StorageError(
                    f"epoch {epoch.index} already exists in "
                    f"{self.directory!r} (overwrite=True replaces it)"
                )
            prior = self._lineage.get(epoch.index)
            self._lineage[epoch.index] = {
                "parent": epoch.parent,
                "branch": epoch.branch,
                "kind": epoch.kind,
                "name": epoch.name,
            }
            self._write_manifest()
            plain = bytes(epoch.data)
            if self.compress:
                payload = zlib.compress(plain, level=6)
                code = _COMPRESSED_CODES[epoch.kind]
            else:
                payload = plain
                code = _KIND_CODES[epoch.kind]
            header = _HEADER.pack(
                _MAGIC, _VERSION, code, len(payload), zlib.crc32(payload)
            )
            tmp_path = path + ".tmp"
            try:
                with open(tmp_path, "wb") as handle:
                    handle.write(header)
                    handle.write(payload)
                    handle.flush()
                    # Matching append(): the file and the caches must
                    # appear atomically to concurrent readers.
                    # race-ok: fsync under _lock is deliberate (see above)
                    os.fsync(handle.fileno())
                os.replace(tmp_path, path)
            except BaseException:
                if prior is None:
                    self._lineage.pop(epoch.index, None)
                else:
                    self._lineage[epoch.index] = prior
                raise
            signature = self._stat_signature(path)
            if signature is not None:
                self._verified[epoch.index] = (
                    signature,
                    Epoch(
                        epoch.index,
                        epoch.kind,
                        plain,
                        epoch.parent,
                        epoch.branch,
                        epoch.name,
                    ),
                )
            else:
                self._verified.pop(epoch.index, None)
            if self._next is not None and epoch.index >= self._next:
                self._next = epoch.index + 1
            self._rebuild_maps()

    def quarantine_epoch(self, index: int, reason: str = "") -> Optional[str]:
        """Move epoch ``index``'s file into ``quarantine/`` (never delete).

        The lineage entry is kept — the repair that follows rewrites it,
        and an unrepaired stale entry is pruned on the next reopen, the
        same way a crashed append's entry is.
        """
        with self._lock:
            path = self._epoch_path(index)
            if not os.path.exists(path):
                return None
            os.makedirs(self.quarantine_dir, exist_ok=True)
            target = os.path.join(self.quarantine_dir, os.path.basename(path))
            if os.path.exists(target):
                stem = 0
                while os.path.exists(f"{target}.{stem}"):
                    stem += 1
                target = f"{target}.{stem}"
            os.replace(path, target)
            self._verified.pop(index, None)
            self.quarantined.append(target)
            return target

    @staticmethod
    def _stat_signature(path: str) -> Optional[tuple]:
        """Identity of a file's current content, cheap enough to re-check.

        ``None`` (stat failed) disables caching for that file rather than
        risking a stale entry.
        """
        try:
            stat = os.stat(path)
        except OSError:
            return None
        return (stat.st_size, stat.st_mtime_ns, stat.st_ino)

    @staticmethod
    def _read_epoch(path: str):
        try:
            with open(path, "rb") as handle:
                raw = handle.read()
        except OSError:
            return None
        if len(raw) < _HEADER.size:
            return None
        magic, version, kind_code, length, crc = _HEADER.unpack_from(raw)
        known = kind_code in _KIND_NAMES or kind_code in _COMPRESSED_NAMES
        if magic != _MAGIC or version != _VERSION or not known:
            return None
        payload = raw[_HEADER.size : _HEADER.size + length]
        if len(payload) != length or zlib.crc32(payload) != crc:
            return None
        if kind_code in _COMPRESSED_NAMES:
            try:
                return _COMPRESSED_NAMES[kind_code], zlib.decompress(payload)
            except zlib.error:
                return None  # CRC passed but the deflate stream is invalid
        return _KIND_NAMES[kind_code], payload

    def _serial_translation(
        self, registry: ClassRegistry
    ) -> Optional[Dict[int, int]]:
        try:
            with open(self.manifest_path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except OSError:
            raise StorageError(f"missing manifest in {self.directory!r}")
        except json.JSONDecodeError as exc:
            raise StorageError(f"corrupt manifest in {self.directory!r}: {exc}")
        classes = manifest.get("classes")
        if not isinstance(classes, dict):
            raise StorageError(f"malformed manifest in {self.directory!r}")
        return registry.serial_translation(classes)


class BackgroundWriter(CheckpointStore):
    """Asynchronous front for another store (one ordered writer thread).

    ``append`` returns as soon as the epoch is queued — the paper's
    non-blocking hand-off of checkpoint bytes to stable storage. Epochs
    are written in submission order. ``flush`` blocks until everything
    queued so far is durable; ``close`` flushes and stops the thread.

    Transient backing failures are retried in the writer thread when a
    :class:`~repro.core.retry.RetryPolicy` is supplied; an epoch is only
    declared failed once its policy is exhausted, so injected transient
    faults lose nothing. Remaining failures are **fail-stop**: once a
    backing write fails for good, no later epoch is written (an epoch
    written past a hole could never participate in a recovery line
    anyway). Epochs already queued at failure time are discarded and
    *counted*; the error — including that count — is raised, wrapped in
    :class:`StorageError`, by the next ``flush``, ``close`` or ``epochs``
    call, and every subsequent ``append`` raises permanently.

    If the writer *thread itself* dies (a bug, an interpreter shutdown
    race — anything outside the guarded backing write), the writer
    **degrades to synchronous writes** instead of silently dropping the
    queue: the next ``append``/``flush`` adopts every still-queued epoch,
    writes it in order on the calling thread, and all subsequent appends
    go straight to the backing store. Degradations are recorded in
    :attr:`degradation_events`.
    """

    _STOP = object()

    def __init__(
        self,
        backing: CheckpointStore,
        max_queued: int = 64,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.backing = backing
        self._retry = retry
        #: retry accounting (count + notes), shared with commit receipts
        self.retry_stats = RetryStats()
        self._queue: "queue.Queue" = queue.Queue(maxsize=max_queued)
        #: guards the failure/degradation state shared between the drain
        #: thread and caller threads (_error/_failed/_cause/dropped,
        #: degraded/degradation_events/sync_writes, _closed, obs hooks)
        self._state_lock = threading.Lock()
        self._error: Optional[BaseException] = None
        self._failed = False
        self._cause: Optional[str] = None
        #: epochs queued before the failure that were never written
        self.dropped = 0
        #: whether the writer fell back to synchronous writes
        self.degraded = False
        #: human-readable record of each degradation
        self.degradation_events: List[str] = []
        #: epochs written synchronously after degradation
        self.sync_writes = 0
        self._closed = False
        self._idle = threading.Event()
        self._idle.set()
        #: observability hooks; no-op singletons until :meth:`instrument`
        self.tracer = NULL_TRACER
        self.metrics = NULL_METRICS
        self._thread = threading.Thread(
            target=self._drain, name="checkpoint-writer", daemon=True
        )
        self._thread.start()

    def instrument(self, tracer, metrics) -> None:
        """Attach a tracer/metrics pair (only replaces no-op defaults).

        The drain thread reads these attributes without a lock, which is
        safe: both emit paths tolerate either the old or the new hook, and
        exporter errors never propagate out of the tracer.
        """
        with self._state_lock:
            if self.tracer is NULL_TRACER:
                self.tracer = tracer
            if self.metrics is NULL_METRICS:
                self.metrics = metrics

    # -- writer thread ---------------------------------------------------

    def _append_backing(self, kind: str, data: bytes, lineage: dict):
        """One backing write, under the retry policy when there is one.

        ``lineage`` carries the ``parent``/``branch``/``name`` keywords
        queued with the epoch. An ``AUTO`` parent is resolved by the
        backing store *at drain time* — the queue is FIFO, so the head
        of the target branch is exactly what it would have been had the
        append been synchronous. All-default lineage is not forwarded,
        so minimal ``append(kind, data)`` stores keep working behind
        the writer.
        """
        if (
            lineage["parent"] is AUTO
            and lineage["branch"] is None
            and lineage["name"] is None
        ):
            lineage = {}
        if self._retry is None:
            return self.backing.append(kind, data, **lineage)
        return self._retry.run(
            lambda: self.backing.append(kind, data, **lineage),
            on_retry=lambda attempt, exc, _d: self.retry_stats.note(
                "append", attempt, exc
            ),
        )

    def _drain(self) -> None:
        while True:
            item = self._queue.get()
            try:
                if item is self._STOP:
                    return
                with self._state_lock:
                    failed = self._failed
                    if failed:
                        self.dropped += 1  # fail-stop: no writes past a hole
                if failed:
                    continue
                kind, data, lineage = item
                instrumented = self.tracer.enabled or self.metrics.enabled
                start = time.perf_counter() if instrumented else 0.0
                try:
                    self._append_backing(kind, data, lineage)
                except BaseException as exc:  # surfaced on the next call
                    with self._state_lock:
                        self._error = exc
                        self._cause = str(exc)
                        self._failed = True
                    self.tracer.event(
                        "writer.failed", kind=kind, error=str(exc)
                    )
                    self.metrics.counter("writer_failures_total").inc()
                else:
                    if instrumented:
                        self._note_drain(
                            kind, len(data), time.perf_counter() - start
                        )
            finally:
                self._queue.task_done()
                if self._queue.unfinished_tasks == 0:
                    self._idle.set()

    def _note_drain(self, kind: str, size: int, elapsed: float) -> None:
        """One drained epoch's trace event and metrics."""
        depth = self._queue.qsize()
        self.tracer.event(
            "writer.drain",
            kind=kind,
            bytes=size,
            wall_seconds=elapsed,
            queue_depth=depth,
        )
        self.metrics.counter("writer_drained_total").inc()
        self.metrics.gauge("writer_queue_depth").set(depth)
        self.metrics.histogram("writer_drain_seconds").observe(elapsed)

    # -- degradation -------------------------------------------------------

    def _writer_died(self) -> bool:
        return not self._thread.is_alive() and not self._closed

    def _degrade(self) -> None:
        """Adopt the dead writer thread's queue on the calling thread.

        Every epoch still queued is written synchronously, in submission
        order, under the same retry/fail-stop rules the thread applied —
        acknowledged epochs are never dropped just because the thread is
        gone.
        """
        with self._state_lock:
            first = not self.degraded
            if first:
                self.degraded = True
                self.degradation_events.append(
                    "writer thread died; degraded to synchronous writes"
                )
        if first:
            self.tracer.event(
                "writer.degraded",
                reason="writer thread died; degraded to synchronous writes",
                queued=self._pending(),
            )
            self.metrics.counter("writer_degradations_total").inc()
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            try:
                if item is self._STOP:
                    continue
                with self._state_lock:
                    failed = self._failed
                    if failed:
                        self.dropped += 1
                if failed:
                    continue
                kind, data, lineage = item
                try:
                    self._append_backing(kind, data, lineage)
                except BaseException as exc:
                    with self._state_lock:
                        self._error = exc
                        self._cause = str(exc)
                        self._failed = True
            finally:
                self._queue.task_done()
        if self._queue.unfinished_tasks == 0:
            self._idle.set()

    def _check(self) -> None:
        with self._state_lock:
            if self._error is None:
                return
            error, self._error = self._error, None
            suffix = self._dropped_suffix()
        raise StorageError(
            f"background checkpoint write failed: {error}" + suffix
        )

    def _dropped_suffix(self) -> str:
        if not self.dropped:
            return ""
        return f" ({self.dropped} queued epoch(s) discarded, not written)"

    def _replica_suffix(self) -> str:
        """Per-replica undurable counts, when the backing reports them.

        A :class:`~repro.core.replica.ReplicatedStore` knows which
        replicas are missing how many quorum-committed epochs; a flush
        timeout should name them, not just the aggregate queue depth.
        """
        counts = getattr(self.backing, "undurable_counts", None)
        if not callable(counts):
            return ""
        try:
            per_replica = counts()
        except (StorageError, OSError):
            return ""
        if not per_replica or not any(per_replica.values()):
            return ""
        detail = ", ".join(
            f"{name}={count}"
            for name, count in sorted(per_replica.items())
            if count
        )
        return f" (per-replica undurable epochs: {detail})"

    def _flush_backing(self, deadline: Optional[float]) -> None:
        """Propagate flush into the backing store when it supports one.

        A wrapped :class:`~repro.core.replica.ReplicatedStore` uses this
        to drive catch-up repair of behind replicas and to flush its own
        children, so ``flush`` really means "durable on a quorum", not
        merely "left my queue".
        """
        backing_flush = getattr(self.backing, "flush", None)
        if not callable(backing_flush):
            return
        remaining = None
        if deadline is not None:
            remaining = max(0.0, deadline - time.monotonic())
        backing_flush(remaining)

    # -- CheckpointStore interface ------------------------------------------

    def append(
        self,
        kind: str,
        data: bytes,
        *,
        parent=AUTO,
        branch: Optional[str] = None,
        name: Optional[str] = None,
    ) -> int:
        """Queue one epoch for writing; returns the queue position.

        The durable epoch index is assigned by the backing store when the
        writer thread gets to it; use :meth:`flush` + ``backing.epochs()``
        when exact indices matter. Lineage keywords travel with the
        queued epoch (an ``AUTO`` parent resolves at drain time, which
        the FIFO queue makes equivalent to a synchronous append). After
        a write failure every append raises: the writer is fail-stop.
        After the writer *thread* dies, appends degrade to synchronous
        writes (and return the real index).
        """
        lineage = {"parent": parent, "branch": branch, "name": name}
        with self._state_lock:
            if self._failed:
                # appends report it; no need to re-raise later
                self._error = None
                raise StorageError(
                    f"background checkpoint write failed: {self._cause}"
                    + self._dropped_suffix()
                )
            if self._closed:
                raise StorageError("background writer is closed")
        if kind not in _KIND_CODES:
            raise StorageError(f"unknown checkpoint kind {kind!r}")
        if self._writer_died():
            self._degrade()
            self._check()
            with self._state_lock:
                self.sync_writes += 1
            try:
                return self._append_backing(kind, bytes(data), lineage)
            except BaseException as exc:
                with self._state_lock:
                    self._failed = True
                    self._cause = str(exc)
                raise StorageError(
                    f"background checkpoint write failed: {exc}"
                    + self._dropped_suffix()
                ) from exc
        self._idle.clear()
        self._queue.put((kind, bytes(data), lineage))
        return self._queue.qsize()

    def _pending(self) -> int:
        """Epochs accepted by :meth:`append` but not yet durable."""
        return self._queue.unfinished_tasks

    def flush(self, timeout: Optional[float] = None) -> None:
        """Block until every queued epoch has been written (or surfaced).

        A timeout raises :class:`StorageError` naming how many epochs are
        still queued — data that is **not durable** — rather than
        returning as if the flush had succeeded.
        """
        if self._writer_died():
            self._degrade()
        deadline = None if timeout is None else time.monotonic() + timeout
        if not self._idle.wait(timeout):
            raise StorageError(
                "timed out waiting for checkpoint writer: "
                f"{self._pending()} epoch(s) still queued, not durable"
                + self._replica_suffix()
            )
        self._check()
        self._flush_backing(deadline)

    def close(self, timeout: Optional[float] = None) -> None:
        """Flush, stop the writer thread, and surface any pending error.

        The thread is stopped even when an error is raised; only the
        *first* close/flush after a failure raises, so shutdown paths that
        already handled the error can close cleanly. Like :meth:`flush`,
        a timeout raises with the count of still-queued (undurable)
        epochs.
        """
        if self._closed:
            return
        if self._writer_died():
            self._degrade()
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._state_lock:
            self._closed = True
        try:
            if not self._idle.wait(timeout):
                raise StorageError(
                    "timed out waiting for checkpoint writer: "
                    f"{self._pending()} epoch(s) still queued, not durable"
                    + self._replica_suffix()
                )
        finally:
            self._queue.put(self._STOP)
            self._thread.join(timeout)
        self._check()
        self._flush_backing(deadline)
        backing_close = getattr(self.backing, "close", None)
        if callable(backing_close):
            backing_close()

    def epochs(self) -> List[Epoch]:
        """Durable epochs (pending queued writes are not yet included)."""
        if self._writer_died():
            self._degrade()
        self._check()
        return self.backing.epochs()

    def recover(self, registry=None, at=None):
        self.flush()
        return self.backing.recover(registry, at=at)

    def materialize(self, target, registry=None):
        self.flush()
        return self.backing.materialize(target, registry)

    def __enter__(self) -> "BackgroundWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def compact(
    store: CheckpointStore,
    registry: Optional[ClassRegistry] = None,
    keep_history: bool = False,
    branch: Optional[str] = None,
) -> int:
    """Fold one branch's recovery line into a fresh full checkpoint.

    Long delta chains make recovery slow and retain dead epochs;
    compaction replays the chain of ``branch``'s tip (default: the
    newest epoch's branch), records every live object into a new full
    epoch, and appends it onto that branch. With ``keep_history=False``
    (the default) the file-backed store then deletes every epoch the
    lineage graph no longer protects: an epoch survives iff it is on
    the base chain of some branch head or named checkpoint. Compaction
    therefore never cuts across a branch point or a named pin — other
    branches and every pin keep their full recovery lines.

    For a linear, unnamed store the protected set is exactly the new
    base, reproducing the old delete-everything-below behaviour.

    Returns the epoch index of the new base. The compacted state is
    byte-for-byte equivalent for recovery: ``recover()`` before and
    after yields structurally identical object tables (tests enforce
    this).
    """
    registry = registry or DEFAULT_REGISTRY
    lineage = store.lineage()
    if branch is None:
        head = lineage.newest()  # raises the no-full error when empty
    else:
        tips = lineage.branches()
        if branch not in tips:
            raise StorageError(f"unknown branch {branch!r}; cannot compact")
        head = tips[branch]
    head_epoch = lineage.epoch(head)
    table = store.materialize(head, registry)

    # Re-record every object. Flags are irrelevant here: we synthesize a
    # full checkpoint directly from the table (restored objects are clean).
    from repro.core.streams import DataOutputStream

    out = DataOutputStream()
    for obj in table.objects():
        out.write_int32(obj._ckpt_info.object_id)
        out.write_int32(obj._ckpt_serial)
        obj.record(out)
    new_index = store.append(
        FULL, out.getvalue(), parent=head, branch=head_epoch.branch
    )

    if not keep_history and isinstance(store, FileStore):
        after = store.lineage()
        protected = after.protected()
        store.remove(i for i in after.indices() if i not in protected)
    return new_index
