"""Checkpoint drivers (paper Figure 1, ``Checkpoint.checkpoint``).

Three generic drivers are provided, forming the baseline tiers of the
paper's evaluation:

- :class:`Checkpoint` — *incremental* checkpointing: an object's local
  state is recorded only when its modification flag is set; the traversal
  still visits every reachable object to find the modified ones.
- :class:`FullCheckpoint` — records every visited object regardless of its
  flag (the paper's "full checkpointing" baseline).
- :class:`ReflectiveCheckpoint` — incremental, but using run-time
  schema interpretation instead of the per-class generated methods (the
  serialization/reflection tier discussed in the paper's related work).

All drivers share the wire format described in
:mod:`repro.core.checkpointable`, so their outputs are interchangeable for
:mod:`repro.core.restore`.

A fourth, *specialized*, tier is produced by :mod:`repro.spec`: monolithic
per-structure functions that replace the driver entirely.
"""

from __future__ import annotations

from typing import Optional, Set

from repro.core.checkpointable import (
    Checkpointable,
    reflective_fold,
    reflective_record,
)
from repro.core.errors import CycleError
from repro.core.streams import DataOutputStream, PackedEncoder


class Checkpoint:
    """Generic incremental checkpoint driver.

    This is a direct transliteration of the paper's Figure 1: if the
    object is modified, write its identifier (plus, in this implementation,
    its class serial, so recovery can materialize objects allocated after
    the base checkpoint) and its local state, then reset the flag; in all
    cases fold over the children.
    """

    def __init__(self, out: Optional[DataOutputStream] = None) -> None:
        self.out = out if out is not None else DataOutputStream()

    def checkpoint(self, obj: Checkpointable) -> None:
        """Traverse ``obj``, recording every modified object reachable from it."""
        info = obj._ckpt_info
        if info.modified:
            out = self.out
            out.write_int32(info.object_id)
            out.write_int32(obj._ckpt_serial)
            obj.record(out)
            info.modified = False
        obj.fold(self)

    def getvalue(self) -> bytes:
        """The bytes of the checkpoint built so far."""
        return self.out.getvalue()

    @property
    def size(self) -> int:
        """Bytes written so far."""
        return self.out.size


class FullCheckpoint(Checkpoint):
    """Records every visited object, ignoring modification flags.

    Flags are still reset so that a full checkpoint can serve as the base
    of a subsequent incremental chain.
    """

    def checkpoint(self, obj: Checkpointable) -> None:
        out = self.out
        info = obj._ckpt_info
        out.write_int32(info.object_id)
        out.write_int32(obj._ckpt_serial)
        obj.record(out)
        info.modified = False
        obj.fold(self)


class ReflectiveCheckpoint(Checkpoint):
    """Incremental driver using run-time schema interpretation.

    Behaviourally identical to :class:`Checkpoint`; exists as the
    reflection-tier baseline (slowest) for the evaluation.
    """

    def checkpoint(self, obj: Checkpointable) -> None:
        info = obj._ckpt_info
        if info.modified:
            out = self.out
            out.write_int32(info.object_id)
            out.write_int32(obj._ckpt_serial)
            reflective_record(obj, out)
            info.modified = False
        reflective_fold(obj, self)


class CheckingCheckpoint(Checkpoint):
    """Incremental driver with cycle detection (debugging aid).

    The paper assumes checkpointed structures are acyclic; this driver
    verifies it, raising :class:`~repro.core.errors.CycleError` when an
    object appears on its own traversal path. It is slower than
    :class:`Checkpoint` and intended for development and tests.
    """

    def __init__(self, out: Optional[DataOutputStream] = None) -> None:
        super().__init__(out)
        self._on_path: Set[int] = set()

    def checkpoint(self, obj: Checkpointable) -> None:
        oid = obj._ckpt_info.object_id
        if oid in self._on_path:
            raise CycleError(
                f"cycle detected: object id {oid} ({type(obj).__name__}) "
                "reached from itself"
            )
        self._on_path.add(oid)
        try:
            info = obj._ckpt_info
            if info.modified:
                out = self.out
                out.write_int32(info.object_id)
                out.write_int32(obj._ckpt_serial)
                obj.record(out)
                info.modified = False
            obj.fold(self)
        finally:
            self._on_path.discard(oid)


class IterativeCheckpoint(Checkpoint):
    """Incremental driver with an explicit traversal stack.

    Byte-identical to :class:`Checkpoint` (preorder, children in schema
    order) but immune to Python's recursion limit, for structures whose
    depth — e.g. very long linked lists — exceeds it. Slightly slower on
    shallow structures, so it is not the default.
    """

    def checkpoint(self, obj: Checkpointable) -> None:
        out = self.out
        stack = [obj]
        while stack:
            current = stack.pop()
            info = current._ckpt_info
            if info.modified:
                out.write_int32(info.object_id)
                out.write_int32(current._ckpt_serial)
                current.record(out)
                info.modified = False
            stack.extend(reversed(current.children()))


class PackedCheckpoint:
    """Incremental driver writing through the packed codec.

    The traversal is exactly :class:`Checkpoint`'s (paper Figure 1);
    only the encoding differs: each modified object's entry is emitted by
    its generated ``record_packed`` method — batched ``struct.pack_into``
    calls against a :class:`~repro.core.streams.PackedEncoder`'s
    preallocated buffer — instead of per-field ``DataOutputStream``
    method calls. The bytes are identical to :class:`Checkpoint`'s, as
    the equivalence suite pins.
    """

    def __init__(self, enc: Optional[PackedEncoder] = None) -> None:
        self.enc = enc if enc is not None else PackedEncoder()

    def checkpoint(self, obj: Checkpointable) -> None:
        """Traverse ``obj``, recording every modified object reachable from it."""
        info = obj._ckpt_info
        if info.modified:
            enc = self.enc
            enc.put_header(info.object_id, obj._ckpt_serial)
            obj.record_packed(enc)
            info.modified = False
        obj.fold(self)

    def getvalue(self) -> bytes:
        """The bytes of the checkpoint built so far."""
        return self.enc.getvalue()

    @property
    def size(self) -> int:
        """Bytes written so far."""
        return self.enc.size


def reset_flags(root: Checkpointable) -> None:
    """Clear the modification flag of every object reachable from ``root``."""
    stack = [root]
    seen: Set[int] = set()
    while stack:
        obj = stack.pop()
        oid = obj._ckpt_info.object_id
        if oid in seen:
            continue
        seen.add(oid)
        obj._ckpt_info.modified = False
        stack.extend(obj.children())


def snapshot_flags(roots) -> list:
    """Capture the modification flag of every object reachable from ``roots``.

    Returns an opaque state for :func:`restore_flags`. Measurement paths
    use the pair to run a live strategy — whose ``record`` pass clears
    flags as a side effect — without disturbing the delta a later real
    commit must observe.
    """
    state = []
    stack = list(roots)
    seen: Set[int] = set()
    while stack:
        obj = stack.pop()
        info = obj._ckpt_info
        if info.object_id in seen:
            continue
        seen.add(info.object_id)
        state.append((info, info.modified))
        stack.extend(obj.children())
    return state


def restore_flags(state) -> None:
    """Reinstate the flags captured by :func:`snapshot_flags`."""
    for info, modified in state:
        info.modified = modified


def set_all_flags(root: Checkpointable) -> None:
    """Mark every object reachable from ``root`` as modified."""
    stack = [root]
    seen: Set[int] = set()
    while stack:
        obj = stack.pop()
        oid = obj._ckpt_info.object_id
        if oid in seen:
            continue
        seen.add(oid)
        obj._ckpt_info.modified = True
        stack.extend(obj.children())


def collect_objects(root: Checkpointable) -> list:
    """Every object reachable from ``root`` (preorder, children in schema order)."""
    result = []
    stack = [root]
    seen: Set[int] = set()
    while stack:
        obj = stack.pop()
        oid = obj._ckpt_info.object_id
        if oid in seen:
            continue
        seen.add(oid)
        result.append(obj)
        stack.extend(reversed(obj.children()))
    return result
