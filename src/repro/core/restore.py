"""Recovery: rebuilding object state from checkpoint streams.

A recovery line is a *base* checkpoint (normally a full checkpoint)
followed by zero or more *incremental* deltas. Restoration proceeds by

1. materializing a blank object for every identifier seen in a stream
   that is not already known (class serials in the entries say which
   class to instantiate), then
2. applying every entry's payload in stream order, resolving child
   references through the object table.

Because the paper's incremental traversal records a modified parent before
any newly-created children it references, each stream is processed in two
passes so that forward references resolve.

The resulting :class:`ObjectTable` maps identifiers to live objects; all
restored objects have their modification flag clear.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.checkpointable import Checkpointable
from repro.core.errors import RestoreError
from repro.core.fields import FieldSpec
from repro.core.ids import DEFAULT_ALLOCATOR
from repro.core.registry import DEFAULT_REGISTRY, ClassRegistry
from repro.core.streams import DataInputStream


class ObjectTable:
    """Identifier → object map produced by restoration."""

    def __init__(self) -> None:
        self._objects: Dict[int, Checkpointable] = {}

    def __getitem__(self, object_id: int) -> Checkpointable:
        try:
            return self._objects[object_id]
        except KeyError:
            raise RestoreError(f"checkpoint references unknown object id {object_id}")

    def get(self, object_id: int) -> Optional[Checkpointable]:
        return self._objects.get(object_id)

    def add(self, obj: Checkpointable) -> None:
        self._objects[obj._ckpt_info.object_id] = obj

    def __contains__(self, object_id: int) -> bool:
        return object_id in self._objects

    def __len__(self) -> int:
        return len(self._objects)

    def ids(self) -> Iterable[int]:
        return self._objects.keys()

    def objects(self) -> Iterable[Checkpointable]:
        return self._objects.values()

    def max_id(self) -> int:
        """Largest identifier in the table (−1 when empty)."""
        return max(self._objects, default=-1)


def _skip_payload(inp: DataInputStream, schema: List[FieldSpec]) -> None:
    """Advance ``inp`` past one payload without interpreting references."""
    for field in schema:
        if field.role == "scalar":
            _skip_scalar(inp, field.kind)
        elif field.role == "scalar_list":
            count = inp.read_int32()
            for _ in range(count):
                _skip_scalar(inp, field.kind)
        elif field.role == "child":
            inp.read_int32()
        else:  # child_list
            count = inp.read_int32()
            for _ in range(count):
                inp.read_int32()


def _skip_scalar(inp: DataInputStream, kind: str) -> None:
    if kind == "int":
        inp.read_int32()
    elif kind == "float":
        inp.read_float64()
    elif kind == "bool":
        inp.read_bool()
    else:
        inp.read_str()


def apply_stream(
    data: bytes,
    table: ObjectTable,
    registry: Optional[ClassRegistry] = None,
    serial_translation: Optional[Dict[int, int]] = None,
    base_offset: int = 0,
) -> List[int]:
    """Apply one checkpoint stream to ``table`` (creating objects as needed).

    Returns the identifiers of the entries applied, in stream order.
    Raises :class:`RestoreError` on truncation, unknown serials, or a
    class mismatch between an entry and an existing object.

    ``base_offset`` is this stream's position within the containing
    recovery line: decode errors report ``base_offset``-adjusted offsets,
    so that after a multi-epoch replay an fsck quarantine line points at
    the right record rather than an intra-record offset.
    """
    registry = registry or DEFAULT_REGISTRY

    # Pass 1: discover entries, materialize blanks for unseen identifiers.
    inp = DataInputStream(data, base_offset)
    entries: List[Tuple[int, type]] = []
    while not inp.at_eof:
        object_id = inp.read_int32()
        serial = inp.read_int32()
        if serial_translation is not None:
            try:
                serial = serial_translation[serial]
            except KeyError:
                raise RestoreError(f"class serial {serial} missing from manifest")
        cls = registry.class_for(serial)
        entries.append((object_id, cls))
        existing = table.get(object_id)
        if existing is None:
            table.add(cls._blank(object_id))
        elif type(existing) is not cls:
            raise RestoreError(
                f"object id {object_id} recorded as {cls.__name__} but the "
                f"table holds a {type(existing).__name__}"
            )
        _skip_payload(inp, registry.schema_of(cls))

    # Pass 2: apply payloads now that every referenced object can exist.
    inp = DataInputStream(data, base_offset)
    for object_id, cls in entries:
        inp.read_int32()
        inp.read_int32()
        obj = table[object_id]
        obj.restore_local(inp, table)
        obj._ckpt_info.modified = False
    return [object_id for object_id, _ in entries]


def restore_full(
    data: bytes,
    registry: Optional[ClassRegistry] = None,
    serial_translation: Optional[Dict[int, int]] = None,
) -> ObjectTable:
    """Rebuild an object table from a base (full) checkpoint."""
    table = ObjectTable()
    apply_stream(data, table, registry, serial_translation)
    DEFAULT_ALLOCATOR.advance_past(table.max_id())
    return table


def apply_incremental(
    table: ObjectTable,
    data: bytes,
    registry: Optional[ClassRegistry] = None,
    serial_translation: Optional[Dict[int, int]] = None,
    base_offset: int = 0,
) -> List[int]:
    """Fold one incremental delta into an existing table."""
    applied = apply_stream(data, table, registry, serial_translation, base_offset)
    DEFAULT_ALLOCATOR.advance_past(table.max_id())
    return applied


def replay(
    base: bytes,
    deltas: Iterable[bytes],
    registry: Optional[ClassRegistry] = None,
    serial_translation: Optional[Dict[int, int]] = None,
) -> ObjectTable:
    """Restore a full recovery line: base checkpoint plus deltas, in order.

    Epoch data is treated as one concatenated byte sequence for error
    reporting: a decode failure in the k-th delta names its offset within
    the whole line, so the failing record can be located directly.
    """
    table = restore_full(base, registry, serial_translation)
    offset = len(base)
    for delta in deltas:
        apply_incremental(
            table, delta, registry, serial_translation, base_offset=offset
        )
        offset += len(delta)
    return table


def replay_epochs(
    epochs: Iterable,
    registry: Optional[ClassRegistry] = None,
    serial_translation: Optional[Dict[int, int]] = None,
) -> ObjectTable:
    """Materialize the state at the end of a resolved base+delta chain.

    The generalization of :func:`replay` the epoch-lineage graph needs:
    ``epochs`` is any already-resolved chain of epoch records (anything
    with ``kind`` and ``data`` attributes, e.g. what
    ``Lineage.chain`` returns for an *arbitrary* epoch) whose first
    element is a full checkpoint and whose remainder are the
    incremental deltas down to the target epoch, oldest first.
    """
    chain = list(epochs)
    if not chain:
        raise RestoreError("cannot replay an empty epoch chain")
    # Kind literals, not storage constants: importing storage here would
    # be circular (storage replays through this function).
    if chain[0].kind != "full":
        raise RestoreError(
            f"epoch chain must start at a full checkpoint, got "
            f"{chain[0].kind!r}"
        )
    for epoch in chain[1:]:
        if epoch.kind != "incremental":
            raise RestoreError(
                f"epoch chain continues with {epoch.kind!r} where an "
                "incremental delta was expected"
            )
    return replay(
        chain[0].data,
        [epoch.data for epoch in chain[1:]],
        registry,
        serial_translation,
    )


# ---------------------------------------------------------------------------
# State comparison helpers (used heavily by tests)
# ---------------------------------------------------------------------------


def state_digest(root: Checkpointable, include_ids: bool = False) -> str:
    """A stable digest of the reachable state (classes, values, topology)."""
    hasher = hashlib.sha256()
    for token in _state_tokens(root, include_ids):
        hasher.update(token.encode("utf-8"))
        hasher.update(b"\x00")
    return hasher.hexdigest()


def _state_tokens(root: Checkpointable, include_ids: bool) -> Iterable[str]:
    # Iterative preorder walk; shared subobjects are emitted once and then
    # referenced by a local ordinal so that topology is part of the digest.
    ordinals: Dict[int, int] = {}
    stack: List[Checkpointable] = [root]
    while stack:
        obj = stack.pop()
        oid = obj._ckpt_info.object_id
        if oid in ordinals:
            yield f"ref:{ordinals[oid]}"
            continue
        ordinals[oid] = len(ordinals)
        yield f"obj:{type(obj).__qualname__}"
        if include_ids:
            yield f"id:{oid}"
        children: List[Checkpointable] = []
        for spec in obj._ckpt_schema:
            value = getattr(obj, spec.slot)
            if spec.role == "scalar":
                yield f"{spec.name}={value!r}"
            elif spec.role == "scalar_list":
                yield f"{spec.name}={value.as_list()!r}"
            elif spec.role == "child":
                if value is None:
                    yield f"{spec.name}=None"
                else:
                    yield f"{spec.name}:child"
                    children.append(value)
            else:  # child_list
                yield f"{spec.name}:children[{len(value)}]"
                children.extend(value._items)
        stack.extend(reversed(children))


def structurally_equal(
    a: Checkpointable, b: Checkpointable, compare_ids: bool = False
) -> bool:
    """True when two structures have identical classes, values and topology.

    With ``compare_ids=True`` object identifiers must match as well, which
    is the property restoration preserves.
    """
    return state_digest(a, compare_ids) == state_digest(b, compare_ids)
