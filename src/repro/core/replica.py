"""Replicated, self-healing checkpoint storage.

The paper's checkpoints are only as durable as the single store behind
them; this module fans every epoch out to N child stores and keeps the
copies honest. Three mechanisms compose:

**Quorum writes.** :meth:`ReplicatedStore.append` frames the payload
with an end-to-end sha256 checksum and appends it to every replica,
acking the commit once a configurable *write quorum* (default: a
majority) has durably persisted it. A replica that fails keeps the
commit alive as long as the quorum holds — durability degrades, it does
not stall.

**End-to-end checksums.** The frame (``RSUM`` magic, version, sha256
digest, payload) travels *inside* the child store's own CRC frame, so
the digest is computed once at commit time and verified on every read —
bit rot on one volume is detected when it is read, not only when fsck
happens to run, and a damaged copy is simply outvoted by its peers.

**Self-healing.** Each replica runs a health state machine
(``healthy → suspect → fenced``) driven by a circuit breaker over its
failures; a fenced replica is skipped (so a dead volume cannot stall
commits) until a seeded-jitter probe countdown reopens it, at which
point it is caught up from its peers — missing epochs copied in,
divergent records quarantined (never deleted) and rewritten from a
checksum-valid quorum copy. :class:`Scrubber` runs the same
compare-and-repair sweep proactively in the background.
"""

from __future__ import annotations

import hashlib
import random
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.errors import StorageError
from repro.core.lineage import AUTO
from repro.core.retry import RetryPolicy, RetryStats
from repro.core.storage import FULL, INCREMENTAL, CheckpointStore, Epoch
from repro.obs.metrics import NULL_METRICS
from repro.obs.tracer import NULL_TRACER

_FRAME_MAGIC = b"RSUM"
_FRAME_VERSION = 1
_DIGEST_SIZE = hashlib.sha256().digest_size  # 32
_FRAME_OVERHEAD = len(_FRAME_MAGIC) + 1 + _DIGEST_SIZE

#: replica health states
HEALTHY = "healthy"
SUSPECT = "suspect"
FENCED = "fenced"

_VALID_KINDS = (FULL, INCREMENTAL)


class ChecksumError(StorageError):
    """An end-to-end record checksum did not match its payload."""


def frame_record(data: bytes) -> bytes:
    """Wrap ``data`` in the end-to-end checksum frame."""
    payload = bytes(data)
    digest = hashlib.sha256(payload).digest()
    return _FRAME_MAGIC + bytes([_FRAME_VERSION]) + digest + payload


def is_framed(data: bytes) -> bool:
    """Whether ``data`` starts with a well-formed checksum frame header."""
    return (
        len(data) >= _FRAME_OVERHEAD
        and bytes(data[:4]) == _FRAME_MAGIC
        and data[4] == _FRAME_VERSION
    )


def unframe_record(data: bytes) -> bytes:
    """Verify and strip the checksum frame; raises :class:`ChecksumError`."""
    if not is_framed(data):
        raise ChecksumError(
            "record is not checksum-framed (missing RSUM header)"
        )
    digest = bytes(data[5:_FRAME_OVERHEAD])
    payload = bytes(data[_FRAME_OVERHEAD:])
    if hashlib.sha256(payload).digest() != digest:
        raise ChecksumError(
            "record payload does not match its sha256 checksum"
        )
    return payload


@dataclass
class ReplicaState:
    """One replica's health, as the circuit breaker sees it."""

    name: str
    store: CheckpointStore
    state: str = HEALTHY
    #: consecutive failures since the last success
    failures: int = 0
    #: missed at least one committed epoch; must catch up before appending
    behind: bool = False
    #: appends remaining until a fenced replica is probed again
    probe_in: int = 0
    #: total successful appends acked by this replica
    acks: int = 0
    #: total fence transitions (breaker openings)
    fences: int = 0
    last_error: Optional[str] = None

    def status(self) -> dict:
        return {
            "name": self.name,
            "state": self.state,
            "failures": self.failures,
            "behind": self.behind,
            "probe_in": self.probe_in,
            "acks": self.acks,
            "fences": self.fences,
            "last_error": self.last_error,
        }


@dataclass
class ScrubReport:
    """What one scrub pass found and fixed."""

    replicas: List[str] = field(default_factory=list)
    #: epochs with a checksum-valid quorum copy that were examined
    epochs_checked: int = 0
    #: {"replica", "index", "action"} for every repair performed
    repaired: List[dict] = field(default_factory=list)
    #: quarantine destinations for divergent/corrupt records
    quarantined: List[str] = field(default_factory=list)
    #: indices with no checksum-valid copy anywhere (cannot be repaired)
    unrepairable: List[int] = field(default_factory=list)
    #: repair attempts that themselves failed
    errors: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when no replica needed any repair."""
        return not self.repaired and not self.unrepairable and not self.errors

    @property
    def healed(self) -> bool:
        """True when every detected problem was actually repaired."""
        return not self.unrepairable and not self.errors

    def to_dict(self) -> dict:
        return {
            "replicas": list(self.replicas),
            "epochs_checked": self.epochs_checked,
            "repaired": [dict(r) for r in self.repaired],
            "quarantined": list(self.quarantined),
            "unrepairable": list(self.unrepairable),
            "errors": list(self.errors),
            "clean": self.clean,
            "healed": self.healed,
        }


class ReplicatedStore(CheckpointStore):
    """Quorum-replicated front over N child stores.

    ``replicas`` is any mix of :class:`~repro.core.storage.FileStore` /
    :class:`~repro.core.storage.MemoryStore` (anything implementing the
    store interface plus the ``epoch_map``/``put_epoch``/
    ``quarantine_epoch`` repair primitives). ``quorum`` defaults to a
    majority (``N // 2 + 1``); ``quorum=N`` makes every commit wait for
    all replicas, ``quorum=1`` makes replication purely asynchronous
    repair fodder.

    The breaker fences a replica after ``fence_after`` consecutive
    failures (passing through ``suspect`` at ``suspect_after``); a
    fenced replica is skipped for ``probe_after`` appends plus a
    deterministic seeded jitter, then probed: caught up from its peers
    and handed the in-flight epoch. Success heals it; failure re-fences
    it with a fresh countdown.
    """

    def __init__(
        self,
        replicas: Sequence[CheckpointStore],
        quorum: Optional[int] = None,
        retry: Optional[RetryPolicy] = None,
        suspect_after: int = 1,
        fence_after: int = 3,
        probe_after: int = 4,
        probe_jitter: int = 3,
        seed: int = 20260807,
        names: Optional[Sequence[str]] = None,
    ) -> None:
        stores = list(replicas)
        if not stores:
            raise StorageError("a replicated store needs at least 1 replica")
        if names is None:
            names = [f"r{i}" for i in range(len(stores))]
        if len(names) != len(stores):
            raise StorageError("one name per replica, please")
        if quorum is None:
            quorum = len(stores) // 2 + 1
        if not 1 <= quorum <= len(stores):
            raise StorageError(
                f"write quorum {quorum} is not satisfiable with "
                f"{len(stores)} replica(s)"
            )
        self._quorum = quorum
        self._retry = retry
        #: retry accounting (count + notes), shared with commit receipts
        self.retry_stats = RetryStats()
        self._suspect_after = max(1, suspect_after)
        self._fence_after = max(self._suspect_after, fence_after)
        self._probe_after = max(1, probe_after)
        self._probe_jitter = max(0, probe_jitter)
        self._rng = random.Random(seed)
        self._states = [
            ReplicaState(name=name, store=store)
            for name, store in zip(names, stores)
        ]
        #: receipt of the newest commit: index/acked/degraded/quorum
        self._last_commit: Optional[dict] = None
        #: observability hooks; no-op singletons until :meth:`instrument`
        self.tracer = NULL_TRACER
        self.metrics = NULL_METRICS
        # Guards the replica state machines, the RNG, and the last-commit
        # receipt: a Scrubber thread repairs replicas while the committing
        # thread appends, and both walk the same ReplicaState records.
        self._lock = threading.RLock()

    # -- observability ----------------------------------------------------

    def instrument(self, tracer, metrics) -> None:
        """Attach a tracer/metrics pair (only replaces no-op defaults)."""
        with self._lock:
            if self.tracer is NULL_TRACER:
                self.tracer = tracer
            if self.metrics is NULL_METRICS:
                self.metrics = metrics

    def _transition(self, rep: ReplicaState, new_state: str, reason: str):
        # caller holds _lock
        old = rep.state
        if old == new_state:
            return
        rep.state = new_state
        if new_state == FENCED:
            rep.fences += 1
            rep.probe_in = self._probe_after + self._rng.randrange(
                self._probe_jitter + 1
            )
        self.tracer.event(
            "replica.state",
            replica=rep.name,
            old=old,
            new=new_state,
            reason=reason,
            failures=rep.failures,
        )
        self.metrics.counter(
            "replica_breaker_transitions_total", replica=rep.name, to=new_state
        ).inc()

    def _note_failure(
        self, rep: ReplicaState, exc: BaseException, fatal: bool = False
    ) -> None:
        # caller holds _lock
        rep.failures += 1
        rep.behind = True
        rep.last_error = str(exc)
        self.metrics.counter("replica_failures_total", replica=rep.name).inc()
        if fatal or rep.failures >= self._fence_after:
            if rep.state == FENCED:
                # failed probe: re-arm the countdown with fresh jitter
                rep.probe_in = self._probe_after + self._rng.randrange(
                    self._probe_jitter + 1
                )
            else:
                self._transition(rep, FENCED, str(exc))
        elif rep.failures >= self._suspect_after:
            self._transition(rep, SUSPECT, str(exc))

    def _note_success(self, rep: ReplicaState) -> None:
        # caller holds _lock
        if rep.state != HEALTHY:
            self._transition(rep, HEALTHY, "append succeeded")
        rep.failures = 0
        rep.behind = False
        rep.last_error = None
        rep.acks += 1
        self.metrics.counter("replica_acks_total", replica=rep.name).inc()

    # -- quorum reads -----------------------------------------------------

    def _replica_maps(self) -> Dict[str, Dict[int, Epoch]]:
        # caller holds _lock; a replica that cannot even enumerate its
        # epochs contributes an empty map (and will look entirely behind)
        maps: Dict[str, Dict[int, Epoch]] = {}
        for rep in self._states:
            try:
                maps[rep.name] = rep.store.epoch_map()
            except (StorageError, OSError) as exc:
                rep.last_error = str(exc)
                maps[rep.name] = {}
        return maps

    @staticmethod
    def _vote_key(epoch: Epoch) -> tuple:
        return (
            epoch.kind,
            epoch.parent,
            epoch.branch,
            epoch.name,
            bytes(epoch.data),
        )

    def _quorum_map(
        self, maps: Dict[str, Dict[int, Epoch]]
    ) -> Dict[int, Epoch]:
        """Per index, the majority checksum-valid copy (framed bytes).

        A copy only votes if its end-to-end checksum verifies; ties
        break deterministically. Indices with no valid copy anywhere are
        absent from the result — they are unrepairable.
        """
        by_index: Dict[int, List[Epoch]] = {}
        for replica_map in maps.values():
            for index, epoch in replica_map.items():
                by_index.setdefault(index, []).append(epoch)
        chosen: Dict[int, Epoch] = {}
        for index, copies in by_index.items():
            votes: Dict[tuple, List[Epoch]] = {}
            for epoch in copies:
                try:
                    unframe_record(epoch.data)
                except ChecksumError:
                    continue  # bit rot: this copy does not get a vote
                votes.setdefault(self._vote_key(epoch), []).append(epoch)
            if not votes:
                continue
            best = max(votes, key=lambda key: (len(votes[key]), repr(key)))
            chosen[index] = votes[best][0]
        return chosen

    def epochs(self) -> List[Epoch]:
        """The quorum view, checksum-verified and unframed.

        Walks indices from 0 and stops at the first index with no
        checksum-valid copy on any replica — a delta chain cannot be
        applied across a hole (matching single-store semantics).
        """
        with self._lock:
            chosen = self._quorum_map(self._replica_maps())
        result: List[Epoch] = []
        index = 0
        while index in chosen:
            framed = chosen[index]
            result.append(framed._replace(data=unframe_record(framed.data)))
            index += 1
        return result

    def epoch_map(self) -> Dict[int, Epoch]:
        with self._lock:
            chosen = self._quorum_map(self._replica_maps())
        return {
            index: epoch._replace(data=unframe_record(epoch.data))
            for index, epoch in chosen.items()
        }

    def _serial_translation(self, registry):
        last_exc: Optional[StorageError] = None
        with self._lock:
            stores = [rep.store for rep in self._states]
        for store in stores:
            try:
                return store._serial_translation(registry)
            except StorageError as exc:
                last_exc = exc
        if last_exc is not None:
            raise last_exc
        return None

    # -- repair -----------------------------------------------------------

    def _repair_replica(
        self,
        rep: ReplicaState,
        maps: Dict[str, Dict[int, Epoch]],
        chosen: Dict[int, Epoch],
        report: Optional[ScrubReport] = None,
    ) -> None:
        """Bring ``rep`` in line with the quorum copy (caller holds _lock).

        Missing epochs are copied in; divergent or checksum-invalid
        records are quarantined via the child store's own quarantine
        discipline and rewritten byte-for-byte from the quorum copy.
        Raises on the first repair that fails (scrub catches and records;
        append lets it fail the replica's breaker instead).
        """
        own = maps.get(rep.name, {})
        for index in sorted(chosen):
            quorum_copy = chosen[index]
            mine = own.get(index)
            if mine is not None and self._vote_key(mine) == self._vote_key(
                quorum_copy
            ):
                continue
            action = "copied" if mine is None else "replaced"
            if mine is not None:
                token = rep.store.quarantine_epoch(
                    index, reason="diverges from quorum copy"
                )
                if token is not None and report is not None:
                    report.quarantined.append(f"{rep.name}:{token}")
            else:
                # The file may exist but be unreadable (torn write):
                # epoch_map skipped it, yet a plain put would collide.
                token = rep.store.quarantine_epoch(
                    index, reason="unreadable record"
                )
                if token is not None:
                    action = "replaced"
                    if report is not None:
                        report.quarantined.append(f"{rep.name}:{token}")
            rep.store.put_epoch(quorum_copy, overwrite=True)
            own[index] = quorum_copy
            self.tracer.event(
                "scrub.repair", replica=rep.name, index=index, action=action
            )
            self.metrics.counter(
                "scrub_repairs_total", replica=rep.name
            ).inc()
            if report is not None:
                report.repaired.append(
                    {"replica": rep.name, "index": index, "action": action}
                )

    def _catch_up(self, rep: ReplicaState) -> None:
        """Read-repair ``rep`` from its peers before it rejoins appends.

        A replica that missed an append would assign the wrong index to
        the next one; it must hold every quorum-committed epoch before
        its ack can count again. Caller holds ``_lock``.
        """
        maps = self._replica_maps()
        chosen = self._quorum_map(maps)
        self._repair_replica(rep, maps, chosen)
        rep.behind = False

    def scrub(self, report: Optional[ScrubReport] = None) -> ScrubReport:
        """One full compare-and-repair sweep over every replica.

        Builds the checksum-valid quorum copy of each epoch, then
        byte-compares every replica's record against it: missing or
        divergent records are repaired (divergent ones quarantined
        first, never deleted). Indices that exist somewhere but have no
        valid copy anywhere are reported as unrepairable and left
        untouched.
        """
        if report is None:
            report = ScrubReport()
        with self._lock:
            report.replicas = [rep.name for rep in self._states]
            maps = self._replica_maps()
            chosen = self._quorum_map(maps)
            report.epochs_checked = len(chosen)
            seen = set()
            for replica_map in maps.values():
                seen.update(replica_map)
            report.unrepairable = sorted(seen - set(chosen))
            for rep in self._states:
                try:
                    self._repair_replica(rep, maps, chosen, report)
                except (StorageError, OSError) as exc:
                    self._note_failure(rep, exc)
                    report.errors.append(f"{rep.name}: {exc}")
                else:
                    if rep.behind:
                        rep.behind = False
            self.tracer.event(
                "scrub.done",
                replicas=list(report.replicas),
                epochs_checked=report.epochs_checked,
                repaired=len(report.repaired),
                quarantined=len(report.quarantined),
                unrepairable=len(report.unrepairable),
                errors=len(report.errors),
            )
            self.metrics.counter("scrub_runs_total").inc()
        return report

    # -- quorum writes ----------------------------------------------------

    def _append_one(
        self,
        rep: ReplicaState,
        kind: str,
        framed: bytes,
        parent,
        branch,
        name,
    ) -> int:
        def attempt() -> int:
            return rep.store.append(
                kind, framed, parent=parent, branch=branch, name=name
            )

        if self._retry is None:
            return attempt()
        return self._retry.run(
            attempt,
            on_retry=lambda attempt_no, exc, _d: self.retry_stats.note(
                f"replica:{rep.name}", attempt_no, exc
            ),
        )

    def append(
        self,
        kind: str,
        data: bytes,
        *,
        parent=AUTO,
        branch: Optional[str] = None,
        name: Optional[str] = None,
    ) -> int:
        if kind not in _VALID_KINDS:
            raise StorageError(f"unknown checkpoint kind {kind!r}")
        framed = frame_record(data)
        with self._lock:
            acked: List[str] = []
            degraded: List[str] = []
            index: Optional[int] = None
            # Catch-up is a pre-pass: a recovering replica must be
            # repaired to the pre-commit state *before* any peer takes
            # the in-flight epoch, or it would copy that epoch in and
            # then assign the next index to its own append (index skew).
            participants: List[ReplicaState] = []
            for rep in self._states:
                if rep.state == FENCED:
                    rep.probe_in -= 1
                    if rep.probe_in > 0:
                        degraded.append(rep.name)
                        continue
                    self.tracer.event("replica.probe", replica=rep.name)
                    self.metrics.counter(
                        "replica_probes_total", replica=rep.name
                    ).inc()
                if rep.behind or rep.state == FENCED:
                    try:
                        self._catch_up(rep)
                    except (StorageError, OSError) as exc:
                        self._note_failure(rep, exc)
                        degraded.append(rep.name)
                        continue
                participants.append(rep)
            for rep in participants:
                try:
                    got = self._append_one(
                        rep, kind, framed, parent, branch, name
                    )
                except (StorageError, OSError) as exc:
                    self._note_failure(rep, exc)
                    degraded.append(rep.name)
                    continue
                if index is None:
                    index = got
                elif got != index:
                    # index skew means this replica's history silently
                    # diverged; fence it hard rather than trust its ack
                    self._note_failure(
                        rep,
                        StorageError(
                            f"index skew: replica assigned {got}, "
                            f"quorum assigned {index}"
                        ),
                        fatal=True,
                    )
                    degraded.append(rep.name)
                    continue
                self._note_success(rep)
                acked.append(rep.name)
            self.tracer.event(
                "replica.append",
                index=index,
                kind=kind,
                acked=list(acked),
                degraded=list(degraded),
                quorum=self._quorum,
            )
            if len(acked) < self._quorum:
                self._last_commit = {
                    "index": None,
                    "acked": list(acked),
                    "degraded": list(degraded),
                    "quorum": self._quorum,
                    "replicas": len(self._states),
                }
                raise StorageError(
                    f"write quorum lost: {len(acked)} of "
                    f"{len(self._states)} replica(s) acked, "
                    f"quorum is {self._quorum}"
                    + (
                        f" (degraded: {', '.join(degraded)})"
                        if degraded
                        else ""
                    )
                )
            self._last_commit = {
                "index": index,
                "acked": list(acked),
                "degraded": list(degraded),
                "quorum": self._quorum,
                "replicas": len(self._states),
            }
            return index  # type: ignore[return-value]

    # -- introspection ----------------------------------------------------

    @property
    def quorum(self) -> int:
        return self._quorum

    @property
    def replica_count(self) -> int:
        return len(self._states)

    @property
    def last_commit(self) -> Optional[dict]:
        """Receipt of the newest append: index/acked/degraded/quorum."""
        with self._lock:
            return dict(self._last_commit) if self._last_commit else None

    def replica_status(self) -> List[dict]:
        with self._lock:
            return [rep.status() for rep in self._states]

    def durability(self) -> str:
        """``"durable"`` when every replica acked the newest commit,
        ``"quorum"`` when only a write quorum did."""
        with self._lock:
            last = self._last_commit
            if last is None:
                return "durable"
            if len(last["acked"]) >= len(self._states):
                return "durable"
            return "quorum"

    def undurable_counts(self) -> Dict[str, int]:
        """Per replica, how many quorum-committed epochs it is missing."""
        with self._lock:
            maps = self._replica_maps()
            chosen = self._quorum_map(maps)
            counts: Dict[str, int] = {}
            for rep in self._states:
                own = maps.get(rep.name, {})
                missing = 0
                for index, quorum_copy in chosen.items():
                    mine = own.get(index)
                    if mine is None or self._vote_key(
                        mine
                    ) != self._vote_key(quorum_copy):
                        missing += 1
                counts[rep.name] = missing
            return counts

    # -- lifecycle --------------------------------------------------------

    def flush(self, timeout: Optional[float] = None) -> None:
        """Repair behind/fenced replicas now and flush flushable children.

        ``timeout`` is forwarded to children that accept one; the
        catch-up sweep itself is synchronous. Repair failures stay on
        the breaker (they do not raise) — flush means "as durable as
        the healthy replica set allows", and the health state records
        who is not.
        """
        with self._lock:
            for rep in self._states:
                if rep.behind or rep.state != HEALTHY:
                    try:
                        self._catch_up(rep)
                    except (StorageError, OSError) as exc:
                        self._note_failure(rep, exc)
                        continue
                    self._transition(rep, HEALTHY, "flush catch-up")
                    rep.failures = 0
            stores = [rep.store for rep in self._states]
        for store in stores:
            child_flush = getattr(store, "flush", None)
            if callable(child_flush):
                try:
                    child_flush(timeout)
                except TypeError:
                    child_flush()

    def close(self) -> None:
        with self._lock:
            stores = [rep.store for rep in self._states]
        for store in stores:
            child_close = getattr(store, "close", None)
            if callable(child_close):
                child_close()


class Scrubber:
    """Background scrub job over a :class:`ReplicatedStore`.

    :meth:`run_once` performs one sweep; :meth:`start` runs sweeps every
    ``interval`` seconds on a daemon thread until :meth:`stop`. Reports
    accumulate in :attr:`reports` (newest last, bounded).
    """

    def __init__(
        self, store: ReplicatedStore, interval: float = 30.0, keep: int = 16
    ) -> None:
        self.store = store
        self.interval = interval
        self._keep = max(1, keep)
        #: guards the report history and the thread handle
        self._lock = threading.Lock()
        self._reports: List[ScrubReport] = []
        self._runs = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def run_once(self) -> ScrubReport:
        report = self.store.scrub()
        with self._lock:
            self._runs += 1
            self._reports.append(report)
            del self._reports[: -self._keep]
        return report

    @property
    def reports(self) -> List[ScrubReport]:
        with self._lock:
            return list(self._reports)

    @property
    def runs(self) -> int:
        with self._lock:
            return self._runs

    def start(self) -> "Scrubber":
        with self._lock:
            if self._thread is not None and self._thread.is_alive():
                return self
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._loop, name="checkpoint-scrubber", daemon=True
            )
            self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.run_once()
            except (StorageError, OSError):
                continue  # the next sweep retries; breakers hold the state

    def stop(self, timeout: Optional[float] = None) -> None:
        self._stop.set()
        with self._lock:
            thread = self._thread
            self._thread = None
        if thread is not None:
            thread.join(timeout)

    def __enter__(self) -> "Scrubber":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
