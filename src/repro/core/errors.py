"""Exception hierarchy for the checkpointing framework."""


class CheckpointError(Exception):
    """Base class for every error raised by the repro package."""


class SchemaError(CheckpointError):
    """A checkpointable class was declared incorrectly.

    Raised at class-definition time (bad field kind, name collision, …) or
    when an operation is attempted on a class with no registered schema.
    """


class CycleError(CheckpointError):
    """A cycle was found in a structure assumed to be acyclic.

    The paper (section 2) assumes checkpointed compound structures contain
    no cycles; the checking driver and :meth:`repro.spec.shape.Shape.of`
    raise this error instead of looping forever.
    """


class SerializationError(CheckpointError):
    """A value cannot be represented in the checkpoint wire format.

    Raised on the *write* side — e.g. a string whose UTF-8 encoding
    exceeds the int32 length prefix — before any malformed bytes reach a
    stream. Distinct from :class:`RestoreError`, which is the read-side
    (decode) failure family.
    """


class RestoreError(CheckpointError):
    """A checkpoint stream could not be decoded back into objects."""


class StorageError(CheckpointError):
    """A durable checkpoint store is missing, corrupt, or inconsistent."""


class SpecializationError(CheckpointError):
    """The specializer was given inconsistent or unusable declarations."""


class EffectAnalysisError(SpecializationError):
    """The static modification-effect analysis could not analyse a phase.

    Raised when a phase function's source is unavailable (builtins,
    C extensions, ``exec``'d code) or when no parameter of the function can
    be bound to the root of the analysed :class:`~repro.spec.shape.Shape`.
    """


class UnsoundPatternError(SpecializationError):
    """A declared pattern misses a position the phase may modify.

    Raised by :meth:`repro.spec.specclass.SpecClass.from_static_analysis`
    when the static effect analysis proves that a programmer-declared
    :class:`~repro.spec.modpattern.ModificationPattern` declares quiescent a
    position the phase functions may write. Compiling such a pattern
    unguarded would silently drop the modified data from every checkpoint.
    """


class ResidualVerificationError(SpecializationError):
    """A residual program failed the post-specialization verifier.

    Raised by :func:`repro.spec.effects.residual.verify_residual` when the
    specializer's output is malformed or violates the "no dropped subtree"
    property: every shape position must either be recorded by the residual
    checkpointer or be declared quiescent by the modification pattern.
    """


class PatternViolationError(CheckpointError):
    """At run time, an object declared quiescent was found modified.

    Only raised by guarded specialized checkpointers (``guards=True``); the
    unguarded ones trust the programmer-supplied specialization classes,
    exactly as the paper does.
    """
