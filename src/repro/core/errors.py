"""Exception hierarchy for the checkpointing framework."""


class CheckpointError(Exception):
    """Base class for every error raised by the repro package."""


class SchemaError(CheckpointError):
    """A checkpointable class was declared incorrectly.

    Raised at class-definition time (bad field kind, name collision, …) or
    when an operation is attempted on a class with no registered schema.
    """


class CycleError(CheckpointError):
    """A cycle was found in a structure assumed to be acyclic.

    The paper (section 2) assumes checkpointed compound structures contain
    no cycles; the checking driver and :meth:`repro.spec.shape.Shape.of`
    raise this error instead of looping forever.
    """


class RestoreError(CheckpointError):
    """A checkpoint stream could not be decoded back into objects."""


class StorageError(CheckpointError):
    """A durable checkpoint store is missing, corrupt, or inconsistent."""


class SpecializationError(CheckpointError):
    """The specializer was given inconsistent or unusable declarations."""


class PatternViolationError(CheckpointError):
    """At run time, an object declared quiescent was found modified.

    Only raised by guarded specialized checkpointers (``guards=True``); the
    unguarded ones trust the programmer-supplied specialization classes,
    exactly as the paper does.
    """
