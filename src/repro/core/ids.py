"""Unique-identifier allocation for checkpointable objects.

Each checkpointable object carries a process-wide unique integer identifier
(paper Figure 1, ``newId()``). Identifiers are written to checkpoints so
that a sequence of incremental checkpoints can be folded back together
during recovery.
"""

from __future__ import annotations

import itertools
import threading


class IdAllocator:
    """Monotonically increasing identifier source.

    Thread-safe: the analysis engine and the checkpointing driver may
    allocate from different threads (the paper notes that checkpoints can
    be drained to stable storage asynchronously).
    """

    def __init__(self, start: int = 0) -> None:
        self._counter = itertools.count(start)
        self._lock = threading.Lock()
        self._last = start - 1

    def allocate(self) -> int:
        """Return the next unused identifier."""
        with self._lock:
            self._last = next(self._counter)
            return self._last

    @property
    def last_allocated(self) -> int:
        """The most recently handed-out identifier (``start - 1`` if none)."""
        with self._lock:
            return self._last

    def reset(self, start: int = 0) -> None:
        """Restart allocation at ``start``.

        Intended for tests and for recovery: after restoring an object
        table, the allocator is advanced past the largest restored id so
        new objects cannot collide with restored ones.
        """
        with self._lock:
            self._counter = itertools.count(start)
            self._last = start - 1

    def advance_past(self, used_id: int) -> None:
        """Ensure future allocations are strictly greater than ``used_id``."""
        with self._lock:
            if used_id >= self._last:
                self._counter = itertools.count(used_id + 1)
                self._last = used_id


#: Process-wide default allocator used by :class:`repro.core.info.CheckpointInfo`.
DEFAULT_ALLOCATOR = IdAllocator()
