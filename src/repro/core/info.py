"""Per-object checkpoint metadata (paper Figure 1, ``CheckpointInfo``).

Every checkpointable object owns exactly one :class:`CheckpointInfo`,
holding its process-wide unique identifier and its modification flag. The
flag is set by every field assignment (see :mod:`repro.core.fields`) and
reset when the object's local state is recorded into a checkpoint.

On top of the paper's design, the flag doubles as the *block tier's*
change feed (see :mod:`repro.core.blocks`): when an object has been
assigned to a dirtiness block, every ``modified = True`` store also bumps
that block's generation counter and dirty bit. Because every existing
flag-write site — field descriptors, :class:`~repro.core.fields.TrackedList`
mutations, ``set_all_flags``, ``restore_flags`` — already goes through this
attribute, the block tier inherits the paper's "no programmer effort"
property for free.
"""

from __future__ import annotations

from repro.core.ids import DEFAULT_ALLOCATOR, IdAllocator

#: Generation counters wrap at the int32 boundary so they stay
#: representable in the wire/metadata formats; the per-block dirty *bit*
#: (which cannot wrap) is what makes the skip decision wrap-proof.
GENERATION_MASK = 0xFFFFFFFF


class _TopologyClock:
    """Process-wide counter of structural (parent/child edge) mutations.

    Block membership is a function of graph topology: an edge insertion or
    removal can move an object's first-preorder position to a different
    block. Rather than burden every edge write with per-tier bookkeeping,
    edge writes tick this clock and every
    :class:`~repro.core.blocks.BlockTier` re-partitions when the clock has
    moved since its last partition. Scalar writes never tick it, so the
    hot path (value mutation between commits) keeps its block skipping.
    """

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def tick(self) -> None:
        self.value += 1


TOPOLOGY_CLOCK = _TopologyClock()


def note_topology_change() -> None:
    """Record that a parent/child edge somewhere was created or removed."""
    TOPOLOGY_CLOCK.value += 1


class CheckpointInfo:
    """Identifier and modification flag of one checkpointable object.

    A freshly created object is marked modified (paper Figure 1): it has
    never been recorded, so the next incremental checkpoint must capture
    it in full.
    """

    __slots__ = ("object_id", "_modified", "block")

    def __init__(
        self,
        object_id: int | None = None,
        modified: bool = True,
        allocator: IdAllocator | None = None,
    ) -> None:
        if object_id is None:
            object_id = (allocator or DEFAULT_ALLOCATOR).allocate()
        self.object_id = object_id
        self._modified = modified
        #: the dirtiness block this object belongs to (None until a
        #: BlockTier partitions the graph containing it)
        self.block = None

    @property
    def modified(self) -> bool:
        return self._modified

    @modified.setter
    def modified(self, value: bool) -> None:
        self._modified = value
        if value:
            block = self.block
            if block is not None:
                block.generation = (block.generation + 1) & GENERATION_MASK
                block.dirty = True

    def set_modified(self) -> None:
        """Mark the owning object as modified since the last checkpoint."""
        self.modified = True

    def reset_modified(self) -> None:
        """Clear the flag, typically right after recording the object."""
        self._modified = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "modified" if self._modified else "clean"
        return f"CheckpointInfo(id={self.object_id}, {state})"
