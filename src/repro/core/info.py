"""Per-object checkpoint metadata (paper Figure 1, ``CheckpointInfo``).

Every checkpointable object owns exactly one :class:`CheckpointInfo`,
holding its process-wide unique identifier and its modification flag. The
flag is set by every field assignment (see :mod:`repro.core.fields`) and
reset when the object's local state is recorded into a checkpoint.
"""

from __future__ import annotations

from repro.core.ids import DEFAULT_ALLOCATOR, IdAllocator


class CheckpointInfo:
    """Identifier and modification flag of one checkpointable object.

    A freshly created object is marked modified (paper Figure 1): it has
    never been recorded, so the next incremental checkpoint must capture
    it in full.
    """

    __slots__ = ("object_id", "modified")

    def __init__(
        self,
        object_id: int | None = None,
        modified: bool = True,
        allocator: IdAllocator | None = None,
    ) -> None:
        if object_id is None:
            object_id = (allocator or DEFAULT_ALLOCATOR).allocate()
        self.object_id = object_id
        self.modified = modified

    def set_modified(self) -> None:
        """Mark the owning object as modified since the last checkpoint."""
        self.modified = True

    def reset_modified(self) -> None:
        """Clear the flag, typically right after recording the object."""
        self.modified = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "modified" if self.modified else "clean"
        return f"CheckpointInfo(id={self.object_id}, {state})"
