"""The epoch lineage graph: parents, branches, named pins.

PR 4 treated a store as a linear epoch *sequence*: recovery replayed the
latest full checkpoint plus the positional suffix of deltas. Time travel
(restore-to-any-epoch, speculative forks) needs the history to be an
addressable *graph* instead: every epoch names its parent, belongs to a
branch, and may carry a human-readable pin name. This module holds the
pure graph logic shared by the stores, the session, compaction, and
``fsck`` — it deliberately knows nothing about files or serialization.

Concepts
--------
parent
    The epoch this one's delta applies on top of (``None`` for a root
    epoch). A full checkpoint's parent is provenance only: recovery never
    reads past a full base.
branch
    A label shared by one line of descent. Branches exist purely as
    epoch attributes — there is no separate branch metadata file to keep
    crash-consistent.
base chain
    ``chain(e)``: the epoch's nearest full ancestor plus every delta
    from it down to ``e``, oldest first. This is what recovery replays
    to materialize ``e``.
head
    An epoch with no surviving children; the tip of a branch.
protected set
    What compaction must keep: the base chain of every head and of
    every named epoch. Everything else can never participate in a
    recovery line again.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Union

from repro.core.errors import StorageError

#: the default branch every un-forked epoch lives on
MAIN_BRANCH = "main"


class _AutoParent:
    """Sentinel: "chain this epoch onto the head of its branch".

    Stores resolve it at append time — essential for the asynchronous
    :class:`~repro.core.storage.BackgroundWriter`, where durable indices
    are only assigned when the drain thread gets to the epoch.
    """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "AUTO"


AUTO = _AutoParent()

#: what an epoch restore/fork call may address: an index or a pin name
EpochRef = Union[int, str]


class Lineage:
    """A read-only view of the epoch graph of one store.

    Built from any sequence of epoch records (anything with ``index``,
    ``kind``, ``parent``, ``branch`` and ``name`` attributes — the
    stores' :class:`~repro.core.storage.Epoch` tuples, or the light
    records ``fsck`` synthesizes from classified files).
    """

    def __init__(self, epochs: Iterable) -> None:
        self._by_index = {}
        for epoch in epochs:
            self._by_index[epoch.index] = epoch

    # -- basic lookups -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._by_index)

    def __contains__(self, index: int) -> bool:
        return index in self._by_index

    def indices(self) -> List[int]:
        """Every epoch index, ascending."""
        return sorted(self._by_index)

    def epoch(self, index: int):
        try:
            return self._by_index[index]
        except KeyError:
            raise StorageError(f"no epoch {index} in the store")

    def named(self) -> Dict[str, int]:
        """``{pin name: epoch index}`` over every named epoch."""
        return {
            epoch.name: epoch.index
            for epoch in self._by_index.values()
            if epoch.name is not None
        }

    def resolve(self, target: EpochRef) -> int:
        """An epoch index from an index or a pin name."""
        if isinstance(target, bool) or not isinstance(target, (int, str)):
            raise StorageError(
                f"cannot address an epoch with {target!r} (expected an "
                "epoch index or a checkpoint name)"
            )
        if isinstance(target, int):
            if target not in self._by_index:
                raise StorageError(f"no epoch {target} in the store")
            return target
        named = self.named()
        if target not in named:
            raise StorageError(f"no checkpoint named {target!r} in the store")
        return named[target]

    # -- graph structure -----------------------------------------------------

    def children(self) -> Dict[int, List[int]]:
        """``{index: child indices}`` (children sorted ascending)."""
        result: Dict[int, List[int]] = {i: [] for i in self._by_index}
        for epoch in self._by_index.values():
            parent = epoch.parent
            if parent is not None and parent in self._by_index:
                result[parent].append(epoch.index)
        for kids in result.values():
            kids.sort()
        return result

    def heads(self) -> List[int]:
        """Indices of epochs with no surviving children, ascending."""
        kids = self.children()
        return sorted(i for i, c in kids.items() if not c)

    def branches(self) -> Dict[str, int]:
        """``{branch: newest index on that branch}``.

        Within a branch appends are ordered, so the newest index *is*
        the branch tip an ``AUTO`` append chains onto.
        """
        result: Dict[str, int] = {}
        for epoch in self._by_index.values():
            current = result.get(epoch.branch)
            if current is None or epoch.index > current:
                result[epoch.branch] = epoch.index
        return result

    def newest(self) -> int:
        """The highest epoch index (the store's most recent commit)."""
        if not self._by_index:
            raise StorageError("no full checkpoint in store; cannot recover")
        return max(self._by_index)

    # -- base chains ---------------------------------------------------------

    def chain(self, target: EpochRef) -> List:
        """The base chain of ``target``: full base plus deltas, oldest first.

        Walks parents from the epoch back to its nearest full ancestor.
        Raises :class:`~repro.core.errors.StorageError` if a referenced
        ancestor is missing (a broken chain — ``fsck`` territory) or the
        walk ends on a parentless delta (no recovery base).
        """
        index = self.resolve(target)
        chain = [self._by_index[index]]
        seen: Set[int] = {index}
        while chain[0].kind != "full":
            parent = chain[0].parent
            if parent is None:
                raise StorageError(
                    "no full checkpoint in store; cannot recover"
                )
            if parent not in self._by_index:
                raise StorageError(
                    f"epoch {chain[0].index} references missing parent "
                    f"epoch {parent}; the chain is broken"
                )
            if parent in seen:
                raise StorageError(
                    f"epoch lineage cycle through epoch {parent}"
                )
            seen.add(parent)
            chain.insert(0, self._by_index[parent])
        return chain

    def chain_indices(self, target: EpochRef) -> List[int]:
        """The indices of :meth:`chain`, oldest first."""
        return [epoch.index for epoch in self.chain(target)]

    def _reachable_ancestors(self, index: int) -> Set[int]:
        """Tolerant chain walk: every ancestor up to (and including) the
        nearest full base, stopping silently at missing links."""
        result: Set[int] = set()
        current: Optional[int] = index
        while (
            current is not None
            and current in self._by_index
            and current not in result
        ):
            result.add(current)
            epoch = self._by_index[current]
            current = None if epoch.kind == "full" else epoch.parent
        return result

    # -- compaction support --------------------------------------------------

    def protected(self) -> Set[int]:
        """Indices compaction must keep.

        The base chain of every head and of every named epoch: deleting
        any of these would break a recovery line some branch tip or pin
        still needs. A full epoch ends its chain, so the parent of a
        full is *not* protected through it — that link is exactly where
        compaction may cut.
        """
        keep: Set[int] = set()
        for root in set(self.heads()) | set(self.named().values()):
            keep |= self._reachable_ancestors(root)
        return keep

    def intact_chain(self, index: int) -> bool:
        """Whether ``chain(index)`` resolves without a missing ancestor.

        A parentless delta counts as intact here (the epoch itself is
        sound — it merely has no recovery base), matching what ``fsck``
        keeps on disk.
        """
        current = index
        seen: Set[int] = set()
        while True:
            if current in seen:
                return False
            seen.add(current)
            epoch = self._by_index[current]
            if epoch.kind == "full" or epoch.parent is None:
                return True
            if epoch.parent not in self._by_index:
                return False
            current = epoch.parent


def resolve_parent(
    parent,
    branch: Optional[str],
    branches: Dict[str, int],
    branch_of,
    last_branch: Optional[str],
):
    """Resolve an ``append(parent=..., branch=...)`` request to concrete
    ``(parent index or None, branch name)``.

    ``AUTO`` chains onto the head of the target branch (the branch
    argument, or the branch of the newest epoch). An explicit parent
    defaults its branch to the parent's own branch; ``branch_of`` maps
    a known index to its branch and is only consulted in that case.
    """
    if parent is AUTO:
        resolved_branch = branch or last_branch or MAIN_BRANCH
        return branches.get(resolved_branch), resolved_branch
    if parent is not None:
        if branch is not None:
            return parent, branch
        return parent, branch_of(parent)
    return None, branch or MAIN_BRANCH
