"""Core checkpointing framework (paper section 2).

This subpackage implements the systematic, language-level checkpointing
discipline of the paper: every checkpointable class carries a
:class:`~repro.core.info.CheckpointInfo` (a unique identifier plus a
modification flag), per-class ``record``/``fold``/``restore_local`` methods
generated from declared fields, and a generic
:class:`~repro.core.checkpoint.Checkpoint` driver that traverses compound
objects, records the local state of modified ones, and recursively visits
children.
"""

from repro.core.checkpoint import Checkpoint, FullCheckpoint, ReflectiveCheckpoint
from repro.core.checkpointable import Checkpointable
from repro.core.fields import child, child_list, scalar, scalar_list
from repro.core.info import CheckpointInfo

__all__ = [
    "Checkpoint",
    "FullCheckpoint",
    "ReflectiveCheckpoint",
    "Checkpointable",
    "CheckpointInfo",
    "scalar",
    "scalar_list",
    "child",
    "child_list",
]
