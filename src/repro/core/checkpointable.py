"""The :class:`Checkpointable` base class and per-class method generation.

This is the Python analog of the paper's ``Checkpointable`` interface plus
the preprocessor that systematically fills it in (section 2.2). Subclassing
:class:`Checkpointable` and declaring fields with
:func:`~repro.core.fields.scalar` / :func:`~repro.core.fields.child` etc. is
all a user does; at class-definition time the framework

1. flattens the field schema (inherited fields first, mirroring the
   ``super().record()`` call order of the paper's generated Java methods),
2. registers the class with the :mod:`~repro.core.registry`, and
3. generates and compiles ``record``, ``fold``, ``restore_local`` and
   ``_init_defaults`` methods specialized to the class schema.

The generated methods are exactly what the paper's preprocessor would
produce: straight-line code over the declared fields, invoked virtually by
the generic :class:`~repro.core.checkpoint.Checkpoint` driver. They are
*per-class* generic code — the per-structure, per-phase *specialized*
checkpointers of the paper are produced separately by :mod:`repro.spec`.

Wire format of one object entry (written by the drivers)::

    int32 object_id | int32 class_serial | payload per schema

with the payload encoding each field in schema order:

- scalar int/float/bool/str: the value
- scalar_list: int32 count, then the values
- child: int32 child id (−1 for None)
- child_list: int32 count, then the child ids
"""

from __future__ import annotations

import struct
from typing import Any, ClassVar, Dict, List, Optional

from repro.core.errors import SchemaError
from repro.core.fields import FieldSpec, TrackedList, _FieldDescriptor
from repro.core.info import CheckpointInfo
from repro.core.registry import DEFAULT_REGISTRY, ClassRegistry
from repro.core.streams import DataOutputStream

_WRITERS = {
    "int": "out.write_int32",
    "float": "out.write_float64",
    "bool": "out.write_bool",
    "str": "out.write_str",
}
_READERS = {
    "int": "inp.read_int32",
    "float": "inp.read_float64",
    "bool": "inp.read_bool",
    "str": "inp.read_str",
}
_DEFAULT_LITERALS = {"int": "0", "float": "0.0", "bool": "False", "str": "''"}


def _generate_record(schema: List[FieldSpec]) -> str:
    lines = ["def record(self, out):"]
    if not schema:
        lines.append("    pass")
        return "\n".join(lines)
    for field in schema:
        slot = f"self.{field.slot}"
        if field.role == "scalar":
            lines.append(f"    {_WRITERS[field.kind]}({slot})")
        elif field.role == "scalar_list":
            writer = _WRITERS[field.kind]
            lines.append(f"    _v = {slot}._items")
            lines.append("    out.write_int32(len(_v))")
            lines.append("    for _e in _v:")
            lines.append(f"        {writer}(_e)")
        elif field.role == "child":
            lines.append(f"    _c = {slot}")
            lines.append(
                "    out.write_int32(_c._ckpt_info.object_id if _c is not None else -1)"
            )
        elif field.role == "child_list":
            lines.append(f"    _v = {slot}._items")
            lines.append("    out.write_int32(len(_v))")
            lines.append("    for _c in _v:")
            lines.append("        out.write_int32(_c._ckpt_info.object_id)")
        else:  # pragma: no cover - guarded by field constructors
            raise SchemaError(f"unknown field role {field.role!r}")
    return "\n".join(lines)


def _generate_fold(schema: List[FieldSpec]) -> str:
    lines = ["def fold(self, ckpt):"]
    body: List[str] = []
    for field in schema:
        slot = f"self.{field.slot}"
        if field.role == "child":
            body.append(f"    _c = {slot}")
            body.append("    if _c is not None:")
            body.append("        ckpt.checkpoint(_c)")
        elif field.role == "child_list":
            body.append(f"    for _c in {slot}._items:")
            body.append("        ckpt.checkpoint(_c)")
    if not body:
        body = ["    pass"]
    return "\n".join(lines + body)


#: fixed-size wire pieces the packed codec can coalesce into one
#: ``struct.pack_into`` call: format char + byte size per scalar kind
_PACK_FIXED = {"int": ("i", 4), "float": ("d", 8), "bool": ("?", 1)}


def _generate_record_packed(schema: List[FieldSpec]) -> str:
    """Generate ``record_packed``: the batched ``pack_into`` twin of ``record``.

    Runs of consecutive fixed-size fields (int/float/bool scalars and
    child ids) become a single ``struct.pack_into`` with a fused format
    string; strings and lists are emitted through the
    :class:`~repro.core.streams.PackedEncoder` helpers. The bytes
    produced are exactly those of the generated ``record`` — the
    equivalence suite pins this per class.
    """
    lines = ["def record_packed(self, enc):"]
    if not schema:
        lines.append("    pass")
        return "\n".join(lines)
    pending: List[tuple] = []  # (fmt char, size, setup lines, value expr)
    temp_count = 0

    def flush() -> None:
        if not pending:
            return
        fmt = "<" + "".join(entry[0] for entry in pending)
        size = sum(entry[1] for entry in pending)
        for entry in pending:
            lines.extend(entry[2])
        exprs = ", ".join(entry[3] for entry in pending)
        lines.append(f"    buf = enc.ensure({size})")
        lines.append("    _p = enc.pos")
        lines.append(f"    _pack_into({fmt!r}, buf, _p, {exprs})")
        lines.append(f"    enc.pos = _p + {size}")
        pending.clear()

    for field in schema:
        slot = f"self.{field.slot}"
        if field.role == "scalar":
            if field.kind == "str":
                flush()
                lines.append(f"    enc.put_str({slot})")
            else:
                char, size = _PACK_FIXED[field.kind]
                pending.append((char, size, [], slot))
        elif field.role == "child":
            temp = f"_c{temp_count}"
            temp_count += 1
            pending.append(
                (
                    "i",
                    4,
                    [f"    {temp} = {slot}"],
                    f"({temp}._ckpt_info.object_id if {temp} is not None else -1)",
                )
            )
        elif field.role == "scalar_list":
            flush()
            lines.append(f"    _v = {slot}._items")
            lines.append("    _n = len(_v)")
            if field.kind == "str":
                lines.append("    enc.put_int32(_n)")
                lines.append("    for _e in _v:")
                lines.append("        enc.put_str(_e)")
            else:
                char, size = _PACK_FIXED[field.kind]
                lines.append(f"    buf = enc.ensure(4 + {size} * _n)")
                lines.append("    _p = enc.pos")
                lines.append("    _INT32.pack_into(buf, _p, _n)")
                lines.append("    if _n:")
                lines.append(f"        _pack_into('<%d{char}' % _n, buf, _p + 4, *_v)")
                lines.append(f"    enc.pos = _p + 4 + {size} * _n")
        elif field.role == "child_list":
            flush()
            lines.append(f"    _v = {slot}._items")
            lines.append("    _n = len(_v)")
            lines.append("    buf = enc.ensure(4 + 4 * _n)")
            lines.append("    _p = enc.pos")
            lines.append("    _INT32.pack_into(buf, _p, _n)")
            lines.append("    if _n:")
            lines.append(
                "        _pack_into('<%di' % _n, buf, _p + 4, "
                "*[_c._ckpt_info.object_id for _c in _v])"
            )
            lines.append("    enc.pos = _p + 4 + 4 * _n")
        else:  # pragma: no cover - guarded by field constructors
            raise SchemaError(f"unknown field role {field.role!r}")
    flush()
    return "\n".join(lines)


# When the class body supplies a hand-written ``record``, its bytes are
# authoritative: the packed path must reproduce them, so it routes through
# that method instead of the schema.
_RECORD_PACKED_FALLBACK = (
    "def record_packed(self, enc):\n"
    "    _tmp = _DataOutputStream()\n"
    "    self.record(_tmp)\n"
    "    enc.put_bytes(_tmp.getvalue())"
)


def _generate_restore_local(schema: List[FieldSpec]) -> str:
    lines = ["def restore_local(self, inp, table):"]
    if not schema:
        lines.append("    pass")
        return "\n".join(lines)
    for field in schema:
        slot = f"self.{field.slot}"
        if field.role == "scalar":
            lines.append(f"    {slot} = {_READERS[field.kind]}()")
        elif field.role == "scalar_list":
            reader = _READERS[field.kind]
            lines.append("    _n = inp.read_int32()")
            lines.append(
                f"    {slot} = TrackedList(self, [{reader}() for _ in range(_n)])"
            )
        elif field.role == "child":
            lines.append("    _cid = inp.read_int32()")
            lines.append(f"    {slot} = table[_cid] if _cid != -1 else None")
        elif field.role == "child_list":
            lines.append("    _n = inp.read_int32()")
            lines.append(
                f"    {slot} = TrackedList(self, "
                "[table[inp.read_int32()] for _ in range(_n)], topo=True)"
            )
    return "\n".join(lines)


def _generate_init_defaults(schema: List[FieldSpec]) -> str:
    lines = ["def _init_defaults(self):"]
    if not schema:
        lines.append("    pass")
        return "\n".join(lines)
    for field in schema:
        slot = f"self.{field.slot}"
        if field.role == "scalar":
            lines.append(f"    {slot} = {_DEFAULT_LITERALS[field.kind]}")
        elif field.role == "scalar_list":
            lines.append(f"    {slot} = TrackedList(self)")
        elif field.role == "child_list":
            lines.append(f"    {slot} = TrackedList(self, topo=True)")
        else:  # child
            lines.append(f"    {slot} = None")
    return "\n".join(lines)


_GENERATORS = {
    "record": _generate_record,
    "fold": _generate_fold,
    "restore_local": _generate_restore_local,
    "_init_defaults": _generate_init_defaults,
}


def _compile_method(cls_name: str, name: str, source: str):
    namespace: Dict[str, Any] = {
        "TrackedList": TrackedList,
        "_pack_into": struct.pack_into,
        "_INT32": struct.Struct("<i"),
        "_DataOutputStream": DataOutputStream,
    }
    code = compile(source, f"<ckpt-gen:{cls_name}.{name}>", "exec")
    exec(code, namespace)
    function = namespace[name]
    function.__ckpt_generated__ = True
    function.__ckpt_source__ = source
    return function


class Checkpointable:
    """Base class for every object that participates in checkpointing.

    Subclasses declare their state with the descriptors from
    :mod:`repro.core.fields`; everything else is generated. A freshly
    constructed object is marked modified, so the next incremental
    checkpoint records it in full (paper Figure 1).

    Construction accepts keyword arguments naming declared fields::

        e = SEEntry(reads=[1, 2], writes=[3])
    """

    _ckpt_schema: ClassVar[List[FieldSpec]] = []
    _ckpt_serial: ClassVar[int] = -1
    _ckpt_registry: ClassVar[ClassRegistry]

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)

        inherited = list(cls.__mro__[1]._ckpt_schema)
        taken = {spec.name for spec in inherited}
        own: List[FieldSpec] = []
        for name, value in list(vars(cls).items()):
            if isinstance(value, _FieldDescriptor):
                if name in taken:
                    raise SchemaError(
                        f"{cls.__name__}.{name} shadows an inherited "
                        "checkpointable field"
                    )
                if name.startswith("_"):
                    raise SchemaError(
                        f"checkpointable field {cls.__name__}.{name} must not "
                        "start with an underscore"
                    )
                own.append(value.spec())
                taken.add(name)
        cls._ckpt_schema = inherited + own

        registry = getattr(cls, "_ckpt_registry", None) or DEFAULT_REGISTRY
        cls._ckpt_registry = registry
        cls._ckpt_serial = registry.register(cls, cls._ckpt_schema)

        for method_name, generator in _GENERATORS.items():
            if method_name in vars(cls):
                continue  # the class body supplies its own implementation
            source = generator(cls._ckpt_schema)
            setattr(cls, method_name, _compile_method(cls.__name__, method_name, source))

        if "record_packed" not in vars(cls):
            # Schema-driven packed codegen is only valid when `record`
            # itself is the schema-generated method; a hand-written
            # `record` is authoritative, so the packed path replays it.
            record_fn = vars(cls).get("record")
            if record_fn is not None and not getattr(
                record_fn, "__ckpt_generated__", False
            ):
                source = _RECORD_PACKED_FALLBACK
            else:
                source = _generate_record_packed(cls._ckpt_schema)
            setattr(
                cls,
                "record_packed",
                _compile_method(cls.__name__, "record_packed", source),
            )

    def __init__(self, **field_values: Any) -> None:
        self._ckpt_info = CheckpointInfo()
        self._init_defaults()
        schema_names = {spec.name for spec in self._ckpt_schema}
        for name, value in field_values.items():
            if name not in schema_names:
                raise SchemaError(
                    f"{type(self).__name__} has no checkpointable field {name!r}"
                )
            setattr(self, name, value)

    # -- the paper's Checkpointable interface ------------------------------

    def get_checkpoint_info(self) -> CheckpointInfo:
        """The object's identifier + modification flag (paper Figure 1)."""
        return self._ckpt_info

    def record(self, out) -> None:  # pragma: no cover - replaced per class
        """Record the complete local state into ``out`` (generated)."""
        raise NotImplementedError

    def record_packed(self, enc) -> None:  # pragma: no cover - replaced
        """Record the local state into a :class:`PackedEncoder` (generated).

        Byte-identical to :meth:`record`, but written with batched
        ``struct.pack_into`` calls against the encoder's preallocated
        buffer instead of per-field stream method calls.
        """
        raise NotImplementedError

    def fold(self, ckpt) -> None:  # pragma: no cover - replaced per class
        """Recursively apply ``ckpt.checkpoint`` to each child (generated)."""
        raise NotImplementedError

    def restore_local(self, inp, table) -> None:  # pragma: no cover
        """Read the local state back from ``inp`` (generated)."""
        raise NotImplementedError

    def _init_defaults(self) -> None:  # pragma: no cover - replaced per class
        pass

    # -- framework helpers --------------------------------------------------

    @classmethod
    def _blank(cls, object_id: int) -> "Checkpointable":
        """An uninitialized instance used by restore (bypasses ``__init__``)."""
        obj = cls.__new__(cls)
        obj._ckpt_info = CheckpointInfo(object_id=object_id, modified=False)
        obj._init_defaults()
        return obj

    def children(self) -> List["Checkpointable"]:
        """All non-None child objects, in schema order (reflective)."""
        found: List[Checkpointable] = []
        for spec in self._ckpt_schema:
            if spec.role == "child":
                value = getattr(self, spec.slot)
                if value is not None:
                    found.append(value)
            elif spec.role == "child_list":
                found.extend(getattr(self, spec.slot)._items)
        return found

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} id={self._ckpt_info.object_id}>"


def reflective_record(obj: Checkpointable, out) -> None:
    """Schema-walking implementation of ``record`` (the reflection tier).

    Functionally identical to the generated per-class method, but driven by
    run-time schema interpretation — the analog of Java serialization's
    run-time reflection, kept as the slowest baseline (paper section 6).
    """
    for spec in obj._ckpt_schema:
        value = getattr(obj, spec.slot)
        if spec.role == "scalar":
            _write_scalar(out, spec.kind, value)
        elif spec.role == "scalar_list":
            out.write_int32(len(value._items))
            for element in value._items:
                _write_scalar(out, spec.kind, element)
        elif spec.role == "child":
            out.write_int32(value._ckpt_info.object_id if value is not None else -1)
        else:  # child_list
            out.write_int32(len(value._items))
            for element in value._items:
                out.write_int32(element._ckpt_info.object_id)


def reflective_fold(obj: Checkpointable, ckpt) -> None:
    """Schema-walking implementation of ``fold`` (the reflection tier)."""
    for spec in obj._ckpt_schema:
        if spec.role == "child":
            value = getattr(obj, spec.slot)
            if value is not None:
                ckpt.checkpoint(value)
        elif spec.role == "child_list":
            for element in getattr(obj, spec.slot)._items:
                ckpt.checkpoint(element)


def _write_scalar(out, kind: Optional[str], value: Any) -> None:
    if kind == "int":
        out.write_int32(value)
    elif kind == "float":
        out.write_float64(value)
    elif kind == "bool":
        out.write_bool(value)
    else:
        out.write_str(value)
