"""Typed binary streams — the ``java.io`` DataOutputStream/DataInputStream analog.

The paper records checkpoints through a ``DataOutputStream`` composed with a
``ByteArrayOutputStream``; these classes provide the same typed, compact,
little-endian wire encoding over a growable in-memory buffer.

Wire encodings:

====================  =======================================
value                 encoding
====================  =======================================
int32                 4 bytes, little-endian, signed
int64                 8 bytes, little-endian, signed
float64               8 bytes, IEEE-754 little-endian
bool                  1 byte (0 or 1)
str                   int32 byte length + UTF-8 bytes
====================  =======================================
"""

from __future__ import annotations

import struct

from repro.core.errors import RestoreError, SerializationError

_INT32 = struct.Struct("<i")
_INT64 = struct.Struct("<q")
_FLOAT64 = struct.Struct("<d")
_HEADER = struct.Struct("<ii")
_pack_into = struct.pack_into

INT32_MIN = -(2**31)
INT32_MAX = 2**31 - 1


def utf8_length(value: str) -> int:
    """Byte length of ``value``'s UTF-8 encoding, without encoding it.

    ASCII strings (the overwhelmingly common case on the measure path)
    are answered from ``len`` alone; otherwise the length is summed
    arithmetically per code point, still without materializing a
    throwaway ``bytes`` copy.
    """
    if value.isascii():
        return len(value)
    total = 0
    for ch in map(ord, value):
        if ch <= 0x7F:
            total += 1
        elif ch <= 0x7FF:
            total += 2
        elif ch <= 0xFFFF:
            total += 3
        else:
            total += 4
    return total


def _check_str_length(byte_length: int) -> None:
    if byte_length > INT32_MAX:
        raise SerializationError(
            f"string of {byte_length} UTF-8 bytes exceeds the int32 length "
            f"prefix (max {INT32_MAX})"
        )


class DataOutputStream:
    """Growable binary output buffer with typed ``write_*`` methods."""

    __slots__ = ("_buffer",)

    def __init__(self) -> None:
        self._buffer = bytearray()

    # -- writers ---------------------------------------------------------

    def write_int32(self, value: int) -> None:
        """Append a signed 32-bit integer (raises on overflow)."""
        self._buffer += _INT32.pack(value)

    def write_int64(self, value: int) -> None:
        """Append a signed 64-bit integer."""
        self._buffer += _INT64.pack(value)

    def write_float64(self, value: float) -> None:
        """Append an IEEE-754 double."""
        self._buffer += _FLOAT64.pack(value)

    def write_bool(self, value: bool) -> None:
        """Append a boolean as one byte."""
        self._buffer.append(1 if value else 0)

    def write_str(self, value: str) -> None:
        """Append a length-prefixed UTF-8 string.

        Raises :class:`~repro.core.errors.SerializationError` when the
        encoding exceeds the int32 length prefix, rather than leaking a
        bare ``struct.error`` from the prefix pack.
        """
        encoded = value.encode("utf-8")
        _check_str_length(len(encoded))
        self._buffer += _INT32.pack(len(encoded))
        self._buffer += encoded

    def write_bytes(self, value: bytes) -> None:
        """Append raw bytes without a length prefix."""
        self._buffer += value

    # -- accessors -------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of bytes written so far."""
        return len(self._buffer)

    def getvalue(self) -> bytes:
        """An immutable snapshot of the buffer contents."""
        return bytes(self._buffer)

    def clear(self) -> None:
        """Discard all buffered bytes (reuse the stream for a new epoch)."""
        self._buffer.clear()

    def __len__(self) -> int:
        return len(self._buffer)


class NullOutputStream(DataOutputStream):
    """An output stream that measures but does not retain bytes.

    Used by the benchmark harness to isolate traversal cost from buffer
    growth: every ``write_*`` only advances a byte counter. (Table 1 of
    the paper reports "traversal time" separately for the same reason.)
    """

    __slots__ = ("_size",)

    def __init__(self) -> None:
        super().__init__()
        self._size = 0

    def write_int32(self, value: int) -> None:
        self._size += 4

    def write_int64(self, value: int) -> None:
        self._size += 8

    def write_float64(self, value: float) -> None:
        self._size += 8

    def write_bool(self, value: bool) -> None:
        self._size += 1

    def write_str(self, value: str) -> None:
        length = utf8_length(value)
        _check_str_length(length)
        self._size += 4 + length

    def write_bytes(self, value: bytes) -> None:
        self._size += len(value)

    @property
    def size(self) -> int:
        return self._size

    def getvalue(self) -> bytes:
        # Write-side misuse, not a decode failure: deliberately NOT a
        # RestoreError.
        raise SerializationError("NullOutputStream retains no bytes")

    def clear(self) -> None:
        self._size = 0

    def __len__(self) -> int:
        return self._size


class DataInputStream:
    """Sequential typed reader over a bytes object.

    ``base_offset`` positions this stream inside a larger byte sequence
    (e.g. one delta of a multi-epoch recovery line): error messages
    report ``base_offset + local offset`` so that fsck quarantine lines
    point at the right record instead of an ambiguous intra-record
    offset.
    """

    __slots__ = ("_data", "_pos", "_base")

    def __init__(self, data: bytes, base_offset: int = 0) -> None:
        self._data = data
        self._pos = 0
        self._base = base_offset

    # -- readers ---------------------------------------------------------

    def _take(self, count: int) -> int:
        start = self._pos
        end = start + count
        if end > len(self._data):
            raise RestoreError(
                f"truncated stream: wanted {count} bytes at offset "
                f"{self._base + start}, have {len(self._data) - start}"
            )
        self._pos = end
        return start

    def read_int32(self) -> int:
        """Read a signed 32-bit integer."""
        return _INT32.unpack_from(self._data, self._take(4))[0]

    def read_int64(self) -> int:
        """Read a signed 64-bit integer."""
        return _INT64.unpack_from(self._data, self._take(8))[0]

    def read_float64(self) -> float:
        """Read an IEEE-754 double."""
        return _FLOAT64.unpack_from(self._data, self._take(8))[0]

    def read_bool(self) -> bool:
        """Read a one-byte boolean."""
        start = self._take(1)
        byte = self._data[start]
        if byte not in (0, 1):
            raise RestoreError(
                f"invalid boolean byte {byte!r} at offset {self._base + start}"
            )
        return byte == 1

    def read_str(self) -> str:
        """Read a length-prefixed UTF-8 string."""
        length = self.read_int32()
        if length < 0:
            raise RestoreError(
                f"negative string length {length} at offset "
                f"{self._base + self._pos - 4}"
            )
        start = self._take(length)
        return self._data[start : start + length].decode("utf-8")

    def read_bytes(self, count: int) -> bytes:
        """Read ``count`` raw bytes."""
        start = self._take(count)
        return self._data[start : start + count]

    # -- accessors -------------------------------------------------------

    @property
    def position(self) -> int:
        """Current read offset, local to this stream's own data."""
        return self._pos

    @property
    def base_offset(self) -> int:
        """Offset of this stream's first byte within its container."""
        return self._base

    @property
    def absolute_position(self) -> int:
        """Current read offset within the containing byte sequence."""
        return self._base + self._pos

    @property
    def remaining(self) -> int:
        """Bytes left to read."""
        return len(self._data) - self._pos

    @property
    def at_eof(self) -> bool:
        """True when every byte has been consumed."""
        return self._pos >= len(self._data)


class PackedEncoder:
    """Preallocated binary buffer written with batched ``struct.pack_into``.

    The packed codec's output target: generated ``record_packed`` methods
    coalesce runs of fixed-size fields into single ``pack_into`` calls
    against :attr:`buf` at :attr:`pos`, instead of one
    :class:`DataOutputStream` method call per field. Producing the exact
    bytes of the ``write_*`` path is a hard invariant (the runtime
    byte-equivalence suite pins it).

    The growth discipline: a ``record_packed`` routine calls
    :meth:`ensure` with the byte count of the next fixed-size run, packs
    directly into the returned buffer, then advances :attr:`pos` itself.
    Variable-size pieces go through :meth:`put_str` / :meth:`put_int32`.
    """

    __slots__ = ("buf", "pos")

    def __init__(self, capacity: int = 1 << 16) -> None:
        self.buf = bytearray(max(capacity, 64))
        self.pos = 0

    def ensure(self, extra: int) -> bytearray:
        """Grow the buffer so ``extra`` bytes fit at :attr:`pos`."""
        buf = self.buf
        need = self.pos + extra
        if need > len(buf):
            buf.extend(b"\x00" * max(need - len(buf), len(buf)))
        return buf

    def put_int32(self, value: int) -> None:
        buf = self.ensure(4)
        _INT32.pack_into(buf, self.pos, value)
        self.pos += 4

    def put_header(self, object_id: int, serial: int) -> None:
        """The ``int32 id | int32 serial`` prefix of one object entry."""
        buf = self.ensure(8)
        _HEADER.pack_into(buf, self.pos, object_id, serial)
        self.pos += 8

    def put_str(self, value: str) -> None:
        encoded = value.encode("utf-8")
        length = len(encoded)
        _check_str_length(length)
        buf = self.ensure(4 + length)
        pos = self.pos
        _INT32.pack_into(buf, pos, length)
        buf[pos + 4 : pos + 4 + length] = encoded
        self.pos = pos + 4 + length

    def put_bytes(self, data: bytes) -> None:
        length = len(data)
        buf = self.ensure(length)
        pos = self.pos
        buf[pos : pos + length] = data
        self.pos = pos + length

    @property
    def size(self) -> int:
        """Number of bytes written so far."""
        return self.pos

    def getvalue(self) -> bytes:
        """An immutable snapshot of the bytes written so far."""
        return bytes(memoryview(self.buf)[: self.pos])

    def clear(self) -> None:
        """Reset for reuse; the allocation is retained."""
        self.pos = 0

    def __len__(self) -> int:
        return self.pos
