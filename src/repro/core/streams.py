"""Typed binary streams — the ``java.io`` DataOutputStream/DataInputStream analog.

The paper records checkpoints through a ``DataOutputStream`` composed with a
``ByteArrayOutputStream``; these classes provide the same typed, compact,
little-endian wire encoding over a growable in-memory buffer.

Wire encodings:

====================  =======================================
value                 encoding
====================  =======================================
int32                 4 bytes, little-endian, signed
int64                 8 bytes, little-endian, signed
float64               8 bytes, IEEE-754 little-endian
bool                  1 byte (0 or 1)
str                   int32 byte length + UTF-8 bytes
====================  =======================================
"""

from __future__ import annotations

import struct

from repro.core.errors import RestoreError

_INT32 = struct.Struct("<i")
_INT64 = struct.Struct("<q")
_FLOAT64 = struct.Struct("<d")

INT32_MIN = -(2**31)
INT32_MAX = 2**31 - 1


class DataOutputStream:
    """Growable binary output buffer with typed ``write_*`` methods."""

    __slots__ = ("_buffer",)

    def __init__(self) -> None:
        self._buffer = bytearray()

    # -- writers ---------------------------------------------------------

    def write_int32(self, value: int) -> None:
        """Append a signed 32-bit integer (raises on overflow)."""
        self._buffer += _INT32.pack(value)

    def write_int64(self, value: int) -> None:
        """Append a signed 64-bit integer."""
        self._buffer += _INT64.pack(value)

    def write_float64(self, value: float) -> None:
        """Append an IEEE-754 double."""
        self._buffer += _FLOAT64.pack(value)

    def write_bool(self, value: bool) -> None:
        """Append a boolean as one byte."""
        self._buffer.append(1 if value else 0)

    def write_str(self, value: str) -> None:
        """Append a length-prefixed UTF-8 string."""
        encoded = value.encode("utf-8")
        self._buffer += _INT32.pack(len(encoded))
        self._buffer += encoded

    def write_bytes(self, value: bytes) -> None:
        """Append raw bytes without a length prefix."""
        self._buffer += value

    # -- accessors -------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of bytes written so far."""
        return len(self._buffer)

    def getvalue(self) -> bytes:
        """An immutable snapshot of the buffer contents."""
        return bytes(self._buffer)

    def clear(self) -> None:
        """Discard all buffered bytes (reuse the stream for a new epoch)."""
        self._buffer.clear()

    def __len__(self) -> int:
        return len(self._buffer)


class NullOutputStream(DataOutputStream):
    """An output stream that measures but does not retain bytes.

    Used by the benchmark harness to isolate traversal cost from buffer
    growth: every ``write_*`` only advances a byte counter. (Table 1 of
    the paper reports "traversal time" separately for the same reason.)
    """

    __slots__ = ("_size",)

    def __init__(self) -> None:
        super().__init__()
        self._size = 0

    def write_int32(self, value: int) -> None:
        self._size += 4

    def write_int64(self, value: int) -> None:
        self._size += 8

    def write_float64(self, value: float) -> None:
        self._size += 8

    def write_bool(self, value: bool) -> None:
        self._size += 1

    def write_str(self, value: str) -> None:
        self._size += 4 + len(value.encode("utf-8"))

    def write_bytes(self, value: bytes) -> None:
        self._size += len(value)

    @property
    def size(self) -> int:
        return self._size

    def getvalue(self) -> bytes:
        raise RestoreError("NullOutputStream retains no bytes")

    def clear(self) -> None:
        self._size = 0

    def __len__(self) -> int:
        return self._size


class DataInputStream:
    """Sequential typed reader over a bytes object."""

    __slots__ = ("_data", "_pos")

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    # -- readers ---------------------------------------------------------

    def _take(self, count: int) -> int:
        start = self._pos
        end = start + count
        if end > len(self._data):
            raise RestoreError(
                f"truncated stream: wanted {count} bytes at offset {start}, "
                f"have {len(self._data) - start}"
            )
        self._pos = end
        return start

    def read_int32(self) -> int:
        """Read a signed 32-bit integer."""
        return _INT32.unpack_from(self._data, self._take(4))[0]

    def read_int64(self) -> int:
        """Read a signed 64-bit integer."""
        return _INT64.unpack_from(self._data, self._take(8))[0]

    def read_float64(self) -> float:
        """Read an IEEE-754 double."""
        return _FLOAT64.unpack_from(self._data, self._take(8))[0]

    def read_bool(self) -> bool:
        """Read a one-byte boolean."""
        start = self._take(1)
        byte = self._data[start]
        if byte not in (0, 1):
            raise RestoreError(f"invalid boolean byte {byte!r} at offset {start}")
        return byte == 1

    def read_str(self) -> str:
        """Read a length-prefixed UTF-8 string."""
        length = self.read_int32()
        if length < 0:
            raise RestoreError(f"negative string length {length}")
        start = self._take(length)
        return self._data[start : start + length].decode("utf-8")

    def read_bytes(self, count: int) -> bytes:
        """Read ``count`` raw bytes."""
        start = self._take(count)
        return self._data[start : start + count]

    # -- accessors -------------------------------------------------------

    @property
    def position(self) -> int:
        """Current read offset."""
        return self._pos

    @property
    def remaining(self) -> int:
        """Bytes left to read."""
        return len(self._data) - self._pos

    @property
    def at_eof(self) -> bool:
        """True when every byte has been consumed."""
        return self._pos >= len(self._data)
