"""Human-readable inspection of checkpoint streams and stores.

Debugging aid: decodes the wire format of :mod:`repro.core.checkpointable`
into structured entry descriptions without materializing objects, and
renders them as text. Also usable as a command line::

    python -m repro.core.inspect <store-directory>
    python -m repro.core.inspect <epoch-file.ckpt>
"""

from __future__ import annotations

from typing import Any, Dict, List, NamedTuple, Optional

from repro.core.registry import DEFAULT_REGISTRY, ClassRegistry
from repro.core.streams import DataInputStream


class EntryView(NamedTuple):
    """One decoded checkpoint entry."""

    object_id: int
    class_name: str
    fields: Dict[str, Any]
    byte_size: int


def decode_stream(
    data: bytes, registry: Optional[ClassRegistry] = None
) -> List[EntryView]:
    """Decode every entry of a checkpoint stream.

    Child references are rendered as ``"@<id>"`` strings (or None);
    scalar lists as plain lists. Raises
    :class:`~repro.core.errors.RestoreError` on malformed input.
    """
    registry = registry or DEFAULT_REGISTRY
    inp = DataInputStream(data)
    entries: List[EntryView] = []
    while not inp.at_eof:
        start = inp.position
        object_id = inp.read_int32()
        serial = inp.read_int32()
        cls = registry.class_for(serial)
        fields: Dict[str, Any] = {}
        for spec in registry.schema_of(cls):
            if spec.role == "scalar":
                fields[spec.name] = _read_scalar(inp, spec.kind)
            elif spec.role == "scalar_list":
                count = inp.read_int32()
                fields[spec.name] = [
                    _read_scalar(inp, spec.kind) for _ in range(count)
                ]
            elif spec.role == "child":
                child_id = inp.read_int32()
                fields[spec.name] = None if child_id == -1 else f"@{child_id}"
            else:  # child_list
                count = inp.read_int32()
                fields[spec.name] = [f"@{inp.read_int32()}" for _ in range(count)]
        entries.append(
            EntryView(object_id, cls.__name__, fields, inp.position - start)
        )
    return entries


def _read_scalar(inp: DataInputStream, kind: str) -> Any:
    if kind == "int":
        return inp.read_int32()
    if kind == "float":
        return inp.read_float64()
    if kind == "bool":
        return inp.read_bool()
    return inp.read_str()


def render_stream(
    data: bytes, registry: Optional[ClassRegistry] = None, limit: int = 0
) -> str:
    """A text report of a checkpoint stream (``limit`` caps the entries)."""
    entries = decode_stream(data, registry)
    shown = entries if limit <= 0 else entries[:limit]
    lines = [f"{len(entries)} entries, {len(data)} bytes"]
    for entry in shown:
        rendered = ", ".join(f"{k}={v!r}" for k, v in entry.fields.items())
        lines.append(
            f"  #{entry.object_id} {entry.class_name} ({entry.byte_size}B): "
            f"{rendered}"
        )
    if len(shown) < len(entries):
        lines.append(f"  ... {len(entries) - len(shown)} more")
    return "\n".join(lines)


def render_store(directory: str, limit: int = 5) -> str:
    """A text report of a file-backed store: epochs, kinds, sizes, heads."""
    from repro.core.storage import FileStore

    store = FileStore(directory)
    epochs = store.epochs()
    lines = [f"store {directory}: {len(epochs)} intact epochs"]
    for epoch in epochs:
        entries = decode_stream(epoch.data)
        lines.append(
            f"epoch {epoch.index} [{epoch.kind}] {len(epoch.data)}B, "
            f"{len(entries)} entries"
        )
        for entry in entries[:limit]:
            lines.append(f"    #{entry.object_id} {entry.class_name}")
        if len(entries) > limit:
            lines.append(f"    ... {len(entries) - limit} more")
    return "\n".join(lines)


def main(argv=None) -> int:  # pragma: no cover - thin CLI wrapper
    import argparse
    import os

    parser = argparse.ArgumentParser(description="Inspect checkpoint data.")
    parser.add_argument("target", help="a store directory or one epoch file")
    parser.add_argument("--limit", type=int, default=10)
    args = parser.parse_args(argv)
    if os.path.isdir(args.target):
        print(render_store(args.target, args.limit))
    else:
        from repro.core.storage import FileStore

        decoded = FileStore._read_epoch(args.target)
        if decoded is None:
            print("unreadable or torn epoch file")
            return 1
        print(f"[{decoded[0]}]")
        print(render_stream(decoded[1], limit=args.limit))
    return 0


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
