"""Class metadata registry.

Every checkpointable class registers itself here at definition time. The
registry maps classes to:

- a stable *class serial* written into checkpoint entries so that restore
  can re-instantiate objects of the right class, and
- the class *schema*: the ordered list of declared fields (inherited
  fields first, mirroring the paper's ``super().record()`` call order).

A :class:`ClassRegistry` also knows how to translate serials across runs:
a durable store records the ``{class qualname: serial}`` map in its
manifest, and :meth:`ClassRegistry.serial_translation` reconciles it with
the live registry when recovering in a fresh process.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.errors import RestoreError, SchemaError
from repro.core.fields import FieldSpec


class ClassRegistry:
    """Bidirectional class ↔ serial map plus per-class schemas."""

    def __init__(self) -> None:
        self._by_serial: Dict[int, type] = {}
        self._by_name: Dict[str, type] = {}
        self._serials: Dict[type, int] = {}
        self._schemas: Dict[type, List[FieldSpec]] = {}
        self._next_serial = 0

    # -- registration ------------------------------------------------------

    def register(self, cls: type, schema: List[FieldSpec]) -> int:
        """Register ``cls`` with its flattened schema; returns its serial."""
        name = self._qualname(cls)
        if name in self._by_name and self._by_name[name] is not cls:
            raise SchemaError(
                f"two distinct checkpointable classes share the name {name!r}; "
                "give them distinct module-level names"
            )
        if cls in self._serials:
            return self._serials[cls]
        serial = self._next_serial
        self._next_serial += 1
        self._by_serial[serial] = cls
        self._by_name[name] = cls
        self._serials[cls] = serial
        self._schemas[cls] = schema
        return serial

    @staticmethod
    def _qualname(cls: type) -> str:
        return f"{cls.__module__}.{cls.__qualname__}"

    # -- lookups -----------------------------------------------------------

    def serial_of(self, cls: type) -> int:
        """The serial assigned to ``cls`` (raises if unregistered)."""
        try:
            return self._serials[cls]
        except KeyError:
            raise SchemaError(f"{cls!r} is not a registered checkpointable class")

    def class_for(self, serial: int) -> type:
        """The class registered under ``serial``."""
        try:
            return self._by_serial[serial]
        except KeyError:
            raise RestoreError(f"unknown class serial {serial} in checkpoint")

    def class_by_name(self, name: str) -> Optional[type]:
        """Look a class up by its registered qualified name."""
        return self._by_name.get(name)

    def schema_of(self, cls: type) -> List[FieldSpec]:
        """The flattened field schema of ``cls``."""
        try:
            return self._schemas[cls]
        except KeyError:
            raise SchemaError(f"{cls!r} is not a registered checkpointable class")

    def name_to_serial(self) -> Dict[str, int]:
        """Snapshot ``{qualified name: serial}``, suitable for a manifest."""
        return {self._qualname(cls): s for s, cls in self._by_serial.items()}

    def serial_translation(self, manifest: Dict[str, int]) -> Dict[int, int]:
        """Map serials recorded in ``manifest`` to serials in this registry.

        Raises :class:`RestoreError` when the manifest names a class that no
        longer exists in the running program.
        """
        translation: Dict[int, int] = {}
        for name, old_serial in manifest.items():
            cls = self._by_name.get(name)
            if cls is None:
                raise RestoreError(
                    f"checkpoint references class {name!r}, which is not "
                    "defined in this process"
                )
            translation[old_serial] = self._serials[cls]
        return translation

    def __contains__(self, cls: type) -> bool:
        return cls in self._serials

    def __len__(self) -> int:
        return len(self._serials)


#: Process-wide default registry; checkpointable classes register here
#: automatically unless they set ``_ckpt_registry`` in the class body.
DEFAULT_REGISTRY = ClassRegistry()
