"""Bounded, deterministic retry for durable-storage operations.

Checkpoint writes are exactly the place transient I/O failures matter:
an epoch that is silently dropped tears the delta chain, while an epoch
retried forever stalls the application the checkpointer is supposed to
protect. :class:`RetryPolicy` bounds both failure modes — a maximum
attempt count, exponential backoff with *deterministic* jitter (seeded,
so fault-injection runs replay byte-identically), and an optional
wall-clock deadline.

Classification is explicit: only errors the policy's ``classify``
predicate calls transient are retried. The default treats ``OSError``
(and everything raised with an ``OSError`` cause) as transient and every
other exception — corrupt frames, schema errors, programming bugs — as
permanent, because retrying those can only mask them.
"""

from __future__ import annotations

import errno
import random
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.core.errors import CheckpointError

#: ``OSError`` errnos that describe a *state* of the volume, not a blip:
#: a full disk (ENOSPC, EDQUOT) or a read-only remount (EROFS) will not
#: clear in a backoff window, and retrying only delays the real handling
#: (degrade the replica, fence the volume, surface the error).
_PERMANENT_ERRNOS = frozenset(
    code
    for code in (
        getattr(errno, "ENOSPC", None),
        getattr(errno, "EROFS", None),
        getattr(errno, "EDQUOT", None),
    )
    if code is not None
)


def transient_oserror(exc: BaseException) -> bool:
    """The default transient classifier: ``OSError`` or an ``OSError`` cause.

    A wrapped error (e.g. a :class:`~repro.core.errors.StorageError`
    raised ``from`` an ``OSError``) counts, so stores that translate
    exceptions keep their retry behaviour. Errnos naming a persistent
    volume state — ``ENOSPC``, ``EROFS``, ``EDQUOT`` — are **not**
    transient: a full or read-only disk does not heal inside a backoff
    window, while ``EAGAIN``/``EINTR``-style blips do.
    """
    cause = exc if isinstance(exc, OSError) else exc.__cause__
    if not isinstance(cause, OSError):
        return False
    return cause.errno not in _PERMANENT_ERRNOS


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded attempts, exponential backoff, deterministic jitter, deadline.

    Parameters
    ----------
    max_attempts:
        Total tries including the first (``1`` disables retrying).
    base_delay:
        Sleep before the first retry, in seconds.
    multiplier:
        Backoff factor applied per retry (``base * multiplier**(n-1)``).
    max_delay:
        Per-sleep cap, in seconds.
    deadline:
        Optional total wall-clock budget across all attempts; once the
        next sleep would exceed it, the last error is re-raised instead.
    jitter:
        Fraction of each delay replaced by seeded pseudo-randomness
        (``0.0`` disables jitter entirely).
    seed:
        Seed of the jitter stream — two policies with equal parameters
        produce identical delay sequences, which fault-injection tests
        rely on.
    classify:
        Predicate deciding whether an exception is transient (retryable).
    """

    max_attempts: int = 3
    base_delay: float = 0.005
    multiplier: float = 2.0
    max_delay: float = 0.25
    deadline: Optional[float] = None
    jitter: float = 0.1
    seed: int = 0
    classify: Callable[[BaseException], bool] = transient_oserror

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise CheckpointError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise CheckpointError(f"jitter must be in [0, 1], got {self.jitter}")

    def delays(self) -> List[float]:
        """The full (deterministic) sleep schedule this policy would use."""
        rng = random.Random(self.seed)
        schedule = []
        for attempt in range(self.max_attempts - 1):
            raw = min(self.base_delay * self.multiplier**attempt, self.max_delay)
            if self.jitter:
                raw = raw * (1.0 - self.jitter) + raw * self.jitter * rng.random()
            schedule.append(raw)
        return schedule

    def run(
        self,
        fn: Callable[[], object],
        on_retry: Optional[Callable[[int, BaseException, float], None]] = None,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
    ):
        """Call ``fn`` under this policy; returns its value.

        ``on_retry(attempt, exc, delay)`` is invoked before each sleep —
        the accounting hook receipts and writers use to count retries.
        Permanent errors, exhausted attempts, and a blown deadline all
        re-raise the last exception unchanged.
        """
        start = clock()
        schedule = self.delays()
        for attempt in range(self.max_attempts):
            try:
                return fn()
            except BaseException as exc:
                last_try = attempt == self.max_attempts - 1
                if last_try or not self.classify(exc):
                    raise
                delay = schedule[attempt]
                if (
                    self.deadline is not None
                    and clock() - start + delay > self.deadline
                ):
                    raise
                if on_retry is not None:
                    on_retry(attempt + 1, exc, delay)
                sleep(delay)
        raise AssertionError("unreachable")  # pragma: no cover

    # -- presets -------------------------------------------------------------

    @classmethod
    def none(cls) -> "RetryPolicy":
        """A single attempt: fail-stop, no retrying."""
        return cls(max_attempts=1)

    @classmethod
    def default_commit(cls) -> "RetryPolicy":
        """The commit-path default: 3 attempts, ~5ms/10ms backoff."""
        return cls()

    @classmethod
    def aggressive(cls, deadline: float = 2.0) -> "RetryPolicy":
        """Many fast attempts under one wall-clock budget (tests, sims)."""
        return cls(
            max_attempts=8, base_delay=0.001, max_delay=0.02, deadline=deadline
        )


@dataclass
class RetryStats:
    """Mutable retry accounting shared by a store/sink and its receipts."""

    retries: int = 0
    #: human-readable notes of what was retried ("append retry 1: ...")
    events: List[str] = field(default_factory=list)

    def note(self, operation: str, attempt: int, exc: BaseException) -> None:
        self.retries += 1
        self.events.append(f"{operation} retry {attempt}: {exc}")
