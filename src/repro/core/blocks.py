"""The block dirtiness tier: differential change detection over object blocks.

The paper's modification flags make checkpoint *content* incremental, but
the flag scan itself still traverses every reachable object. Following the
application-level differential checkpointing of Keller & Bautista-Gomez,
this module adds a second, coarser dirtiness tier above the flags:

- the recorded object graph is *partitioned* into blocks — contiguous runs
  of session roots plus everything first reachable from them in the
  drivers' preorder traversal order;
- every ``modified = True`` flag store bumps the owning block's
  *generation counter* and *dirty bit* (see
  :class:`~repro.core.info.CheckpointInfo` — the existing flag-write hooks
  are reused wholesale, no new instrumentation sites);
- at commit, a block whose generation still equals its committed
  generation (and whose dirty bit is clear) provably contains no flagged
  object, so the whole run is skipped without traversal; the flag walk
  runs only inside dirty blocks.

Because a block is a contiguous run of the baseline traversal, skipping a
clean block elides exactly a stretch of traversal that would have written
zero bytes: the differential commit is *byte-identical* to the flag-walk
commit (pinned by the runtime byte-equivalence suite).

Soundness depends on block membership matching the baseline traversal's
first-reach order. Structural edge writes can move objects between
blocks, so every parent/child edge mutation ticks the process-wide
:data:`~repro.core.info.TOPOLOGY_CLOCK`; a tier whose partition predates
the latest tick re-partitions before trusting any generation counter.
Scalar writes never tick the clock, keeping the mutation-heavy hot path
fully skippable.

Generation counters wrap at 2**32 (:data:`~repro.core.info.GENERATION_MASK`)
to stay metadata-representable; the dirty *bit*, which cannot wrap, makes
the clean test immune to a counter that wraps exactly back to its
committed value.

Content hashes
--------------

Each block can additionally carry a ``(length, digest)`` fingerprint of
its members' full wire content:

- ``hash_mode="verify"``: generation-clean blocks are re-fingerprinted at
  commit; a mismatch means some mutation bypassed the flag protocol, and
  the tier *heals* by re-flagging the whole block (over-approximation,
  never silent loss).
- ``hash_mode="skip"``: flag-dirty blocks whose fingerprint is unchanged
  (e.g. a value written back to its previous state) are skipped and their
  flags cleared — a *restore-equivalent* but not byte-identical mode that
  trades hashing CPU for epoch bytes, exactly Keller's trade.

The fingerprint comparison always includes the content *length*, so even
a colliding digest cannot mask a size-changing mutation (the
hash-collision-fallback regression test pins this).
"""

from __future__ import annotations

import hashlib
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.core.errors import CheckpointError
from repro.core.info import TOPOLOGY_CLOCK
from repro.core.streams import DataOutputStream

HASH_OFF = "off"
HASH_VERIFY = "verify"
HASH_SKIP = "skip"
HASH_MODES = (HASH_OFF, HASH_VERIFY, HASH_SKIP)

DEFAULT_BLOCK_SIZE = 64


def content_fingerprint(data: bytes) -> str:
    """Digest half of a block fingerprint (monkeypatched by collision tests)."""
    return hashlib.sha256(data).hexdigest()


class Block:
    """One contiguous run of roots plus its dirtiness metadata."""

    __slots__ = (
        "index",
        "roots",
        "generation",
        "committed_generation",
        "dirty",
        "content_length",
        "content_digest",
    )

    def __init__(self, index: int, roots: Sequence) -> None:
        self.index = index
        self.roots = list(roots)
        #: bumped (mod 2**32) by every member's ``modified = True`` store
        self.generation = 0
        #: :attr:`generation` as of the last commit that covered the block
        self.committed_generation = 0
        #: wrap-proof companion of the generation comparison
        self.dirty = True
        #: fingerprint of the members' full wire content (hash modes only)
        self.content_length = -1
        self.content_digest: Optional[str] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "dirty" if self.dirty else "clean"
        return (
            f"Block({self.index}, roots={len(self.roots)}, "
            f"gen={self.generation}/{self.committed_generation}, {state})"
        )


class BlockTier:
    """Partition of a root population into generation-counted blocks."""

    def __init__(
        self,
        block_size: int = DEFAULT_BLOCK_SIZE,
        hash_mode: str = HASH_OFF,
    ) -> None:
        if block_size < 1:
            raise CheckpointError(f"block_size must be >= 1, got {block_size}")
        if hash_mode not in HASH_MODES:
            raise CheckpointError(
                f"hash_mode must be one of {HASH_MODES}, got {hash_mode!r}"
            )
        self.block_size = block_size
        self.hash_mode = hash_mode
        self.blocks: List[Block] = []
        self._roots: Optional[List] = None
        self._topology_mark: Optional[int] = None
        #: cumulative counters, exposed through strategy/bench reporting
        self.repartitions = 0
        self.hash_fallbacks = 0

    # -- partitioning ------------------------------------------------------

    @property
    def partitioned(self) -> bool:
        return self._roots is not None

    def in_sync(self, roots: Sequence) -> bool:
        """True when the current partition is still trustworthy.

        Requires the same root objects (by identity — a restored graph
        reuses identifiers but not objects) in the same order, and no
        structural edge mutation anywhere since the partition was taken.
        """
        mine = self._roots
        if mine is None or self._topology_mark != TOPOLOGY_CLOCK.value:
            return False
        if len(mine) != len(roots):
            return False
        return all(a is b for a, b in zip(mine, roots))

    def partition(self, roots: Sequence) -> None:
        """(Re)build blocks over ``roots`` and assign membership.

        Membership is the block of an object's *first* reach in the
        drivers' preorder traversal — the position where the baseline
        flag walk would record it — so a generation bump always lands on
        a block whose walk covers the object. All blocks start dirty:
        the commit that follows a partition walks everything once to
        establish the committed baseline.
        """
        roots = list(roots)
        self.blocks = []
        seen = set()
        for index in range(0, max(len(roots), 1), self.block_size):
            run = roots[index : index + self.block_size]
            if not run and index > 0:
                break
            block = Block(len(self.blocks), run)
            self.blocks.append(block)
            for root in run:
                self._claim(root, block, seen)
        self._roots = roots
        self._topology_mark = TOPOLOGY_CLOCK.value
        self.repartitions += 1
        if self.hash_mode != HASH_OFF:
            for block in self.blocks:
                self.refresh_fingerprint(block)

    @staticmethod
    def _claim(root, block: Block, seen: set) -> None:
        stack = [root]
        while stack:
            obj = stack.pop()
            info = obj._ckpt_info
            if info.object_id in seen:
                continue
            seen.add(info.object_id)
            info.block = block
            stack.extend(reversed(obj.children()))

    # -- the skip decision -------------------------------------------------

    def is_clean(self, block: Block) -> bool:
        """True when no member's flag was raised since the last commit."""
        return (
            not block.dirty
            and block.generation == block.committed_generation
        )

    def mark_committed(self, block: Block) -> None:
        """Adopt the block's current generation as the committed baseline."""
        block.committed_generation = block.generation
        block.dirty = False

    # -- content fingerprints ----------------------------------------------

    def members(self, block: Block) -> Iterator:
        """The block's members in baseline traversal (preorder) order."""
        seen = set()
        for root in block.roots:
            stack = [root]
            while stack:
                obj = stack.pop()
                info = obj._ckpt_info
                if info.object_id in seen:
                    continue
                seen.add(info.object_id)
                if info.block is block:
                    yield obj
                stack.extend(reversed(obj.children()))

    def content_of(self, block: Block) -> bytes:
        """The members' full wire content (id | serial | record, preorder)."""
        out = DataOutputStream()
        for obj in self.members(block):
            out.write_int32(obj._ckpt_info.object_id)
            out.write_int32(obj._ckpt_serial)
            obj.record(out)
        return out.getvalue()

    def fingerprint_of(self, block: Block) -> Tuple[int, str]:
        data = self.content_of(block)
        return len(data), content_fingerprint(data)

    def refresh_fingerprint(self, block: Block) -> None:
        block.content_length, block.content_digest = self.fingerprint_of(block)

    def fingerprint_unchanged(self, block: Block) -> bool:
        """Compare content against the stored fingerprint (length first)."""
        if block.content_digest is None:
            return False
        length, digest = self.fingerprint_of(block)
        return length == block.content_length and digest == block.content_digest

    def heal(self, block: Block) -> int:
        """Re-flag every member (verify-mode response to a hash mismatch)."""
        count = 0
        for obj in self.members(block):
            obj._ckpt_info.modified = True
            count += 1
        self.hash_fallbacks += 1
        return count

    # -- lifecycle ---------------------------------------------------------

    def reset(self) -> None:
        """Forget the partition (e.g. after a session restore/fork)."""
        self.blocks = []
        self._roots = None
        self._topology_mark = None

    def snapshot_state(self):
        """Capture all tier state a trial commit could disturb.

        :meth:`~repro.runtime.session.CheckpointSession.measure` runs a
        live strategy and must leave no trace; pair with
        :meth:`restore_state`.
        """
        return [
            (
                block.generation,
                block.committed_generation,
                block.dirty,
                block.content_length,
                block.content_digest,
            )
            for block in self.blocks
        ]

    def restore_state(self, state) -> None:
        for block, saved in zip(self.blocks, state):
            (
                block.generation,
                block.committed_generation,
                block.dirty,
                block.content_length,
                block.content_digest,
            ) = saved
