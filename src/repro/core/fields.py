"""Field declarations for checkpointable classes.

The paper's preprocessor systematically adds checkpointing code to each
class (section 2.2). Here the same role is played by field descriptors:
a checkpointable class declares its state as

.. code-block:: python

    class BTEntry(Entry):
        bt = child(BT)

    class SEEntry(Entry):
        reads = scalar_list("int")
        writes = scalar_list("int")

and the framework derives, per class, the wire schema and the generated
``record``/``fold``/``restore_local`` methods. Every assignment through a
descriptor sets the owner's modification flag, which is what makes the
incremental checkpoints of the paper safe without any programmer effort.

Field kinds
-----------

``scalar(kind)``
    A value of base type; ``kind`` is one of ``"int"``, ``"float"``,
    ``"bool"``, ``"str"``. Recorded inline.
``scalar_list(kind)``
    A mutable sequence of base-type values, recorded wholesale
    (length-prefixed). Mutations through the returned
    :class:`TrackedList` set the owner's flag.
``child(cls=None)``
    A reference to another checkpointable object (or ``None``). Recorded
    as the child's unique identifier; traversed by ``fold``.
``child_list(cls=None)``
    A mutable sequence of checkpointable children. Recorded as a
    length-prefixed identifier list; each element is traversed by ``fold``.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Optional

from repro.core.errors import SchemaError
from repro.core.info import note_topology_change

SCALAR_KINDS = ("int", "float", "bool", "str")

_DEFAULTS = {"int": 0, "float": 0.0, "bool": False, "str": ""}


class TrackedList:
    """A list that marks its owning checkpointable object modified on mutation.

    Only the mutating subset of the ``list`` API is intercepted; reads are
    delegated to the underlying list.
    """

    __slots__ = ("_items", "_owner", "_topo")

    def __init__(
        self,
        owner: Any,
        items: Optional[Iterable[Any]] = None,
        topo: bool = False,
    ) -> None:
        self._owner = owner
        self._items = list(items) if items is not None else []
        #: True for child lists: their mutations change graph topology,
        #: which invalidates block-tier partitions (see repro.core.blocks)
        self._topo = topo

    # -- mutation (sets the owner's flag) ---------------------------------

    def _touch(self) -> None:
        owner = self._owner
        if owner is not None:
            owner._ckpt_info.modified = True
        if self._topo:
            note_topology_change()

    def append(self, item: Any) -> None:
        self._items.append(item)
        self._touch()

    def extend(self, items: Iterable[Any]) -> None:
        self._items.extend(items)
        self._touch()

    def insert(self, index: int, item: Any) -> None:
        self._items.insert(index, item)
        self._touch()

    def remove(self, item: Any) -> None:
        self._items.remove(item)
        self._touch()

    def pop(self, index: int = -1) -> Any:
        value = self._items.pop(index)
        self._touch()
        return value

    def clear(self) -> None:
        self._items.clear()
        self._touch()

    def sort(self, **kwargs: Any) -> None:
        self._items.sort(**kwargs)
        self._touch()

    def __setitem__(self, index: Any, value: Any) -> None:
        self._items[index] = value
        self._touch()

    def __delitem__(self, index: Any) -> None:
        del self._items[index]
        self._touch()

    def replace(self, items: Iterable[Any]) -> None:
        """Replace the whole contents in one mutation."""
        self._items[:] = items
        self._touch()

    # -- reads (no flag) ---------------------------------------------------

    def __getitem__(self, index: Any) -> Any:
        return self._items[index]

    def __iter__(self) -> Iterator[Any]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, item: Any) -> bool:
        return item in self._items

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, TrackedList):
            return self._items == other._items
        return self._items == other

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TrackedList({self._items!r})"

    def as_list(self) -> list:
        """A plain-list copy of the contents."""
        return list(self._items)


class FieldSpec:
    """Schema entry: one declared field of a checkpointable class."""

    __slots__ = ("name", "role", "kind", "slot")

    def __init__(self, name: str, role: str, kind: Optional[str]) -> None:
        self.name = name
        #: one of "scalar", "scalar_list", "child", "child_list"
        self.role = role
        #: scalar kind for scalar/scalar_list fields, else None
        self.kind = kind
        #: instance attribute the value lives under
        self.slot = "_f_" + name

    @property
    def default(self) -> Any:
        if self.role == "scalar":
            return _DEFAULTS[self.kind]
        return None  # lists and children are built per instance

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = f", kind={self.kind}" if self.kind else ""
        return f"FieldSpec({self.name!r}, role={self.role}{kind})"


class _FieldDescriptor:
    """Base descriptor: stores the value on the instance, flags the owner."""

    role = ""

    def __init__(self, kind: Optional[str] = None) -> None:
        self.kind = kind
        self.name = None  # filled in by __set_name__
        self.slot = None

    def __set_name__(self, owner: type, name: str) -> None:
        self.name = name
        self.slot = "_f_" + name

    def spec(self) -> FieldSpec:
        if self.name is None:
            raise SchemaError("field descriptor used outside a class body")
        return FieldSpec(self.name, self.role, self.kind)

    def __get__(self, instance: Any, owner: Optional[type] = None) -> Any:
        if instance is None:
            return self
        return getattr(instance, self.slot)

    def __set__(self, instance: Any, value: Any) -> None:
        setattr(instance, self.slot, value)
        instance._ckpt_info.modified = True


class _Scalar(_FieldDescriptor):
    role = "scalar"

    def __init__(self, kind: str) -> None:
        if kind not in SCALAR_KINDS:
            raise SchemaError(
                f"scalar kind must be one of {SCALAR_KINDS}, got {kind!r}"
            )
        super().__init__(kind)


class _ScalarList(_FieldDescriptor):
    role = "scalar_list"

    def __init__(self, kind: str) -> None:
        if kind not in SCALAR_KINDS:
            raise SchemaError(
                f"scalar_list kind must be one of {SCALAR_KINDS}, got {kind!r}"
            )
        super().__init__(kind)

    def __set__(self, instance: Any, value: Any) -> None:
        if not isinstance(value, TrackedList) or value._owner is not instance:
            value = TrackedList(instance, value)
        setattr(instance, self.slot, value)
        instance._ckpt_info.modified = True


class _Child(_FieldDescriptor):
    role = "child"

    def __init__(self, cls: Optional[type] = None) -> None:
        super().__init__(None)
        #: optional declared class, used only for documentation/validation
        self.declared_class = cls

    def __set__(self, instance: Any, value: Any) -> None:
        old = getattr(instance, self.slot, None)
        setattr(instance, self.slot, value)
        instance._ckpt_info.modified = True
        if value is not old and (old is not None or value is not None):
            note_topology_change()


class _ChildList(_FieldDescriptor):
    role = "child_list"

    def __init__(self, cls: Optional[type] = None) -> None:
        super().__init__(None)
        self.declared_class = cls

    def __set__(self, instance: Any, value: Any) -> None:
        if not isinstance(value, TrackedList) or value._owner is not instance:
            value = TrackedList(instance, value, topo=True)
        else:
            value._topo = True
        setattr(instance, self.slot, value)
        instance._ckpt_info.modified = True
        note_topology_change()


def scalar(kind: str) -> _Scalar:
    """Declare a base-type field (``"int"``, ``"float"``, ``"bool"``, ``"str"``)."""
    return _Scalar(kind)


def scalar_list(kind: str) -> _ScalarList:
    """Declare a mutable list of base-type values."""
    return _ScalarList(kind)


def child(cls: Optional[type] = None) -> _Child:
    """Declare a reference to another checkpointable object (or ``None``)."""
    return _Child(cls)


def child_list(cls: Optional[type] = None) -> _ChildList:
    """Declare a mutable list of checkpointable children."""
    return _ChildList(cls)
