"""The observability layer's own lint target.

An instrumented session is still a session: the phases it runs between
traced commits must only modify the positions their patterns declare —
tracing must never change what gets checkpointed. This module ships a
probe structure modeling a workload whose hot phase bumps a counter while
its (quiescent) trace-configuration subtree is skipped by specialization,
declared via ``LINT_TARGETS``/``LINT_PROGRAMS`` so ``python -m
repro.lint`` (which defaults to the whole ``repro`` package) runs the
effect analysis, the soundness diff, and the residual verifier over the
observability layer's reference usage.
"""

from __future__ import annotations

from repro.core.checkpointable import Checkpointable
from repro.core.fields import child, scalar
from repro.lint.targets import LintTarget, ProgramTarget
from repro.spec.modpattern import ModificationPattern
from repro.spec.shape import Shape


class TracedCounter(Checkpointable):
    """The one position the traced phase is allowed to touch."""

    commits = scalar("int")
    bytes_written = scalar("int")


class TraceConfig(Checkpointable):
    """Quiescent during the traced phase: specialization skips it."""

    exporter = scalar("str")
    flush_every = scalar("int")


class TracedRoot(Checkpointable):
    counter = child(TracedCounter)
    config = child(TraceConfig)


def traced_prototype() -> TracedRoot:
    return TracedRoot(
        counter=TracedCounter(commits=0, bytes_written=0),
        config=TraceConfig(exporter="jsonl", flush_every=1),
    )


TRACED_SHAPE = Shape.of(traced_prototype())

#: the traced phase's promise: only the counter subtree may be dirtied
TRACED_PATTERN = ModificationPattern.only(TRACED_SHAPE, [("counter",)])


def traced_phase(root: TracedRoot) -> None:
    """The work an instrumented session runs between traced commits."""
    root.counter.commits += 1
    root.counter.bytes_written += 64


def traced_driver(root: TracedRoot, session) -> None:
    """Reference whole-program driver for the instrumented session flow."""
    session.base(roots=[root])
    root.counter.commits += 1
    root.counter.bytes_written += 64
    session.commit(phase="record", roots=[root])


LINT_TARGETS = [
    LintTarget(
        "obs-traced-probe",
        shape=TRACED_SHAPE,
        phases=[traced_phase],
        pattern=TRACED_PATTERN,
        roots=["root"],
    ),
]

LINT_PROGRAMS = [
    ProgramTarget(
        "obs-traced-probe-driver",
        shape=TRACED_SHAPE,
        driver=traced_driver,
        roots=["root"],
        declared={
            "record": ModificationPattern.only(TRACED_SHAPE, [("counter",)]),
        },
    ),
]
