"""Aggregate a JSON-lines trace into the paper's per-phase table shape.

``python -m repro.obs report trace.jsonl`` reads the event records a
:class:`~repro.obs.tracer.JsonlExporter` appended and folds every
``commit.end`` into one row per phase — commit count, bytes, latency
percentiles, strategy-tier hit counts, fallback/retry/escalation totals —
mirroring the per-phase cost tables of the paper's Figures 7-11. A torn
final line (crash mid-append) and non-JSON lines are skipped, not fatal.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

#: phase label used for commits that carried no phase tag
UNLABELED = "(unlabeled)"


def _cell(value: Any) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if 0 < abs(value) < 0.1:
            return f"{value:.4f}"
        return f"{value:.2f}"
    return str(value)


def format_table(headers: Sequence[str], rows: List[Sequence[Any]]) -> str:
    """Fixed-width text table (mirrors ``repro.bench.reporting``, which
    this module must not import: bench pulls in the runtime, and the
    runtime's hot paths import :mod:`repro.obs`)."""
    rendered = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    out = [line(list(headers)), line(["-" * w for w in widths])]
    out.extend(line(row) for row in rendered)
    return "\n".join(out)


def read_trace(path: str) -> List[dict]:
    """Parse one JSON-lines trace; skips blank, torn, or non-JSON lines."""
    records: List[dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail of a crashed writer
            if isinstance(record, dict):
                records.append(record)
    return records


def _percentile(sorted_values: List[float], q: float) -> float:
    """Exact linear-interpolation quantile of pre-sorted values."""
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    position = q * (len(sorted_values) - 1)
    low = int(position)
    high = min(low + 1, len(sorted_values) - 1)
    fraction = position - low
    return sorted_values[low] * (1.0 - fraction) + sorted_values[high] * fraction


@dataclass
class PhaseAggregate:
    """Everything the trace said about one phase's commits."""

    phase: str
    commits: int = 0
    bytes: int = 0
    wall_seconds: List[float] = field(default_factory=list)
    strategies: Dict[str, int] = field(default_factory=dict)
    kinds: Dict[str, int] = field(default_factory=dict)
    fallbacks: int = 0
    retries: int = 0
    escalations: int = 0
    compactions: int = 0
    dirty_objects: int = 0

    def add_commit(self, record: dict) -> None:
        self.commits += 1
        self.bytes += int(record.get("bytes", 0))
        wall = record.get("wall_seconds")
        if wall is not None:
            self.wall_seconds.append(float(wall))
        strategy = record.get("strategy", "?")
        self.strategies[strategy] = self.strategies.get(strategy, 0) + 1
        kind = record.get("kind", "?")
        self.kinds[kind] = self.kinds.get(kind, 0) + 1
        self.retries += int(record.get("retries", 0))
        if record.get("degraded"):
            self.fallbacks += 1
        if record.get("escalated"):
            self.escalations += 1
        if record.get("compacted"):
            self.compactions += 1
        self.dirty_objects += int(record.get("dirty_objects", 0))

    def to_dict(self) -> dict:
        walls = sorted(self.wall_seconds)
        return {
            "phase": self.phase,
            "commits": self.commits,
            "bytes": self.bytes,
            "wall_p50": _percentile(walls, 0.5),
            "wall_p90": _percentile(walls, 0.9),
            "wall_p99": _percentile(walls, 0.99),
            "wall_max": walls[-1] if walls else 0.0,
            "wall_total": sum(walls),
            "strategies": dict(sorted(self.strategies.items())),
            "kinds": dict(sorted(self.kinds.items())),
            "fallbacks": self.fallbacks,
            "retries": self.retries,
            "escalations": self.escalations,
            "compactions": self.compactions,
            "dirty_objects": self.dirty_objects,
        }


@dataclass
class ReplicationAggregate:
    """Everything the trace said about the replicated store.

    Folds ``replica.append`` / ``replica.state`` / ``replica.probe`` /
    ``scrub.repair`` / ``scrub.done`` events into per-replica ack
    counts, breaker transition counts (``old->new``), probe counts, and
    scrub totals — the counters ISSUE's replication monitoring needs in
    one place.
    """

    #: successful acks per replica (from ``replica.append`` acked lists)
    acks: Dict[str, int] = field(default_factory=dict)
    #: commits that left at least one replica degraded
    degraded_commits: int = 0
    #: commits where fewer replicas acked than the write quorum
    quorum_losses: int = 0
    #: breaker transitions, keyed ``"replica old->new"``
    transitions: Dict[str, int] = field(default_factory=dict)
    #: probe attempts per fenced replica
    probes: Dict[str, int] = field(default_factory=dict)
    #: scrub repairs per replica
    scrub_repairs: Dict[str, int] = field(default_factory=dict)
    scrub_runs: int = 0
    scrub_quarantined: int = 0
    scrub_unrepairable: int = 0

    def add(self, record: dict) -> None:
        etype = record.get("type")
        if etype == "replica.append":
            acked = record.get("acked") or []
            for name in acked:
                self.acks[name] = self.acks.get(name, 0) + 1
            if record.get("degraded"):
                self.degraded_commits += 1
            quorum = record.get("quorum")
            if quorum is not None and len(acked) < int(quorum):
                self.quorum_losses += 1
        elif etype == "replica.state":
            key = (
                f"{record.get('replica', '?')} "
                f"{record.get('old', '?')}->{record.get('new', '?')}"
            )
            self.transitions[key] = self.transitions.get(key, 0) + 1
        elif etype == "replica.probe":
            name = record.get("replica", "?")
            self.probes[name] = self.probes.get(name, 0) + 1
        elif etype == "scrub.repair":
            name = record.get("replica", "?")
            self.scrub_repairs[name] = self.scrub_repairs.get(name, 0) + 1
        elif etype == "scrub.done":
            self.scrub_runs += 1
            self.scrub_quarantined += int(record.get("quarantined", 0))
            self.scrub_unrepairable += int(record.get("unrepairable", 0))

    @property
    def empty(self) -> bool:
        return not (
            self.acks
            or self.transitions
            or self.probes
            or self.scrub_repairs
            or self.scrub_runs
        )

    def to_dict(self) -> dict:
        return {
            "acks": dict(sorted(self.acks.items())),
            "degraded_commits": self.degraded_commits,
            "quorum_losses": self.quorum_losses,
            "transitions": dict(sorted(self.transitions.items())),
            "probes": dict(sorted(self.probes.items())),
            "scrub_repairs": dict(sorted(self.scrub_repairs.items())),
            "scrub_runs": self.scrub_runs,
            "scrub_quarantined": self.scrub_quarantined,
            "scrub_unrepairable": self.scrub_unrepairable,
        }

    def render(self) -> str:
        acks = " ".join(
            f"{name}:{count}" for name, count in sorted(self.acks.items())
        )
        lines = [
            f"  replication: acks {acks or '-'}; "
            f"{self.degraded_commits} degraded commit(s); "
            f"{self.quorum_losses} quorum loss(es)"
        ]
        for key, count in sorted(self.transitions.items()):
            lines.append(f"    breaker {key}: x{count}")
        if self.probes:
            probes = " ".join(
                f"{name}:{count}"
                for name, count in sorted(self.probes.items())
            )
            lines.append(f"    probes: {probes}")
        if self.scrub_runs or self.scrub_repairs:
            repairs = " ".join(
                f"{name}:{count}"
                for name, count in sorted(self.scrub_repairs.items())
            )
            lines.append(
                f"    scrub: {self.scrub_runs} run(s), "
                f"repairs {repairs or '-'}, "
                f"{self.scrub_quarantined} quarantined, "
                f"{self.scrub_unrepairable} unrepairable"
            )
        return "\n".join(lines)


@dataclass
class TraceReport:
    """The aggregate of one trace file."""

    path: str
    records: int = 0
    event_counts: Dict[str, int] = field(default_factory=dict)
    phases: Dict[str, PhaseAggregate] = field(default_factory=dict)
    writer_drains: int = 0
    fsck_repairs: int = 0
    replication: ReplicationAggregate = field(
        default_factory=ReplicationAggregate
    )
    exporter_note: str = ""

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "records": self.records,
            "event_counts": dict(sorted(self.event_counts.items())),
            "phases": {
                name: agg.to_dict() for name, agg in sorted(self.phases.items())
            },
            "writer_drains": self.writer_drains,
            "fsck_repairs": self.fsck_repairs,
            "replication": self.replication.to_dict(),
        }

    def render(self) -> str:
        headers = (
            "phase",
            "commits",
            "bytes",
            "p50 (s)",
            "p90 (s)",
            "p99 (s)",
            "total (s)",
            "strategies",
            "fallbacks",
            "retries",
        )
        rows = []
        for name in sorted(self.phases):
            data = self.phases[name].to_dict()
            strategies = " ".join(
                f"{strategy}:{count}"
                for strategy, count in data["strategies"].items()
            )
            rows.append(
                (
                    name,
                    data["commits"],
                    data["bytes"],
                    data["wall_p50"],
                    data["wall_p90"],
                    data["wall_p99"],
                    data["wall_total"],
                    strategies,
                    data["fallbacks"],
                    data["retries"],
                )
            )
        lines = [f"== trace report: {self.path} =="]
        lines.append(format_table(headers, rows))
        lines.append(
            f"  {self.records} record(s); "
            f"{self.writer_drains} writer drain(s); "
            f"{self.fsck_repairs} fsck repair(s)"
        )
        if not self.replication.empty:
            lines.append(self.replication.render())
        counts = ", ".join(
            f"{etype}={count}"
            for etype, count in sorted(self.event_counts.items())
        )
        lines.append(f"  events: {counts}")
        return "\n".join(lines)


def aggregate(records: List[dict], path: str = "<trace>") -> TraceReport:
    """Fold parsed trace records into a :class:`TraceReport`."""
    report = TraceReport(path=path, records=len(records))
    for record in records:
        etype = record.get("type", "?")
        report.event_counts[etype] = report.event_counts.get(etype, 0) + 1
        if etype == "commit.end":
            phase = record.get("phase") or UNLABELED
            agg = report.phases.get(phase)
            if agg is None:
                agg = PhaseAggregate(phase)
                report.phases[phase] = agg
            agg.add_commit(record)
        elif etype == "writer.drain":
            report.writer_drains += 1
        elif etype == "fsck.repair":
            report.fsck_repairs += 1
        elif etype in (
            "replica.append",
            "replica.state",
            "replica.probe",
            "scrub.repair",
            "scrub.done",
        ):
            report.replication.add(record)
    return report


def report_file(path: str) -> TraceReport:
    """Read and aggregate one trace file."""
    return aggregate(read_trace(path), path=path)


def save_json(report: TraceReport, path: Optional[str] = None) -> str:
    """Serialize the report; write to ``path`` when given."""
    text = json.dumps(report.to_dict(), indent=2, sort_keys=True)
    if path is not None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    return text
